//! Criterion micro-benchmarks for the simulation substrate: these guard the
//! throughput that makes the figure harnesses (minutes of simulated time at
//! 20 µs steps) tractable.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use edc_harvest::{EnergySource, GustProfile, Photovoltaic, SignalGenerator, Waveform, WindTurbine};
use edc_mcu::Mcu;
use edc_mpsoc::XuPlatform;
use edc_neutral::PnGovernor;
use edc_sim::SupplyNode;
use edc_transient::{Hibernus, RunOutcome, TransientRunner};
use edc_units::{Amps, Farads, Hertz, Ohms, Seconds, Volts, Watts};
use edc_workloads::{Crc16, Fourier, Workload};

fn bench_supply_node(c: &mut Criterion) {
    c.bench_function("supply_node_step", |b| {
        let mut node = SupplyNode::new(Farads::from_micro(10.0), Volts(2.5))
            .with_clamp(Volts(3.6));
        b.iter(|| {
            node.step(
                Amps::from_milli(1.0),
                Amps::from_micro(500.0),
                Seconds(20e-6),
            )
        });
    });
}

fn bench_vm(c: &mut Criterion) {
    c.bench_function("vm_run_10k_cycles", |b| {
        let program = Crc16::new(1024).program();
        b.iter_batched(
            || Mcu::new(program.clone()),
            |mut mcu| mcu.run(10_000, false),
            BatchSize::SmallInput,
        );
    });
}

fn bench_snapshot(c: &mut Criterion) {
    c.bench_function("snapshot_take_restore", |b| {
        let mut mcu = Mcu::new(Fourier::new(16).program());
        mcu.run(1000, false);
        b.iter(|| {
            mcu.take_snapshot(None);
            mcu.restore_snapshot()
        });
    });
}

fn bench_sources(c: &mut Criterion) {
    let mut group = c.benchmark_group("source_sampling");
    group.bench_function("wind", |b| {
        let mut w = WindTurbine::new(Volts(5.0), Hertz(8.0), GustProfile::fig1a());
        let mut t = 0.0;
        b.iter(|| {
            t += 2e-5;
            w.current_into(Volts(2.5), Seconds(t))
        });
    });
    group.bench_function("photovoltaic", |b| {
        let mut pv = Photovoltaic::indoor(3);
        let mut t = 0.0;
        b.iter(|| {
            t += 60.0;
            pv.current_into(Volts(1.5), Seconds(t))
        });
    });
    group.bench_function("signal_generator", |b| {
        let mut sg = SignalGenerator::new(Waveform::HalfRectifiedSine, Volts(4.0), Hertz(2.0))
            .with_resistance(Ohms(100.0));
        let mut t = 0.0;
        b.iter(|| {
            t += 2e-5;
            sg.current_into(Volts(2.5), Seconds(t))
        });
    });
    group.finish();
}

fn bench_governor(c: &mut Criterion) {
    c.bench_function("pn_governor_step", |b| {
        let mut platform = XuPlatform::odroid_xu4();
        let mut governor = PnGovernor::new();
        let mut t = 0.0f64;
        b.iter(|| {
            t += 0.01;
            let p = Watts(8.0 + 6.0 * (t * 0.7).sin());
            governor.step(&mut platform, p, Seconds(0.01));
        });
    });
}

fn bench_full_transient_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_end_to_end");
    group.sample_size(10);
    group.bench_function("hibernus_fourier64_50hz", |b| {
        b.iter(|| {
            let workload = Fourier::new(64);
            let mut runner = TransientRunner::builder()
                .strategy(Box::new(Hibernus::new()))
                .program(workload.program())
                .source(|v: Volts, t: Seconds| {
                    let v_oc =
                        (4.0 * (std::f64::consts::TAU * 50.0 * t.0).sin()).max(0.0);
                    Amps(((v_oc - v.0) / 100.0).max(0.0))
                })
                .build();
            let out = runner.run_until_complete(Seconds(2.0));
            assert_eq!(out, RunOutcome::Completed);
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_supply_node,
    bench_vm,
    bench_snapshot,
    bench_sources,
    bench_governor,
    bench_full_transient_run
);
criterion_main!(benches);
