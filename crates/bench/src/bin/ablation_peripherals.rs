//! Ablation of the paper's future-work item: peripheral-state
//! checkpointing.
//!
//! "Work to date has primarily focused on computation, and not the plethora
//! of peripherals that are typically present in embedded systems"
//! (Discussion). This harness quantifies both sides: re-initialising
//! peripherals after outages is free but breaks sample-stream continuity;
//! checkpointing them costs a few extra frame words per snapshot and keeps
//! the ADC sequence seamless.
//!
//! Run: `cargo run --release -p edc-bench --bin ablation_peripherals`

use edc_bench::{banner, TextTable};
use edc_mcu::{Mcu, PeripheralPolicy, RunExit};
use edc_workloads::{SensePipeline, Workload};

/// Runs the sensing pipeline with periodic outages under a policy,
/// reporting continuity of the sampled sinusoid.
fn run(policy: PeripheralPolicy) -> (Vec<u16>, f64, f64) {
    let wl = SensePipeline::new(12, 8);
    let mut mcu = Mcu::new(wl.program()).with_peripheral_policy(policy);
    let mut outages = 0;
    loop {
        let r = mcu.run(2500, false);
        match r.exit {
            RunExit::Completed => break,
            RunExit::BudgetExhausted => {
                mcu.take_snapshot(None);
                mcu.power_loss();
                mcu.cold_boot();
                mcu.restore_snapshot().expect("sealed frame");
                outages += 1;
            }
            other => panic!("unexpected exit {other:?}"),
        }
    }
    wl.verify(&mcu).expect("pipeline structure intact");
    let averages: Vec<u16> = (0..12)
        .map(|w| {
            mcu.memory()
                .peek(edc_workloads::OUTPUT_BASE + 1 + w)
                .unwrap()
        })
        .collect();
    // Continuity metric: windows should sweep the ADC sinusoid smoothly.
    // A reinit glitch repeats the waveform start, flattening the spread.
    let lo = *averages.iter().min().unwrap() as f64;
    let hi = *averages.iter().max().unwrap() as f64;
    (averages, hi - lo, outages as f64)
}

fn main() {
    banner("Peripheral checkpointing ablation (sense pipeline, forced outages)");
    let frame_plain = Mcu::new(SensePipeline::new(1, 2).program()).snapshot_words();
    let frame_cp = Mcu::new(SensePipeline::new(1, 2).program())
        .with_peripheral_policy(PeripheralPolicy::Checkpointed)
        .snapshot_words();
    println!(
        "snapshot frame: {frame_plain} words (reinit) vs {frame_cp} words \
         (checkpointed)\n"
    );

    let (avg_reinit, spread_reinit, outages_r) = run(PeripheralPolicy::Reinit);
    let (avg_cp, spread_cp, outages_c) = run(PeripheralPolicy::Checkpointed);
    let (avg_ref, spread_ref, _) = {
        // Uninterrupted reference.
        let wl = SensePipeline::new(12, 8);
        let mut mcu = Mcu::new(wl.program());
        assert_eq!(mcu.run(u64::MAX, false).exit, RunExit::Completed);
        let averages: Vec<u16> = (0..12)
            .map(|w| {
                mcu.memory()
                    .peek(edc_workloads::OUTPUT_BASE + 1 + w)
                    .unwrap()
            })
            .collect();
        let lo = *averages.iter().min().unwrap() as f64;
        let hi = *averages.iter().max().unwrap() as f64;
        (averages, hi - lo, 0.0)
    };

    let mut t = TextTable::new(&["policy", "outages", "window averages (ADC codes)", "spread"]);
    let fmt = |v: &[u16]| {
        v.iter()
            .map(|x| x.to_string())
            .collect::<Vec<_>>()
            .join(",")
    };
    t.row(&[
        "uninterrupted".to_string(),
        "0".to_string(),
        fmt(&avg_ref),
        format!("{spread_ref:.0}"),
    ]);
    t.row(&[
        "reinit".to_string(),
        format!("{outages_r:.0}"),
        fmt(&avg_reinit),
        format!("{spread_reinit:.0}"),
    ]);
    t.row(&[
        "checkpointed".to_string(),
        format!("{outages_c:.0}"),
        fmt(&avg_cp),
        format!("{spread_cp:.0}"),
    ]);
    print!("{}", t.render());

    let matches_ref = avg_cp == avg_ref;
    println!(
        "\ncheckpointed == uninterrupted: {matches_ref} (sample-stream \
         continuity preserved)\nreinit == uninterrupted: {} (the gap the \
         paper's discussion flags)",
        avg_reinit == avg_ref
    );
}
