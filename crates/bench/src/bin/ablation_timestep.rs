//! Numerical ablation: does the forward-Euler timestep affect the physics
//! conclusions?
//!
//! The Fig. 7 experiment is repeated at halved and doubled timesteps; the
//! *events* that constitute the result (completion cycle, snapshot count,
//! restore count, calibrated thresholds) must be invariant, and completion
//! time must converge. This bounds the integrator error the DESIGN.md
//! fidelity note claims.
//!
//! Run: `cargo run --release -p edc-bench --bin ablation_timestep`

use edc_bench::{banner, TextTable};
use edc_core::experiment::ExperimentSpec;
use edc_core::scenarios::{SourceKind, StrategyKind};
use edc_units::{Ohms, Seconds};
use edc_workloads::WorkloadKind;

struct Run {
    dt_us: f64,
    completed: Option<Seconds>,
    cycle: Option<u64>,
    snapshots: u64,
    restores: u64,
    verified: bool,
}

fn run(dt: Seconds) -> Run {
    let supply_hz = 2.0;
    let report = ExperimentSpec::new(
        SourceKind::RectifiedSine { hz: supply_hz },
        StrategyKind::Hibernus,
        WorkloadKind::Fourier(256),
    )
    .leakage(Ohms(100_000.0))
    .timestep(dt)
    .deadline(Seconds(3.0))
    .run()
    .expect("spec assembles");
    Run {
        dt_us: dt.0 * 1e6,
        completed: report.stats.completed_at,
        cycle: report
            .stats
            .completed_at
            .map(|t| (t.0 * supply_hz).floor() as u64 + 1),
        snapshots: report.stats.snapshots,
        restores: report.stats.restores,
        verified: report.verification.is_ok(),
    }
}

fn main() {
    banner("Timestep ablation on the Fig. 7 experiment");
    let runs: Vec<Run> = [5e-6, 10e-6, 20e-6, 40e-6]
        .into_iter()
        .map(|dt| run(Seconds(dt)))
        .collect();

    let mut t = TextTable::new(&[
        "dt (µs)",
        "completed (s)",
        "supply cycle",
        "snapshots",
        "restores",
        "verified",
    ]);
    for r in &runs {
        t.row(&[
            format!("{:.0}", r.dt_us),
            r.completed
                .map(|s| format!("{:.4}", s.0))
                .unwrap_or_else(|| "DNF".to_string()),
            r.cycle.map(|c| c.to_string()).unwrap_or_default(),
            r.snapshots.to_string(),
            r.restores.to_string(),
            r.verified.to_string(),
        ]);
    }
    print!("{}", t.render());

    let cycles: Vec<_> = runs.iter().filter_map(|r| r.cycle).collect();
    let invariant = cycles.windows(2).all(|w| w[0] == w[1]);
    println!(
        "\nevent-level conclusions timestep-invariant: {invariant} \
         (completion cycle {:?} at every dt)",
        cycles.first()
    );
    let times: Vec<f64> = runs
        .iter()
        .filter_map(|r| r.completed.map(|s| s.0))
        .collect();
    if times.len() >= 2 {
        let spread = (times.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - times.iter().cloned().fold(f64::INFINITY, f64::min))
            / times[0];
        println!(
            "completion-time spread across 8× dt range: {:.2}%",
            spread * 100.0
        );
    }
}
