//! Timing + telemetry baseline: the workspace's first real `BENCH`
//! artifact.
//!
//! Runs the canonical strategy×workload grid twice over an intermittent
//! supply — once with the default `NullSink` (the zero-overhead baseline)
//! and once with `StatsSink` analytics — then writes `BENCH_sweep.json`
//! with wall-clock timing (total and per-cell) and the grid-level
//! telemetry aggregate. CI runs this in release so timing regressions are
//! visible in the logs; the telemetry section is deterministic and can be
//! diffed byte-for-byte between commits.
//!
//! Run: `cargo run --release -p edc-bench --bin bench_baseline`
//! Output path override: `bench_baseline <path>` (default
//! `BENCH_sweep.json` in the working directory).

use edc_bench::banner;
use edc_bench::sweep::{render_text, Sweep, SweepRun};
use edc_core::experiment::ExperimentSpec;
use edc_core::json::Json;
use edc_core::scenarios::{SourceKind, StrategyKind};
use edc_core::TelemetryKind;
use edc_units::Seconds;
use edc_workloads::WorkloadKind;

fn grid(telemetry: TelemetryKind) -> Sweep {
    let base = ExperimentSpec::new(
        SourceKind::RectifiedSine { hz: 50.0 },
        StrategyKind::Hibernus,
        WorkloadKind::Fourier(64),
    )
    .deadline(Seconds(20.0))
    .telemetry(telemetry);
    // The table_strategies grid: both workloads span several supply
    // windows, so the telemetry aggregate actually sees outages, torn
    // frames and restores.
    Sweep::over(base)
        .strategies(&StrategyKind::ALL)
        .workloads(&[WorkloadKind::Fourier(64), WorkloadKind::Crc16(1024)])
}

fn timing_line(label: &str, run: &SweepRun) -> String {
    let cells = run.timing.per_cell_s.len();
    let slowest = run.timing.per_cell_s.iter().cloned().fold(0.0, f64::max);
    format!(
        "{label:>9}: total {:.3} s over {cells} cells (slowest cell {:.3} s)",
        run.timing.total_s, slowest
    )
}

fn main() {
    let path = edc_bench::artifact_path("BENCH_sweep.json");

    let null_run = grid(TelemetryKind::Null).run_timed().unwrap_or_else(|e| {
        eprintln!("baseline sweep failed to assemble: {e}");
        std::process::exit(1);
    });
    let stats_run = grid(TelemetryKind::Stats).run_timed().unwrap_or_else(|e| {
        eprintln!("telemetry sweep failed to assemble: {e}");
        std::process::exit(1);
    });

    banner("Sweep baseline: 4 V half-wave rectified sine @ 50 Hz, 10 µF");
    print!("{}", render_text(&stats_run.rows));
    banner("Wall-clock");
    println!("{}", timing_line("null", &null_run));
    println!("{}", timing_line("stats", &stats_run));
    banner("Metrics");
    print!("{}", edc_metrics::global().render_text());

    let artifact = edc_bench::artifact(
        "sweep_baseline",
        vec![
            (
                "grid",
                Json::obj(vec![
                    ("source", Json::Str("rectified-sine@50Hz".into())),
                    ("strategies", Json::Uint(StrategyKind::ALL.len() as u64)),
                    ("workloads", Json::Uint(2)),
                    ("deadline_s", Json::Num(20.0)),
                ]),
            ),
            ("null_timing", null_run.timing.to_json()),
            ("stats_timing", stats_run.timing.to_json()),
            ("telemetry", stats_run.telemetry_json()),
        ],
    );
    edc_bench::write_artifact(&path, &artifact);
}
