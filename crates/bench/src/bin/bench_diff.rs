//! The BENCH regression gate: compares a fresh artifact against its
//! committed baseline under a tolerance policy.
//!
//! Deterministic fields must match exactly; quarantined wall-clock
//! sections are checked shape-only (or within a tolerance) per the policy
//! file. Every difference is printed with its JSON path, so a regression
//! names the exact field that moved.
//!
//! Usage:
//!
//! ```text
//! bench_diff [--policy FILE] [--json] BASELINE CANDIDATE
//! ```
//!
//! Exit status: `0` when the artifacts agree under the policy, `1` when
//! differences were found, `2` on usage, I/O or parse errors. With
//! `--json` the machine-readable [`DiffReport`](edc_bench::DiffReport)
//! JSON is printed instead of text.
//!
//! CI runs this after every BENCH binary, e.g.:
//!
//! ```text
//! cargo run --release -p edc-bench --bin bench_diff -- \
//!     --policy BENCH_policy.json BENCH_sweep.json target/BENCH_sweep.json
//! ```

use edc_bench::diff::{diff_artifacts, Policy};
use edc_core::json::Json;

const USAGE: &str = "usage: bench_diff [--policy FILE] [--json] BASELINE CANDIDATE";

fn fail(message: &str) -> ! {
    eprintln!("bench_diff: {message}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn load(path: &str) -> Json {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("could not read {path}: {e}")));
    Json::parse(&text).unwrap_or_else(|e| fail(&format!("{path} is not valid JSON: {e:?}")))
}

fn main() {
    let mut policy = Policy::exact();
    let mut as_json = false;
    let mut paths: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--policy" => {
                let file = args
                    .next()
                    .unwrap_or_else(|| fail("--policy needs a file argument"));
                let text = std::fs::read_to_string(&file)
                    .unwrap_or_else(|e| fail(&format!("could not read {file}: {e}")));
                policy = Policy::parse(&text)
                    .unwrap_or_else(|e| fail(&format!("bad policy {file}: {e}")));
            }
            "--json" => as_json = true,
            other if other.starts_with("--") => fail(&format!("unknown flag {other}")),
            other => paths.push(other.to_string()),
        }
    }
    let [baseline_path, candidate_path] = paths.as_slice() else {
        fail("expected exactly two artifact paths");
    };

    let baseline = load(baseline_path);
    let candidate = load(candidate_path);
    let report = diff_artifacts(&baseline, &candidate, &policy);
    if as_json {
        println!("{}", report.to_json());
    } else {
        print!(
            "{baseline_path} vs {candidate_path}\n{}",
            report.render_text()
        );
    }
    std::process::exit(i32::from(!report.is_clean()));
}
