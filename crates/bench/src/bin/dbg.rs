//! Scratch harness: a traced Hibernus-PN run on the Fig. 8 turbine gust.
//!
//! Run: `cargo run --release -p edc-bench --bin dbg`

use edc_core::experiment::ExperimentSpec;
use edc_core::scenarios::{SourceKind, StrategyKind};
use edc_power::{Rectifier, RectifierKind};
use edc_units::{Seconds, Volts};
use edc_workloads::WorkloadKind;

fn main() {
    // The busy loop is bounded by the EH16 ISA's signed-16-bit compare.
    let spec = ExperimentSpec::new(
        SourceKind::Turbine,
        StrategyKind::HibernusPn,
        WorkloadKind::BusyLoop(32_000),
    )
    .rectifier(Rectifier::new(RectifierKind::HalfWave, Volts(0.2)))
    .trace(100);
    let mut system = match spec.build() {
        Ok(system) => system,
        Err(e) => {
            eprintln!("failed to assemble: {e}");
            std::process::exit(1);
        }
    };
    println!("thresholds {:?}", system.thresholds());
    system.run_for(Seconds(9.0));
    print!("{}", system.runner().log().to_lines());
    if let Some(tr) = system.runner().vcc_trace() {
        for (i, (t, v)) in tr.points().iter().enumerate() {
            if i % 250 == 0 {
                println!("{:.2}\t{:.3}", t.0, v);
            }
        }
    }
}
