use edc_core::scenarios::fig8_turbine;
use edc_core::system::SystemBuilder;
use edc_power::{Rectifier, RectifierKind};
use edc_transient::{HibernusPn, TransientRunner};
use edc_units::{Seconds, Volts};
use edc_workloads::BusyLoop;
fn main() {
    let (mut runner, _): (TransientRunner, _) = SystemBuilder::new()
        .source(fig8_turbine())
        .rectifier(Rectifier::new(RectifierKind::HalfWave, Volts(0.2)))
        .strategy(Box::new(HibernusPn::new()))
        .workload(Box::new(BusyLoop::new(65_000)))
        .trace(100)
        .build();
    println!("thresholds {:?}", runner.thresholds());
    runner.run_for(Seconds(9.0));
    print!("{}", runner.log().to_lines());
    if let Some(tr) = runner.vcc_trace() {
        for (i, (t, v)) in tr.points().iter().enumerate() {
            if i % 250 == 0 { println!("{:.2}\t{:.3}", t.0, v); }
        }
    }
}
