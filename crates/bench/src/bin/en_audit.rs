//! Eq. (1)/(2) demonstration: energy-neutral operation and its failure.
//!
//! Simulates the paper's Section II.A narrative on a two-day photovoltaic
//! profile: a correctly-sized, duty-cycle-adaptive WSN node stays
//! energy-neutral (Eq. 1 balances over `T` = 24 h and Eq. 2 never fails);
//! an over-greedy or under-buffered configuration depletes its battery —
//! "expression (2) is violated and the system fails".
//!
//! Run: `cargo run --release -p edc-bench --bin en_audit`

use edc_bench::{banner, TextTable};
use edc_harvest::Photovoltaic;
use edc_neutral::{EwmaPredictor, WsnController, WsnNode};
use edc_power::Battery;
use edc_units::{Joules, Seconds, Volts, Watts};

fn pv_power(seed: u64) -> impl Fn(Seconds) -> Watts {
    let pv = Photovoltaic::outdoor(seed);
    move |t| {
        // Harvested power at the cell's MPP-ish operating point (2 V).
        pv.current_at(t) * Volts(2.0)
    }
}

fn run_node(duty_max: f64, battery_j: f64, days: f64) -> (f64, u64, f64, f64) {
    let predictor = EwmaPredictor::new(48, 0.3);
    let ctrl =
        WsnController::new(predictor, Watts(12e-3), Watts(60e-6)).with_duty_bounds(0.005, duty_max);
    let battery = Battery::new(Joules(battery_j)).with_soc(0.6);
    let mut node = WsnNode::new(ctrl, battery);
    node.run(pv_power(7), Seconds::from_hours(24.0 * days));
    let audit = node.audit();
    let duties: Vec<f64> = node.reports().iter().map(|r| r.duty).collect();
    let mean_duty = duties.iter().sum::<f64>() / duties.len() as f64;
    (
        audit.neutrality_error(),
        audit.depletion_events,
        mean_duty,
        node.soc(),
    )
}

fn main() {
    banner("Eq. 1/2: energy-neutral WSN on a two-day+ PV profile");
    println!("node: 12 mW active, 60 µW sleep; Kansal-style EWMA duty control\n");

    let mut t = TextTable::new(&[
        "configuration",
        "Eq.1 error",
        "Eq.2 failures",
        "mean duty",
        "final SoC",
        "verdict",
    ]);
    let cases = [
        ("well-sized (60 J, duty ≤ 0.9)", 0.9, 60.0),
        ("greedy (60 J, duty ≥ forced high)", 0.0, 60.0), // placeholder, fixed below
        ("under-buffered (1.5 J)", 0.9, 1.5),
    ];
    // Case 1: well-sized.
    {
        let (err, dep, duty, soc) = run_node(cases[0].1, cases[0].2, 7.0);
        t.row(&[
            cases[0].0.to_string(),
            format!("{:.3}", err),
            dep.to_string(),
            format!("{duty:.3}"),
            format!("{soc:.2}"),
            if dep == 0 { "energy-neutral" } else { "FAILS" }.to_string(),
        ]);
    }
    // Case 2: greedy — duty floor pinned high (refuses to sleep at night).
    {
        let predictor = EwmaPredictor::new(48, 0.3);
        let ctrl =
            WsnController::new(predictor, Watts(12e-3), Watts(60e-6)).with_duty_bounds(0.6, 1.0);
        let battery = Battery::new(Joules(60.0)).with_soc(0.6);
        let mut node = WsnNode::new(ctrl, battery);
        node.run(pv_power(7), Seconds::from_hours(24.0 * 7.0));
        let audit = node.audit();
        t.row(&[
            "greedy (duty ≥ 0.6)".to_string(),
            format!("{:.3}", audit.neutrality_error()),
            audit.depletion_events.to_string(),
            "≥0.600".to_string(),
            format!("{:.2}", node.soc()),
            if audit.depletion_events == 0 {
                "energy-neutral"
            } else {
                "FAILS (Eq. 2)"
            }
            .to_string(),
        ]);
    }
    // Case 3: under-buffered.
    {
        let (err, dep, duty, soc) = run_node(cases[2].1, cases[2].2, 7.0);
        t.row(&[
            cases[2].0.to_string(),
            format!("{:.3}", err),
            dep.to_string(),
            format!("{duty:.3}"),
            format!("{soc:.2}"),
            if dep == 0 {
                "energy-neutral"
            } else {
                "FAILS (Eq. 2)"
            }
            .to_string(),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\nexpected shape: the adaptive, well-buffered node balances Eq. 1 \
         with zero Eq. 2 failures; the greedy and under-buffered ones fail."
    );
}
