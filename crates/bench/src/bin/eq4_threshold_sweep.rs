//! Eq. (4) design-space sweep: hibernate threshold `V_H` vs. capacitance.
//!
//! `E_S ≤ C·(V_H² − V_min²)/2` — for each capacitance the harness prints
//! the minimal `V_H` that funds a snapshot, then validates the boundary
//! empirically: a Hibernus configured *below* the Eq. (4) threshold tears
//! its snapshots, one configured at/above it seals them.
//!
//! Run: `cargo run --release -p edc-bench --bin eq4_threshold_sweep`

use edc_bench::{banner, TextTable};
use edc_core::experiment::Experiment;
use edc_core::scenarios::SourceKind;
use edc_mcu::Mcu;
use edc_power::sizing::try_hibernate_threshold;
use edc_transient::{LowVoltageResponse, Strategy};
use edc_units::{Farads, Seconds, Volts};
use edc_workloads::{Fourier, Workload, WorkloadKind};

/// Hibernus with a forced, possibly wrong, `V_H`.
struct FixedThreshold {
    v_h: Volts,
}

impl Strategy for FixedThreshold {
    fn name(&self) -> &str {
        "fixed-threshold"
    }
    fn thresholds(
        &mut self,
        _mcu: &Mcu,
        _c: Farads,
        _v_min: Volts,
        v_max: Volts,
    ) -> (Volts, Volts) {
        (self.v_h, (self.v_h + Volts(0.35)).min(v_max - Volts(0.01)))
    }
    fn on_low_voltage(&mut self) -> LowVoltageResponse {
        LowVoltageResponse::Hibernate
    }
}

fn torn_fraction(v_h: Volts, c: Farads) -> (u64, u64) {
    let mut system = Experiment::new()
        .source_kind(SourceKind::RectifiedSine { hz: 8.0 })
        .decoupling(c)
        .strategy(Box::new(FixedThreshold { v_h }))
        .workload_kind(WorkloadKind::Fourier(128))
        .build()
        .expect("experiment assembles");
    system.run_for(Seconds(6.0));
    let s = system.runner().stats();
    (s.snapshots, s.torn_snapshots)
}

fn main() {
    let v_min = Volts(2.0);
    let v_max = Volts(3.6);
    let e_s = Mcu::new(Fourier::new(128).program()).snapshot_energy();

    banner("Eq. 4: minimal V_H per capacitance (E_S = snapshot energy)");
    println!("E_S = {e_s} at 8 MHz\n");
    let mut t = TextTable::new(&["C", "V_H min (Eq. 4)", "feasible"]);
    for c_uf in [1.0, 2.2, 4.7, 10.0, 22.0, 47.0, 100.0] {
        let c = Farads::from_micro(c_uf);
        match try_hibernate_threshold(e_s, c, v_min, v_max, 0.0)
            .ok()
            .flatten()
        {
            Some(v_h) => t.row(&[format!("{c}"), format!("{v_h:.3}"), "yes".to_string()]),
            None => t.row(&[
                format!("{c}"),
                "—".to_string(),
                "no (cap too small)".to_string(),
            ]),
        };
    }
    print!("{}", t.render());

    banner("Empirical boundary check at C = 10 µF");
    let c = Farads::from_micro(10.0);
    let v_h_min = try_hibernate_threshold(e_s, c, v_min, v_max, 0.0)
        .ok()
        .flatten()
        .expect("feasible");
    let mut t = TextTable::new(&["V_H", "relation to Eq. 4", "sealed", "torn"]);
    for (dv, label) in [
        (-0.15, "below (violates Eq. 4)"),
        (0.05, "just above"),
        (0.30, "comfortably above"),
    ] {
        let v_h = Volts(v_h_min.0 + dv);
        let (sealed, torn) = torn_fraction(v_h, c);
        t.row(&[
            format!("{v_h:.3}"),
            label.to_string(),
            sealed.to_string(),
            torn.to_string(),
        ]);
    }
    print!("{}", t.render());
    println!("\nexpected shape: thresholds below the Eq. 4 bound tear snapshots.");
}
