//! Eq. (5) reproduction: the Hibernus ↔ QuickRecall crossover frequency.
//!
//! `f_crossover = (P_FRAM − P_SRAM) / (E_hibernus − E_quickrecall)`
//!
//! The harness sweeps the supply-interruption frequency, measures each
//! strategy's energy per unit of forward progress, and locates the measured
//! crossover; the analytic Eq. (5) value is printed alongside. Below the
//! crossover Hibernus (cheap quiescent SRAM, expensive rare snapshots)
//! wins; above it QuickRecall (expensive quiescent FRAM, near-free
//! snapshots) wins.
//!
//! Run: `cargo run --release -p edc-bench --bin eq5_crossover`

use edc_bench::{banner, log_space, TextTable};
use edc_core::experiment::ExperimentSpec;
use edc_core::scenarios::{SourceKind, StrategyKind};
use edc_mcu::PowerModel;
use edc_transient::crossover::analytic_crossover;
use edc_units::{Hertz, Seconds};
use edc_workloads::WorkloadKind;

/// Energy per million forward cycles at one interruption frequency.
fn energy_per_mcycle(strategy: StrategyKind, f_int: Hertz, horizon: Seconds) -> (f64, u64) {
    let mut system = ExperimentSpec::new(
        SourceKind::Interrupted { hz: f_int.0 },
        strategy,
        WorkloadKind::Endless,
    )
    .build()
    .expect("spec assembles");
    // Endless workload: forward progress never saturates, so energy/cycle is
    // meaningful over the whole horizon.
    system.run_for(horizon);
    let stats = system.runner().stats();
    let cycles = stats.cycles.max(1);
    (
        stats.energy_consumed.0 / (cycles as f64 / 1e6),
        stats.snapshots + stats.torn_snapshots,
    )
}

fn main() {
    let pm = PowerModel::msp430fr5739();
    let f_clock = Hertz::from_mega(8.0);
    let analytic = analytic_crossover(&pm, f_clock);

    banner("Eq. 5: analytic components at 8 MHz");
    println!("P_SRAM      = {}", analytic.p_sram);
    println!("P_FRAM      = {}", analytic.p_fram);
    println!("E_hibernus  = {} per outage", analytic.e_hibernus);
    println!("E_quickrecall = {} per outage", analytic.e_quickrecall);
    println!("analytic f_crossover = {:.1} Hz", analytic.f_crossover.0);

    banner("Measured sweep (energy per Mcycle of forward progress)");
    let horizon = Seconds(3.0);
    let mut t = TextTable::new(&[
        "f_int (Hz)",
        "hibernus µJ/Mcyc",
        "quickrecall µJ/Mcyc",
        "winner",
        "hib snaps",
        "qr snaps",
    ]);
    let mut crossover_measured: Option<f64> = None;
    let mut last_winner_hib = true;
    for (i, f) in log_space(0.5, 200.0, 10).into_iter().enumerate() {
        let f_int = Hertz(f);
        let (hib, hib_snaps) = energy_per_mcycle(StrategyKind::Hibernus, f_int, horizon);
        let (qr, qr_snaps) = energy_per_mcycle(StrategyKind::QuickRecall, f_int, horizon);
        let hib_wins = hib < qr;
        if i > 0 && last_winner_hib && !hib_wins && crossover_measured.is_none() {
            crossover_measured = Some(f);
        }
        last_winner_hib = hib_wins;
        t.row(&[
            format!("{f:.1}"),
            format!("{:.2}", hib * 1e6),
            format!("{:.2}", qr * 1e6),
            if hib_wins { "hibernus" } else { "quickrecall" }.to_string(),
            hib_snaps.to_string(),
            qr_snaps.to_string(),
        ]);
    }
    print!("{}", t.render());

    banner("Crossover");
    match crossover_measured {
        Some(f) => println!(
            "measured crossover ≈ {f:.1} Hz vs analytic {:.1} Hz (ratio {:.2}×)",
            analytic.f_crossover.0,
            f / analytic.f_crossover.0
        ),
        None => println!(
            "no crossover inside the sweep — widen the range (analytic: {:.1} Hz)",
            analytic.f_crossover.0
        ),
    }
    println!(
        "paper's claim: hibernus wins at low interruption rates, QuickRecall \
         at high rates."
    );
    println!(
        "note: rows with 0 snapshots mark where the decoupling capacitance \
         itself smooths\nthe interruptions (dips no longer reach V_H) — the \
         buffering effect the taxonomy's\nstorage axis is about."
    );
}
