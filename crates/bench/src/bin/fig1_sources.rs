//! Fig. 1 regeneration: example energy-harvesting source outputs.
//!
//! (a) the voltage output of a micro wind turbine during a single gust
//!     (±5 V AC at several hertz over an 8 s window);
//! (b) the harvested current of an indoor photovoltaic cell over two days
//!     (a 280–430 µA diurnal band).
//!
//! Run: `cargo run --release -p edc-bench --bin fig1_sources`

use edc_bench::banner;
use edc_harvest::{GustProfile, Photovoltaic, WindTurbine};
use edc_sim::TimeSeries;
use edc_units::{Hertz, Seconds, Volts};

fn main() {
    banner("Fig. 1(a): micro wind turbine, single gust (8 s window)");
    let turbine = WindTurbine::new(Volts(5.0), Hertz(8.0), GustProfile::fig1a());
    let mut series = TimeSeries::new("wind_output_V");
    let mut peak = 0.0f64;
    let mut trough = 0.0f64;
    for i in 0..8000 {
        let t = Seconds(i as f64 * 1e-3);
        let v = turbine.output_voltage(t).0;
        peak = peak.max(v);
        trough = trough.min(v);
        if i % 10 == 0 {
            series.push(t, v);
        }
    }
    println!("samples: {} @ 10 ms", series.len());
    println!("peak: {peak:+.2} V, trough: {trough:+.2} V (paper: ≈ ±5 V)");
    // Coarse zero-crossing count indicates the AC carrier is at several Hz.
    let crossings = series
        .crossings(0.0, edc_sim::CrossingDirection::Rising)
        .len();
    println!("rising zero-crossings in gust: {crossings} (several-Hz AC)");
    println!("\nTSV (decimated):");
    print!("{}", decimate_tsv(&series, 40));

    banner("Fig. 1(b): indoor photovoltaic, two days (µA)");
    let pv = Photovoltaic::indoor(2017);
    let mut pv_series = TimeSeries::new("pv_current_uA");
    let mut lo = f64::INFINITY;
    let mut hi = 0.0f64;
    for minute in 0..(48 * 60) {
        let t = Seconds::from_minutes(minute as f64);
        let i = pv.current_at(t).as_micro();
        lo = lo.min(i);
        hi = hi.max(i);
        pv_series.push(t, i);
    }
    println!("samples: {} @ 1 min", pv_series.len());
    println!("band: {lo:.0}–{hi:.0} µA (paper: ≈ 280–430 µA)");
    println!("\nTSV (hourly):");
    print!("{}", decimate_tsv(&pv_series, 60));
}

fn decimate_tsv(series: &TimeSeries, every: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {}\n", series.name()));
    for (i, (t, v)) in series.points().iter().enumerate() {
        if i % every == 0 {
            out.push_str(&format!("{:.3}\t{:.4}\n", t.0, v));
        }
    }
    out
}
