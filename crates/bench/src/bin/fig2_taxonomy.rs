//! Fig. 2 regeneration: the taxonomy of energy-neutral, transient,
//! energy-driven and power-neutral computing systems.
//!
//! Prints every exemplar system the paper annotates on the figure, its
//! storage-axis coordinate (`log10` of equivalent stored energy) and its
//! class memberships, ordered along the storage axis as in the figure.
//!
//! Run: `cargo run --release -p edc-bench --bin fig2_taxonomy`

use edc_bench::banner;
use edc_core::taxonomy::{catalog, classify, render_table};

fn main() {
    banner("Fig. 2: taxonomy of computing systems");
    println!(
        "EN = energy-neutral (Eqs. 1+2), TR = transient (survives Eq. 2 \
         violation),\nPN = power-neutral (Eq. 3), ED = energy-driven (shaded \
         region of Fig. 2)\n"
    );
    print!("{}", render_table(&catalog()));

    banner("Region membership (as shaded in the figure)");
    let cat = catalog();
    let energy_driven: Vec<&str> = cat
        .iter()
        .filter(|p| classify(p).energy_driven)
        .map(|p| p.name.as_str())
        .collect();
    let traditional: Vec<&str> = cat
        .iter()
        .filter(|p| !classify(p).energy_driven)
        .map(|p| p.name.as_str())
        .collect();
    println!("ENERGY-DRIVEN SYSTEMS: {}", energy_driven.join(", "));
    println!("TRADITIONAL SYSTEMS:   {}", traditional.join(", "));
}
