//! Fig. 5 regeneration: raytrace FPS vs. board power across the MPSoC's
//! DVFS × core-count operating points.
//!
//! The paper's claim: "the power consumption can be modulated by an order
//! of magnitude through this". This harness prints the full scatter (as the
//! figure plots) plus the Pareto frontier the power-neutral governor
//! actually uses.
//!
//! Run: `cargo run --release -p edc-bench --bin fig5_opp_pareto`

use edc_bench::{banner, TextTable};
use edc_mpsoc::{full_opp_table, pareto_frontier, XuModel};

fn main() {
    let model = XuModel::odroid_xu4();
    let table = full_opp_table();

    banner("Fig. 5: operating-point scatter (power W, raytrace FPS)");
    println!("points: {}", table.len());
    let mut p_min = f64::INFINITY;
    let mut p_max = 0.0f64;
    let mut f_max = 0.0f64;
    println!("\nTSV (power_W\tfps\tconfig):");
    for &op in &table {
        let p = model.power(op).0;
        let fps = model.fps(op);
        p_min = p_min.min(p);
        p_max = p_max.max(p);
        f_max = f_max.max(fps);
        println!("{p:.3}\t{fps:.4}\t{op}");
    }
    println!(
        "\npower range: {p_min:.2}–{p_max:.2} W ({:.0}× modulation; paper: \
         'an order of magnitude', envelope ≈ 0.5–18 W)",
        p_max / p_min
    );
    println!("peak FPS: {f_max:.3} (paper envelope: ≈ 0.25 FPS)");

    banner("Pareto frontier (the governor's ladder)");
    let frontier = pareto_frontier(&model, &table);
    let mut t = TextTable::new(&["level", "config", "power W", "fps"]);
    for (i, &op) in frontier.iter().enumerate() {
        t.row(&[
            i.to_string(),
            op.to_string(),
            format!("{:.3}", model.power(op).0),
            format!("{:.4}", model.fps(op)),
        ]);
    }
    print!("{}", t.render());
}
