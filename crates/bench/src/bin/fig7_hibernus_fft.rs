//! Fig. 7 regeneration: Hibernus executing an FFT directly from a half-wave
//! rectified sine-wave supply.
//!
//! The paper's waveform shows: `V_cc` tracking the rectified sine; a single
//! snapshot (hibernate) each time `V_H` is crossed on the way down; a
//! restore each time the rail recovers past `V_R`; and the FFT — started at
//! the beginning of execution — completing during the **third** supply
//! cycle.
//!
//! Run: `cargo run --release -p edc-bench --bin fig7_hibernus_fft`

use edc_bench::{banner, TextTable};
use edc_core::experiment::ExperimentSpec;
use edc_core::scenarios::{SourceKind, StrategyKind};
use edc_transient::TransientEvent;
use edc_units::{Hertz, Seconds};
use edc_workloads::WorkloadKind;

fn main() {
    // FFT sized so completion lands in the 3rd supply cycle (the paper's
    // trace): Fourier-256 ≈ 3.1 M cycles ≈ 390 ms at 8 MHz against a 2 Hz
    // (500 ms period) rectified sine. Board leakage (100 kΩ) collapses the
    // rail fully between cycles, as on the paper's hardware.
    let supply_hz = Hertz(2.0);
    let spec = ExperimentSpec::new(
        SourceKind::RectifiedSine { hz: supply_hz.0 },
        StrategyKind::Hibernus,
        WorkloadKind::Fourier(256),
    )
    .leakage(edc_units::Ohms(100_000.0))
    .trace(50)
    .deadline(Seconds(4.0));

    let mut system = match spec.build() {
        Ok(system) => system,
        Err(e) => {
            eprintln!("failed to assemble {}: {e}", spec.label());
            std::process::exit(1);
        }
    };

    banner("Fig. 7: Hibernus + FFT on a half-wave rectified sine");
    println!(
        "supply: 4 V peak, {supply_hz}, 100 Ω; workload: {} ({} cycles est.)",
        system.workload().name(),
        system.workload().cycles_hint()
    );

    let (v_h, v_r) = system.thresholds();
    println!("calibration (Eq. 4): V_H = {v_h:.3}, V_R = {v_r:.3}, V_min = 2.000 V");

    let report = system.run(spec.deadline);
    let outcome = report.outcome;
    let stats = report.stats;
    let verified = report.verification.clone();
    let runner = system.runner();

    banner("Events");
    let mut t = TextTable::new(&["t (s)", "cycle#", "event"]);
    for (time, event) in runner.log().events() {
        let cycle = (time.0 * supply_hz.0).floor() as u64 + 1;
        t.row(&[
            format!("{:.4}", time.0),
            cycle.to_string(),
            event.to_string(),
        ]);
    }
    print!("{}", t.render());

    banner("Result");
    let completion_cycle = stats
        .completed_at
        .map(|t| (t.0 * supply_hz.0).floor() as u64 + 1);
    println!("outcome: {outcome:?}");
    println!(
        "completed during supply cycle: {:?} (paper: 3rd cycle)",
        completion_cycle
    );
    println!(
        "snapshots: {} (sealed) + {} (torn); restores: {}; brownouts: {}",
        stats.snapshots, stats.torn_snapshots, stats.restores, stats.brownouts
    );
    let dips = runner
        .log()
        .count(|e| matches!(e, TransientEvent::Hibernate));
    println!(
        "snapshots per supply dip: {:.2} (paper: exactly one per failure)",
        if dips > 0 {
            stats.snapshots as f64 / dips as f64
        } else {
            0.0
        }
    );
    println!("FFT verification: {verified:?}");

    banner("Vcc trace (TSV, decimated)");
    if let Some(trace) = runner.vcc_trace() {
        let pts = trace.points();
        for (i, (time, v)) in pts.iter().enumerate() {
            if i % 20 == 0 {
                println!("{:.4}\t{:.3}", time.0, v);
            }
        }
    }
}
