//! Fig. 8 regeneration: Hibernus-PN adapting its core frequency (DFS) to the
//! half-wave rectified output of a micro wind turbine.
//!
//! The paper's trace shows the clock stepping up and down with the gust so
//! that, during the shallow-dip window, `V_cc` is never interrupted and the
//! system avoids the snapshot/restore overhead entirely — power-neutral
//! operation riding through what would otherwise be an outage.
//!
//! Run: `cargo run --release -p edc-bench --bin fig8_power_neutral`

use edc_bench::{banner, TextTable};
use edc_core::experiment::ExperimentSpec;
use edc_core::scenarios::{SourceKind, StrategyKind};
use edc_power::{Rectifier, RectifierKind};
use edc_transient::RunnerStats;
use edc_units::Farads;
use edc_units::Seconds;
use edc_workloads::WorkloadKind;

type Trace = Vec<(f64, f64)>;

fn run_with(strategy: StrategyKind) -> (RunnerStats, Trace, Trace) {
    let mut system = ExperimentSpec::new(SourceKind::Turbine, strategy, WorkloadKind::Endless)
        .rectifier(Rectifier::new(
            RectifierKind::HalfWave,
            edc_units::Volts(0.2),
        ))
        .decoupling(Farads::from_micro(220.0))
        .trace(100)
        .build()
        .expect("spec assembles");
    system.run_for(Seconds(9.0));
    let runner = system.runner();
    let vcc = runner
        .vcc_trace()
        .map(|t| t.points().iter().map(|&(s, v)| (s.0, v)).collect())
        .unwrap_or_default();
    let freq = runner
        .frequency_trace()
        .map(|t| t.points().iter().map(|&(s, v)| (s.0, v)).collect())
        .unwrap_or_default();
    let stats = runner.stats();
    println!(
        "{:>12}: active {:.3} s, snapshots {}, brownouts {}, cycles {}",
        strategy.name(),
        stats.active_time.0,
        stats.snapshots,
        stats.brownouts,
        stats.cycles
    );
    (stats, vcc, freq)
}

fn main() {
    banner("Fig. 8: power-neutral DFS on a rectified wind-turbine gust");
    println!("turbine: 5 V peak @ 8 Hz electrical, Fig. 1(a) gust, Schottky half-wave\n");

    let (pn_stats, vcc, freq) = run_with(StrategyKind::HibernusPn);
    let (plain_stats, _, _) = run_with(StrategyKind::Hibernus);

    banner("Power-neutral benefit");
    let mut t = TextTable::new(&["metric", "hibernus", "hibernus-pn"]);
    t.row(&[
        "forward cycles".to_string(),
        plain_stats.cycles.to_string(),
        pn_stats.cycles.to_string(),
    ]);
    t.row(&[
        "snapshots".to_string(),
        plain_stats.snapshots.to_string(),
        pn_stats.snapshots.to_string(),
    ]);
    t.row(&[
        "active time (s)".to_string(),
        format!("{:.3}", plain_stats.active_time.0),
        format!("{:.3}", pn_stats.active_time.0),
    ]);
    print!("{}", t.render());
    println!(
        "\npaper's claim: DFS modulation postpones/avoids hibernation during\n\
         shallow dips, extending uninterrupted operation."
    );

    banner("Hibernus-PN traces (TSV: t, Vcc, f_MHz)");
    for (i, ((tv, v), (_, f))) in vcc.iter().zip(freq.iter()).enumerate() {
        if i % 20 == 0 {
            println!("{tv:.3}\t{v:.3}\t{f:.1}");
        }
    }
}
