//! Hibernus++ adaptivity table (Section III claims).
//!
//! Plain Hibernus is calibrated at design time for a specific capacitance.
//! The paper predicts, and this harness measures, what happens when the
//! *actual* storage differs from the characterised value:
//!
//! - actual = characterised: plain Hibernus slightly beats Hibernus++ (the
//!   ++ pays for its on-line characterisation);
//! - actual > characterised: Hibernus++ wins (it lowers `V_H`, gaining
//!   active time);
//! - actual < characterised: plain Hibernus fails (not enough energy below
//!   its mis-calibrated `V_H` to finish a snapshot), Hibernus++ still
//!   operates.
//!
//! Run: `cargo run --release -p edc-bench --bin table_hibernuspp`

use edc_bench::{banner, TextTable};
use edc_core::experiment::Experiment;
use edc_core::scenarios::SourceKind;
use edc_mcu::Mcu;
use edc_transient::{Hibernus, HibernusPP, Strategy};
use edc_units::{Farads, Seconds, Volts};
use edc_workloads::WorkloadKind;

/// A Hibernus whose thresholds were frozen for `characterised` capacitance,
/// regardless of what the platform really has.
struct MiscalibratedHibernus {
    characterised: Farads,
    inner: Hibernus,
}

impl Strategy for MiscalibratedHibernus {
    fn name(&self) -> &str {
        "hibernus (design-time)"
    }
    fn thresholds(
        &mut self,
        mcu: &Mcu,
        _actual: Farads,
        v_min: Volts,
        v_max: Volts,
    ) -> (Volts, Volts) {
        // Calibrated against the *characterised* value, not the actual one.
        self.inner.calibrate(mcu, self.characterised, v_min, v_max)
    }
    fn on_low_voltage(&mut self) -> edc_transient::LowVoltageResponse {
        edc_transient::LowVoltageResponse::Hibernate
    }
}

struct Row {
    strategy: &'static str,
    completed: Option<Seconds>,
    snapshots: u64,
    torn: u64,
    active: Seconds,
    verified: bool,
}

fn run(strategy: Box<dyn Strategy>, actual: Farads, label: &'static str) -> Row {
    let report = Experiment::new()
        .source_kind(SourceKind::RectifiedSine { hz: 6.0 })
        .leakage(edc_units::Ohms(100_000.0))
        .decoupling(actual)
        .strategy(strategy)
        .workload_kind(WorkloadKind::Fourier(128))
        .run(Seconds(30.0))
        .expect("experiment assembles");
    Row {
        strategy: label,
        completed: report.stats.completed_at,
        snapshots: report.stats.snapshots,
        torn: report.stats.torn_snapshots,
        active: report.stats.active_time,
        verified: report.verification.is_ok(),
    }
}

fn main() {
    let characterised = Farads::from_micro(10.0);
    banner("Hibernus vs Hibernus++ under capacitance mis-characterisation");
    println!("characterised storage: {characterised}; supply: rectified sine 6 Hz\n");

    let mut t = TextTable::new(&[
        "actual C",
        "strategy",
        "done (s)",
        "snaps",
        "torn",
        "active (s)",
        "verified",
    ]);
    for scale in [0.4, 1.0, 2.5] {
        let actual = characterised * scale;
        let rows = [
            run(
                Box::new(MiscalibratedHibernus {
                    characterised,
                    inner: Hibernus::new(),
                }),
                actual,
                "hibernus (design-time)",
            ),
            run(Box::new(HibernusPP::new()), actual, "hibernus++"),
        ];
        for r in rows {
            t.row(&[
                format!("{actual}"),
                r.strategy.to_string(),
                r.completed
                    .map(|s| format!("{:.3}", s.0))
                    .unwrap_or_else(|| "DNF".to_string()),
                r.snapshots.to_string(),
                r.torn.to_string(),
                format!("{:.3}", r.active.0),
                if r.verified { "ok" } else { "FAIL" }.to_string(),
            ]);
        }
    }
    print!("{}", t.render());
    println!(
        "\nexpected shape (paper, Sec. III): at 1.0× plain hibernus is \
         slightly ahead; at 2.5× hibernus++ recalibrates lower V_H and wins; \
         at 0.4× plain hibernus tears snapshots / fails while hibernus++ \
         still completes."
    );
}
