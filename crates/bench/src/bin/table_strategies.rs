//! Strategy-survey table: every checkpoint strategy × workload × source.
//!
//! Quantifies the Section II.B claims: Mementos takes redundant snapshots
//! (and risks torn ones); Hibernus takes exactly one per outage; the
//! restart baseline re-executes everything; QuickRecall/NVP make snapshots
//! nearly free. Completion time, snapshot counts and verification are
//! reported for each combination.
//!
//! Run: `cargo run --release -p edc-bench --bin table_strategies`
//! JSON: `cargo run --release -p edc-bench --bin table_strategies -- --json`

use edc_bench::banner;
use edc_bench::sweep::{render_json, render_text, Sweep};
use edc_core::experiment::ExperimentSpec;
use edc_core::scenarios::{SourceKind, StrategyKind};
use edc_units::Seconds;
use edc_workloads::WorkloadKind;

fn main() {
    let base = ExperimentSpec::new(
        SourceKind::RectifiedSine { hz: 50.0 },
        StrategyKind::Hibernus,
        WorkloadKind::Fourier(64),
    )
    .deadline(Seconds(20.0));
    let sweep = Sweep::over(base)
        .strategies(&StrategyKind::ALL)
        .workloads(&[
            WorkloadKind::Fourier(64), // ~196 k cycles: spans several windows
            WorkloadKind::Crc16(1024), // ~184 k cycles
            WorkloadKind::MatMul,      // ~16 k cycles: fits one window
        ]);
    let rows = match sweep.run() {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("sweep failed to assemble: {e}");
            std::process::exit(1);
        }
    };

    if std::env::args().any(|a| a == "--json") {
        println!("{}", render_json(&rows));
        return;
    }

    banner("Strategy survey: 4 V half-wave rectified sine @ 50 Hz, 10 µF");
    print!("{}", render_text(&rows));
    println!(
        "\nexpected shape (paper, Sec. II.B): hibernus ≈ 1 snapshot/outage; \
         mementos > hibernus snapshots (redundant) with possible torn frames; \
         quickrecall/nvp cheapest; restart completes only if the workload \
         fits one on-window."
    );
}
