//! Strategy-survey table: every checkpoint strategy × workload × source.
//!
//! Quantifies the Section II.B claims: Mementos takes redundant snapshots
//! (and risks torn ones); Hibernus takes exactly one per outage; the
//! restart baseline re-executes everything; QuickRecall/NVP make snapshots
//! nearly free. Completion time, snapshot counts and verification are
//! reported for each combination.
//!
//! Run: `cargo run --release -p edc-bench --bin table_strategies`

use edc_bench::{banner, TextTable};
use edc_core::scenarios::{fig7_supply, StrategyKind};
use edc_core::system::SystemBuilder;
use edc_units::{Hertz, Seconds};
use edc_workloads::{Crc16, Fourier, MatMul, Workload};

fn workload_roster() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(Fourier::new(64)),  // ~196 k cycles: spans several windows
        Box::new(Crc16::new(1024)),  // ~184 k cycles
        Box::new(MatMul::new()),     // ~16 k cycles: fits one window
    ]
}

fn main() {
    banner("Strategy survey: 4 V half-wave rectified sine @ 50 Hz, 10 µF");
    let deadline = Seconds(20.0);
    let mut t = TextTable::new(&[
        "workload",
        "strategy",
        "done (s)",
        "snaps",
        "torn",
        "restores",
        "brownouts",
        "reboots",
        "verified",
    ]);
    for workload in workload_roster() {
        for kind in StrategyKind::ALL {
            let report = SystemBuilder::new()
                .source(fig7_supply(Hertz(50.0)))
                .strategy(kind.make())
                .workload(workload_clone(&*workload))
                .run(deadline);
            let done = report
                .stats
                .completed_at
                .map(|s| format!("{:.3}", s.0))
                .unwrap_or_else(|| "DNF".to_string());
            t.row(&[
                workload.name().to_string(),
                kind.name().to_string(),
                done,
                report.stats.snapshots.to_string(),
                report.stats.torn_snapshots.to_string(),
                report.stats.restores.to_string(),
                report.stats.brownouts.to_string(),
                report.stats.boots.to_string(),
                match &report.verification {
                    Ok(()) => "ok".to_string(),
                    Err(e) => format!("FAIL({e})"),
                },
            ]);
        }
    }
    print!("{}", t.render());
    println!(
        "\nexpected shape (paper, Sec. II.B): hibernus ≈ 1 snapshot/outage; \
         mementos > hibernus snapshots (redundant) with possible torn frames; \
         quickrecall/nvp cheapest; restart completes only if the workload \
         fits one on-window."
    );
}

/// Workloads are tiny value types; rebuild an identical boxed instance so
/// each run starts fresh.
fn workload_clone(w: &dyn Workload) -> Box<dyn Workload> {
    match w.name() {
        "fourier" => Box::new(Fourier::new(64)),
        "crc16" => Box::new(Crc16::new(1024)),
        "matmul-8x8" => Box::new(MatMul::new()),
        other => panic!("unknown workload {other}"),
    }
}
