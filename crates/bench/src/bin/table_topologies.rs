//! The paper's core thesis, quantified: Fig. 3 (buffered, energy-neutral
//! style) vs. Fig. 4 (direct, energy-driven) topologies on the same
//! harvester and workload.
//!
//! The buffered topology adds storage and a conversion stage; it rides
//! through supply dips without checkpoint overhead but pays a cold-start
//! delay (charging the buffer), converter losses on every joule, and the
//! physical costs (volume/mass/complexity) the simulation prices as the
//! storage farads themselves. The direct topology starts almost instantly
//! and wastes nothing on conversion, but leans on the transient strategy.
//!
//! Run: `cargo run --release -p edc-bench --bin table_topologies`

use edc_bench::{banner, TextTable};
use edc_core::experiment::ExperimentSpec;
use edc_core::scenarios::{SourceKind, StrategyKind};
use edc_core::system::Topology;
use edc_units::{Farads, Seconds};
use edc_workloads::WorkloadKind;

struct Row {
    label: String,
    first_result: Option<Seconds>,
    snapshots: u64,
    harvest_in: f64,
    consumed: f64,
    storage: String,
}

fn run(topology: Topology, label: &str) -> Row {
    let mut system = ExperimentSpec::new(
        SourceKind::RectifiedSine { hz: 6.0 },
        StrategyKind::Hibernus,
        WorkloadKind::Fourier(128),
    )
    .leakage(edc_units::Ohms(100_000.0))
    .topology(topology)
    .build()
    .expect("spec assembles");
    let report = system.run(Seconds(30.0));
    assert!(report.verification.is_ok() || report.stats.completed_at.is_none());
    Row {
        label: label.to_string(),
        first_result: report.stats.completed_at,
        snapshots: report.stats.snapshots,
        harvest_in: system.runner().node().energy_in().as_milli(),
        consumed: report.stats.energy_consumed.as_milli(),
        storage: match topology {
            Topology::Direct => "10 µF decoupling".to_string(),
            Topology::Buffered { storage, .. } => format!("{storage} + decoupling"),
        },
    }
}

fn main() {
    banner("Fig. 3 vs Fig. 4: the cost of making the harvester look like a battery");
    println!("supply: 4 V rectified sine @ 6 Hz; workload: fourier-128 (~100 ms)\n");

    let rows = [
        run(Topology::Direct, "direct (Fig. 4, energy-driven)"),
        run(
            Topology::Buffered {
                storage: Farads::from_micro(470.0),
                efficiency: 0.85,
            },
            "buffered 470 µF @ 85% (Fig. 3)",
        ),
        run(
            Topology::Buffered {
                storage: Farads::from_milli(4.7),
                efficiency: 0.85,
            },
            "buffered 4.7 mF @ 85% (Fig. 3)",
        ),
    ];

    let mut t = TextTable::new(&[
        "topology",
        "storage",
        "first result (s)",
        "snapshots",
        "harvested (mJ)",
        "consumed (mJ)",
    ]);
    for r in rows {
        t.row(&[
            r.label.clone(),
            r.storage.clone(),
            r.first_result
                .map(|s| format!("{:.3}", s.0))
                .unwrap_or_else(|| "DNF".to_string()),
            r.snapshots.to_string(),
            format!("{:.2}", r.harvest_in),
            format!("{:.2}", r.consumed),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\nexpected shape: buffering trades checkpoint overhead away at the \
         price of a slow\ncold start (the buffer must charge first) and \
         converter losses on every joule —\nthe paper's argument for \
         designing energy-driven systems from the outset."
    );
}
