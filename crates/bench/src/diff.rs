//! The BENCH regression gate: policy-driven comparison of two artifacts.
//!
//! A BENCH artifact mixes two kinds of data. Most fields are
//! **deterministic** — byte-identical across repeated runs, thread counts
//! and machines — and any change to them is a real behavioural change
//! worth failing CI over. A few quarantined sections (`timing`,
//! `null_timing`, `stats_timing`) carry **wall-clock** measurements that
//! legitimately differ between runs. [`diff_artifacts`] walks a fresh
//! artifact against a committed baseline under a [`Policy`] that says, per
//! JSON path, how strictly to compare: exactly, within a numeric
//! tolerance, shape-only, or not at all. The result is a machine-readable
//! [`DiffReport`] naming every offending path.
//!
//! # Path patterns
//!
//! Policy rules select paths with a `$`-rooted pattern:
//!
//! - `name` matches that object key; `*` matches any one key
//! - `[3]` matches that array index; `[*]` matches any index
//! - a final `**` matches any non-empty remainder of the path
//!
//! The first matching rule wins; paths no rule matches use the policy's
//! default. Rules apply while *descending*, so `$.timing.**` shape-checks
//! every leaf under `$.timing` while the `$.timing` object itself still
//! has its keys checked by the default rule.
//!
//! # Examples
//!
//! ```
//! use edc_bench::diff::{diff_artifacts, Policy};
//! use edc_core::json::Json;
//!
//! let policy = Policy::parse(
//!     r#"{"default":"exact","rules":[{"path":"$.timing.**","rule":"shape"}]}"#,
//! )?;
//! let baseline = Json::parse(r#"{"cells":4,"timing":{"total_s":1.5}}"#).unwrap();
//! let fresh = Json::parse(r#"{"cells":4,"timing":{"total_s":9.9}}"#).unwrap();
//! assert!(diff_artifacts(&baseline, &fresh, &policy).is_clean());
//!
//! let changed = Json::parse(r#"{"cells":5,"timing":{"total_s":1.5}}"#).unwrap();
//! let report = diff_artifacts(&baseline, &changed, &policy);
//! assert!(!report.is_clean());
//! assert_eq!(report.differences[0].path, "$.cells");
//! # Ok::<(), String>(())
//! ```

use edc_core::json::Json;

/// How strictly one JSON path is compared.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Rule {
    /// Values must be identical (the default for deterministic fields).
    Exact,
    /// Numbers must agree within a relative tolerance:
    /// `|a − b| ≤ tol · max(|a|, |b|)`. Non-numbers compare exactly.
    Rel(f64),
    /// Numbers must agree within an absolute tolerance: `|a − b| ≤ tol`.
    /// Non-numbers compare exactly.
    Abs(f64),
    /// Only the shape must match — same types, same object keys, same
    /// array lengths — values are ignored. The rule for quarantined
    /// wall-clock sections.
    Shape,
    /// The path is skipped entirely (shape included).
    Ignore,
}

/// One path pattern bound to a comparison rule.
#[derive(Debug, Clone)]
struct PolicyRule {
    segments: Vec<Segment>,
    rule: Rule,
}

/// One parsed pattern segment.
#[derive(Debug, Clone, PartialEq)]
enum Segment {
    /// A literal object key.
    Key(String),
    /// `*`: any one object key.
    AnyKey,
    /// `[3]`: a literal array index.
    Index(usize),
    /// `[*]`: any one array index.
    AnyIndex,
    /// `**`: any non-empty remainder (final segment only).
    Rest,
}

/// A comparison policy: a default [`Rule`] plus path-pattern overrides
/// (first match wins).
#[derive(Debug, Clone)]
pub struct Policy {
    default: Rule,
    rules: Vec<PolicyRule>,
}

impl Policy {
    /// The strictest policy: every path compares exactly.
    pub fn exact() -> Self {
        Self {
            default: Rule::Exact,
            rules: Vec::new(),
        }
    }

    /// Adds a pattern → rule override (evaluated before earlier adds only
    /// if added earlier; first match wins in insertion order).
    ///
    /// # Errors
    ///
    /// Returns a message when the pattern does not parse (must start with
    /// `$`, `**` only last, indices must be numeric).
    pub fn rule(mut self, pattern: &str, rule: Rule) -> Result<Self, String> {
        self.rules.push(PolicyRule {
            segments: parse_pattern(pattern)?,
            rule,
        });
        Ok(self)
    }

    /// Parses a policy from its JSON text form:
    ///
    /// ```json
    /// {
    ///   "default": "exact",
    ///   "rules": [
    ///     {"path": "$.timing.**", "rule": "shape"},
    ///     {"path": "$.score", "rule": "rel", "tolerance": 0.05}
    ///   ]
    /// }
    /// ```
    ///
    /// Rule names are `exact`, `shape`, `ignore`, `rel` and `abs`; the
    /// last two require a numeric `tolerance`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed field when the text is not
    /// valid JSON or does not follow the schema above.
    pub fn parse(text: &str) -> Result<Self, String> {
        let json = Json::parse(text).map_err(|e| format!("policy is not valid JSON: {e:?}"))?;
        let default = match json.get("default") {
            None => Rule::Exact,
            Some(v) => parse_rule_value(v, None)?,
        };
        let mut policy = Policy {
            default,
            rules: Vec::new(),
        };
        if let Some(rules) = json.get("rules") {
            let Json::Arr(items) = rules else {
                return Err("policy \"rules\" must be an array".into());
            };
            for item in items {
                let Some(Json::Str(path)) = item.get("path") else {
                    return Err("every rule needs a string \"path\"".into());
                };
                let rule = parse_rule_value(
                    item.get("rule").ok_or("every rule needs a \"rule\"")?,
                    item.get("tolerance"),
                )?;
                policy = policy.rule(path, rule)?;
            }
        }
        Ok(policy)
    }

    /// The rule governing `path` (first matching pattern, else default).
    fn rule_for(&self, path: &[PathStep]) -> Rule {
        for rule in &self.rules {
            if matches(&rule.segments, path) {
                return rule.rule;
            }
        }
        self.default
    }
}

/// Parses `"exact"` / `"shape"` / `"ignore"` / `"rel"` / `"abs"` (the
/// latter two with a tolerance).
fn parse_rule_value(value: &Json, tolerance: Option<&Json>) -> Result<Rule, String> {
    let Json::Str(name) = value else {
        return Err(format!("rule must be a string, got {value}"));
    };
    let tol = || -> Result<f64, String> {
        match tolerance {
            Some(Json::Num(t)) if *t >= 0.0 => Ok(*t),
            Some(Json::Uint(t)) => Ok(*t as f64),
            _ => Err(format!(
                "rule \"{name}\" needs a non-negative \"tolerance\""
            )),
        }
    };
    match name.as_str() {
        "exact" => Ok(Rule::Exact),
        "shape" => Ok(Rule::Shape),
        "ignore" => Ok(Rule::Ignore),
        "rel" => Ok(Rule::Rel(tol()?)),
        "abs" => Ok(Rule::Abs(tol()?)),
        other => Err(format!(
            "unknown rule \"{other}\" (expected exact, shape, ignore, rel or abs)"
        )),
    }
}

/// Parses `$.a.b[*].c.**` into segments.
fn parse_pattern(pattern: &str) -> Result<Vec<Segment>, String> {
    let rest = pattern
        .strip_prefix('$')
        .ok_or_else(|| format!("pattern {pattern:?} must start with '$'"))?;
    let mut segments = Vec::new();
    let mut chars = rest.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '.' => {
                let mut key = String::new();
                while let Some(&n) = chars.peek() {
                    if n == '.' || n == '[' {
                        break;
                    }
                    key.push(n);
                    chars.next();
                }
                if key.is_empty() {
                    return Err(format!("pattern {pattern:?} has an empty key segment"));
                }
                segments.push(match key.as_str() {
                    "*" => Segment::AnyKey,
                    "**" => Segment::Rest,
                    _ => Segment::Key(key),
                });
            }
            '[' => {
                let mut idx = String::new();
                for n in chars.by_ref() {
                    if n == ']' {
                        break;
                    }
                    idx.push(n);
                }
                segments.push(if idx == "*" {
                    Segment::AnyIndex
                } else {
                    Segment::Index(
                        idx.parse()
                            .map_err(|_| format!("pattern {pattern:?}: bad index [{idx}]"))?,
                    )
                });
            }
            other => {
                return Err(format!(
                    "pattern {pattern:?}: expected '.' or '[', found {other:?}"
                ))
            }
        }
    }
    if let Some(pos) = segments.iter().position(|s| *s == Segment::Rest) {
        if pos + 1 != segments.len() {
            return Err(format!("pattern {pattern:?}: '**' must be last"));
        }
    }
    Ok(segments)
}

/// One step of a concrete (pattern-free) path.
#[derive(Debug, Clone)]
enum PathStep {
    Key(String),
    Index(usize),
}

/// Whether a pattern matches a concrete path.
fn matches(pattern: &[Segment], path: &[PathStep]) -> bool {
    let mut p = 0;
    for segment in pattern {
        if let Segment::Rest = segment {
            return p < path.len();
        }
        let Some(step) = path.get(p) else {
            return false;
        };
        let ok = match (segment, step) {
            (Segment::Key(k), PathStep::Key(key)) => k == key,
            (Segment::AnyKey, PathStep::Key(_)) => true,
            (Segment::Index(i), PathStep::Index(idx)) => i == idx,
            (Segment::AnyIndex, PathStep::Index(_)) => true,
            _ => false,
        };
        if !ok {
            return false;
        }
        p += 1;
    }
    p == path.len()
}

/// Renders a concrete path as `$.a.b[3].c`.
fn render_path(path: &[PathStep]) -> String {
    let mut out = String::from("$");
    for step in path {
        match step {
            PathStep::Key(k) => {
                out.push('.');
                out.push_str(k);
            }
            PathStep::Index(i) => out.push_str(&format!("[{i}]")),
        }
    }
    out
}

/// One difference between baseline and candidate.
#[derive(Debug, Clone)]
pub struct Difference {
    /// The offending JSON path, e.g. `$.telemetry.rows[3].report.energy_j`.
    pub path: String,
    /// What kind of mismatch: `value`, `tolerance`, `type`, `missing-key`,
    /// `extra-key` or `length`.
    pub kind: &'static str,
    /// The rule the path was compared under.
    pub rule: Rule,
    /// The baseline side (`Json::Null` for `extra-key`).
    pub baseline: Json,
    /// The candidate side (`Json::Null` for `missing-key`).
    pub candidate: Json,
}

/// The outcome of comparing a candidate artifact against its baseline.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Leaf values actually compared (ignored subtrees excluded).
    pub leaves_compared: u64,
    /// Every difference found, in document order.
    pub differences: Vec<Difference>,
}

impl DiffReport {
    /// `true` when no differences were found.
    pub fn is_clean(&self) -> bool {
        self.differences.is_empty()
    }

    /// The report as deterministic JSON:
    /// `{"clean":…,"leaves_compared":…,"differences":[{"path":…,"kind":…,
    /// "rule":…,"baseline":…,"candidate":…}]}`.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("clean", Json::Bool(self.is_clean())),
            ("leaves_compared", Json::Uint(self.leaves_compared)),
            (
                "differences",
                Json::Arr(
                    self.differences
                        .iter()
                        .map(|d| {
                            Json::obj(vec![
                                ("path", Json::Str(d.path.clone())),
                                ("kind", Json::Str(d.kind.into())),
                                ("rule", Json::Str(rule_name(d.rule).into())),
                                ("baseline", d.baseline.clone()),
                                ("candidate", d.candidate.clone()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// A human-readable account: one line per difference, or a clean
    /// confirmation.
    pub fn render_text(&self) -> String {
        if self.is_clean() {
            return format!(
                "OK: {} leaves compared, no differences\n",
                self.leaves_compared
            );
        }
        let mut out = format!(
            "REGRESSION: {} difference(s) over {} compared leaves\n",
            self.differences.len(),
            self.leaves_compared
        );
        for d in &self.differences {
            out.push_str(&format!(
                "  {} [{}, rule {}]: baseline {} vs candidate {}\n",
                d.path,
                d.kind,
                rule_name(d.rule),
                d.baseline,
                d.candidate
            ));
        }
        out
    }
}

/// The rule's policy-file name.
fn rule_name(rule: Rule) -> &'static str {
    match rule {
        Rule::Exact => "exact",
        Rule::Rel(_) => "rel",
        Rule::Abs(_) => "abs",
        Rule::Shape => "shape",
        Rule::Ignore => "ignore",
    }
}

/// Compares `candidate` against `baseline` under `policy` and reports
/// every difference with its JSON path. Deterministic: identical inputs
/// produce identical reports.
pub fn diff_artifacts(baseline: &Json, candidate: &Json, policy: &Policy) -> DiffReport {
    let mut report = DiffReport::default();
    let mut path = Vec::new();
    walk(baseline, candidate, policy, &mut path, &mut report);
    report
}

/// The scalar type's name, for `type` mismatches.
fn type_name(v: &Json) -> &'static str {
    match v {
        Json::Null => "null",
        Json::Bool(_) => "bool",
        Json::Uint(_) | Json::Num(_) => "number",
        Json::Str(_) => "string",
        Json::Arr(_) => "array",
        Json::Obj(_) => "object",
    }
}

/// A leaf value as f64, when it is numeric.
fn as_number(v: &Json) -> Option<f64> {
    match v {
        Json::Uint(n) => Some(*n as f64),
        Json::Num(n) => Some(*n),
        _ => None,
    }
}

fn push_diff(
    report: &mut DiffReport,
    path: &[PathStep],
    kind: &'static str,
    rule: Rule,
    baseline: &Json,
    candidate: &Json,
) {
    report.differences.push(Difference {
        path: render_path(path),
        kind,
        rule,
        baseline: baseline.clone(),
        candidate: candidate.clone(),
    });
}

fn walk(
    baseline: &Json,
    candidate: &Json,
    policy: &Policy,
    path: &mut Vec<PathStep>,
    report: &mut DiffReport,
) {
    let rule = policy.rule_for(path);
    if rule == Rule::Ignore {
        return;
    }
    match (baseline, candidate) {
        (Json::Obj(b), Json::Obj(c)) => {
            for (key, bv) in b {
                path.push(PathStep::Key(key.clone()));
                match c.iter().find(|(k, _)| k == key) {
                    Some((_, cv)) => walk(bv, cv, policy, path, report),
                    None => {
                        let child_rule = policy.rule_for(path);
                        if child_rule != Rule::Ignore {
                            push_diff(report, path, "missing-key", child_rule, bv, &Json::Null);
                        }
                    }
                }
                path.pop();
            }
            for (key, cv) in c {
                if b.iter().all(|(k, _)| k != key) {
                    path.push(PathStep::Key(key.clone()));
                    let child_rule = policy.rule_for(path);
                    if child_rule != Rule::Ignore {
                        push_diff(report, path, "extra-key", child_rule, &Json::Null, cv);
                    }
                    path.pop();
                }
            }
        }
        (Json::Arr(b), Json::Arr(c)) => {
            if b.len() != c.len() {
                push_diff(
                    report,
                    path,
                    "length",
                    rule,
                    &Json::Uint(b.len() as u64),
                    &Json::Uint(c.len() as u64),
                );
            }
            for (i, (bv, cv)) in b.iter().zip(c).enumerate() {
                path.push(PathStep::Index(i));
                walk(bv, cv, policy, path, report);
                path.pop();
            }
        }
        _ => {
            report.leaves_compared += 1;
            if type_name(baseline) != type_name(candidate) {
                push_diff(report, path, "type", rule, baseline, candidate);
                return;
            }
            match rule {
                Rule::Shape | Rule::Ignore => {}
                Rule::Exact => {
                    if baseline != candidate {
                        push_diff(report, path, "value", rule, baseline, candidate);
                    }
                }
                Rule::Rel(tol) | Rule::Abs(tol) => {
                    match (as_number(baseline), as_number(candidate)) {
                        (Some(a), Some(b)) => {
                            let limit = match rule {
                                Rule::Rel(_) => tol * a.abs().max(b.abs()),
                                _ => tol,
                            };
                            if (a - b).abs() > limit {
                                push_diff(report, path, "tolerance", rule, baseline, candidate);
                            }
                        }
                        _ => {
                            if baseline != candidate {
                                push_diff(report, path, "value", rule, baseline, candidate);
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn j(text: &str) -> Json {
        Json::parse(text).expect("valid JSON")
    }

    #[test]
    fn identical_artifacts_are_clean() {
        let a = j(r#"{"bench":"x","schema":1,"rows":[{"n":1},{"n":2}]}"#);
        let report = diff_artifacts(&a, &a.clone(), &Policy::exact());
        assert!(report.is_clean());
        assert_eq!(report.leaves_compared, 4);
    }

    #[test]
    fn a_changed_value_names_its_path() {
        let a = j(r#"{"rows":[{"n":1},{"n":2}]}"#);
        let b = j(r#"{"rows":[{"n":1},{"n":3}]}"#);
        let report = diff_artifacts(&a, &b, &Policy::exact());
        assert_eq!(report.differences.len(), 1);
        assert_eq!(report.differences[0].path, "$.rows[1].n");
        assert_eq!(report.differences[0].kind, "value");
    }

    #[test]
    fn shape_rule_ignores_values_but_not_structure() {
        let policy = Policy::exact().rule("$.timing.**", Rule::Shape).unwrap();
        let a = j(r#"{"timing":{"total_s":1.0,"per_cell_s":[0.5,0.5]}}"#);
        let b = j(r#"{"timing":{"total_s":9.0,"per_cell_s":[4.0,5.0]}}"#);
        assert!(diff_artifacts(&a, &b, &policy).is_clean());
        // A dropped cell is a structural change even under shape.
        let c = j(r#"{"timing":{"total_s":9.0,"per_cell_s":[4.0]}}"#);
        let report = diff_artifacts(&a, &c, &policy);
        assert_eq!(report.differences.len(), 1);
        assert_eq!(report.differences[0].kind, "length");
        assert_eq!(report.differences[0].path, "$.timing.per_cell_s");
        // So is a type change.
        let d = j(r#"{"timing":{"total_s":"fast","per_cell_s":[0.5,0.5]}}"#);
        let report = diff_artifacts(&a, &d, &policy);
        assert_eq!(report.differences[0].kind, "type");
    }

    #[test]
    fn missing_and_extra_keys_are_reported() {
        let a = j(r#"{"x":1,"y":2}"#);
        let b = j(r#"{"x":1,"z":3}"#);
        let report = diff_artifacts(&a, &b, &Policy::exact());
        let kinds: Vec<&str> = report.differences.iter().map(|d| d.kind).collect();
        assert_eq!(kinds, vec!["missing-key", "extra-key"]);
        assert_eq!(report.differences[0].path, "$.y");
        assert_eq!(report.differences[1].path, "$.z");
    }

    #[test]
    fn tolerances_gate_numeric_drift() {
        let a = j(r#"{"score":100.0}"#);
        let near = j(r#"{"score":104.0}"#);
        let far = j(r#"{"score":120.0}"#);
        let rel = Policy::exact().rule("$.score", Rule::Rel(0.05)).unwrap();
        assert!(diff_artifacts(&a, &near, &rel).is_clean());
        let report = diff_artifacts(&a, &far, &rel);
        assert_eq!(report.differences[0].kind, "tolerance");
        let abs = Policy::exact().rule("$.score", Rule::Abs(10.0)).unwrap();
        assert!(diff_artifacts(&a, &near, &abs).is_clean());
        assert!(!diff_artifacts(&a, &far, &abs).is_clean());
    }

    #[test]
    fn ignore_skips_subtrees_entirely() {
        let policy = Policy::exact().rule("$.noise.**", Rule::Ignore).unwrap();
        let a = j(r#"{"x":1,"noise":{"a":1}}"#);
        let b = j(r#"{"x":1,"noise":{"b":"other"}}"#);
        assert!(diff_artifacts(&a, &b, &policy).is_clean());
    }

    #[test]
    fn policy_parses_from_json_text() {
        let policy = Policy::parse(
            r#"{"default":"exact","rules":[
                {"path":"$.timing.**","rule":"shape"},
                {"path":"$.rows[*].score","rule":"rel","tolerance":0.1}
            ]}"#,
        )
        .expect("parses");
        let a = j(r#"{"timing":{"t":1.0},"rows":[{"score":10.0}]}"#);
        let b = j(r#"{"timing":{"t":2.0},"rows":[{"score":10.5}]}"#);
        assert!(diff_artifacts(&a, &b, &policy).is_clean());
        let c = j(r#"{"timing":{"t":2.0},"rows":[{"score":20.0}]}"#);
        assert!(!diff_artifacts(&a, &c, &policy).is_clean());
    }

    #[test]
    fn malformed_policies_are_errors() {
        assert!(Policy::parse("not json").is_err());
        assert!(Policy::parse(r#"{"rules":[{"path":"$.x","rule":"warp"}]}"#).is_err());
        assert!(Policy::parse(r#"{"rules":[{"path":"$.x","rule":"rel"}]}"#).is_err());
        assert!(Policy::parse(r#"{"rules":[{"path":"x","rule":"shape"}]}"#).is_err());
        assert!(Policy::parse(r#"{"rules":[{"path":"$.**.x","rule":"shape"}]}"#).is_err());
    }

    #[test]
    fn report_json_round_trips() {
        let a = j(r#"{"x":1}"#);
        let b = j(r#"{"x":2}"#);
        let report = diff_artifacts(&a, &b, &Policy::exact());
        let text = report.to_json().to_string();
        assert_eq!(Json::parse(&text).unwrap().to_string(), text);
        assert!(text.contains("\"clean\":false"));
        assert!(text.contains("\"path\":\"$.x\""));
    }
}
