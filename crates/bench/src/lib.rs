//! Shared helpers for the figure/table regeneration binaries and the
//! Criterion benches.
//!
//! Each binary in `src/bin/` regenerates one figure or claim from the paper
//! (see DESIGN.md's per-experiment index) and prints its data as aligned
//! text plus TSV blocks that external plotting tools can consume.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diff;
pub mod sweep;

pub use diff::{diff_artifacts, DiffReport, Policy, Rule};
pub use sweep::{par_map, render_json, render_text, Sweep, SweepRow, SweepRun, SweepTiming};

use std::fmt::Display;

use edc_core::json::Json;

/// Version of the BENCH artifact envelope written by [`artifact`]. Bump it
/// whenever the meaning or layout of a shared section changes, so
/// [`diff_artifacts`] flags a cross-version comparison as a schema
/// difference instead of a forest of spurious leaf diffs.
pub const SCHEMA_VERSION: u64 = 1;

/// Wraps a BENCH binary's sections in the versioned artifact envelope:
/// `bench` (the artifact's name) and `schema` ([`SCHEMA_VERSION`]) first,
/// then the sections in the given order.
///
/// # Examples
///
/// ```
/// use edc_core::json::Json;
///
/// let artifact = edc_bench::artifact(
///     "example",
///     vec![("cells", Json::Uint(12))],
/// );
/// let text = artifact.to_string();
/// assert!(text.starts_with("{\"bench\":\"example\",\"schema\":"));
/// assert!(text.ends_with("\"cells\":12}"));
/// ```
pub fn artifact(name: &str, sections: Vec<(&str, Json)>) -> Json {
    let mut pairs = vec![
        ("bench", Json::Str(name.into())),
        ("schema", Json::Uint(SCHEMA_VERSION)),
    ];
    pairs.extend(sections);
    Json::obj(pairs)
}

/// The artifact path a BENCH binary writes to: the first CLI argument, or
/// `default` (the committed-baseline name) when none is given. CI passes a
/// `target/`-prefixed path so committed baselines are only rewritten when
/// intentionally regenerated.
///
/// # Examples
///
/// ```
/// let path = edc_bench::artifact_path("BENCH_example.json");
/// assert!(path.ends_with(".json"));
/// ```
pub fn artifact_path(default: &str) -> String {
    std::env::args()
        .nth(1)
        .unwrap_or_else(|| default.to_string())
}

/// CLI arguments shared by the BENCH binaries that can warm-start from a
/// persistent evaluation store: the artifact output path (the positional
/// argument, or the committed-baseline `default` when absent) plus the
/// optional `--store DIR` flag naming an `edc-store` directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchArgs {
    /// Where the artifact is written.
    pub path: String,
    /// Directory of the persistent evaluation store, when `--store` was
    /// given. Store-backed runs also assert their Pareto fronts against
    /// the committed cold artifact.
    pub store: Option<String>,
}

/// Parses `[path] [--store DIR]` (in either order) from an argument
/// iterator. The testable core of [`bench_args`].
///
/// # Errors
///
/// Returns a usage message for a `--store` with no value, an unknown
/// flag, or a second positional argument.
///
/// # Examples
///
/// ```
/// use edc_bench::bench_args_from;
///
/// let args = ["--store", "runs/store", "out.json"].map(String::from);
/// let parsed = bench_args_from(args.into_iter(), "BENCH_example.json").unwrap();
/// assert_eq!(parsed.path, "out.json");
/// assert_eq!(parsed.store.as_deref(), Some("runs/store"));
///
/// let parsed = bench_args_from(std::iter::empty(), "BENCH_example.json").unwrap();
/// assert_eq!(parsed.path, "BENCH_example.json");
/// assert_eq!(parsed.store, None);
///
/// assert!(bench_args_from(["--store"].map(String::from).into_iter(), "d").is_err());
/// ```
pub fn bench_args_from(
    mut args: impl Iterator<Item = String>,
    default: &str,
) -> Result<BenchArgs, String> {
    let mut path: Option<String> = None;
    let mut store: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--store" => match args.next() {
                Some(dir) => store = Some(dir),
                None => return Err("--store needs a directory argument".into()),
            },
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            positional => {
                if path.is_some() {
                    return Err(format!("unexpected extra argument {positional}"));
                }
                path = Some(positional.to_string());
            }
        }
    }
    Ok(BenchArgs {
        path: path.unwrap_or_else(|| default.to_string()),
        store,
    })
}

/// Parses the process arguments as `[path] [--store DIR]` — the
/// store-aware superset of [`artifact_path`]. Prints usage and exits
/// with status 2 when the arguments do not parse.
pub fn bench_args(default: &str) -> BenchArgs {
    match bench_args_from(std::env::args().skip(1), default) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("{e}\nusage: <bench> [ARTIFACT_PATH] [--store DIR]");
            std::process::exit(2);
        }
    }
}

/// Loads section `section` of the committed artifact at `committed`,
/// for store-backed BENCH runs that assert warm results byte-identical
/// to the committed cold ones. Exits with status 1 when the artifact is
/// missing, unparsable, or lacks the section, so CI cannot mistake a
/// skipped comparison for a passing one.
pub fn committed_section(committed: &str, section: &str) -> Json {
    let text = std::fs::read_to_string(committed).unwrap_or_else(|e| {
        eprintln!("cannot read committed artifact {committed}: {e}");
        std::process::exit(1);
    });
    let json = Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("committed artifact {committed} is not valid JSON: {e}");
        std::process::exit(1);
    });
    match json.get(section) {
        Some(value) => value.clone(),
        None => {
            eprintln!("committed artifact {committed} has no section {section:?}");
            std::process::exit(1);
        }
    }
}

/// Asserts that `front` is byte-identical to the `front` member of
/// section `section` in the committed artifact at `committed` — the
/// warm-start contract of the `--store` flag: a store-backed search must
/// reproduce the committed cold Pareto front exactly. Logs the check and
/// exits with status 1 on any mismatch.
pub fn assert_front_matches(committed: &str, section: &str, front: &Json) {
    let committed_front = committed_section(committed, section);
    let committed_front = committed_front.get("front").unwrap_or_else(|| {
        eprintln!("committed section {section:?} of {committed} has no front");
        std::process::exit(1);
    });
    if committed_front.to_string() != front.to_string() {
        eprintln!("FAIL: store-backed {section} front differs from committed {committed}");
        std::process::exit(1);
    }
    println!("store: {section} front byte-identical to committed {committed}");
}

/// Writes a BENCH artifact (the JSON plus a trailing newline) to `path`,
/// logging the destination. Exits the process with status 1 when the write
/// fails, so CI never mistakes a missing artifact for success.
///
/// # Examples
///
/// ```no_run
/// use edc_core::json::Json;
///
/// let artifact = Json::obj(vec![("bench", Json::Str("example".into()))]);
/// edc_bench::write_artifact("target/BENCH_example.json", &artifact);
/// ```
pub fn write_artifact(path: &str, artifact: &Json) {
    match std::fs::write(path, format!("{artifact}\n")) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => {
            eprintln!("could not write {path}: {e}");
            std::process::exit(1);
        }
    }
}

/// A minimal aligned-text table builder for harness output.
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringifying each cell).
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<D: Display>(&mut self, cells: &[D]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&line(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Prints a section banner so multi-part harness output is scannable.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
}

/// Logarithmically spaced sweep points.
///
/// # Panics
///
/// Panics unless `0 < lo < hi` and `n ≥ 2`.
pub fn log_space(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(lo > 0.0 && hi > lo && n >= 2);
    (0..n)
        .map(|i| lo * (hi / lo).powf(i as f64 / (n - 1) as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = TextTable::new(&["name", "value"]);
        t.row(&["a", "1"]);
        t.row(&["longer", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[2].ends_with("1"));
        assert!(lines[3].ends_with("22"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(&["only-one"]);
    }

    #[test]
    fn log_space_endpoints() {
        let v = log_space(1.0, 100.0, 3);
        assert!((v[0] - 1.0).abs() < 1e-12);
        assert!((v[1] - 10.0).abs() < 1e-9);
        assert!((v[2] - 100.0).abs() < 1e-9);
    }
}
