//! The sweep engine: cartesian grids of [`ExperimentSpec`]s fanned out
//! across threads, with deterministic, ordered results.
//!
//! A sweep is defined by a base spec plus the axes to vary (sources,
//! strategies, workloads). Row order is fixed by the grid — source-major,
//! then workload, then strategy — and is **independent of scheduling**:
//! workers pull rows by index, so repeated runs of the same grid produce
//! byte-identical [`render_json`] output no matter how many threads raced.
//!
//! # Examples
//!
//! ```
//! use edc_bench::sweep::Sweep;
//! use edc_core::experiment::ExperimentSpec;
//! use edc_core::scenarios::{SourceKind, StrategyKind};
//! use edc_units::Seconds;
//! use edc_workloads::WorkloadKind;
//!
//! let base = ExperimentSpec::new(
//!     SourceKind::RectifiedSine { hz: 50.0 },
//!     StrategyKind::Hibernus,
//!     WorkloadKind::Crc16(64),
//! )
//! .deadline(Seconds(3.0));
//! let rows = Sweep::over(base)
//!     .strategies(&[StrategyKind::Restart, StrategyKind::Hibernus])
//!     .run()?;
//! assert_eq!(rows.len(), 2);
//! assert_eq!(rows[1].report.strategy, "hibernus");
//! # Ok::<(), edc_core::experiment::BuildError>(())
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use edc_core::catalog::TraceCatalog;
use edc_core::experiment::{BuildError, ExperimentSpec};
use edc_core::json::Json;
use edc_core::scenarios::{SourceKind, StrategyKind};
use edc_core::telemetry::{stats_json, TelemetryReport};
use edc_core::SystemReport;
use edc_obs::{ProfileReport, ProfileSpan};
use edc_telemetry::StatsSink;
use edc_workloads::WorkloadKind;

use crate::TextTable;

/// One grid point's result: the spec that produced it, its position in the
/// grid, and the run's report.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Stable position in the grid's row order.
    pub index: usize,
    /// The spec this row ran.
    pub spec: ExperimentSpec,
    /// The run's report.
    pub report: SystemReport,
}

impl SweepRow {
    /// The row as a JSON value with deterministic field order.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("index", Json::Uint(self.index as u64)),
            ("spec", self.spec.to_json()),
            ("report", self.report.to_json()),
        ])
    }
}

/// A cartesian sweep over experiment axes.
#[derive(Debug, Clone)]
pub struct Sweep {
    base: ExperimentSpec,
    sources: Vec<SourceKind>,
    strategies: Vec<StrategyKind>,
    workloads: Vec<WorkloadKind>,
    threads: Option<usize>,
    catalog: TraceCatalog,
    metrics: Option<edc_metrics::Registry>,
}

impl Sweep {
    /// A sweep whose axes all start as the base spec's own kinds; widen
    /// them with [`Sweep::sources`], [`Sweep::strategies`] and
    /// [`Sweep::workloads`].
    pub fn over(base: ExperimentSpec) -> Self {
        Self {
            sources: vec![base.source],
            strategies: vec![base.strategy],
            workloads: vec![base.workload],
            base,
            threads: None,
            catalog: TraceCatalog::new(),
            metrics: None,
        }
    }

    /// Supplies the trace catalog the grid's [`SourceKind::Trace`] (and
    /// trace-backed field-view) entries resolve through. Grids without
    /// trace sources never need one.
    pub fn catalog(mut self, catalog: TraceCatalog) -> Self {
        self.catalog = catalog;
        self
    }

    /// Sets the source axis.
    pub fn sources(mut self, axis: &[SourceKind]) -> Self {
        self.sources = axis.to_vec();
        self
    }

    /// Sets the strategy axis.
    pub fn strategies(mut self, axis: &[StrategyKind]) -> Self {
        self.strategies = axis.to_vec();
        self
    }

    /// Sets the workload axis.
    pub fn workloads(mut self, axis: &[WorkloadKind]) -> Self {
        self.workloads = axis.to_vec();
        self
    }

    /// Caps the worker count (defaults to the machine's parallelism).
    /// Thread count never affects results, only wall-clock time.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = Some(n.max(1));
        self
    }

    /// Records sweep and runner counters into `registry` instead of the
    /// process-global [`edc_metrics::global`] one — the registry
    /// counterpart of [`Sweep::catalog`], used by determinism tests that
    /// need an isolated exposition.
    pub fn metrics(mut self, registry: edc_metrics::Registry) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// The grid in its stable row order: source-major, then workload, then
    /// strategy.
    pub fn specs(&self) -> Vec<ExperimentSpec> {
        let mut specs =
            Vec::with_capacity(self.sources.len() * self.workloads.len() * self.strategies.len());
        for &source in &self.sources {
            for &workload in &self.workloads {
                for &strategy in &self.strategies {
                    specs.push(
                        self.base
                            .source(source)
                            .workload(workload)
                            .strategy(strategy),
                    );
                }
            }
        }
        specs
    }

    /// Runs every grid point, fanning out across scoped worker threads.
    ///
    /// # Errors
    ///
    /// Returns the first (by grid order) [`BuildError`]; rows are only
    /// returned when the entire grid assembled and ran.
    pub fn run(&self) -> Result<Vec<SweepRow>, BuildError> {
        Ok(self.run_timed()?.rows)
    }

    /// Like [`Sweep::run`], but also measures wall-clock time (total and
    /// per cell) for `BENCH` artifacts.
    ///
    /// # Errors
    ///
    /// Returns the first (by grid order) [`BuildError`].
    pub fn run_timed(&self) -> Result<SweepRun, BuildError> {
        let threads = self
            .threads
            .or_else(|| std::thread::available_parallelism().ok().map(|n| n.get()))
            .unwrap_or(1);
        let registry = self.metrics.clone().unwrap_or_else(edc_metrics::global);
        run_specs_timed_metered(self.specs(), threads, &self.catalog, &registry)
    }

    /// Statically lints every grid point without simulating anything.
    /// Diagnostics are located at `$.specs[i]` in grid-row order, so a
    /// flagged row is directly addressable in [`Sweep::run`]'s output.
    /// Running this before a long sweep catches provably-infeasible rows
    /// (`E0xx`) and simulation-wasting hazards (`W1xx`) for the cost of a
    /// few closed-form checks per row.
    pub fn lint(&self) -> edc_lint::LintReport {
        let mut linter = edc_lint::Linter::with_catalog(self.catalog.clone());
        let mut report = edc_lint::LintReport::new();
        for (i, spec) in self.specs().iter().enumerate() {
            report.merge_prefixed(&format!("$.specs[{i}]"), linter.lint_spec(spec));
        }
        report
    }
}

/// Wall-clock timing of a sweep. **Not deterministic** — keep it out of
/// any output that is diffed byte-for-byte (the row/telemetry sections
/// are; timing is reported alongside, never inside, them).
#[derive(Debug, Clone)]
pub struct SweepTiming {
    /// End-to-end wall-clock of the sweep, including scheduling.
    pub total_s: f64,
    /// Per-cell wall-clock, in grid row order.
    pub per_cell_s: Vec<f64>,
}

impl SweepTiming {
    /// The timing as a JSON value.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("total_s", Json::Num(self.total_s)),
            (
                "per_cell_s",
                Json::Arr(self.per_cell_s.iter().map(|&s| Json::Num(s)).collect()),
            ),
        ])
    }
}

/// A completed sweep: ordered rows plus wall-clock timing.
#[derive(Debug, Clone)]
pub struct SweepRun {
    /// The grid's rows, in stable order.
    pub rows: Vec<SweepRow>,
    /// Wall-clock timing (non-deterministic).
    pub timing: SweepTiming,
}

impl SweepRun {
    /// Folds every cell's [`StatsSink`] telemetry into one grid-level
    /// sink (deterministic: merge happens in row order). `None` when no
    /// cell ran with stats telemetry.
    pub fn aggregate_stats(&self) -> Option<StatsSink> {
        let mut merged: Option<StatsSink> = None;
        for row in &self.rows {
            if let Some(TelemetryReport::Stats(cell)) = &row.report.telemetry {
                merged.get_or_insert_with(StatsSink::new).merge(cell);
            }
        }
        merged
    }

    /// The deterministic part of the sweep's output: rows (per-cell specs,
    /// reports and telemetry summaries) plus the grid-level aggregate.
    /// Byte-identical across repeated runs of the same grid, serial or
    /// parallel.
    pub fn telemetry_json(&self) -> Json {
        Json::obj(vec![
            ("cells", Json::Uint(self.rows.len() as u64)),
            (
                "aggregate",
                Json::option(self.aggregate_stats(), |s| stats_json(&s)),
            ),
            (
                "rows",
                Json::Arr(self.rows.iter().map(SweepRow::to_json).collect()),
            ),
        ])
    }

    /// The full sweep artifact: the deterministic telemetry section plus
    /// wall-clock timing.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("telemetry", self.telemetry_json()),
            ("timing", self.timing.to_json()),
        ])
    }

    /// Writes every row back into a persistent evaluation store, making
    /// the sweep a **producer** for later searches and serving sessions:
    /// a subsequent [`edc_store::Store`]-backed search over specs this
    /// grid covered re-scores the stored reports instead of simulating.
    /// Sweeps themselves always simulate — rows carry full
    /// in-memory reports the store's JSON envelope cannot reconstruct.
    ///
    /// Each entry is keyed by the row's canonical spec JSON and carries
    /// the report JSON, no objective scores (searches recompute and merge
    /// them back on first use), and a full-fidelity cost of `1.0` per
    /// cell. Returns the number of entries actually appended (rows a
    /// previous run already stored merge instead), counted by the
    /// `edc_store_writes` metric under `phase="sweep"`.
    ///
    /// # Errors
    ///
    /// Any [`edc_store::StoreError`] from the underlying
    /// [`Store::put`](edc_store::Store::put) — an I/O failure, or a
    /// conflicting entry already stored under a row's spec.
    ///
    /// ```
    /// use edc_bench::sweep::Sweep;
    /// use edc_core::experiment::ExperimentSpec;
    /// use edc_core::scenarios::{SourceKind, StrategyKind};
    /// use edc_store::Store;
    /// use edc_units::Seconds;
    /// use edc_workloads::WorkloadKind;
    ///
    /// let dir = std::env::temp_dir().join("edc-sweep-doc-store");
    /// let _ = std::fs::remove_dir_all(&dir);
    /// let base = ExperimentSpec::new(
    ///     SourceKind::Dc { volts: 3.3 },
    ///     StrategyKind::Restart,
    ///     WorkloadKind::BusyLoop(120),
    /// )
    /// .deadline(Seconds(1.0));
    /// let run = Sweep::over(base)
    ///     .strategies(&[StrategyKind::Restart, StrategyKind::Hibernus])
    ///     .run_timed()?;
    ///
    /// let store = Store::open(&dir)?.into_handle();
    /// let registry = edc_metrics::Registry::new();
    /// assert_eq!(run.store_into(&store, &registry)?, 2);
    /// // Storing the same rows again merges instead of appending.
    /// assert_eq!(run.store_into(&store, &registry)?, 0);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn store_into(
        &self,
        store: &edc_store::StoreHandle,
        metrics: &edc_metrics::Registry,
    ) -> Result<u64, edc_store::StoreError> {
        let mut appended = 0;
        let mut guard = store
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for row in &self.rows {
            if guard.put(
                &row.spec.to_json(),
                row.report.to_json(),
                std::collections::BTreeMap::new(),
                1.0,
            )? {
                appended += 1;
            }
        }
        drop(guard);
        if appended > 0 {
            metrics
                .counter(
                    "edc_store_writes",
                    "Simulated evaluations written back to the persistent store, per search phase.",
                    &[("phase", "sweep")],
                )
                .inc_by(appended);
        }
        Ok(appended)
    }

    /// The sweep as a per-cell [`ProfileReport`]: one span per grid row,
    /// named `cell{index}/{label}`, carrying deterministic run counters
    /// (boots, brownouts, snapshots, restores, retired cycles) and the
    /// cell's quarantined wall-clock reading.
    pub fn profile(&self) -> ProfileReport {
        let mut profile = ProfileReport::new();
        for (row, &wall_s) in self.rows.iter().zip(&self.timing.per_cell_s) {
            let s = &row.report.stats;
            profile.push(
                ProfileSpan::new(format!("cell{}/{}", row.index, row.spec.label()))
                    .counter("boots", s.boots as f64)
                    .counter("brownouts", s.brownouts as f64)
                    .counter("snapshots", s.snapshots as f64)
                    .counter("restores", s.restores as f64)
                    .counter("cycles", s.cycles as f64)
                    .wall(wall_s),
            );
        }
        profile
    }
}

/// Runs an explicit spec list (one worker per thread, rows claimed by
/// index) and returns rows in input order.
///
/// # Errors
///
/// Returns the first (by input order) [`BuildError`]. Validation is pure
/// and cheap, so the whole grid is checked before any simulation starts —
/// a doomed sweep fails immediately instead of after minutes of wasted
/// runs.
pub fn run_specs(specs: Vec<ExperimentSpec>, threads: usize) -> Result<Vec<SweepRow>, BuildError> {
    Ok(run_specs_timed(specs, threads)?.rows)
}

/// Like [`run_specs`], resolving trace-backed sources through `catalog`
/// (shared read-only across the workers).
///
/// # Errors
///
/// Returns the first (by input order) [`BuildError`].
pub fn run_specs_in(
    specs: Vec<ExperimentSpec>,
    threads: usize,
    catalog: &TraceCatalog,
) -> Result<Vec<SweepRow>, BuildError> {
    Ok(run_specs_timed_in(specs, threads, catalog)?.rows)
}

/// Like [`run_specs`], but also measures wall-clock time per cell and for
/// the whole grid.
///
/// # Errors
///
/// Returns the first (by input order) [`BuildError`]; the whole grid is
/// validated before any simulation starts.
pub fn run_specs_timed(specs: Vec<ExperimentSpec>, threads: usize) -> Result<SweepRun, BuildError> {
    run_specs_timed_in(specs, threads, &TraceCatalog::new())
}

/// The catalog-threaded primitive under [`run_specs_timed`]: every worker
/// resolves [`SourceKind::Trace`] entries through the same shared
/// `catalog`.
///
/// # Errors
///
/// Returns the first (by input order) [`BuildError`]; the whole grid is
/// validated (catalog resolution included) before any simulation starts.
pub fn run_specs_timed_in(
    specs: Vec<ExperimentSpec>,
    threads: usize,
    catalog: &TraceCatalog,
) -> Result<SweepRun, BuildError> {
    run_specs_timed_metered(specs, threads, catalog, &edc_metrics::global())
}

/// Histogram bounds for fan-out batch sizes (cells per `par_map` batch,
/// nodes per fleet): powers of two out to 256, `+Inf` beyond.
pub const BATCH_SIZE_BOUNDS: [f64; 9] = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0];

/// The registry-threaded primitive under [`run_specs_timed_in`]: records
/// batch-level sweep counters (batches, cells, the batch-size histogram)
/// and every cell's runner lifecycle counters into `metrics`, and the
/// batch's wall-clock total into a quarantined wall gauge. The returned
/// rows are unchanged — metrics are an aggregate side channel.
///
/// # Errors
///
/// Returns the first (by input order) [`BuildError`]; the whole grid is
/// validated (catalog resolution included) before any simulation starts.
pub fn run_specs_timed_metered(
    specs: Vec<ExperimentSpec>,
    threads: usize,
    catalog: &TraceCatalog,
    metrics: &edc_metrics::Registry,
) -> Result<SweepRun, BuildError> {
    for spec in &specs {
        spec.validate_in(catalog)?;
    }
    metrics
        .counter("edc_sweep_batches", "Spec batches fanned out.", &[])
        .inc();
    metrics
        .counter("edc_sweep_cells", "Grid cells simulated.", &[])
        .inc_by(specs.len() as u64);
    metrics
        .histogram(
            "edc_sweep_batch_cells",
            "Cells per fanned-out batch.",
            &[],
            &BATCH_SIZE_BOUNDS,
        )
        .observe(specs.len() as f64);
    let started = Instant::now();
    let results = par_map(&specs, threads, |spec| {
        let cell_started = Instant::now();
        let result = spec.run_metered_in(catalog, metrics);
        (result, cell_started.elapsed().as_secs_f64())
    });
    let total_s = started.elapsed().as_secs_f64();
    metrics
        .wall_gauge(
            "edc_sweep_wall_seconds",
            "Cumulative wall-clock of fanned-out batches (quarantined).",
            &[],
        )
        .add(total_s);
    let mut per_cell_s = Vec::with_capacity(specs.len());
    let rows = specs
        .into_iter()
        .zip(results)
        .enumerate()
        .map(|(index, (spec, (result, elapsed)))| {
            per_cell_s.push(elapsed);
            Ok(SweepRow {
                index,
                spec,
                report: result?,
            })
        })
        .collect::<Result<Vec<_>, BuildError>>()?;
    Ok(SweepRun {
        rows,
        timing: SweepTiming {
            total_s,
            per_cell_s,
        },
    })
}

/// Deterministic scoped fan-out: workers claim items by index and results
/// come back in input order, so thread count affects wall-clock only,
/// never results. The primitive under [`run_specs_timed_in`], kept public
/// for harnesses whose work items are not experiment specs at all.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads.clamp(1, items.len().max(1)) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                *slots[i].lock().expect("result slot poisoned") = Some(f(item));
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every slot is filled before the scope exits")
        })
        .collect()
}

/// Renders rows as an aligned text table.
pub fn render_text(rows: &[SweepRow]) -> String {
    let mut t = TextTable::new(&[
        "source",
        "workload",
        "strategy",
        "done (s)",
        "snaps",
        "torn",
        "restores",
        "brownouts",
        "reboots",
        "verified",
    ]);
    for row in rows {
        let stats = &row.report.stats;
        t.row(&[
            row.spec.source.name().to_string(),
            row.report.workload.clone(),
            row.report.strategy.clone(),
            stats
                .completed_at
                .map(|s| format!("{:.3}", s.0))
                .unwrap_or_else(|| "DNF".to_string()),
            stats.snapshots.to_string(),
            stats.torn_snapshots.to_string(),
            stats.restores.to_string(),
            stats.brownouts.to_string(),
            stats.boots.to_string(),
            match &row.report.verification {
                Ok(()) => "ok".to_string(),
                Err(e) => format!("FAIL({e})"),
            },
        ]);
    }
    t.render()
}

/// Renders rows as a JSON array — byte-identical across repeated runs of
/// the same grid.
pub fn render_json(rows: &[SweepRow]) -> String {
    Json::Arr(rows.iter().map(SweepRow::to_json).collect()).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use edc_units::Seconds;

    fn small_base() -> ExperimentSpec {
        ExperimentSpec::new(
            SourceKind::Dc { volts: 3.3 },
            StrategyKind::Restart,
            WorkloadKind::BusyLoop(200),
        )
        .deadline(Seconds(1.0))
    }

    #[test]
    fn grid_order_is_source_major_then_workload_then_strategy() {
        let sweep = Sweep::over(small_base())
            .sources(&[SourceKind::Dc { volts: 3.3 }, SourceKind::Dc { volts: 2.8 }])
            .workloads(&[WorkloadKind::BusyLoop(100), WorkloadKind::Crc16(32)])
            .strategies(&[StrategyKind::Restart, StrategyKind::Hibernus]);
        let specs = sweep.specs();
        assert_eq!(specs.len(), 8);
        assert_eq!(specs[0].strategy, StrategyKind::Restart);
        assert_eq!(specs[1].strategy, StrategyKind::Hibernus);
        assert_eq!(specs[1].workload, WorkloadKind::BusyLoop(100));
        assert_eq!(specs[2].workload, WorkloadKind::Crc16(32));
        assert_eq!(specs[3].source, SourceKind::Dc { volts: 3.3 });
        assert_eq!(specs[4].source, SourceKind::Dc { volts: 2.8 });
    }

    #[test]
    fn parallel_matches_serial_and_is_deterministic() {
        let sweep = Sweep::over(small_base())
            .strategies(&[StrategyKind::Restart, StrategyKind::Hibernus])
            .workloads(&[WorkloadKind::BusyLoop(100), WorkloadKind::Crc16(32)]);
        let parallel = sweep.clone().threads(4).run().expect("sweep runs");
        let serial = sweep.threads(1).run().expect("sweep runs");
        assert_eq!(render_json(&parallel), render_json(&serial));
        let again = Sweep::over(small_base())
            .strategies(&[StrategyKind::Restart, StrategyKind::Hibernus])
            .workloads(&[WorkloadKind::BusyLoop(100), WorkloadKind::Crc16(32)])
            .threads(3)
            .run()
            .expect("sweep runs");
        assert_eq!(render_json(&parallel), render_json(&again));
    }

    #[test]
    fn timed_run_measures_every_cell() {
        let run = Sweep::over(small_base())
            .strategies(&[StrategyKind::Restart, StrategyKind::Hibernus])
            .run_timed()
            .expect("sweep runs");
        assert_eq!(run.timing.per_cell_s.len(), run.rows.len());
        assert!(run.timing.per_cell_s.iter().all(|&s| s > 0.0));
        assert!(run.timing.total_s > 0.0);
        let json = run.to_json().to_string();
        assert!(json.contains("\"timing\""));
        assert!(json.contains("\"per_cell_s\""));
    }

    #[test]
    fn sweep_profile_has_one_span_per_cell_with_deterministic_counters() {
        let run = || {
            Sweep::over(small_base())
                .strategies(&[StrategyKind::Restart, StrategyKind::Hibernus])
                .run_timed()
                .expect("sweep runs")
        };
        let a = run();
        let profile = a.profile();
        assert_eq!(profile.spans().len(), a.rows.len());
        assert!(profile.spans()[0].name.starts_with("cell0/"));
        assert!(profile.spans().iter().all(|s| s.wall_s > 0.0));
        // Counters are a pure function of the grid; wall-clock is not.
        let b = run();
        assert_eq!(
            profile.counters_json().to_string(),
            b.profile().counters_json().to_string()
        );
    }

    #[test]
    fn stats_telemetry_aggregates_across_cells() {
        use edc_core::TelemetryKind;
        let run = Sweep::over(small_base().telemetry(TelemetryKind::Stats))
            .strategies(&[StrategyKind::Restart, StrategyKind::Hibernus])
            .run_timed()
            .expect("sweep runs");
        let merged = run.aggregate_stats().expect("stats cells present");
        let per_cell: u64 = run
            .rows
            .iter()
            .filter_map(|r| match &r.report.telemetry {
                Some(edc_core::TelemetryReport::Stats(s)) => Some(s.counts().boots),
                _ => None,
            })
            .sum();
        assert_eq!(merged.counts().boots, per_cell);
        assert!(merged.counts().completions >= 1);
        // The deterministic section is deterministic; timing is not part
        // of it.
        let telemetry = run.telemetry_json().to_string();
        assert!(!telemetry.contains("per_cell_s"));
        let again = Sweep::over(small_base().telemetry(TelemetryKind::Stats))
            .strategies(&[StrategyKind::Restart, StrategyKind::Hibernus])
            .run_timed()
            .expect("sweep runs");
        assert_eq!(telemetry, again.telemetry_json().to_string());
    }

    #[test]
    fn invalid_grid_point_surfaces_first_error() {
        let err = Sweep::over(small_base().timestep(Seconds(0.0)))
            .run()
            .expect_err("bad timestep");
        assert_eq!(err, BuildError::InvalidTimestep(0.0));
    }

    #[test]
    fn renderers_cover_every_row() {
        let rows = Sweep::over(small_base())
            .strategies(&[StrategyKind::Restart, StrategyKind::Hibernus])
            .run()
            .expect("sweep runs");
        let text = render_text(&rows);
        assert!(text.contains("restart") && text.contains("hibernus"));
        let json = render_json(&rows);
        let parsed = Json::parse(&json).expect("valid JSON");
        match parsed {
            Json::Arr(items) => assert_eq!(items.len(), rows.len()),
            other => panic!("expected array, got {other:?}"),
        }
    }
}
