//! End-to-end tests of the `bench_diff` regression gate binary: exit
//! codes, offending-path reporting, and the committed tolerance policy.

use std::path::PathBuf;
use std::process::{Command, Output};

/// A scratch file under `target/` (kept out of the repo root).
fn scratch(name: &str) -> PathBuf {
    let mut path = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    path.push(name);
    path
}

fn write(name: &str, contents: &str) -> PathBuf {
    let path = scratch(name);
    std::fs::write(&path, contents).expect("scratch file writable");
    path
}

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_bench_diff"))
        .args(args)
        .output()
        .expect("bench_diff spawns")
}

/// The committed workspace policy file, resolved from this crate.
fn policy() -> String {
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_policy.json").to_string()
}

const ARTIFACT: &str = r#"{"bench":"x","schema":1,"cells":4,"timing":{"total_s":1.5,"per_cell_s":[0.7,0.8]}}
"#;

#[test]
fn comparing_an_artifact_with_itself_is_clean() {
    let a = write("same_a.json", ARTIFACT);
    let out = run(&[
        "--policy",
        &policy(),
        a.to_str().unwrap(),
        a.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("no differences"), "{stdout}");
}

#[test]
fn wall_clock_drift_passes_under_the_committed_policy() {
    let a = write("wall_a.json", ARTIFACT);
    let b = write(
        "wall_b.json",
        r#"{"bench":"x","schema":1,"cells":4,"timing":{"total_s":9.9,"per_cell_s":[4.4,5.5]}}
"#,
    );
    let out = run(&[
        "--policy",
        &policy(),
        a.to_str().unwrap(),
        b.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{out:?}");
}

#[test]
fn a_perturbed_deterministic_field_fails_naming_its_path() {
    let a = write("det_a.json", ARTIFACT);
    let b = write(
        "det_b.json",
        r#"{"bench":"x","schema":1,"cells":5,"timing":{"total_s":1.5,"per_cell_s":[0.7,0.8]}}
"#,
    );
    let out = run(&[
        "--policy",
        &policy(),
        a.to_str().unwrap(),
        b.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("$.cells"), "must name the path: {stdout}");
    assert!(stdout.contains("REGRESSION"), "{stdout}");
}

#[test]
fn json_mode_emits_the_machine_readable_report() {
    let a = write("json_a.json", ARTIFACT);
    let b = write(
        "json_b.json",
        r#"{"bench":"x","schema":2,"cells":4,"timing":{"total_s":1.5,"per_cell_s":[0.7,0.8]}}
"#,
    );
    let out = run(&["--json", a.to_str().unwrap(), b.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).unwrap();
    let report = edc_core::json::Json::parse(stdout.trim()).expect("valid JSON report");
    assert_eq!(
        report.get("clean"),
        Some(&edc_core::json::Json::Bool(false))
    );
    assert!(stdout.contains("\"path\":\"$.schema\""), "{stdout}");
}

#[test]
fn usage_and_io_errors_exit_2() {
    assert_eq!(run(&[]).status.code(), Some(2));
    assert_eq!(run(&["only_one.json"]).status.code(), Some(2));
    assert_eq!(
        run(&["missing_a.json", "missing_b.json"]).status.code(),
        Some(2)
    );
    let a = write("flag_a.json", ARTIFACT);
    assert_eq!(
        run(&["--frobnicate", a.to_str().unwrap(), a.to_str().unwrap()])
            .status
            .code(),
        Some(2)
    );
}
