//! `edc-bound`: sound interval abstract interpretation of experiment-spec
//! dynamics.
//!
//! The linter (`edc-lint`) answers the boolean question "could this design
//! possibly work"; this crate answers the quantitative one "how well could
//! it possibly do". For a valid [`ExperimentSpec`] the [`Bounder`] derives
//! a [`BoundReport`] — one [`ScoreBracket`] `{lo, hi}` per built-in
//! objective — by propagating interval closed forms through the supply
//! (per-sample Thévenin/power/current envelopes), the storage RC, the
//! strategy's rail thresholds and the workload's cycle demand. Every
//! bracket is **sound**: the simulated score of the spec provably lands in
//! `[lo, hi]` (lower-is-better scores; `INFINITY` encodes "did not
//! finish").
//!
//! The arithmetic here is the single source of truth the linter's
//! `E002`–`E005` passes are built from (the linter is a thin client that
//! formats [`DynamicsFacts`] into diagnostics), and what the explore
//! evaluator's branch-and-bound pruning consumes: a candidate whose
//! objective *lower* bounds are dominated by an already-simulated exact
//! score can be scored statically, because its true score can only be
//! worse.
//!
//! # Bound derivations
//!
//! - **Supply energy upper bound**: the supply node integrates charge, so
//!   one tick's stored-energy gain is `i·dt·v₀ + (i·dt)²/(2C)`. Both terms
//!   are bounded per sample kind — a Thévenin source by its maximum power
//!   transfer `v_oc²/(4r)`, a constant-power sample by `p` itself (current
//!   is clamped at `p / 0.2 V`, so `i·v ≤ p` uniformly), a current source
//!   by `i·v_compliance` — with the discretisation term added explicitly.
//! - **Rail upper bound**: the voltage after one tick is a convex
//!   combination of `v₀` and the (rectified) open-circuit voltage when
//!   `η·dt/(rC) ≤ 1`, and bounded by `v_oc·η·dt/(rC)` otherwise; current
//!   sources cannot exceed compliance plus one tick of charge;
//!   constant-power samples are unbounded (the bound collapses to the
//!   overvoltage clamp). A full-window rail bound below the strategy's
//!   restore threshold proves the MCU never executes.
//! - **Boot-time lower bound**: the node starts at 0 V and boots when the
//!   rail reaches `v_high`, i.e. when the stored energy reaches
//!   `C·v_high²/2`. Stored energy at tick `k` is at most the cumulative
//!   per-tick supply upper bound, so the first tick whose cumulative bound
//!   reaches the boot energy is a lower bound on the boot tick — and a
//!   full window that never reaches it proves the MCU never powers on
//!   (which pins the brownout count and outage tail to exactly zero:
//!   brownouts and outages are only recorded after a boot).
//! - **Cycle lower bound**: a bare run's cycle count is *the* demand in
//!   cycles (frequency- and residence-independent); the runner grants at
//!   most `⌊f_max·dt⌋ + 1` cycles per tick over at most `⌊deadline/dt⌋ +
//!   1` ticks, so completion at tick-start time `m·dt` needs
//!   `(m+1)·per_tick_ub ≥ demand`.
//! - **Energy lower bound**: a completed run's consumed energy is at least
//!   the execution energy of its cycle demand at the cheapest clock level
//!   with zero boot/restore/checkpoint overhead; a run that does not
//!   complete scores `INFINITY`, which any lower bound is below.
//!
//! # Example
//!
//! ```
//! use edc_bound::Bounder;
//! use edc_core::experiment::ExperimentSpec;
//! use edc_core::scenarios::{SourceKind, StrategyKind};
//! use edc_units::Seconds;
//! use edc_workloads::WorkloadKind;
//!
//! // A 1.5 V rail can never reach any boot threshold above V_min = 2 V:
//! // the bracket proves the MCU never powers on, so the brownout count
//! // is *exactly* zero and completion is provably infinite.
//! let spec = ExperimentSpec::new(
//!     SourceKind::Dc { volts: 1.5 },
//!     StrategyKind::Restart,
//!     WorkloadKind::Crc16(64),
//! )
//! .deadline(Seconds(0.1));
//! let report = Bounder::new().bound_spec(&spec).expect("valid spec");
//! assert!(report.never_boots && report.proven_dnf);
//! assert_eq!(report.completion_s.lo, f64::INFINITY);
//! assert!(report.brownouts.is_exact() && report.brownouts.lo == 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;

use edc_core::catalog::TraceCatalog;
use edc_core::experiment::ExperimentSpec;
use edc_core::system::Topology;
use edc_harvest::{SourceSample, POWER_SOURCE_COMPLIANCE_FLOOR};
use edc_mcu::{Mcu, RunExit};
use edc_units::{Farads, Joules, Seconds, Volts};
use edc_workloads::WorkloadKind;

/// The runner's overvoltage clamp — specs never override it.
pub const V_MAX: Volts = Volts(3.6);

/// Cycle budget for the bare demand run. A workload that exhausts it
/// still yields a sound lower bound (`≥ CYCLE_FLOOR_CAP` cycles).
pub const CYCLE_FLOOR_CAP: u64 = 1_000_000_000;

/// Ceiling on supply-scan length (ticks). Past this the scan would cost
/// more than it saves; the supply-dependent brackets widen to their
/// trivial values (analysis incompleteness, never unsoundness).
pub const SUPPLY_SCAN_CAP: u64 = 4_000_000;

/// A sound closed interval `[lo, hi]` around a score (lower is better;
/// `INFINITY` encodes "did not finish").
///
/// ```
/// use edc_bound::ScoreBracket;
///
/// let b = ScoreBracket::new(1.0, f64::INFINITY);
/// assert!(b.contains(2.5) && b.contains(f64::INFINITY));
/// assert!(!b.contains(0.5));
/// assert!(ScoreBracket::exact(0.0).is_exact());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoreBracket {
    /// Inclusive lower bound on the score.
    pub lo: f64,
    /// Inclusive upper bound on the score.
    pub hi: f64,
}

impl ScoreBracket {
    /// The bracket `[lo, hi]`.
    pub fn new(lo: f64, hi: f64) -> Self {
        Self { lo, hi }
    }

    /// The degenerate bracket `[v, v]` — the score is statically known.
    pub fn exact(v: f64) -> Self {
        Self { lo: v, hi: v }
    }

    /// Whether `v` lies inside the bracket (inclusive on both ends;
    /// `INFINITY` is inside `[x, INFINITY]`).
    pub fn contains(&self, v: f64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// `true` when the bracket pins the score to a single value.
    pub fn is_exact(&self) -> bool {
        self.lo == self.hi
    }

    /// `{"lo": .., "hi": ..}` with non-finite ends emitted as `null`,
    /// matching the explore trace's score convention.
    pub fn to_json(&self) -> edc_core::json::Json {
        edc_core::json::Json::obj(vec![
            ("lo", edc_core::json::Json::Num(self.lo)),
            ("hi", edc_core::json::Json::Num(self.hi)),
        ])
    }
}

/// What the supply scan established over the deadline window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupplyFacts {
    /// Upper bound on total harvestable energy over the scanned ticks, J.
    pub supply_ub: f64,
    /// Upper bound on the rail voltage over the scanned ticks, V (capped
    /// at [`V_MAX`]).
    pub rail_ub: f64,
    /// First tick whose cumulative supply-energy upper bound reaches the
    /// boot energy `C·v_high²/2` — a lower bound on the boot tick. `None`
    /// after a full scan proves the MCU can never boot in the window.
    pub boot_tick: Option<u64>,
    /// `true` when the scan covered every tick of the window (no early
    /// feasibility exit); only then are the "never" verdicts sound.
    pub scanned_full: bool,
}

/// Closed-form facts about a valid spec's dynamics — everything the
/// linter formats into diagnostics and the bracket derivations consume.
#[derive(Debug, Clone)]
pub struct DynamicsFacts {
    /// The platform's brownout threshold, V.
    pub v_min: Volts,
    /// The strategy's boot/restore threshold for this spec, V.
    pub v_high: Volts,
    /// Effective storage the runner integrates into (decoupling plus any
    /// buffered storage), F.
    pub capacitance: Farads,
    /// Harvest-path efficiency (1.0 for a direct topology).
    pub efficiency: f64,
    /// Energy one snapshot costs on this platform, J.
    pub snapshot_energy: Joules,
    /// The MCU's boot clock frequency, Hz.
    pub boot_hz: f64,
    /// `true` for the `endless` workload (no completion state).
    pub endless: bool,
    /// The workload's bare cycle demand; `None` for endless workloads.
    pub demand_cycles: Option<u64>,
    /// Upper bound on runner ticks in the deadline window.
    pub ticks_ub: u64,
    /// Upper bound on cycles the runner grants per tick.
    pub per_tick_ub: u64,
    /// The clock ladder's maximum frequency, Hz.
    pub f_max: f64,
    /// Lower bound on the energy a completed run consumes, J (cheapest
    /// clock level, zero overhead); `None` for endless workloads.
    pub demand_lb: Option<f64>,
    /// The supply scan's verdicts; `None` when the workload is endless or
    /// the window exceeds [`SUPPLY_SCAN_CAP`].
    pub supply: Option<SupplyFacts>,
}

impl DynamicsFacts {
    /// Total cycles the runner can grant in the window (`ticks × per-tick`).
    pub fn granted_cycles(&self) -> u128 {
        (self.ticks_ub as u128) * (self.per_tick_ub as u128)
    }

    /// `true` when the deadline provably grants fewer cycles than the
    /// workload demands (the `E003` condition).
    pub fn deadline_infeasible(&self) -> bool {
        match self.demand_cycles {
            Some(demand) => self.granted_cycles() < demand as u128,
            None => false,
        }
    }
}

/// Sound score brackets for one spec, one per built-in explore objective.
///
/// ```
/// use edc_bound::Bounder;
/// use edc_core::experiment::ExperimentSpec;
/// use edc_core::scenarios::{SourceKind, StrategyKind};
/// use edc_units::Seconds;
/// use edc_workloads::WorkloadKind;
///
/// let spec = ExperimentSpec::new(
///     SourceKind::Dc { volts: 3.3 },
///     StrategyKind::Restart,
///     WorkloadKind::BusyLoop(100),
/// )
/// .deadline(Seconds(0.05));
/// let report = Bounder::new().bound_spec(&spec).expect("valid spec");
/// // Brackets are addressable by the objectives' stable names.
/// let by_name = report.bracket("completion_s").expect("built-in name");
/// assert_eq!(*by_name, report.completion_s);
/// assert!(!report.proven_dnf);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BoundReport {
    /// Bracket on the `completion_s` objective.
    pub completion_s: ScoreBracket,
    /// Bracket on the `energy_per_task_j` objective.
    pub energy_per_task_j: ScoreBracket,
    /// Bracket on the `brownouts` objective.
    pub brownouts: ScoreBracket,
    /// Bracket on the `p99_outage_s` objective.
    pub p99_outage_s: ScoreBracket,
    /// `true` when the spec provably never completes its workload (the
    /// completion and energy brackets are exactly `INFINITY`).
    pub proven_dnf: bool,
    /// `true` when the MCU provably never powers on — which pins the
    /// brownout count and the outage tail to exactly zero.
    pub never_boots: bool,
}

impl BoundReport {
    /// The bracket for a built-in objective by its stable name, if any.
    pub fn bracket(&self, objective: &str) -> Option<&ScoreBracket> {
        match objective {
            "completion_s" => Some(&self.completion_s),
            "energy_per_task_j" => Some(&self.energy_per_task_j),
            "brownouts" => Some(&self.brownouts),
            "p99_outage_s" => Some(&self.p99_outage_s),
            _ => None,
        }
    }

    /// Deterministic JSON: the four brackets keyed by objective name plus
    /// the two proof flags.
    pub fn to_json(&self) -> edc_core::json::Json {
        edc_core::json::Json::obj(vec![
            ("completion_s", self.completion_s.to_json()),
            ("energy_per_task_j", self.energy_per_task_j.to_json()),
            ("brownouts", self.brownouts.to_json()),
            ("p99_outage_s", self.p99_outage_s.to_json()),
            ("proven_dnf", edc_core::json::Json::Bool(self.proven_dnf)),
            ("never_boots", edc_core::json::Json::Bool(self.never_boots)),
        ])
    }
}

/// The interval engine. Holds the trace catalog specs resolve against, a
/// memo of workload cycle demands (the one genuinely expensive input) and
/// a per-spec memo of finished bound reports.
///
/// ```
/// use edc_bound::Bounder;
/// use edc_core::experiment::ExperimentSpec;
/// use edc_core::scenarios::{SourceKind, StrategyKind};
/// use edc_units::Seconds;
/// use edc_workloads::WorkloadKind;
///
/// let spec = ExperimentSpec::new(
///     SourceKind::Dc { volts: 3.3 },
///     StrategyKind::Restart,
///     WorkloadKind::Crc16(64),
/// )
/// .deadline(Seconds(0.5));
/// let report = Bounder::new().bound_spec(&spec).expect("valid spec");
/// assert!(!report.proven_dnf);
/// assert!(report.completion_s.lo > 0.0, "boot takes at least one tick");
/// ```
#[derive(Debug, Default)]
pub struct Bounder {
    catalog: TraceCatalog,
    cycle_memo: HashMap<WorkloadKind, u64>,
    memo: HashMap<String, Option<BoundReport>>,
}

/// The catalog-independent memo state of a [`Bounder`], so a caller that
/// needs a temporary bounder against a different catalog (fleet linting
/// derives per-node specs into a field-registered catalog) can move the
/// workload cycle memo across instead of re-counting cycles.
#[derive(Debug, Default)]
pub struct CycleMemo(HashMap<WorkloadKind, u64>);

impl Bounder {
    /// A bounder with an empty catalog (synthetic sources only).
    pub fn new() -> Self {
        Self::default()
    }

    /// A bounder resolving trace-backed sources through `catalog`.
    pub fn with_catalog(catalog: TraceCatalog) -> Self {
        Self {
            catalog,
            cycle_memo: HashMap::new(),
            memo: HashMap::new(),
        }
    }

    /// The catalog specs resolve against.
    pub fn catalog(&self) -> &TraceCatalog {
        &self.catalog
    }

    /// Moves the workload cycle memo out (leaving an empty one), for
    /// transfer into a sub-bounder over a different catalog.
    pub fn take_cycle_memo(&mut self) -> CycleMemo {
        CycleMemo(std::mem::take(&mut self.cycle_memo))
    }

    /// Restores a cycle memo taken with [`Bounder::take_cycle_memo`].
    pub fn restore_cycle_memo(&mut self, memo: CycleMemo) {
        self.cycle_memo = memo.0;
    }

    /// The workload's bare cycle demand (memoized). Sound lower bound even
    /// when the cap is exhausted.
    pub fn cycle_floor(&mut self, kind: WorkloadKind) -> u64 {
        if let Some(&n) = self.cycle_memo.get(&kind) {
            return n;
        }
        let workload = kind.make();
        let mut mcu = Mcu::new(workload.program());
        let run = mcu.run(CYCLE_FLOOR_CAP, false);
        let n = match run.exit {
            RunExit::Completed => run.cycles,
            RunExit::BudgetExhausted => CYCLE_FLOOR_CAP,
            // A faulting or marker-stopped bare run still consumed its
            // cycles; use them as a conservative floor.
            _ => run.cycles,
        };
        self.cycle_memo.insert(kind, n);
        n
    }

    /// Derives the closed-form dynamics facts for `spec`, or `None` when
    /// the spec fails validation (no component can be instantiated).
    pub fn facts(&mut self, spec: &ExperimentSpec) -> Option<DynamicsFacts> {
        if !spec.violations_in(&self.catalog).is_empty() {
            return None;
        }

        // Instantiate exactly what the runner's build step would.
        let workload = spec.workload.make();
        let mut strategy = spec.strategy.make();
        let mut mcu = Mcu::new(workload.program()).with_residence(strategy.residence());
        if let Some(pm) = strategy.power_model() {
            mcu = mcu.with_power_model(pm);
        }
        let v_min = mcu.power_model().v_min;
        let (capacitance, efficiency) = match spec.topology {
            Topology::Direct => (spec.decoupling, 1.0),
            Topology::Buffered {
                storage,
                efficiency,
            } => (Farads(spec.decoupling.0 + storage.0), efficiency),
        };
        let (_v_low, v_high) = strategy.thresholds(&mcu, capacitance, v_min, V_MAX);

        let endless = spec.workload == WorkloadKind::Endless;
        let demand_cycles = if endless {
            None
        } else {
            Some(self.cycle_floor(spec.workload))
        };
        let boot_hz = mcu.clock().frequency().0;

        let dt = spec.timestep.0;
        let ticks_ub = (spec.deadline.0 / dt).floor() as u64 + 1;
        let ladder = mcu.clock().levels().to_vec();
        let f_max = ladder.iter().map(|f| f.0).fold(0.0f64, f64::max);
        let per_tick_ub = (f_max * dt).floor() as u64 + 1;

        // Demand lower bound: cheapest clock level, actual residence and
        // power model, no boot/restore/checkpoint overhead.
        let pm = mcu.power_model();
        let residence = mcu.residence();
        let demand_lb = demand_cycles.map(|n| {
            ladder
                .iter()
                .map(|&f| pm.execution_energy(n, f, residence).0)
                .fold(f64::INFINITY, f64::min)
        });

        let supply = match demand_lb {
            Some(dlb) if ticks_ub <= SUPPLY_SCAN_CAP => {
                Some(self.supply_scan(spec, ticks_ub, efficiency, capacitance, v_high, dlb))
            }
            _ => None,
        };

        Some(DynamicsFacts {
            v_min,
            v_high,
            capacitance,
            efficiency,
            snapshot_energy: mcu.snapshot_energy(),
            boot_hz,
            endless,
            demand_cycles,
            ticks_ub,
            per_tick_ub,
            f_max,
            demand_lb,
            supply,
        })
    }

    /// Brackets every built-in objective for `spec`, or `None` when the
    /// spec fails validation. Results are memoized per spec (keyed by its
    /// canonical JSON), so scoring several objectives of one candidate
    /// costs one analysis.
    pub fn bound_spec(&mut self, spec: &ExperimentSpec) -> Option<BoundReport> {
        let key = spec.to_json().to_string();
        if let Some(report) = self.memo.get(&key) {
            return report.clone();
        }
        let report = self.facts(spec).map(|facts| bound_from_facts(spec, &facts));
        self.memo.insert(key, report.clone());
        report
    }

    /// The shared supply scan: per-tick energy and rail upper bounds over
    /// the deadline window, plus the boot-tick lower bound. Exits early
    /// once every verdict is settled feasible — which is exactly when no
    /// full-window value is needed (the linter only formats full-scan
    /// values into diagnostics, and the "never" proofs require a full
    /// scan).
    fn supply_scan(
        &self,
        spec: &ExperimentSpec,
        ticks_ub: u64,
        efficiency: f64,
        capacitance: Farads,
        v_high: Volts,
        demand_lb: f64,
    ) -> SupplyFacts {
        let dt = spec.timestep.0;
        let c = capacitance.0;
        // Boot needs the stored energy to reach C·v_high²/2 from 0 V; a
        // hair of relative slack keeps float rounding on the sound side
        // (an earlier boot bound is always sound).
        let e_boot = 0.5 * c * v_high.0 * v_high.0 * (1.0 - 1e-9);
        let mut source = spec.source.make_in(&self.catalog);
        let mut supply_ub = 0.0f64;
        let mut rail_ub = 0.0f64;
        let mut boot_tick: Option<u64> = None;
        for tick in 0..ticks_ub {
            let t = Seconds(tick as f64 * dt);
            let (e_ub, v_ub) = match source.sample(t) {
                SourceSample::Thevenin { v_oc, r_s } => {
                    let v = spec.rectifier.map_or(v_oc, |r| r.rectify(v_oc)).0.max(0.0);
                    let r = r_s.0;
                    let i_max = efficiency * v / r;
                    (
                        efficiency * v * v / (4.0 * r) * dt + i_max * i_max * dt * dt / (2.0 * c),
                        v * (efficiency * dt / (r * c)).max(1.0),
                    )
                }
                SourceSample::Power(p) => {
                    if p.0 > 0.0 {
                        let i_max = efficiency * p.0 / POWER_SOURCE_COMPLIANCE_FLOOR.0;
                        (
                            efficiency * p.0 * dt + i_max * i_max * dt * dt / (2.0 * c),
                            // A constant-power sample has no open-circuit
                            // ceiling: the rail bound collapses to the clamp.
                            f64::INFINITY,
                        )
                    } else {
                        (0.0, 0.0)
                    }
                }
                SourceSample::Current { i, v_compliance } => {
                    let i = i.0.max(0.0) * efficiency;
                    let vc = v_compliance.0.max(0.0);
                    (i * vc * dt + i * i * dt * dt / (2.0 * c), vc + i * dt / c)
                }
            };
            supply_ub += e_ub;
            rail_ub = rail_ub.max(v_ub.min(V_MAX.0));
            if boot_tick.is_none() && supply_ub >= e_boot {
                boot_tick = Some(tick);
            }
            if supply_ub >= demand_lb && rail_ub + 1e-9 >= v_high.0 && boot_tick.is_some() {
                return SupplyFacts {
                    supply_ub,
                    rail_ub,
                    boot_tick,
                    scanned_full: false,
                };
            }
        }
        SupplyFacts {
            supply_ub,
            rail_ub,
            boot_tick,
            scanned_full: true,
        }
    }
}

/// Derives the per-objective brackets from a spec's dynamics facts.
fn bound_from_facts(spec: &ExperimentSpec, facts: &DynamicsFacts) -> BoundReport {
    let dt = spec.timestep.0;
    let mut proven_dnf = facts.endless || facts.deadline_infeasible();
    let mut never_boots = false;
    if let Some(supply) = &facts.supply {
        if supply.scanned_full {
            if supply.rail_ub + 1e-9 < facts.v_high.0 || supply.boot_tick.is_none() {
                // The rail can never reach the restore threshold, or the
                // whole window's energy cannot charge the node to it.
                never_boots = true;
                proven_dnf = true;
            } else if let Some(demand_lb) = facts.demand_lb {
                if supply.supply_ub < demand_lb {
                    proven_dnf = true;
                }
            }
        }
    }

    let completion_s = if proven_dnf {
        ScoreBracket::exact(f64::INFINITY)
    } else {
        // Completion cannot precede the boot-tick lower bound, nor the
        // tick by which the granted cycles first cover the demand.
        let boot_lb = facts
            .supply
            .as_ref()
            .and_then(|s| s.boot_tick)
            .map(|k| k as f64 * dt)
            .unwrap_or(0.0);
        let cycle_lb = facts
            .demand_cycles
            .map(|n| (n as f64 / facts.per_tick_ub as f64 - 1.0).max(0.0) * dt)
            .unwrap_or(0.0);
        ScoreBracket::new(boot_lb.max(cycle_lb), f64::INFINITY)
    };

    let energy_per_task_j = if proven_dnf {
        ScoreBracket::exact(f64::INFINITY)
    } else {
        // The runner accumulates per-tick energies while the demand bound
        // is one closed-form product; a hair of relative slack keeps the
        // ULP-level summation difference on the sound side.
        ScoreBracket::new(facts.demand_lb.unwrap_or(0.0) * (1.0 - 1e-9), f64::INFINITY)
    };

    // Brownouts and outages are only recorded after a boot, so a proven
    // never-boot pins both to exactly zero.
    let (brownouts, p99_outage_s) = if never_boots {
        (ScoreBracket::exact(0.0), ScoreBracket::exact(0.0))
    } else {
        (
            ScoreBracket::new(0.0, f64::INFINITY),
            ScoreBracket::new(0.0, f64::INFINITY),
        )
    };

    BoundReport {
        completion_s,
        energy_per_task_j,
        brownouts,
        p99_outage_s,
        proven_dnf,
        never_boots,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edc_core::scenarios::{SourceKind, StrategyKind};
    use edc_core::TelemetryKind;
    use edc_core::{SystemReport, TelemetryReport};

    fn spec(source: SourceKind) -> ExperimentSpec {
        ExperimentSpec::new(source, StrategyKind::Hibernus, WorkloadKind::Crc16(64))
            .deadline(Seconds(0.5))
    }

    /// The four built-in objective scores, computed the way
    /// `edc-explore`'s objectives do (this crate cannot depend on it).
    fn scores(report: &SystemReport) -> [f64; 4] {
        let completion = report
            .stats
            .completed_at
            .map(|t| t.0)
            .unwrap_or(f64::INFINITY);
        let energy = if report.stats.completed_at.is_some() {
            report.stats.energy_consumed.0
        } else {
            f64::INFINITY
        };
        let brownouts = report.stats.brownouts as f64;
        let p99 = match &report.telemetry {
            Some(TelemetryReport::Stats(stats)) => stats.outage_s().summary().p99,
            _ => f64::INFINITY,
        };
        [completion, energy, brownouts, p99]
    }

    fn assert_sound(spec: &ExperimentSpec, catalog: &TraceCatalog) {
        let report = Bounder::with_catalog(catalog.clone())
            .bound_spec(spec)
            .expect("valid spec");
        let run = spec
            .telemetry(TelemetryKind::Stats)
            .run_in(catalog)
            .expect("spec runs");
        let [completion, energy, brownouts, p99] = scores(&run);
        assert!(
            report.completion_s.contains(completion),
            "completion {completion} outside {:?} for {}",
            report.completion_s,
            spec.to_json(),
        );
        assert!(
            report.energy_per_task_j.contains(energy),
            "energy {energy} outside {:?} for {}",
            report.energy_per_task_j,
            spec.to_json(),
        );
        assert!(
            report.brownouts.contains(brownouts),
            "brownouts {brownouts} outside {:?} for {}",
            report.brownouts,
            spec.to_json(),
        );
        assert!(
            report.p99_outage_s.contains(p99),
            "p99 outage {p99} outside {:?} for {}",
            report.p99_outage_s,
            spec.to_json(),
        );
    }

    #[test]
    fn healthy_spec_brackets_contain_simulated_scores() {
        let catalog = TraceCatalog::new();
        assert_sound(&spec(SourceKind::Dc { volts: 3.3 }), &catalog);
        assert_sound(&spec(SourceKind::RectifiedSine { hz: 50.0 }), &catalog);
    }

    #[test]
    fn sub_boot_dc_proves_never_boot_with_exact_zero_brownouts() {
        let report = Bounder::new()
            .bound_spec(&spec(SourceKind::Dc { volts: 1.5 }))
            .expect("valid spec");
        assert!(report.never_boots);
        assert!(report.proven_dnf);
        assert_eq!(report.brownouts, ScoreBracket::exact(0.0));
        assert_eq!(report.p99_outage_s, ScoreBracket::exact(0.0));
        assert_eq!(report.completion_s, ScoreBracket::exact(f64::INFINITY));
        assert_sound(&spec(SourceKind::Dc { volts: 1.5 }), &TraceCatalog::new());
    }

    #[test]
    fn starved_trace_proves_dnf_but_not_never_boot_exactness() {
        let mut catalog = TraceCatalog::new();
        let id = catalog
            .register_uniform("dim", Seconds(1e-3), &[1e-6, 1e-6, 1e-6])
            .expect("valid trace");
        let starved = spec(SourceKind::Trace {
            id,
            decimate: 1,
            looped: false,
        });
        let report = Bounder::with_catalog(catalog.clone())
            .bound_spec(&starved)
            .expect("valid spec");
        assert!(report.proven_dnf, "E004-style energy starvation");
        // 1 µW over 0.5 s cannot even charge 10 µF to the boot threshold.
        assert!(report.never_boots);
        assert_sound(&starved, &catalog);
    }

    #[test]
    fn endless_workload_is_proven_dnf_with_open_brownouts() {
        let endless = spec(SourceKind::Dc { volts: 3.3 }).workload(WorkloadKind::Endless);
        let report = Bounder::new().bound_spec(&endless).expect("valid spec");
        assert!(report.proven_dnf);
        assert!(!report.never_boots, "a powered endless spec does boot");
        assert_eq!(report.brownouts, ScoreBracket::new(0.0, f64::INFINITY));
        assert_sound(&endless, &TraceCatalog::new());
    }

    #[test]
    fn impossible_deadline_is_proven_dnf() {
        let tight = spec(SourceKind::RectifiedSine { hz: 50.0 }).deadline(Seconds(10e-6));
        let report = Bounder::new().bound_spec(&tight).expect("valid spec");
        assert!(report.proven_dnf, "E003-style deadline starvation");
        assert_sound(&tight, &TraceCatalog::new());
    }

    #[test]
    fn invalid_spec_gets_no_report() {
        let bad = spec(SourceKind::RectifiedSine { hz: -1.0 });
        assert!(Bounder::new().bound_spec(&bad).is_none());
        assert!(Bounder::new().facts(&bad).is_none());
    }

    #[test]
    fn completion_lower_bound_combines_boot_and_cycle_floors() {
        let healthy = spec(SourceKind::Dc { volts: 3.3 });
        let mut bounder = Bounder::new();
        let facts = bounder.facts(&healthy).expect("valid spec");
        let supply = facts.supply.expect("window under the scan cap");
        let boot = supply.boot_tick.expect("3.3 V boots");
        assert!(boot > 0, "charging 10 µF from 0 V takes more than a tick");
        let report = bounder.bound_spec(&healthy).expect("valid spec");
        assert!(report.completion_s.lo >= boot as f64 * healthy.timestep.0);
    }

    #[test]
    fn memo_serves_repeat_specs_and_cycle_memo_moves() {
        let mut bounder = Bounder::new();
        let s = spec(SourceKind::Dc { volts: 3.3 });
        let a = bounder.bound_spec(&s).expect("valid");
        let b = bounder.bound_spec(&s).expect("valid");
        assert_eq!(a, b);
        let memo = bounder.take_cycle_memo();
        let mut other = Bounder::new();
        other.restore_cycle_memo(memo);
        assert_eq!(other.cycle_floor(WorkloadKind::Crc16(64)), {
            let mut fresh = Bounder::new();
            fresh.cycle_floor(WorkloadKind::Crc16(64))
        });
    }

    #[test]
    fn bracket_json_is_deterministic_and_null_for_infinities() {
        let report = Bounder::new()
            .bound_spec(&spec(SourceKind::Dc { volts: 1.5 }))
            .expect("valid spec");
        let json = report.to_json().to_string();
        assert_eq!(json, report.to_json().to_string());
        assert!(json.contains("\"completion_s\""));
        assert!(json.contains("\"never_boots\":true"));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

            /// Soundness property: across DC levels, strategies, workload
            /// sizes and decoupling values, every simulated score lands
            /// inside its bracket.
            #[test]
            fn brackets_contain_simulated_scores(
                volts in 0.5f64..3.5,
                strategy_i in 0usize..StrategyKind::ALL.len(),
                words in 16u16..96,
                decoupling_uf in 4.0f64..22.0,
            ) {
                let s = ExperimentSpec::new(
                    SourceKind::Dc { volts },
                    StrategyKind::ALL[strategy_i],
                    WorkloadKind::Crc16(words),
                )
                .decoupling(Farads::from_micro(decoupling_uf))
                .deadline(Seconds(0.2));
                let catalog = TraceCatalog::new();
                let report = Bounder::new().bound_spec(&s);
                prop_assert!(report.is_some(), "generated specs are valid");
                let report = report.expect("checked above");
                let run = s
                    .telemetry(TelemetryKind::Stats)
                    .run_in(&catalog)
                    .expect("spec runs");
                let [completion, energy, brownouts, p99] = scores(&run);
                prop_assert!(report.completion_s.contains(completion));
                prop_assert!(report.energy_per_task_j.contains(energy));
                prop_assert!(report.brownouts.contains(brownouts));
                prop_assert!(report.p99_outage_s.contains(p99));
            }
        }
    }
}
