//! The trace catalog: recorded `P_h(t)` series as first-class registry
//! entries.
//!
//! The paper's experiments are ultimately about *real* harvested-power
//! waveforms, but a recorded series is not `Copy`, so it cannot live
//! inside an [`ExperimentSpec`](crate::experiment::ExperimentSpec)
//! directly. The catalog closes that gap:
//!
//! - a [`TraceCatalog`] holds recorded power series, registered **once**
//!   (name + samples, or name + sample period + values);
//! - registration yields a small `Copy` [`TraceId`] handle carrying the
//!   trace's interned name and a content hash, so
//!   [`SourceKind::Trace`](crate::scenarios::SourceKind::Trace) stays
//!   plain spec data and spec JSON identifies the trace losslessly
//!   (name + hash) without embedding the samples;
//! - build-time consumers (`Experiment`, the sweep engine, the explore
//!   evaluator, the fleet runner) resolve the id back to its samples
//!   through a shared catalog reference.
//!
//! Cloning a catalog is cheap (entries are shared via [`Arc`]), and a
//! clone can keep registering without affecting the original — so one
//! catalog value can be handed to sweeps, searchers and fleets alike.
//!
//! # Examples
//!
//! ```
//! use edc_core::catalog::TraceCatalog;
//! use edc_core::experiment::ExperimentSpec;
//! use edc_core::scenarios::{SourceKind, StrategyKind};
//! use edc_units::Seconds;
//! use edc_workloads::WorkloadKind;
//!
//! let mut catalog = TraceCatalog::new();
//! let site = catalog
//!     .register_uniform("site-a", Seconds(0.001), &[0.0, 2e-3, 3e-3, 1e-3])
//!     .expect("valid trace");
//! let report = ExperimentSpec::new(
//!     SourceKind::Trace { id: site, decimate: 1, looped: true },
//!     StrategyKind::Hibernus,
//!     WorkloadKind::Crc16(64),
//! )
//! .deadline(Seconds(5.0))
//! .run_in(&catalog)
//! .expect("trace spec assembles through the catalog");
//! assert_eq!(report.strategy, "hibernus");
//! ```

use std::fmt;
use std::sync::Arc;

use edc_harvest::TracePlayback;
use edc_units::{Seconds, Watts};

use crate::json::Json;

/// Why a trace could not be registered (or a catalog not deserialised).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// Fewer than two samples.
    TooShort,
    /// Sample times not strictly increasing.
    NonMonotonic,
    /// A non-finite sample time or value.
    NonFinite,
    /// The name is already registered with *different* content (hashes
    /// disagree). Registering identical content under an existing name is
    /// not an error — it returns the existing id.
    NameTaken(&'static str),
    /// The catalog is full (more than `u32::MAX` traces).
    Full,
    /// A catalog JSON document did not have the expected shape.
    MalformedJson(&'static str),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::TooShort => f.write_str("a trace needs at least two samples"),
            TraceError::NonMonotonic => f.write_str("trace times must be strictly increasing"),
            TraceError::NonFinite => f.write_str("trace samples must be finite"),
            TraceError::NameTaken(name) => {
                write!(
                    f,
                    "trace '{name}' already registered with different samples"
                )
            }
            TraceError::Full => f.write_str("trace catalog is full"),
            TraceError::MalformedJson(why) => write!(f, "malformed catalog JSON: {why}"),
        }
    }
}

impl std::error::Error for TraceError {}

/// A registered trace's handle: plain `Copy` data small enough to live in
/// a [`SourceKind`](crate::scenarios::SourceKind), carrying everything a
/// spec needs to *name* the trace (the interned name and a content hash)
/// but not the samples themselves — those stay in the catalog.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceId {
    index: u32,
    name: &'static str,
    hash: u64,
}

impl TraceId {
    /// The trace's registered name.
    pub fn name(self) -> &'static str {
        self.name
    }

    /// FNV-1a content hash over the name and every sample's bit pattern.
    /// Two traces with equal hashes and names are treated as the same
    /// recording.
    pub fn content_hash(self) -> u64 {
        self.hash
    }

    /// Position in the owning catalog's registration order.
    pub fn index(self) -> usize {
        self.index as usize
    }
}

/// One recorded series: the name, the `(t_s, watts)` samples, and the
/// content hash they were registered under.
#[derive(Debug)]
struct TraceEntry {
    name: &'static str,
    samples: Vec<(f64, f64)>,
    hash: u64,
}

/// The checks every registration path applies to a candidate series.
fn validate_samples(samples: &[(f64, f64)]) -> Result<(), TraceError> {
    if samples.len() < 2 {
        return Err(TraceError::TooShort);
    }
    // NaN times fail the ordering comparison and would be reported as
    // non-monotone by the window check, so test finiteness first.
    if samples
        .iter()
        .any(|&(t, w)| !(t.is_finite() && w.is_finite()))
    {
        return Err(TraceError::NonFinite);
    }
    if samples.windows(2).any(|pair| pair[0].0 >= pair[1].0) {
        return Err(TraceError::NonMonotonic);
    }
    Ok(())
}

/// Process-wide name interning: the same name string is leaked at most
/// once, however many catalogs register it.
fn intern(name: String) -> &'static str {
    use std::collections::HashSet;
    use std::sync::{Mutex, OnceLock};
    static INTERNED: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let mut set = INTERNED
        .get_or_init(|| Mutex::new(HashSet::new()))
        .lock()
        .expect("intern table poisoned");
    match set.get(name.as_str()) {
        Some(&interned) => interned,
        None => {
            let leaked: &'static str = Box::leak(name.into_boxed_str());
            set.insert(leaked);
            leaked
        }
    }
}

/// FNV-1a over the name's bytes followed by every sample's bit patterns.
fn content_hash(name: &str, samples: &[(f64, f64)]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |byte: u8| {
        h ^= u64::from(byte);
        h = h.wrapping_mul(PRIME);
    };
    for b in name.bytes() {
        eat(b);
    }
    for &(t, w) in samples {
        for b in t.to_bits().to_le_bytes() {
            eat(b);
        }
        for b in w.to_bits().to_le_bytes() {
            eat(b);
        }
    }
    h
}

/// The registry of recorded power traces.
///
/// See the [module docs](self) for the design; in short: register once,
/// carry the `Copy` [`TraceId`] through specs, resolve at build time.
#[derive(Debug, Clone, Default)]
pub struct TraceCatalog {
    entries: Vec<Arc<TraceEntry>>,
}

impl TraceCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of registered traces.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Every registered trace's id, in registration order — ready to
    /// become a `SpecSpace` source axis via
    /// [`SourceKind::trace`](crate::scenarios::SourceKind::trace).
    pub fn ids(&self) -> Vec<TraceId> {
        self.entries
            .iter()
            .enumerate()
            .map(|(i, e)| TraceId {
                index: i as u32,
                name: e.name,
                hash: e.hash,
            })
            .collect()
    }

    /// Registers a recorded `(t_s, watts)` power series and returns its
    /// handle. Registering the *same* name-and-content pair again (into
    /// this catalog or any clone) returns the existing id without copying
    /// anything — the catalog is a set, not a log, and identity is the
    /// name + content hash, exactly what spec JSON pins.
    ///
    /// # Errors
    ///
    /// [`TraceError`] for series shorter than two samples, non-monotone or
    /// non-finite samples, or a name already bound to different content.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        samples: Vec<(f64, f64)>,
    ) -> Result<TraceId, TraceError> {
        let name = name.into();
        validate_samples(&samples)?;
        let hash = content_hash(&name, &samples);
        match self.slot_for(&name, hash)? {
            Ok(id) => Ok(id),
            Err(index) => Ok(self.insert(index, name, samples, hash)),
        }
    }

    /// Borrowing form of [`TraceCatalog::register`]: the samples are only
    /// copied when the trace is genuinely new to this catalog, so callers
    /// that re-register per run (e.g. the fleet runner expanding a
    /// `FieldSpec::PowerTrace` field) pay a hash, not an allocation, after
    /// the first time.
    ///
    /// # Errors
    ///
    /// Exactly [`TraceCatalog::register`]'s.
    pub fn register_ref(
        &mut self,
        name: &str,
        samples: &[(f64, f64)],
    ) -> Result<TraceId, TraceError> {
        validate_samples(samples)?;
        let hash = content_hash(name, samples);
        match self.slot_for(name, hash)? {
            Ok(id) => Ok(id),
            Err(index) => Ok(self.insert(index, name.to_string(), samples.to_vec(), hash)),
        }
    }

    /// The existing id for `name` + `hash` (`Ok`), or the insertion index
    /// for a new entry (`Err`).
    #[allow(clippy::result_large_err)] // Result-as-either, both sides small
    fn slot_for(&self, name: &str, hash: u64) -> Result<Result<TraceId, u32>, TraceError> {
        if let Some((index, entry)) = self
            .entries
            .iter()
            .enumerate()
            .find(|(_, e)| e.name == name)
        {
            if entry.hash == hash {
                edc_metrics::global()
                    .counter(
                        "edc_catalog_reverifications",
                        "Idempotent re-registrations whose content hash verified \
                         against the existing entry.",
                        &[],
                    )
                    .inc();
                return Ok(Ok(TraceId {
                    index: index as u32,
                    name: entry.name,
                    hash,
                }));
            }
            return Err(TraceError::NameTaken(entry.name));
        }
        u32::try_from(self.entries.len())
            .map(Err)
            .map_err(|_| TraceError::Full)
    }

    fn insert(&mut self, index: u32, name: String, samples: Vec<(f64, f64)>, hash: u64) -> TraceId {
        // Interned process-wide so TraceId (and thus SourceKind) can stay
        // Copy: registering the same name again — in this catalog, a
        // clone, or a fresh one — reuses the first allocation, so leaked
        // names are bounded by the number of *distinct* trace names the
        // process ever registers.
        let name = intern(name);
        self.entries.push(Arc::new(TraceEntry {
            name,
            samples,
            hash,
        }));
        edc_metrics::global()
            .counter(
                "edc_catalog_registrations",
                "Traces registered into catalogs (distinct per catalog).",
                &[],
            )
            .inc();
        TraceId { index, name, hash }
    }

    /// Registers a uniformly sampled power series: sample `i` is taken at
    /// `i × period` seconds.
    ///
    /// # Errors
    ///
    /// Everything [`TraceCatalog::register`] rejects, plus a non-positive
    /// or non-finite period (reported as [`TraceError::NonMonotonic`],
    /// since it cannot produce increasing times).
    pub fn register_uniform(
        &mut self,
        name: impl Into<String>,
        period: Seconds,
        watts: &[f64],
    ) -> Result<TraceId, TraceError> {
        if !(period.0 > 0.0 && period.0.is_finite()) {
            return Err(TraceError::NonMonotonic);
        }
        let samples = watts
            .iter()
            .enumerate()
            .map(|(i, &w)| (i as f64 * period.0, w))
            .collect();
        self.register(name, samples)
    }

    /// Looks a handle up, verifying that it really names this catalog's
    /// entry (index in range, name and content hash matching). `None`
    /// means the id belongs to a different (or newer) catalog.
    fn entry(&self, id: TraceId) -> Option<&TraceEntry> {
        self.entries
            .get(id.index())
            .map(Arc::as_ref)
            .filter(|e| e.name == id.name && e.hash == id.hash)
    }

    /// `true` when `id` resolves in this catalog.
    pub fn contains(&self, id: TraceId) -> bool {
        self.entry(id).is_some()
    }

    /// The raw `(t_s, watts)` samples behind a handle.
    pub fn samples(&self, id: TraceId) -> Option<&[(f64, f64)]> {
        self.entry(id).map(|e| e.samples.as_slice())
    }

    /// Instantiates a playback source for a registered trace, decimated by
    /// keeping every `decimate`-th sample (the fidelity knob the explore
    /// evaluator discounts), optionally looping.
    ///
    /// # Errors
    ///
    /// Returns the reason as a string when `id` does not resolve here or
    /// `decimate` is zero.
    pub fn playback(
        &self,
        id: TraceId,
        decimate: u64,
        looped: bool,
    ) -> Result<TracePlayback, &'static str> {
        if decimate == 0 {
            return Err("trace decimation must be ≥ 1");
        }
        let entry = self
            .entry(id)
            .ok_or("trace is not registered in the build catalog")?;
        let series: Vec<(Seconds, Watts)> = entry
            .samples
            .iter()
            .map(|&(t, w)| (Seconds(t), Watts(w)))
            .collect();
        let mut trace = TracePlayback::from_power_series(entry.name, series).decimated(decimate);
        if looped {
            trace = trace.looping();
        }
        Ok(trace)
    }

    /// The catalog as a JSON value: every entry's name, content hash and
    /// full sample series, in registration order. Together with spec JSON
    /// (which names traces by name + hash) this makes trace-backed specs
    /// lossless: [`TraceCatalog::from_json`] rebuilds an equivalent
    /// catalog.
    pub fn to_json(&self) -> Json {
        Json::Arr(
            self.entries
                .iter()
                .map(|e| {
                    Json::obj(vec![
                        ("name", Json::Str(e.name.to_string())),
                        ("hash", Json::Uint(e.hash)),
                        (
                            "samples",
                            Json::Arr(
                                e.samples
                                    .iter()
                                    .map(|&(t, w)| Json::Arr(vec![Json::Num(t), Json::Num(w)]))
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        )
    }

    /// Rebuilds a catalog from [`TraceCatalog::to_json`] output,
    /// re-verifying every entry's content hash.
    ///
    /// # Errors
    ///
    /// [`TraceError::MalformedJson`] for shape mismatches or a stored hash
    /// that disagrees with the recomputed one, plus everything
    /// [`TraceCatalog::register`] rejects.
    pub fn from_json(json: &Json) -> Result<Self, TraceError> {
        let Json::Arr(items) = json else {
            return Err(TraceError::MalformedJson("expected an array of entries"));
        };
        let mut catalog = TraceCatalog::new();
        for item in items {
            let Some(Json::Str(name)) = item.get("name") else {
                return Err(TraceError::MalformedJson("entry missing 'name'"));
            };
            let Some(Json::Uint(hash)) = item.get("hash") else {
                return Err(TraceError::MalformedJson("entry missing 'hash'"));
            };
            let Some(Json::Arr(pairs)) = item.get("samples") else {
                return Err(TraceError::MalformedJson("entry missing 'samples'"));
            };
            let mut samples = Vec::with_capacity(pairs.len());
            for pair in pairs {
                let Json::Arr(tw) = pair else {
                    return Err(TraceError::MalformedJson("sample is not a [t, w] pair"));
                };
                let (Some(t), Some(w)) = (tw.first().and_then(num), tw.get(1).and_then(num)) else {
                    return Err(TraceError::MalformedJson("sample is not a [t, w] pair"));
                };
                samples.push((t, w));
            }
            let id = catalog.register(name.clone(), samples)?;
            if id.content_hash() != *hash {
                return Err(TraceError::MalformedJson("content hash mismatch"));
            }
        }
        Ok(catalog)
    }
}

/// JSON numbers arrive as `Uint` or `Num` depending on their spelling.
fn num(j: &Json) -> Option<f64> {
    match j {
        Json::Num(x) => Some(*x),
        Json::Uint(n) => Some(*n as f64),
        _ => None,
    }
}

#[cfg(test)]
// Tests exercise the asserting wrappers on purpose (they are the
// documented panic surface); production code is held to the try_* forms
// via clippy.toml's disallowed-methods list.
#[allow(clippy::disallowed_methods)]
mod tests {
    use super::*;
    use edc_harvest::EnergySource as _;

    fn samples() -> Vec<(f64, f64)> {
        vec![(0.0, 0.0), (0.5, 2e-3), (1.0, 1e-3)]
    }

    #[test]
    fn register_yields_a_resolvable_handle() {
        let mut catalog = TraceCatalog::new();
        let id = catalog.register("site", samples()).expect("valid");
        assert_eq!(id.name(), "site");
        assert!(catalog.contains(id));
        assert_eq!(catalog.samples(id), Some(samples().as_slice()));
        assert_eq!(catalog.len(), 1);
        assert_eq!(catalog.ids(), vec![id]);
    }

    #[test]
    fn reregistering_identical_content_is_idempotent() {
        let mut catalog = TraceCatalog::new();
        let a = catalog.register("site", samples()).expect("valid");
        let b = catalog.register("site", samples()).expect("idempotent");
        assert_eq!(a, b);
        assert_eq!(catalog.len(), 1);
        let err = catalog
            .register("site", vec![(0.0, 1.0), (1.0, 2.0)])
            .expect_err("same name, different content");
        assert_eq!(err, TraceError::NameTaken("site"));
    }

    #[test]
    fn bad_series_are_rejected_as_values() {
        let mut catalog = TraceCatalog::new();
        assert_eq!(
            catalog.register("short", vec![(0.0, 1.0)]),
            Err(TraceError::TooShort)
        );
        assert_eq!(
            catalog.register("mono", vec![(1.0, 1.0), (0.5, 2.0)]),
            Err(TraceError::NonMonotonic)
        );
        assert_eq!(
            catalog.register("nan", vec![(0.0, f64::NAN), (1.0, 2.0)]),
            Err(TraceError::NonFinite)
        );
        assert_eq!(
            catalog.register_uniform("flat", Seconds(0.0), &[1.0, 2.0]),
            Err(TraceError::NonMonotonic)
        );
        assert!(catalog.is_empty());
    }

    #[test]
    fn uniform_registration_spaces_samples_by_the_period() {
        let mut catalog = TraceCatalog::new();
        let id = catalog
            .register_uniform("u", Seconds(0.25), &[1.0, 2.0, 3.0])
            .expect("valid");
        assert_eq!(
            catalog.samples(id),
            Some([(0.0, 1.0), (0.25, 2.0), (0.5, 3.0)].as_slice())
        );
    }

    #[test]
    fn names_are_interned_once_across_catalogs() {
        // Fleet runners re-register their field's trace into a fresh
        // catalog clone on every run; the process-wide intern table keeps
        // that from leaking a new name allocation each time.
        let mut a = TraceCatalog::new();
        let mut b = TraceCatalog::new();
        let ia = a.register("shared-name", samples()).expect("valid");
        let ib = b.register_ref("shared-name", &samples()).expect("valid");
        assert_eq!(ia, ib);
        assert!(
            std::ptr::eq(ia.name(), ib.name()),
            "one allocation per distinct name, however many catalogs"
        );
    }

    #[test]
    fn register_ref_is_idempotent_without_copying() {
        let mut catalog = TraceCatalog::new();
        let first = catalog.register_ref("site", &samples()).expect("valid");
        let again = catalog
            .register_ref("site", &samples())
            .expect("idempotent");
        assert_eq!(first, again);
        assert_eq!(catalog.len(), 1);
        assert_eq!(
            catalog.register_ref("site", &[(0.0, 9.0), (1.0, 9.0)]),
            Err(TraceError::NameTaken("site"))
        );
    }

    #[test]
    fn foreign_ids_do_not_resolve() {
        let mut a = TraceCatalog::new();
        let mut b = TraceCatalog::new();
        let id_a = a.register("site", samples()).expect("valid");
        let _ = b.register("other", vec![(0.0, 1.0), (1.0, 2.0)]).unwrap();
        assert!(!b.contains(id_a), "hash/name verification rejects");
        assert!(a.playback(id_a, 1, false).is_ok());
        assert!(b.playback(id_a, 1, false).is_err());
        assert!(a.playback(id_a, 0, false).is_err(), "zero decimation");
    }

    #[test]
    fn playback_matches_a_hand_built_trace() {
        let mut catalog = TraceCatalog::new();
        let id = catalog.register("site", samples()).expect("valid");
        let mut from_catalog = catalog.playback(id, 1, true).expect("resolves");
        let mut by_hand = TracePlayback::from_power_series(
            "site",
            samples()
                .into_iter()
                .map(|(t, w)| (Seconds(t), Watts(w)))
                .collect(),
        )
        .looping();
        for i in 0..40 {
            let t = Seconds(i as f64 * 0.173);
            assert_eq!(
                from_catalog.sample(t),
                by_hand.sample(t),
                "diverged at t = {t:?}"
            );
        }
    }

    #[test]
    fn json_round_trip_preserves_ids_and_samples() {
        let mut catalog = TraceCatalog::new();
        let a = catalog.register("site-a", samples()).expect("valid");
        let b = catalog
            .register("site-b", vec![(0.0, 5e-3), (2.0, 0.0)])
            .expect("valid");
        let text = catalog.to_json().to_string();
        let parsed = Json::parse(&text).expect("valid JSON");
        let rebuilt = TraceCatalog::from_json(&parsed).expect("round-trips");
        assert_eq!(rebuilt.len(), 2);
        assert!(rebuilt.contains(a) && rebuilt.contains(b));
        assert_eq!(rebuilt.samples(a), catalog.samples(a));
        assert_eq!(rebuilt.to_json().to_string(), text, "byte-identical");
    }

    #[test]
    fn from_json_rejects_malformed_documents() {
        assert!(TraceCatalog::from_json(&Json::Null).is_err());
        let missing = Json::parse(r#"[{"name":"x"}]"#).unwrap();
        assert!(TraceCatalog::from_json(&missing).is_err());
        let bad_hash = Json::parse(r#"[{"name":"x","hash":1,"samples":[[0,1],[1,2]]}]"#).unwrap();
        assert_eq!(
            TraceCatalog::from_json(&bad_hash).err(),
            Some(TraceError::MalformedJson("content hash mismatch"))
        );
    }

    #[test]
    fn clones_share_entries_but_register_independently() {
        let mut a = TraceCatalog::new();
        let id = a.register("site", samples()).expect("valid");
        let mut b = a.clone();
        let extra = b.register("extra", vec![(0.0, 1.0), (1.0, 0.0)]).unwrap();
        assert!(b.contains(id) && b.contains(extra));
        assert_eq!(a.len(), 1, "original unaffected");
        // Shared entries answer identically through either clone.
        let va = a.playback(id, 1, false).unwrap().power_at(Seconds(0.25));
        let vb = b.playback(id, 1, false).unwrap().power_at(Seconds(0.25));
        assert_eq!(va, vb);
    }
}
