//! The fallible experiment-assembly API.
//!
//! Every figure and table in the paper is "run a (source × topology ×
//! strategy × workload) combination and report statistics". This module
//! makes that combination a first-class, declarative value:
//!
//! - [`ExperimentSpec`] — a `Copy` description built from the kind
//!   registries ([`SourceKind`], [`StrategyKind`], `WorkloadKind`), so a
//!   scenario grid is plain data that can be stored, compared and swept;
//! - [`Experiment`] — the fallible wiring layer, which also accepts custom
//!   boxed sources/strategies/workloads for one-off harnesses;
//! - [`System`] — a built experiment: the transient runner plus its
//!   verifier, producing [`SystemReport`]s that carry the *real* strategy
//!   and workload names.
//!
//! Nothing here panics on bad input: assembly returns [`BuildError`].
//!
//! # Examples
//!
//! ```
//! use edc_core::experiment::ExperimentSpec;
//! use edc_core::scenarios::{SourceKind, StrategyKind};
//! use edc_units::Seconds;
//! use edc_workloads::WorkloadKind;
//!
//! let report = ExperimentSpec::new(
//!     SourceKind::RectifiedSine { hz: 5.0 },
//!     StrategyKind::Hibernus,
//!     WorkloadKind::Crc16(64),
//! )
//! .deadline(Seconds(10.0))
//! .run()
//! .expect("a complete spec assembles");
//! assert!(report.succeeded());
//! assert_eq!(report.strategy, "hibernus");
//! ```

use std::fmt;

use edc_harvest::EnergySource;
use edc_power::Rectifier;
use edc_telemetry::{Sink, TelemetryKind};
use edc_transient::{RunOutcome, Strategy, TransientRunner};
use edc_units::{Farads, Ohms, Seconds, Volts};
use edc_workloads::{VerifyError, Workload, WorkloadKind};

use crate::catalog::TraceCatalog;
use crate::scenarios::{SourceKind, StrategyKind};
use crate::system::{adapt_source, SystemReport, Topology};
use crate::telemetry::TelemetryReport;

/// Why an experiment could not be assembled.
#[derive(Debug, Clone, PartialEq)]
pub enum BuildError {
    /// No energy source was provided.
    MissingSource,
    /// No checkpoint strategy was provided.
    MissingStrategy,
    /// No workload was provided.
    MissingWorkload,
    /// Source-kind parameters outside the constructor's domain.
    InvalidSource(&'static str),
    /// Workload-kind parameters outside the constructor's domain.
    InvalidWorkload(&'static str),
    /// Buffered-topology converter efficiency outside `(0, 1]`.
    InvalidEfficiency(f64),
    /// Non-positive or non-finite simulation timestep (seconds).
    InvalidTimestep(f64),
    /// Non-positive or non-finite decoupling capacitance (farads).
    InvalidDecoupling(f64),
    /// Negative or non-finite buffered storage capacitance (farads).
    InvalidStorage(f64),
    /// Non-positive or non-finite board-leakage resistance (ohms).
    InvalidLeakage(f64),
    /// Zero trace decimation (the trace would never record).
    InvalidTrace,
    /// Non-positive or non-finite run deadline (seconds).
    InvalidDeadline(f64),
    /// Telemetry-kind parameters outside the sink constructor's domain.
    InvalidTelemetry(&'static str),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::MissingSource => write!(f, "an energy source is required"),
            BuildError::MissingStrategy => write!(f, "a checkpoint strategy is required"),
            BuildError::MissingWorkload => write!(f, "a workload is required"),
            BuildError::InvalidSource(why) => write!(f, "invalid source parameters: {why}"),
            BuildError::InvalidWorkload(why) => write!(f, "invalid workload parameters: {why}"),
            BuildError::InvalidEfficiency(x) => {
                write!(f, "converter efficiency must be in (0, 1], got {x}")
            }
            BuildError::InvalidTimestep(x) => {
                write!(f, "timestep must be positive and finite, got {x} s")
            }
            BuildError::InvalidDecoupling(x) => {
                write!(f, "decoupling capacitance must be positive, got {x} F")
            }
            BuildError::InvalidStorage(x) => {
                write!(f, "storage capacitance must be non-negative, got {x} F")
            }
            BuildError::InvalidLeakage(x) => {
                write!(
                    f,
                    "leakage resistance must be positive and finite, got {x} Ω"
                )
            }
            BuildError::InvalidTrace => write!(f, "trace decimation must be ≥ 1"),
            BuildError::InvalidDeadline(x) => {
                write!(f, "deadline must be positive and finite, got {x} s")
            }
            BuildError::InvalidTelemetry(why) => {
                write!(f, "invalid telemetry parameters: {why}")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// A declarative experiment: pure `Copy` data naming every component via
/// the kind registries. The unit of sweeps, tables and JSON trajectories.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentSpec {
    /// The energy source.
    pub source: SourceKind,
    /// Optional rectifier stage in front of the supply node.
    pub rectifier: Option<Rectifier>,
    /// Energy-subsystem topology (Fig. 3 vs. Fig. 4).
    pub topology: Topology,
    /// Decoupling capacitance.
    pub decoupling: Farads,
    /// The checkpoint strategy.
    pub strategy: StrategyKind,
    /// The workload.
    pub workload: WorkloadKind,
    /// Simulation timestep.
    pub timestep: Seconds,
    /// Deadline used by [`ExperimentSpec::run`].
    pub deadline: Seconds,
    /// Optional board-leakage path across the supply rail.
    pub leakage: Option<Ohms>,
    /// Optional `V_cc`/frequency trace decimation.
    pub trace: Option<u64>,
    /// Telemetry sink installed for the run ([`TelemetryKind::Null`] — the
    /// default — installs nothing and costs nothing).
    pub telemetry: TelemetryKind,
}

impl ExperimentSpec {
    /// A spec with Fig. 4 defaults: direct topology, 10 µF decoupling,
    /// 20 µs timestep, 10 s deadline, no rectifier/leakage/trace.
    pub fn new(source: SourceKind, strategy: StrategyKind, workload: WorkloadKind) -> Self {
        Self {
            source,
            rectifier: None,
            topology: Topology::Direct,
            decoupling: Farads::from_micro(10.0),
            strategy,
            workload,
            timestep: Seconds(20e-6),
            deadline: Seconds(10.0),
            leakage: None,
            trace: None,
            telemetry: TelemetryKind::Null,
        }
    }

    /// Replaces the energy source.
    pub fn source(mut self, source: SourceKind) -> Self {
        self.source = source;
        self
    }

    /// Adds a rectifier stage.
    pub fn rectifier(mut self, r: Rectifier) -> Self {
        self.rectifier = Some(r);
        self
    }

    /// Selects the topology.
    pub fn topology(mut self, t: Topology) -> Self {
        self.topology = t;
        self
    }

    /// Overrides the decoupling capacitance.
    pub fn decoupling(mut self, c: Farads) -> Self {
        self.decoupling = c;
        self
    }

    /// Replaces the checkpoint strategy.
    pub fn strategy(mut self, s: StrategyKind) -> Self {
        self.strategy = s;
        self
    }

    /// Replaces the workload.
    pub fn workload(mut self, w: WorkloadKind) -> Self {
        self.workload = w;
        self
    }

    /// Overrides the simulation timestep.
    pub fn timestep(mut self, dt: Seconds) -> Self {
        self.timestep = dt;
        self
    }

    /// Sets the deadline used by [`ExperimentSpec::run`].
    pub fn deadline(mut self, d: Seconds) -> Self {
        self.deadline = d;
        self
    }

    /// Adds a board-leakage path.
    pub fn leakage(mut self, r: Ohms) -> Self {
        self.leakage = Some(r);
        self
    }

    /// Enables `V_cc`/frequency tracing with the given decimation.
    pub fn trace(mut self, decimation: u64) -> Self {
        self.trace = Some(decimation);
        self
    }

    /// Selects the telemetry sink for the run.
    pub fn telemetry(mut self, kind: TelemetryKind) -> Self {
        self.telemetry = kind;
        self
    }

    /// A short human-readable label: `source/strategy/workload`.
    pub fn label(&self) -> String {
        format!(
            "{}/{}/{}",
            self.source.name(),
            self.strategy.name(),
            self.workload.name()
        )
    }

    /// Checks every parameter of the spec — kind registries included —
    /// without instantiating anything. `build`/`run` call this first, so a
    /// bad spec is always an `Err`, never a downstream constructor panic.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), BuildError> {
        self.validate_source(None)
    }

    /// [`ExperimentSpec::validate`], plus resolution of trace-backed
    /// sources against the build catalog (see
    /// [`SourceKind::validate_in`]).
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate_in(&self, catalog: &TraceCatalog) -> Result<(), BuildError> {
        self.validate_source(Some(catalog))
    }

    fn validate_source(&self, catalog: Option<&TraceCatalog>) -> Result<(), BuildError> {
        // `validate` historically ignores the deadline (it only gates
        // `run`), so the first-error path filters it back out of the
        // collect-all list.
        match self
            .collect_violations(catalog)
            .into_iter()
            .find(|e| !matches!(e, BuildError::InvalidDeadline(_)))
        {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Every violated constraint in the spec, in field order — the
    /// collect-all companion to [`ExperimentSpec::validate`]. Unlike
    /// `validate`, the deadline is checked too (last), so a lint pass over
    /// a spec sees the full picture in one call.
    pub fn violations(&self) -> Vec<BuildError> {
        self.collect_violations(None)
    }

    /// [`ExperimentSpec::violations`], plus resolution of trace-backed
    /// sources against the build catalog.
    pub fn violations_in(&self, catalog: &TraceCatalog) -> Vec<BuildError> {
        self.collect_violations(Some(catalog))
    }

    fn collect_violations(&self, catalog: Option<&TraceCatalog>) -> Vec<BuildError> {
        let mut out = Vec::new();
        if let Err(e) = match catalog {
            Some(catalog) => self.source.validate_in(catalog),
            None => self.source.validate(),
        } {
            out.push(BuildError::InvalidSource(e));
        }
        if let Err(e) = self.workload.validate() {
            out.push(BuildError::InvalidWorkload(e));
        }
        if !(self.timestep.0 > 0.0 && self.timestep.0.is_finite()) {
            out.push(BuildError::InvalidTimestep(self.timestep.0));
        }
        if !(self.decoupling.0 > 0.0 && self.decoupling.0.is_finite()) {
            out.push(BuildError::InvalidDecoupling(self.decoupling.0));
        }
        if let Topology::Buffered {
            storage,
            efficiency,
        } = self.topology
        {
            if !(storage.0 >= 0.0 && storage.0.is_finite()) {
                out.push(BuildError::InvalidStorage(storage.0));
            }
            if !(efficiency > 0.0 && efficiency <= 1.0) {
                out.push(BuildError::InvalidEfficiency(efficiency));
            }
        }
        if let Some(r) = self.leakage {
            if !(r.0 > 0.0 && r.0.is_finite()) {
                out.push(BuildError::InvalidLeakage(r.0));
            }
        }
        if self.trace == Some(0) {
            out.push(BuildError::InvalidTrace);
        }
        if let Err(e) = self.telemetry.validate() {
            out.push(BuildError::InvalidTelemetry(e));
        }
        if !(self.deadline.0 > 0.0 && self.deadline.0.is_finite()) {
            out.push(BuildError::InvalidDeadline(self.deadline.0));
        }
        out
    }

    /// Instantiates every component from its registry and assembles the
    /// system. Trace-backed sources need their samples resolved — use
    /// [`ExperimentSpec::build_in`] with the catalog they were registered
    /// in.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] for invalid parameters (the spec always names
    /// all components, so the `Missing*` variants cannot occur here).
    pub fn build(&self) -> Result<System<'static>, BuildError> {
        self.build_in(&TraceCatalog::new())
    }

    /// Like [`ExperimentSpec::build`], resolving [`SourceKind::Trace`] (and
    /// trace-backed field views) through `catalog`.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] for invalid parameters or a trace handle the
    /// catalog does not hold.
    pub fn build_in(&self, catalog: &TraceCatalog) -> Result<System<'static>, BuildError> {
        self.validate_in(catalog)?;
        Experiment::from_spec_in(self, catalog).build()
    }

    /// Builds and runs to completion or `self.deadline`.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] if assembly fails or the deadline is invalid.
    pub fn run(&self) -> Result<SystemReport, BuildError> {
        self.run_in(&TraceCatalog::new())
    }

    /// Like [`ExperimentSpec::run`], resolving trace-backed sources
    /// through `catalog`.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] if assembly fails or the deadline is invalid.
    pub fn run_in(&self, catalog: &TraceCatalog) -> Result<SystemReport, BuildError> {
        if !(self.deadline.0 > 0.0 && self.deadline.0.is_finite()) {
            return Err(BuildError::InvalidDeadline(self.deadline.0));
        }
        Ok(self.build_in(catalog)?.run(self.deadline))
    }

    /// Like [`ExperimentSpec::run_in`], recording runner lifecycle
    /// counters into `metrics` instead of the process-global registry —
    /// the registry-threading counterpart of `run_in`'s catalog
    /// threading, used by the sweep engine and determinism tests.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] if assembly fails or the deadline is invalid.
    pub fn run_metered_in(
        &self,
        catalog: &TraceCatalog,
        metrics: &edc_metrics::Registry,
    ) -> Result<SystemReport, BuildError> {
        if !(self.deadline.0 > 0.0 && self.deadline.0.is_finite()) {
            return Err(BuildError::InvalidDeadline(self.deadline.0));
        }
        let mut system = self.build_in(catalog)?;
        system.set_metrics(metrics.clone());
        Ok(system.run(self.deadline))
    }

    /// The spec as a JSON value (used by sweep trajectories). Lossless:
    /// every field that distinguishes one grid point from another is
    /// serialised, including kind parameters.
    pub fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        let source = self.source.to_json();
        let workload = workload_to_json(&self.workload);
        let topology = match self.topology {
            Topology::Direct => Json::obj(vec![("kind", Json::Str("direct".into()))]),
            Topology::Buffered {
                storage,
                efficiency,
            } => Json::obj(vec![
                ("kind", Json::Str("buffered".into())),
                ("storage_f", Json::Num(storage.0)),
                ("efficiency", Json::Num(efficiency)),
            ]),
        };
        let rectifier = Json::option(self.rectifier, |r| {
            Json::obj(vec![
                ("kind", Json::Str(format!("{:?}", r.kind()).to_lowercase())),
                ("diode_drop_v", Json::Num(r.diode_drop().0)),
            ])
        });
        let mut pairs = vec![
            ("source", source),
            ("strategy", Json::Str(self.strategy.name().into())),
            ("workload", workload),
            ("topology", topology),
            ("rectifier", rectifier),
            ("decoupling_f", Json::Num(self.decoupling.0)),
            ("timestep_s", Json::Num(self.timestep.0)),
            ("deadline_s", Json::Num(self.deadline.0)),
            (
                "leakage_ohm",
                Json::option(self.leakage, |r| Json::Num(r.0)),
            ),
            ("trace", Json::option(self.trace, Json::Uint)),
        ];
        // Appended only when a sink is selected, so default (Null) specs
        // serialise byte-identically to the pre-telemetry format.
        match self.telemetry {
            TelemetryKind::Null => {}
            TelemetryKind::Ring { capacity } => pairs.push((
                "telemetry",
                Json::obj(vec![
                    ("kind", Json::Str("ring".into())),
                    ("capacity", Json::Uint(capacity as u64)),
                ]),
            )),
            TelemetryKind::Stats => pairs.push((
                "telemetry",
                Json::obj(vec![("kind", Json::Str("stats".into()))]),
            )),
            TelemetryKind::Timeline => pairs.push((
                "telemetry",
                Json::obj(vec![("kind", Json::Str("timeline".into()))]),
            )),
        }
        Json::obj(pairs)
    }

    /// Rebuilds a spec from [`ExperimentSpec::to_json`] output, resolving
    /// trace-backed sources through `catalog` — the inverse that lets
    /// `edc_lint` (and any external tool) analyse spec JSON from disk.
    /// Parsing is shape-only: the result may still fail
    /// [`ExperimentSpec::validate_in`], which callers run separately.
    ///
    /// # Errors
    ///
    /// Returns the first shape mismatch, unknown kind name, or trace
    /// reference the catalog does not hold.
    pub fn from_json(
        json: &crate::json::Json,
        catalog: &TraceCatalog,
    ) -> Result<Self, &'static str> {
        use crate::json::Json;
        let num = |j: Option<&Json>| match j {
            Some(Json::Num(n)) => Some(*n),
            Some(Json::Uint(u)) => Some(*u as f64),
            _ => None,
        };
        let source =
            SourceKind::from_json(json.get("source").ok_or("spec missing 'source'")?, catalog)?;
        let Some(Json::Str(strategy)) = json.get("strategy") else {
            return Err("spec missing 'strategy'");
        };
        let strategy = StrategyKind::from_name(strategy).ok_or("unknown strategy name")?;
        let workload = workload_from_json(json.get("workload").ok_or("spec missing 'workload'")?)?;
        let topology_json = json.get("topology").ok_or("spec missing 'topology'")?;
        let topology = match topology_json.get("kind") {
            Some(Json::Str(k)) if k == "direct" => Topology::Direct,
            Some(Json::Str(k)) if k == "buffered" => Topology::Buffered {
                storage: Farads(
                    num(topology_json.get("storage_f"))
                        .ok_or("buffered topology missing 'storage_f'")?,
                ),
                efficiency: num(topology_json.get("efficiency"))
                    .ok_or("buffered topology missing 'efficiency'")?,
            },
            _ => return Err("unknown topology kind"),
        };
        let rectifier = match json.get("rectifier") {
            None | Some(Json::Null) => None,
            Some(r) => {
                let kind = match r.get("kind") {
                    Some(Json::Str(k)) if k == "halfwave" => edc_power::RectifierKind::HalfWave,
                    Some(Json::Str(k)) if k == "fullwave" => edc_power::RectifierKind::FullWave,
                    _ => return Err("unknown rectifier kind"),
                };
                let drop = num(r.get("diode_drop_v")).ok_or("rectifier missing 'diode_drop_v'")?;
                if !(drop.is_finite() && drop >= 0.0) {
                    return Err("rectifier diode drop must be finite and ≥ 0");
                }
                Some(Rectifier::new(kind, Volts(drop)))
            }
        };
        let decoupling =
            Farads(num(json.get("decoupling_f")).ok_or("spec missing 'decoupling_f'")?);
        let timestep = Seconds(num(json.get("timestep_s")).ok_or("spec missing 'timestep_s'")?);
        let deadline = Seconds(num(json.get("deadline_s")).ok_or("spec missing 'deadline_s'")?);
        let leakage = match json.get("leakage_ohm") {
            None | Some(Json::Null) => None,
            j => Some(Ohms(num(j).ok_or("'leakage_ohm' is not a number")?)),
        };
        let trace = match json.get("trace") {
            None | Some(Json::Null) => None,
            Some(Json::Uint(u)) => Some(*u),
            _ => return Err("'trace' is not an unsigned integer"),
        };
        let telemetry = match json.get("telemetry") {
            None | Some(Json::Null) => TelemetryKind::Null,
            Some(t) => match t.get("kind") {
                Some(Json::Str(k)) if k == "ring" => match t.get("capacity") {
                    Some(Json::Uint(c)) => TelemetryKind::Ring {
                        capacity: *c as usize,
                    },
                    _ => return Err("ring telemetry missing 'capacity'"),
                },
                Some(Json::Str(k)) if k == "stats" => TelemetryKind::Stats,
                Some(Json::Str(k)) if k == "timeline" => TelemetryKind::Timeline,
                _ => return Err("unknown telemetry kind"),
            },
        };
        Ok(Self {
            source,
            rectifier,
            topology,
            decoupling,
            strategy,
            workload,
            timestep,
            deadline,
            leakage,
            trace,
            telemetry,
        })
    }
}

/// Encodes a workload kind as the `workload` object of
/// [`ExperimentSpec::to_json`] — kind name plus its size parameters.
/// Public so axis codecs (e.g. a design-space serialiser) can emit a
/// single workload value in the canonical spec shape.
///
/// ```
/// use edc_core::experiment::workload_to_json;
/// use edc_workloads::WorkloadKind;
///
/// let json = workload_to_json(&WorkloadKind::Crc16(64));
/// assert_eq!(json.to_string(), r#"{"kind":"crc16","n":64}"#);
/// ```
pub fn workload_to_json(workload: &WorkloadKind) -> crate::json::Json {
    use crate::json::Json;
    let mut pairs = vec![("kind", Json::Str(workload.name().into()))];
    match *workload {
        WorkloadKind::BusyLoop(n)
        | WorkloadKind::Crc16(n)
        | WorkloadKind::DotProduct(n)
        | WorkloadKind::Fourier(n)
        | WorkloadKind::InsertionSort(n)
        | WorkloadKind::PrimeSieve(n)
        | WorkloadKind::RadixFft(n)
        | WorkloadKind::RunLength(n) => pairs.push(("n", Json::Uint(n as u64))),
        WorkloadKind::FirFilter { n, taps } => {
            pairs.push(("n", Json::Uint(n as u64)));
            pairs.push(("taps", Json::Uint(taps as u64)));
        }
        WorkloadKind::SensePipeline { windows, samples } => {
            pairs.push(("windows", Json::Uint(windows as u64)));
            pairs.push(("samples", Json::Uint(samples as u64)));
        }
        WorkloadKind::Endless | WorkloadKind::MatMul => {}
    }
    Json::obj(pairs)
}

/// Decodes the workload object emitted by [`workload_to_json`] — the
/// inverse codec, public for the same axis-serialisation callers.
///
/// # Errors
///
/// Returns the first shape mismatch or unknown kind name.
///
/// ```
/// use edc_core::experiment::{workload_from_json, workload_to_json};
/// use edc_workloads::WorkloadKind;
///
/// let round = workload_from_json(&workload_to_json(&WorkloadKind::MatMul))?;
/// assert_eq!(round, WorkloadKind::MatMul);
/// # Ok::<(), &'static str>(())
/// ```
pub fn workload_from_json(json: &crate::json::Json) -> Result<WorkloadKind, &'static str> {
    use crate::json::Json;
    let uint16 = |key: &str| match json.get(key) {
        Some(Json::Uint(u)) if *u <= u16::MAX as u64 => Some(*u as u16),
        _ => None,
    };
    let Some(Json::Str(kind)) = json.get("kind") else {
        return Err("workload missing 'kind'");
    };
    match kind.as_str() {
        "busy-loop" => Ok(WorkloadKind::BusyLoop(
            uint16("n").ok_or("workload missing 'n'")?,
        )),
        "crc16" => Ok(WorkloadKind::Crc16(
            uint16("n").ok_or("workload missing 'n'")?,
        )),
        "dot-product" => Ok(WorkloadKind::DotProduct(
            uint16("n").ok_or("workload missing 'n'")?,
        )),
        "endless" => Ok(WorkloadKind::Endless),
        "fir-filter" => Ok(WorkloadKind::FirFilter {
            n: uint16("n").ok_or("workload missing 'n'")?,
            taps: uint16("taps").ok_or("fir-filter missing 'taps'")?,
        }),
        "fourier" => Ok(WorkloadKind::Fourier(
            uint16("n").ok_or("workload missing 'n'")?,
        )),
        "insertion-sort" => Ok(WorkloadKind::InsertionSort(
            uint16("n").ok_or("workload missing 'n'")?,
        )),
        "matmul-8x8" => Ok(WorkloadKind::MatMul),
        "prime-sieve" => Ok(WorkloadKind::PrimeSieve(
            uint16("n").ok_or("workload missing 'n'")?,
        )),
        "radix2-fft" => Ok(WorkloadKind::RadixFft(
            uint16("n").ok_or("workload missing 'n'")?,
        )),
        "rle" => Ok(WorkloadKind::RunLength(
            uint16("n").ok_or("workload missing 'n'")?,
        )),
        "sense-pipeline" => Ok(WorkloadKind::SensePipeline {
            windows: uint16("windows").ok_or("sense-pipeline missing 'windows'")?,
            samples: uint16("samples").ok_or("sense-pipeline missing 'samples'")?,
        }),
        _ => Err("unknown workload kind"),
    }
}

/// The fallible wiring layer: `build`/`run` return [`BuildError`] instead
/// of panicking, and kinds from the registries plug in next to custom
/// boxed components.
pub struct Experiment<'a> {
    source: Option<Box<dyn EnergySource + 'a>>,
    rectifier: Option<Rectifier>,
    topology: Topology,
    decoupling: Farads,
    strategy: Option<Box<dyn Strategy + 'a>>,
    workload: Option<Box<dyn Workload + 'a>>,
    timestep: Seconds,
    leakage: Option<Ohms>,
    trace_decimation: Option<u64>,
    telemetry_kind: TelemetryKind,
    custom_sink: Option<Box<dyn Sink + 'a>>,
    metrics: Option<edc_metrics::Registry>,
}

impl<'a> Experiment<'a> {
    /// Starts an empty experiment with Fig. 4 defaults (direct topology,
    /// 10 µF decoupling, 20 µs timestep).
    pub fn new() -> Self {
        Self {
            source: None,
            rectifier: None,
            topology: Topology::Direct,
            decoupling: Farads::from_micro(10.0),
            strategy: None,
            workload: None,
            timestep: Seconds(20e-6),
            leakage: None,
            trace_decimation: None,
            telemetry_kind: TelemetryKind::Null,
            custom_sink: None,
            metrics: None,
        }
    }

    /// An experiment with every component instantiated from `spec`'s kind
    /// registries. Panics for trace-backed sources (their samples live in
    /// a [`TraceCatalog`]); use [`Experiment::from_spec_in`] for those.
    pub fn from_spec(spec: &ExperimentSpec) -> Experiment<'static> {
        Self::from_spec_in(spec, &TraceCatalog::new())
    }

    /// An experiment with every component instantiated from `spec`'s kind
    /// registries, resolving trace-backed sources through `catalog`.
    ///
    /// # Panics
    ///
    /// Panics when the spec's kind parameters are invalid or a trace
    /// handle does not resolve; call
    /// [`ExperimentSpec::validate_in`] first to get violations as values
    /// (as [`ExperimentSpec::build_in`] does).
    pub fn from_spec_in(spec: &ExperimentSpec, catalog: &TraceCatalog) -> Experiment<'static> {
        let mut e = Experiment::new()
            .source(spec.source.make_in(catalog))
            .topology(spec.topology)
            .decoupling(spec.decoupling)
            .strategy(spec.strategy.make())
            .workload(spec.workload.make())
            .timestep(spec.timestep)
            .telemetry_kind(spec.telemetry);
        if let Some(r) = spec.rectifier {
            e = e.rectifier(r);
        }
        if let Some(r) = spec.leakage {
            e = e.leakage(r);
        }
        if let Some(d) = spec.trace {
            e = e.trace(d);
        }
        e
    }

    /// The energy source (required).
    ///
    /// # Deprecation: recorded traces belong in the [`TraceCatalog`]
    ///
    /// This boxed override predates the trace catalog and used to be the
    /// *only* way to run a recorded `P_h(t)` series. For recorded traces
    /// it is now a legacy side door — a boxed source is invisible to
    /// sweeps, `SpecSpace` searches and spec JSON. It keeps working, but
    /// migrate trace harnesses to the spec-driven path:
    ///
    /// ```
    /// use edc_core::catalog::TraceCatalog;
    /// use edc_core::experiment::ExperimentSpec;
    /// use edc_core::scenarios::{SourceKind, StrategyKind};
    /// use edc_units::Seconds;
    /// use edc_workloads::WorkloadKind;
    ///
    /// // Before: Experiment::new().source(TracePlayback::from_power_series(...))
    /// // After: register once, then name the recording in plain spec data.
    /// let mut catalog = TraceCatalog::new();
    /// let site = catalog
    ///     .register("site-a", vec![(0.0, 1e-3), (0.5, 3e-3), (1.0, 2e-3)])
    ///     .expect("valid trace");
    /// let spec = ExperimentSpec::new(
    ///     SourceKind::Trace { id: site, decimate: 1, looped: true },
    ///     StrategyKind::Hibernus,
    ///     WorkloadKind::Crc16(64),
    /// )
    /// .deadline(Seconds(5.0));
    /// assert!(spec.run_in(&catalog).expect("assembles").succeeded());
    /// ```
    ///
    /// The reports are byte-identical between the two paths; the spec path
    /// additionally composes with `Sweep`, `SpecSpace` axes and fleet
    /// fields. Custom *synthetic* sources (closures, one-off models) remain
    /// this method's legitimate use.
    pub fn source(mut self, s: impl EnergySource + 'a) -> Self {
        self.source = Some(Box::new(s));
        self
    }

    /// Shorthand for [`Experiment::source`] via the kind registry. Panics
    /// for trace-backed kinds; use [`Experiment::source_kind_in`].
    pub fn source_kind(self, kind: SourceKind) -> Self {
        self.source(kind.make())
    }

    /// Shorthand for [`Experiment::source`] via the kind registry,
    /// resolving trace-backed kinds through `catalog`.
    ///
    /// # Panics
    ///
    /// Panics when the kind's parameters are invalid or its trace handle
    /// does not resolve; call [`SourceKind::validate_in`] first to get the
    /// violation as a value.
    pub fn source_kind_in(self, kind: SourceKind, catalog: &TraceCatalog) -> Self {
        self.source(kind.make_in(catalog))
    }

    /// Adds a rectifier stage in front of the node.
    pub fn rectifier(mut self, r: Rectifier) -> Self {
        self.rectifier = Some(r);
        self
    }

    /// Selects the energy-subsystem topology.
    pub fn topology(mut self, t: Topology) -> Self {
        self.topology = t;
        self
    }

    /// Overrides the decoupling capacitance.
    pub fn decoupling(mut self, c: Farads) -> Self {
        self.decoupling = c;
        self
    }

    /// The checkpoint strategy (required).
    pub fn strategy(mut self, s: Box<dyn Strategy + 'a>) -> Self {
        self.strategy = Some(s);
        self
    }

    /// Shorthand for [`Experiment::strategy`] via the kind registry.
    pub fn strategy_kind(self, kind: StrategyKind) -> Self {
        self.strategy(kind.make())
    }

    /// The workload (required).
    pub fn workload(mut self, w: Box<dyn Workload + 'a>) -> Self {
        self.workload = Some(w);
        self
    }

    /// Shorthand for [`Experiment::workload`] via the kind registry.
    pub fn workload_kind(self, kind: WorkloadKind) -> Self {
        self.workload(kind.make())
    }

    /// Overrides the simulation timestep.
    pub fn timestep(mut self, dt: Seconds) -> Self {
        self.timestep = dt;
        self
    }

    /// Adds a board-leakage path across the supply rail.
    pub fn leakage(mut self, r: Ohms) -> Self {
        self.leakage = Some(r);
        self
    }

    /// Enables `V_cc`/frequency tracing with the given decimation.
    pub fn trace(mut self, decimation: u64) -> Self {
        self.trace_decimation = Some(decimation);
        self
    }

    /// Selects the telemetry sink via the kind registry.
    pub fn telemetry_kind(mut self, kind: TelemetryKind) -> Self {
        self.telemetry_kind = kind;
        self
    }

    /// Installs a custom telemetry sink (takes precedence over
    /// [`Experiment::telemetry_kind`]). Custom sinks are opaque to
    /// `SystemReport` unless they expose [`Sink::as_any`].
    pub fn telemetry(mut self, sink: Box<dyn Sink + 'a>) -> Self {
        self.custom_sink = Some(sink);
        self
    }

    /// Records runner lifecycle counters into `registry` instead of the
    /// process-global [`edc_metrics::global`] registry. The report itself
    /// is unaffected — metrics are an aggregate side channel, exactly like
    /// telemetry sinks are a per-run one.
    pub fn metrics(mut self, registry: edc_metrics::Registry) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// Assembles the system.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] when a required component is missing or a
    /// physical parameter is out of range.
    pub fn build(self) -> Result<System<'a>, BuildError> {
        let source = self.source.ok_or(BuildError::MissingSource)?;
        let strategy = self.strategy.ok_or(BuildError::MissingStrategy)?;
        let workload = self.workload.ok_or(BuildError::MissingWorkload)?;
        if !(self.timestep.0 > 0.0 && self.timestep.0.is_finite()) {
            return Err(BuildError::InvalidTimestep(self.timestep.0));
        }
        if !(self.decoupling.0 > 0.0 && self.decoupling.0.is_finite()) {
            return Err(BuildError::InvalidDecoupling(self.decoupling.0));
        }
        if let Some(r) = self.leakage {
            if !(r.0 > 0.0 && r.0.is_finite()) {
                return Err(BuildError::InvalidLeakage(r.0));
            }
        }
        if self.trace_decimation == Some(0) {
            return Err(BuildError::InvalidTrace);
        }
        self.telemetry_kind
            .validate()
            .map_err(BuildError::InvalidTelemetry)?;
        let (capacitance, efficiency) = match self.topology {
            Topology::Direct => (self.decoupling, 1.0),
            Topology::Buffered {
                storage,
                efficiency,
            } => {
                if !(storage.0 >= 0.0 && storage.0.is_finite()) {
                    return Err(BuildError::InvalidStorage(storage.0));
                }
                if !(efficiency > 0.0 && efficiency <= 1.0) {
                    return Err(BuildError::InvalidEfficiency(efficiency));
                }
                (storage + self.decoupling, efficiency)
            }
        };
        let strategy_name = strategy.name().to_string();
        let mut builder = TransientRunner::builder()
            .capacitance(capacitance)
            .timestep(self.timestep)
            .strategy(strategy)
            .program(workload.program())
            .source(adapt_source(source, self.rectifier, efficiency));
        if let Some(d) = self.trace_decimation {
            builder = builder.trace(d);
        }
        if let Some(r) = self.leakage {
            builder = builder.leakage(r);
        }
        let sink = self
            .custom_sink
            .or_else(|| self.telemetry_kind.make().map(|s| s as Box<dyn Sink + 'a>));
        if let Some(sink) = sink {
            builder = builder.telemetry(sink);
        }
        Ok(System {
            runner: builder.build(),
            workload,
            strategy_name,
            metrics: self.metrics,
        })
    }

    /// Assembles, then runs to completion or `deadline`.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] if assembly fails or the deadline is invalid.
    pub fn run(self, deadline: Seconds) -> Result<SystemReport, BuildError> {
        if !(deadline.0 > 0.0 && deadline.0.is_finite()) {
            return Err(BuildError::InvalidDeadline(deadline.0));
        }
        Ok(self.build()?.run(deadline))
    }
}

impl Default for Experiment<'_> {
    fn default() -> Self {
        Self::new()
    }
}

/// A built experiment: the transient runner wired to its workload verifier.
pub struct System<'a> {
    runner: TransientRunner<'a>,
    workload: Box<dyn Workload + 'a>,
    strategy_name: String,
    metrics: Option<edc_metrics::Registry>,
}

impl<'a> System<'a> {
    /// The underlying transient runner (thresholds, traces, event log...).
    pub fn runner(&self) -> &TransientRunner<'a> {
        &self.runner
    }

    /// Mutable access to the runner, e.g. for `run_for` horizons.
    pub fn runner_mut(&mut self) -> &mut TransientRunner<'a> {
        &mut self.runner
    }

    /// The workload being executed.
    pub fn workload(&self) -> &dyn Workload {
        &*self.workload
    }

    /// The strategy's display name.
    pub fn strategy_name(&self) -> &str {
        &self.strategy_name
    }

    /// The current `(V_H, V_R)` comparator thresholds.
    pub fn thresholds(&self) -> (Volts, Volts) {
        self.runner.thresholds()
    }

    /// Verifies the workload's persisted results against its golden model.
    ///
    /// # Errors
    ///
    /// Returns [`VerifyError`] when the program has not halted or its
    /// outputs disagree with the golden model.
    pub fn verify(&self) -> Result<(), VerifyError> {
        self.workload.verify(self.runner.mcu())
    }

    /// Redirects this system's runner lifecycle counters into `registry`
    /// (the default is the process-global [`edc_metrics::global`] one).
    pub fn set_metrics(&mut self, registry: edc_metrics::Registry) {
        self.metrics = Some(registry);
    }

    /// Runs to completion or `deadline` and reports, recording the run's
    /// lifecycle counters (ticks, instruction retirements, brownouts,
    /// snapshot/restore counts, cycle-carry activations) into the metrics
    /// registry, labelled by strategy.
    pub fn run(&mut self, deadline: Seconds) -> SystemReport {
        let outcome = self.runner.run_until_complete(deadline);
        self.record_metrics(outcome);
        self.report(outcome)
    }

    /// Records the final [`RunnerStats`](edc_transient::RunnerStats) into
    /// the configured (or global) metrics registry. Counters are pure
    /// functions of the deterministic simulation, so the exposition stays
    /// byte-stable across serial/parallel/repeated execution.
    fn record_metrics(&self, outcome: RunOutcome) {
        let registry = self.metrics.clone().unwrap_or_else(edc_metrics::global);
        let stats = self.runner.stats();
        let strategy: &str = &self.strategy_name;
        let by_strategy: [(&str, &str); 1] = [("strategy", strategy)];
        registry
            .counter("edc_runner_runs", "Transient runs executed.", &by_strategy)
            .inc();
        if outcome == RunOutcome::Completed {
            registry
                .counter(
                    "edc_runner_completions",
                    "Runs whose workload completed by the deadline.",
                    &by_strategy,
                )
                .inc();
        }
        registry
            .counter(
                "edc_runner_ticks",
                "Simulation timesteps advanced.",
                &by_strategy,
            )
            .inc_by(stats.ticks);
        registry
            .counter(
                "edc_runner_instructions",
                "Instructions retired by workloads.",
                &by_strategy,
            )
            .inc_by(stats.instructions);
        registry
            .counter(
                "edc_runner_brownouts",
                "Rail collapses below V_min while the machine was up.",
                &by_strategy,
            )
            .inc_by(stats.brownouts);
        registry
            .counter(
                "edc_runner_snapshots",
                "Snapshot attempts, by whether the copy sealed.",
                &[("strategy", strategy), ("sealed", "true")],
            )
            .inc_by(stats.snapshots);
        registry
            .counter(
                "edc_runner_snapshots",
                "Snapshot attempts, by whether the copy sealed.",
                &[("strategy", strategy), ("sealed", "false")],
            )
            .inc_by(stats.torn_snapshots);
        registry
            .counter(
                "edc_runner_restores",
                "Successful snapshot restores.",
                &by_strategy,
            )
            .inc_by(stats.restores);
        registry
            .counter("edc_runner_boots", "Cold boots.", &by_strategy)
            .inc_by(stats.boots);
        registry
            .counter(
                "edc_runner_cycle_carry_activations",
                "Ticks that banked their whole cycle budget for a starved \
                 head instruction.",
                &by_strategy,
            )
            .inc_by(stats.carry_activations);
    }

    /// Runs for a fixed duration regardless of completion (throughput
    /// probes over non-terminating workloads).
    pub fn run_for(&mut self, duration: Seconds) {
        self.runner.run_for(duration);
    }

    /// Snapshot of the books as a [`SystemReport`] for the given outcome.
    pub fn report(&self, outcome: RunOutcome) -> SystemReport {
        SystemReport {
            outcome,
            stats: self.runner.stats(),
            verification: if outcome == RunOutcome::Completed {
                self.verify()
            } else {
                Err(VerifyError::NotCompleted)
            },
            strategy: self.strategy_name.clone(),
            workload: self.workload.name().to_string(),
            telemetry: self.runner.telemetry().and_then(TelemetryReport::from_sink),
        }
    }

    /// Decomposes into the raw runner and workload, for harnesses that
    /// drive the simulation loop directly.
    pub fn into_parts(self) -> (TransientRunner<'a>, Box<dyn Workload + 'a>) {
        (self.runner, self.workload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edc_harvest::DcSupply;
    use edc_transient::Restart;
    use edc_units::Volts;
    use edc_workloads::BusyLoop;

    #[test]
    fn missing_components_are_reported_not_panicked() {
        assert_eq!(
            Experiment::new().build().err(),
            Some(BuildError::MissingSource)
        );
        assert_eq!(
            Experiment::new()
                .source(DcSupply::new(Volts(3.3)))
                .build()
                .err(),
            Some(BuildError::MissingStrategy)
        );
        assert_eq!(
            Experiment::new()
                .source(DcSupply::new(Volts(3.3)))
                .strategy(Box::new(Restart::new()))
                .build()
                .err(),
            Some(BuildError::MissingWorkload)
        );
    }

    #[test]
    fn invalid_parameters_are_reported() {
        let base = || {
            Experiment::new()
                .source(DcSupply::new(Volts(3.3)))
                .strategy(Box::new(Restart::new()))
                .workload(Box::new(BusyLoop::new(10)))
        };
        assert_eq!(
            base().timestep(Seconds(0.0)).build().err(),
            Some(BuildError::InvalidTimestep(0.0))
        );
        assert_eq!(
            base().decoupling(Farads(-1.0)).build().err(),
            Some(BuildError::InvalidDecoupling(-1.0))
        );
        assert_eq!(
            base()
                .topology(Topology::Buffered {
                    storage: Farads::from_milli(1.0),
                    efficiency: 1.5,
                })
                .build()
                .err(),
            Some(BuildError::InvalidEfficiency(1.5))
        );
        assert_eq!(
            base().run(Seconds(-2.0)).err(),
            Some(BuildError::InvalidDeadline(-2.0))
        );
    }

    #[test]
    fn spec_runs_and_names_its_components() {
        let spec = ExperimentSpec::new(
            SourceKind::Dc { volts: 3.3 },
            StrategyKind::Restart,
            WorkloadKind::BusyLoop(500),
        )
        .deadline(Seconds(1.0));
        let report = spec.run().expect("complete spec runs");
        assert!(report.succeeded());
        assert_eq!(report.strategy, "restart");
        assert_eq!(report.workload, "busy-loop");
        assert_eq!(spec.label(), "dc/restart/busy-loop");
    }

    #[test]
    fn custom_components_mix_with_kinds() {
        let report = Experiment::new()
            .source(DcSupply::new(Volts(3.3)).with_resistance(Ohms(10.0)))
            .strategy_kind(StrategyKind::Hibernus)
            .workload_kind(WorkloadKind::Crc16(64))
            .run(Seconds(5.0))
            .expect("assembles");
        assert!(report.succeeded());
        assert_eq!(report.strategy, "hibernus");
    }

    #[test]
    fn build_errors_display_helpfully() {
        assert!(BuildError::MissingSource.to_string().contains("source"));
        assert!(BuildError::InvalidEfficiency(1.5)
            .to_string()
            .contains("1.5"));
        assert!(BuildError::InvalidDeadline(-2.0).to_string().contains("-2"));
    }
}
