//! Declarative multi-node scenarios: one shared harvest field, `N` nodes.
//!
//! The paper's comparison is strictly single-node — one harvester, one
//! strategy, one workload per run. A [`FleetSpec`] describes the first
//! population-scale scenario: `nodes` copies of a per-node *design* (an
//! [`ExperimentSpec`]) deployed into **one** ambient field (a
//! [`FieldSpec`]: a synthetic [`FieldEnvelope`] or a recorded power trace),
//! partitioned across the population by a [`Placement`]-dependent
//! attenuation and a per-node phase stagger.
//!
//! Like `ExperimentSpec`, a `FleetSpec` is *description*, not computation:
//! it validates, serialises losslessly to JSON, and expands into per-node
//! specs/sources. Execution (parallel fan-out, fleet metrics, merged
//! telemetry) lives in the `edc-fleet` crate.
//!
//! # Examples
//!
//! ```
//! use edc_core::experiment::ExperimentSpec;
//! use edc_core::fleet::{FieldSpec, FleetSpec, Placement};
//! use edc_core::scenarios::{FieldEnvelope, SourceKind, StrategyKind};
//! use edc_units::Seconds;
//! use edc_workloads::WorkloadKind;
//!
//! let design = ExperimentSpec::new(
//!     SourceKind::Dc { volts: 3.3 }, // replaced by each node's field view
//!     StrategyKind::Hibernus,
//!     WorkloadKind::Crc16(64),
//! );
//! let fleet = FleetSpec::new(
//!     FieldSpec::Envelope(FieldEnvelope::RectifiedSine { hz: 50.0 }),
//!     design,
//!     4,
//! )
//! .stagger(Seconds(0.005))
//! .duty_period(Seconds(1.0));
//! fleet.validate()?;
//! let specs = fleet.node_specs().expect("envelope fields expand to specs");
//! assert_eq!(specs.len(), 4);
//! # Ok::<(), edc_core::fleet::FleetError>(())
//! ```

use std::fmt;

use edc_harvest::{EnergySource, FieldView, TracePlayback};
use edc_units::{Seconds, Watts};

use crate::catalog::{TraceCatalog, TraceError};
use crate::experiment::{BuildError, ExperimentSpec};
use crate::json::Json;
use crate::scenarios::{FieldEnvelope, SourceKind};

/// Why a fleet scenario could not be assembled.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetError {
    /// The fleet has no nodes.
    NoNodes,
    /// Negative or non-finite phase stagger (seconds).
    InvalidStagger(f64),
    /// Non-positive or non-finite sensing duty period (seconds).
    InvalidDutyPeriod(f64),
    /// A placement produced an attenuation outside `(0, 1]`.
    InvalidAttenuation {
        /// The node whose placement is invalid.
        node: usize,
        /// The offending attenuation.
        value: f64,
    },
    /// An explicit placement's length does not match the node count.
    PlacementCount {
        /// Nodes in the fleet.
        nodes: usize,
        /// Attenuations supplied.
        placements: usize,
    },
    /// The shared field's parameters are invalid.
    InvalidField(&'static str),
    /// A recorded field could not be registered in the trace catalog.
    Trace(TraceError),
    /// The per-node design failed experiment validation.
    Design(BuildError),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::NoNodes => f.write_str("a fleet needs at least one node"),
            FleetError::InvalidStagger(x) => {
                write!(f, "phase stagger must be finite and ≥ 0, got {x} s")
            }
            FleetError::InvalidDutyPeriod(x) => {
                write!(f, "duty period must be positive and finite, got {x} s")
            }
            FleetError::InvalidAttenuation { node, value } => {
                write!(f, "node {node}: attenuation must be in (0, 1], got {value}")
            }
            FleetError::PlacementCount { nodes, placements } => {
                write!(f, "{placements} explicit placements for {nodes} nodes")
            }
            FleetError::InvalidField(why) => write!(f, "invalid shared field: {why}"),
            FleetError::Trace(e) => write!(f, "invalid shared field: {e}"),
            FleetError::Design(e) => write!(f, "per-node design invalid: {e}"),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<BuildError> for FleetError {
    fn from(e: BuildError) -> Self {
        FleetError::Design(e)
    }
}

impl From<TraceError> for FleetError {
    fn from(e: TraceError) -> Self {
        FleetError::Trace(e)
    }
}

/// The shared ambient field a fleet harvests from.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldSpec {
    /// A synthetic envelope from the kind registry.
    Envelope(FieldEnvelope),
    /// A recorded harvested-power series, replayed for every node
    /// ([`TracePlayback`] semantics: linear interpolation, optional
    /// looping). Sample times must be strictly increasing; values are
    /// watts.
    PowerTrace {
        /// Trace name (carried into logs and JSON).
        name: String,
        /// `(t_s, watts)` samples, strictly increasing in time.
        samples: Vec<(f64, f64)>,
        /// Repeat indefinitely instead of holding the last value.
        looping: bool,
    },
}

impl FieldSpec {
    /// Checks the field's parameters.
    ///
    /// # Errors
    ///
    /// Returns the violated constraint.
    pub fn validate(&self) -> Result<(), FleetError> {
        match self {
            FieldSpec::Envelope(e) => e.validate().map_err(FleetError::InvalidField),
            FieldSpec::PowerTrace { samples, .. } => {
                if samples.len() < 2 {
                    return Err(FleetError::InvalidField("trace needs at least two samples"));
                }
                // NaN times fail this comparison and are caught by the
                // finiteness check below.
                for pair in samples.windows(2) {
                    if pair[0].0 >= pair[1].0 {
                        return Err(FleetError::InvalidField(
                            "trace times must be strictly increasing",
                        ));
                    }
                }
                if samples
                    .iter()
                    .any(|&(t, w)| !(t.is_finite() && w.is_finite()))
                {
                    return Err(FleetError::InvalidField("trace samples must be finite"));
                }
                Ok(())
            }
        }
    }

    /// Display name of the field.
    pub fn name(&self) -> &str {
        match self {
            FieldSpec::Envelope(e) => e.name(),
            FieldSpec::PowerTrace { name, .. } => name,
        }
    }

    /// The field as a `Copy` [`FieldEnvelope`], registering recorded
    /// traces into `catalog` on the way (idempotent: re-registering the
    /// same name-and-samples pair recalls the existing id). This is what
    /// lets trace-backed fleets expand into ordinary per-node
    /// [`SourceKind::FieldView`] specs and run through the same
    /// `run_specs` path as synthetic envelopes.
    ///
    /// # Errors
    ///
    /// [`FleetError::Trace`] when the trace series is invalid or its name
    /// is already bound to different samples.
    pub fn register_in(&self, catalog: &mut TraceCatalog) -> Result<FieldEnvelope, FleetError> {
        match self {
            FieldSpec::Envelope(e) => Ok(*e),
            FieldSpec::PowerTrace {
                name,
                samples,
                looping,
            } => {
                // register_ref: after the first run the samples are only
                // hashed, never copied again.
                let id = catalog.register_ref(name, samples)?;
                Ok(FieldEnvelope::Trace {
                    id,
                    decimate: 1,
                    looped: *looping,
                })
            }
        }
    }

    /// Instantiates one node's view of the field.
    ///
    /// # Panics
    ///
    /// Panics when the field or placement parameters are invalid; validate
    /// the owning [`FleetSpec`] first to get violations as values.
    pub fn make_node_source(&self, attenuation: f64, phase: Seconds) -> Box<dyn EnergySource> {
        match self {
            FieldSpec::Envelope(e) => Box::new(FieldView::new(e.make(), attenuation, phase)),
            FieldSpec::PowerTrace {
                name,
                samples,
                looping,
            } => {
                let series: Vec<(Seconds, Watts)> = samples
                    .iter()
                    .map(|&(t, w)| (Seconds(t), Watts(w)))
                    .collect();
                let mut trace = TracePlayback::from_power_series(name.clone(), series);
                if *looping {
                    trace = trace.looping();
                }
                Box::new(FieldView::new(trace, attenuation, phase))
            }
        }
    }

    /// The field as a JSON value (lossless, deterministic field order).
    pub fn to_json(&self) -> Json {
        match self {
            FieldSpec::Envelope(e) => Json::obj(vec![
                ("kind", Json::Str("envelope".into())),
                ("envelope", e.source_kind().to_json()),
            ]),
            FieldSpec::PowerTrace {
                name,
                samples,
                looping,
            } => Json::obj(vec![
                ("kind", Json::Str("power-trace".into())),
                ("name", Json::Str(name.clone())),
                ("looping", Json::Bool(*looping)),
                (
                    "samples",
                    Json::Arr(
                        samples
                            .iter()
                            .map(|&(t, w)| Json::Arr(vec![Json::Num(t), Json::Num(w)]))
                            .collect(),
                    ),
                ),
            ]),
        }
    }

    /// Parses a field from its [`FieldSpec::to_json`] form. Trace-backed
    /// envelopes resolve their ids through `catalog`.
    ///
    /// # Errors
    ///
    /// A static string naming the malformed key.
    ///
    /// # Examples
    ///
    /// ```
    /// use edc_core::catalog::TraceCatalog;
    /// use edc_core::fleet::FieldSpec;
    /// use edc_core::scenarios::FieldEnvelope;
    ///
    /// let field = FieldSpec::Envelope(FieldEnvelope::Turbine);
    /// let round = FieldSpec::from_json(&field.to_json(), &TraceCatalog::new())?;
    /// assert_eq!(round, field);
    /// # Ok::<(), &'static str>(())
    /// ```
    pub fn from_json(json: &Json, catalog: &TraceCatalog) -> Result<Self, &'static str> {
        match json.get("kind") {
            Some(Json::Str(k)) if k == "envelope" => {
                let Some(envelope) = json.get("envelope") else {
                    return Err("envelope field missing 'envelope'");
                };
                let kind = SourceKind::from_json(envelope, catalog)?;
                FieldEnvelope::from_source_kind(kind)
                    .map(FieldSpec::Envelope)
                    .ok_or("field envelope is not a standalone source kind")
            }
            Some(Json::Str(k)) if k == "power-trace" => {
                let Some(Json::Str(name)) = json.get("name") else {
                    return Err("power-trace field missing 'name'");
                };
                let Some(Json::Bool(looping)) = json.get("looping") else {
                    return Err("power-trace field missing 'looping'");
                };
                let Some(Json::Arr(pairs)) = json.get("samples") else {
                    return Err("power-trace field missing 'samples'");
                };
                let mut samples = Vec::with_capacity(pairs.len());
                for pair in pairs {
                    let Json::Arr(tw) = pair else {
                        return Err("trace sample is not a [t, w] pair");
                    };
                    match (tw.first().and_then(as_f64), tw.get(1).and_then(as_f64)) {
                        (Some(t), Some(w)) if tw.len() == 2 => samples.push((t, w)),
                        _ => return Err("trace sample is not a [t, w] pair"),
                    }
                }
                Ok(FieldSpec::PowerTrace {
                    name: name.clone(),
                    samples,
                    looping: *looping,
                })
            }
            _ => Err("unknown field kind"),
        }
    }
}

/// Numeric JSON values arrive as `Num` or (for whole numbers) `Uint`.
fn as_f64(json: &Json) -> Option<f64> {
    match json {
        Json::Num(n) => Some(*n),
        Json::Uint(u) => Some(*u as f64),
        _ => None,
    }
}

/// How a fleet's nodes are placed relative to the field source, as a
/// per-node attenuation rule.
#[derive(Debug, Clone, PartialEq)]
pub enum Placement {
    /// Every node sees the full field.
    Colocated,
    /// Nodes spread along a line away from the field source: attenuation
    /// falls linearly from `near` (node 0) to `far` (the last node).
    Line {
        /// Attenuation of the nearest node, in `(0, 1]`.
        near: f64,
        /// Attenuation of the farthest node, in `(0, 1]`.
        far: f64,
    },
    /// Explicit per-node attenuations (length must equal the node count).
    Explicit(Vec<f64>),
}

impl Placement {
    /// The attenuation of node `i` in a fleet of `n`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n`, or for [`Placement::Explicit`] if `i` is outside
    /// the supplied list.
    pub fn attenuation(&self, i: usize, n: usize) -> f64 {
        assert!(i < n, "node index out of range");
        match self {
            Placement::Colocated => 1.0,
            Placement::Line { near, far } => {
                if n <= 1 {
                    *near
                } else {
                    near + (far - near) * i as f64 / (n - 1) as f64
                }
            }
            Placement::Explicit(a) => a[i],
        }
    }

    /// The placement as a JSON value.
    pub fn to_json(&self) -> Json {
        match self {
            Placement::Colocated => Json::obj(vec![("kind", Json::Str("colocated".into()))]),
            Placement::Line { near, far } => Json::obj(vec![
                ("kind", Json::Str("line".into())),
                ("near", Json::Num(*near)),
                ("far", Json::Num(*far)),
            ]),
            Placement::Explicit(a) => Json::obj(vec![
                ("kind", Json::Str("explicit".into())),
                (
                    "attenuations",
                    Json::Arr(a.iter().map(|&x| Json::Num(x)).collect()),
                ),
            ]),
        }
    }

    /// Parses a placement from its [`Placement::to_json`] form.
    ///
    /// # Errors
    ///
    /// A static string naming the malformed key.
    ///
    /// # Examples
    ///
    /// ```
    /// use edc_core::fleet::Placement;
    ///
    /// let p = Placement::Line { near: 1.0, far: 0.5 };
    /// assert_eq!(Placement::from_json(&p.to_json())?, p);
    /// # Ok::<(), &'static str>(())
    /// ```
    pub fn from_json(json: &Json) -> Result<Self, &'static str> {
        match json.get("kind") {
            Some(Json::Str(k)) if k == "colocated" => Ok(Placement::Colocated),
            Some(Json::Str(k)) if k == "line" => {
                match (
                    json.get("near").and_then(as_f64),
                    json.get("far").and_then(as_f64),
                ) {
                    (Some(near), Some(far)) => Ok(Placement::Line { near, far }),
                    _ => Err("line placement missing 'near'/'far'"),
                }
            }
            Some(Json::Str(k)) if k == "explicit" => {
                let Some(Json::Arr(items)) = json.get("attenuations") else {
                    return Err("explicit placement missing 'attenuations'");
                };
                let mut a = Vec::with_capacity(items.len());
                for item in items {
                    match as_f64(item) {
                        Some(x) => a.push(x),
                        None => return Err("attenuation is not a number"),
                    }
                }
                Ok(Placement::Explicit(a))
            }
            _ => Err("unknown placement kind"),
        }
    }
}

/// A declarative fleet scenario: `nodes` copies of one per-node design
/// deployed into one shared field.
///
/// The design's own `source` is **replaced** by each node's field view;
/// every other design field (strategy, workload, topology, decoupling,
/// timestep, deadline, leakage, trace, telemetry) applies to every node
/// unchanged.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSpec {
    /// The shared ambient field.
    pub field: FieldSpec,
    /// The per-node design (its `source` is replaced per node).
    pub design: ExperimentSpec,
    /// Number of nodes.
    pub nodes: usize,
    /// Placement rule mapping node index to attenuation.
    pub placement: Placement,
    /// Phase stagger step: node `i` samples the field at `t + i × stagger`.
    pub stagger: Seconds,
    /// The sensing duty period the fleet is sized against (e.g. `1 s` for a
    /// 1 Hz duty cycle); fleet metrics report coverage relative to it.
    pub duty_period: Seconds,
}

impl FleetSpec {
    /// A fleet with colocated placement, no stagger, and a 1 s duty period.
    pub fn new(field: FieldSpec, design: ExperimentSpec, nodes: usize) -> Self {
        Self {
            field,
            design,
            nodes,
            placement: Placement::Colocated,
            stagger: Seconds(0.0),
            duty_period: Seconds(1.0),
        }
    }

    /// Sets the placement rule.
    pub fn placement(mut self, p: Placement) -> Self {
        self.placement = p;
        self
    }

    /// Sets the phase-stagger step.
    pub fn stagger(mut self, s: Seconds) -> Self {
        self.stagger = s;
        self
    }

    /// Sets the sensing duty period.
    pub fn duty_period(mut self, p: Seconds) -> Self {
        self.duty_period = p;
        self
    }

    /// A short human-readable label: `field×nodes/strategy/workload`.
    pub fn label(&self) -> String {
        format!(
            "{}×{}/{}/{}",
            self.field.name(),
            self.nodes,
            self.design.strategy.name(),
            self.design.workload.name()
        )
    }

    /// Node `i`'s phase stagger.
    pub fn phase(&self, i: usize) -> Seconds {
        Seconds(self.stagger.0 * i as f64)
    }

    /// Node `i`'s placement attenuation.
    pub fn attenuation(&self, i: usize) -> f64 {
        self.placement.attenuation(i, self.nodes)
    }

    /// Checks every parameter — field, placement, stagger, duty period,
    /// and the per-node design (with each node's derived field view).
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), FleetError> {
        if self.nodes == 0 {
            return Err(FleetError::NoNodes);
        }
        if !(self.stagger.0.is_finite() && self.stagger.0 >= 0.0) {
            return Err(FleetError::InvalidStagger(self.stagger.0));
        }
        if !(self.duty_period.0 > 0.0 && self.duty_period.0.is_finite()) {
            return Err(FleetError::InvalidDutyPeriod(self.duty_period.0));
        }
        if let Placement::Explicit(a) = &self.placement {
            if a.len() != self.nodes {
                return Err(FleetError::PlacementCount {
                    nodes: self.nodes,
                    placements: a.len(),
                });
            }
        }
        self.field.validate()?;
        for i in 0..self.nodes {
            let a = self.attenuation(i);
            if !(a.is_finite() && a > 0.0 && a <= 1.0) {
                return Err(FleetError::InvalidAttenuation { node: i, value: a });
            }
        }
        if !(self.design.deadline.0 > 0.0 && self.design.deadline.0.is_finite()) {
            return Err(FleetError::Design(BuildError::InvalidDeadline(
                self.design.deadline.0,
            )));
        }
        match self.node_specs() {
            // Envelope fields: the per-node specs carry the field views, so
            // validating them covers placement-derived parameters too.
            Some(specs) => {
                for spec in &specs {
                    spec.validate()?;
                }
            }
            // Trace fields: sample data is checked by `field.validate()`
            // above and per-node specs are re-validated (with the catalog)
            // when the runner expands them, so validate the design shell
            // here (everything but its replaced source).
            None => self.design.validate()?,
        }
        Ok(())
    }

    /// Every violated constraint in the fleet spec — the collect-all
    /// companion to [`FleetSpec::validate`], mirroring
    /// [`ExperimentSpec::violations`]. Design-level violations are reported
    /// once (from node 0's derived spec); for the remaining nodes only
    /// their placement-specific source violations are added.
    pub fn violations(&self) -> Vec<FleetError> {
        let mut out = Vec::new();
        if self.nodes == 0 {
            out.push(FleetError::NoNodes);
        }
        if !(self.stagger.0.is_finite() && self.stagger.0 >= 0.0) {
            out.push(FleetError::InvalidStagger(self.stagger.0));
        }
        if !(self.duty_period.0 > 0.0 && self.duty_period.0.is_finite()) {
            out.push(FleetError::InvalidDutyPeriod(self.duty_period.0));
        }
        if let Placement::Explicit(a) = &self.placement {
            if a.len() != self.nodes {
                out.push(FleetError::PlacementCount {
                    nodes: self.nodes,
                    placements: a.len(),
                });
            }
        }
        if let Err(e) = self.field.validate() {
            out.push(e);
        }
        for i in 0..self.nodes {
            let a = self.attenuation(i);
            if !(a.is_finite() && a > 0.0 && a <= 1.0) {
                out.push(FleetError::InvalidAttenuation { node: i, value: a });
            }
        }
        if !(self.design.deadline.0 > 0.0 && self.design.deadline.0.is_finite()) {
            out.push(FleetError::Design(BuildError::InvalidDeadline(
                self.design.deadline.0,
            )));
        }
        // The deadline is already reported at fleet level above, so the
        // per-spec lists drop their copy of it.
        let not_deadline = |e: &BuildError| !matches!(e, BuildError::InvalidDeadline(_));
        match self.node_specs() {
            Some(specs) => {
                for (i, spec) in specs.iter().enumerate() {
                    for e in spec.violations().into_iter().filter(not_deadline) {
                        if i == 0 || matches!(e, BuildError::InvalidSource(_)) {
                            out.push(FleetError::Design(e));
                        }
                    }
                }
            }
            None => {
                for e in self.design.violations().into_iter().filter(not_deadline) {
                    out.push(FleetError::Design(e));
                }
            }
        }
        out
    }

    /// The per-node experiment specs, when the shared field is a synthetic
    /// [`FieldSpec::Envelope`] (per-node views are then plain
    /// [`SourceKind::FieldView`] data). `None` for trace fields, whose
    /// samples live in a catalog — use [`FleetSpec::node_specs_in`], which
    /// covers *every* field kind.
    pub fn node_specs(&self) -> Option<Vec<ExperimentSpec>> {
        let FieldSpec::Envelope(envelope) = self.field else {
            return None;
        };
        Some(self.specs_over(envelope))
    }

    /// The per-node experiment specs for **any** field kind: recorded
    /// traces are registered into `catalog` (idempotently) and each node
    /// becomes a plain [`SourceKind::FieldView`] over the resulting
    /// envelope, so envelope and trace fleets run through one spec-driven
    /// path.
    ///
    /// # Errors
    ///
    /// [`FleetError::InvalidField`] when a recorded trace cannot be
    /// registered.
    pub fn node_specs_in(
        &self,
        catalog: &mut TraceCatalog,
    ) -> Result<Vec<ExperimentSpec>, FleetError> {
        Ok(self.specs_over(self.field.register_in(catalog)?))
    }

    fn specs_over(&self, envelope: FieldEnvelope) -> Vec<ExperimentSpec> {
        (0..self.nodes)
            .map(|i| {
                self.design.source(SourceKind::FieldView {
                    field: envelope,
                    attenuation: self.attenuation(i),
                    phase_s: self.phase(i).0,
                })
            })
            .collect()
    }

    /// Node `i`'s boxed field view — works for every field kind.
    ///
    /// # Panics
    ///
    /// Panics when the spec is invalid; call [`FleetSpec::validate`] first.
    pub fn node_source(&self, i: usize) -> Box<dyn EnergySource> {
        self.field
            .make_node_source(self.attenuation(i), self.phase(i))
    }

    /// The spec as a JSON value. Lossless: the field (trace samples
    /// included), the per-node design, and every placement parameter are
    /// serialised with deterministic field order.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("field", self.field.to_json()),
            ("design", self.design.to_json()),
            ("nodes", Json::Uint(self.nodes as u64)),
            ("placement", self.placement.to_json()),
            ("stagger_s", Json::Num(self.stagger.0)),
            ("duty_period_s", Json::Num(self.duty_period.0)),
        ])
    }

    /// Parses a fleet spec from its [`FleetSpec::to_json`] form — the
    /// inverse the `edc_timeline` CLI uses to run fleet scenarios from
    /// disk. Trace-backed designs resolve through `catalog`.
    ///
    /// # Errors
    ///
    /// A static string naming the malformed key.
    ///
    /// # Examples
    ///
    /// ```
    /// use edc_core::catalog::TraceCatalog;
    /// use edc_core::experiment::ExperimentSpec;
    /// use edc_core::fleet::{FieldSpec, FleetSpec};
    /// use edc_core::scenarios::{FieldEnvelope, SourceKind, StrategyKind};
    /// use edc_workloads::WorkloadKind;
    ///
    /// let fleet = FleetSpec::new(
    ///     FieldSpec::Envelope(FieldEnvelope::RectifiedSine { hz: 50.0 }),
    ///     ExperimentSpec::new(
    ///         SourceKind::Dc { volts: 3.3 },
    ///         StrategyKind::Hibernus,
    ///         WorkloadKind::Crc16(64),
    ///     ),
    ///     4,
    /// );
    /// let round = FleetSpec::from_json(&fleet.to_json(), &TraceCatalog::new())?;
    /// assert_eq!(round, fleet);
    /// # Ok::<(), &'static str>(())
    /// ```
    pub fn from_json(json: &Json, catalog: &TraceCatalog) -> Result<Self, &'static str> {
        let Some(field) = json.get("field") else {
            return Err("fleet spec missing 'field'");
        };
        let Some(design) = json.get("design") else {
            return Err("fleet spec missing 'design'");
        };
        let Some(Json::Uint(nodes)) = json.get("nodes") else {
            return Err("fleet spec missing 'nodes'");
        };
        let Some(placement) = json.get("placement") else {
            return Err("fleet spec missing 'placement'");
        };
        let Some(stagger) = json.get("stagger_s").and_then(as_f64) else {
            return Err("fleet spec missing 'stagger_s'");
        };
        let Some(duty_period) = json.get("duty_period_s").and_then(as_f64) else {
            return Err("fleet spec missing 'duty_period_s'");
        };
        Ok(Self {
            field: FieldSpec::from_json(field, catalog)?,
            design: ExperimentSpec::from_json(design, catalog)?,
            nodes: *nodes as usize,
            placement: Placement::from_json(placement)?,
            stagger: Seconds(stagger),
            duty_period: Seconds(duty_period),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::StrategyKind;
    use edc_workloads::WorkloadKind;

    fn design() -> ExperimentSpec {
        ExperimentSpec::new(
            SourceKind::Dc { volts: 3.3 },
            StrategyKind::Restart,
            WorkloadKind::BusyLoop(100),
        )
        .deadline(Seconds(1.0))
    }

    fn envelope() -> FieldSpec {
        FieldSpec::Envelope(FieldEnvelope::RectifiedSine { hz: 50.0 })
    }

    #[test]
    fn node_specs_carry_placement_and_stagger() {
        let fleet = FleetSpec::new(envelope(), design(), 3)
            .placement(Placement::Line {
                near: 1.0,
                far: 0.5,
            })
            .stagger(Seconds(0.01));
        fleet.validate().expect("valid fleet");
        let specs = fleet.node_specs().expect("envelope field");
        assert_eq!(specs.len(), 3);
        match specs[2].source {
            SourceKind::FieldView {
                attenuation,
                phase_s,
                ..
            } => {
                assert!((attenuation - 0.5).abs() < 1e-12);
                assert!((phase_s - 0.02).abs() < 1e-12);
            }
            other => panic!("unexpected source {other:?}"),
        }
        // Everything but the source comes from the design.
        assert_eq!(specs[0].strategy, StrategyKind::Restart);
        assert_eq!(specs[0].deadline, Seconds(1.0));
    }

    #[test]
    fn trace_fields_have_no_specs_but_box_sources() {
        let fleet = FleetSpec::new(
            FieldSpec::PowerTrace {
                name: "site".into(),
                samples: vec![(0.0, 1e-3), (1.0, 3e-3)],
                looping: true,
            },
            design(),
            2,
        );
        fleet.validate().expect("valid fleet");
        assert!(fleet.node_specs().is_none());
        let mut src = fleet.node_source(1);
        assert!(src.name().contains("site"));
        let sample = src.sample(Seconds(0.5));
        assert!(sample.power_into(edc_units::Volts(1.0)).0 > 0.0);
    }

    #[test]
    fn validation_rejects_bad_fleets() {
        assert_eq!(
            FleetSpec::new(envelope(), design(), 0).validate(),
            Err(FleetError::NoNodes)
        );
        assert!(matches!(
            FleetSpec::new(envelope(), design(), 2)
                .stagger(Seconds(-1.0))
                .validate(),
            Err(FleetError::InvalidStagger(_))
        ));
        assert!(matches!(
            FleetSpec::new(envelope(), design(), 2)
                .duty_period(Seconds(0.0))
                .validate(),
            Err(FleetError::InvalidDutyPeriod(_))
        ));
        assert!(matches!(
            FleetSpec::new(envelope(), design(), 2)
                .placement(Placement::Explicit(vec![1.0]))
                .validate(),
            Err(FleetError::PlacementCount {
                nodes: 2,
                placements: 1
            })
        ));
        assert!(matches!(
            FleetSpec::new(envelope(), design(), 2)
                .placement(Placement::Line {
                    near: 1.0,
                    far: 0.0
                })
                .validate(),
            Err(FleetError::InvalidAttenuation { node: 1, .. })
        ));
        assert!(matches!(
            FleetSpec::new(
                FieldSpec::PowerTrace {
                    name: "bad".into(),
                    samples: vec![(0.0, 1.0)],
                    looping: false,
                },
                design(),
                1,
            )
            .validate(),
            Err(FleetError::InvalidField(_))
        ));
        assert!(matches!(
            FleetSpec::new(envelope(), design().timestep(Seconds(0.0)), 1).validate(),
            Err(FleetError::Design(BuildError::InvalidTimestep(_)))
        ));
    }

    #[test]
    fn fleet_json_is_lossless_and_deterministic() {
        let fleet = FleetSpec::new(
            FieldSpec::PowerTrace {
                name: "site".into(),
                samples: vec![(0.0, 1e-3), (0.5, 2e-3), (1.0, 0.0)],
                looping: true,
            },
            design(),
            4,
        )
        .placement(Placement::Line {
            near: 1.0,
            far: 0.25,
        })
        .stagger(Seconds(0.125))
        .duty_period(Seconds(2.0));
        let json = fleet.to_json().to_string();
        for key in [
            "\"field\"",
            "\"power-trace\"",
            "\"samples\"",
            "\"design\"",
            "\"nodes\":4",
            "\"placement\"",
            "\"stagger_s\":0.125",
            "\"duty_period_s\":2",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert_eq!(fleet.to_json().to_string(), json);
        assert_eq!(
            Json::parse(&json).expect("valid JSON").to_string(),
            json,
            "parse → emit round-trips byte-identically"
        );
        assert_eq!(fleet.label(), "site×4/restart/busy-loop");
    }

    #[test]
    fn fleet_json_round_trips_through_from_json() {
        let trace_fleet = FleetSpec::new(
            FieldSpec::PowerTrace {
                name: "site".into(),
                samples: vec![(0.0, 1e-3), (0.5, 2e-3), (1.0, 0.0)],
                looping: true,
            },
            design(),
            4,
        )
        .placement(Placement::Explicit(vec![1.0, 0.75, 0.5, 0.25]))
        .stagger(Seconds(0.125))
        .duty_period(Seconds(2.0));
        let envelope_fleet = FleetSpec::new(envelope(), design(), 3).placement(Placement::Line {
            near: 1.0,
            far: 0.5,
        });
        let catalog = TraceCatalog::new();
        for fleet in [trace_fleet, envelope_fleet] {
            let json = fleet.to_json();
            // Parse from the *emitted text*, so whole-number floats that
            // round-trip through `Uint` are covered too.
            let parsed = Json::parse(&json.to_string()).expect("valid JSON");
            let round = FleetSpec::from_json(&parsed, &catalog).expect("parses back");
            assert_eq!(round, fleet);
            assert_eq!(round.to_json().to_string(), json.to_string());
        }
        assert!(FleetSpec::from_json(&Json::obj(vec![]), &catalog).is_err());
    }

    #[test]
    fn colocated_and_single_node_line_placements() {
        let fleet = FleetSpec::new(envelope(), design(), 1).placement(Placement::Line {
            near: 0.8,
            far: 0.2,
        });
        assert!(
            (fleet.attenuation(0) - 0.8).abs() < 1e-12,
            "n = 1 uses near"
        );
        let colocated = FleetSpec::new(envelope(), design(), 5);
        assert_eq!(colocated.attenuation(4), 1.0);
    }
}
