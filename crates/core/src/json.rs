//! Minimal JSON values: deterministic emission and a strict parser.
//!
//! The sweep engine and `SystemReport` serialise results as JSON so that
//! `BENCH_*.json` trajectories can be produced and diffed. The build
//! environment has no registry access, so rather than depending on `serde`
//! this module provides a tiny self-contained value type. Emission is
//! **deterministic**: object keys keep insertion order and numbers use
//! Rust's shortest round-trip formatting, so identical data always yields
//! byte-identical text.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (kept exact — counts can exceed 2^53).
    Uint(u64),
    /// Any other number. Non-finite values emit as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved on emission.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience: an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Convenience: `value.map(f).unwrap_or(Json::Null)`.
    pub fn option<T>(value: Option<T>, f: impl FnOnce(T) -> Json) -> Json {
        value.map(f).unwrap_or(Json::Null)
    }

    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Parses a complete JSON document (no trailing input allowed).
    ///
    /// # Errors
    ///
    /// Returns a byte offset and message for malformed input.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing input"));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Uint(n) => write!(f, "{n}"),
            Json::Num(x) if x.is_finite() => write!(f, "{x}"),
            Json::Num(_) => f.write_str("null"),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_str(c.encode_utf8(&mut [0u8; 4]))?,
        }
    }
    f.write_str("\"")
}

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &'static str) -> ParseError {
        ParseError {
            at: self.pos,
            message,
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, token: &str) -> bool {
        if self.bytes[self.pos..].starts_with(token.as_bytes()) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.bytes.get(self.pos) {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') if self.eat("null") => Ok(Json::Null),
            Some(b't') if self.eat("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat("false") => Ok(Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = *self.bytes.get(self.pos).ok_or(self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or(self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogates are not paired here; the emitter
                            // never produces them.
                            out.push(char::from_u32(code).ok_or(self.err("bad \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => unreachable!("scan stops only at quote or backslash"),
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        let mut fractional = false;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !fractional && !text.starts_with('-') {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::Uint(n));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("malformed number"))
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.pos += 1; // '{'
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            if self.bytes.get(self.pos) != Some(&b'"') {
                return Err(self.err("expected object key"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.bytes.get(self.pos) != Some(&b':') {
                return Err(self.err("expected ':'"));
            }
            self.pos += 1;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emission_is_deterministic_and_ordered() {
        let v = Json::obj(vec![
            ("b", Json::Uint(2)),
            ("a", Json::Arr(vec![Json::Null, Json::Bool(true)])),
            ("s", Json::Str("he\"llo\n".into())),
            ("x", Json::Num(2.5)),
        ]);
        let text = v.to_string();
        assert_eq!(text, r#"{"b":2,"a":[null,true],"s":"he\"llo\n","x":2.5}"#);
        assert_eq!(text, v.to_string(), "repeat emission identical");
    }

    #[test]
    fn parse_round_trips_emitted_text() {
        let v = Json::obj(vec![
            (
                "counts",
                Json::Arr(vec![Json::Uint(0), Json::Uint(u64::MAX)]),
            ),
            ("f", Json::Num(-0.125)),
            ("tiny", Json::Num(3.2e-7)),
            ("none", Json::Null),
            ("tag", Json::Str("π → \"quoted\"\t".into())),
        ]);
        let text = v.to_string();
        let parsed = Json::parse(&text).expect("parses");
        assert_eq!(parsed.to_string(), text, "byte-identical round trip");
        assert_eq!(parsed, v);
    }

    #[test]
    fn non_finite_numbers_emit_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn get_walks_objects() {
        let v = Json::parse(r#"{"a": {"b": [1, 2.5, "x"]}}"#).unwrap();
        let inner = v.get("a").and_then(|a| a.get("b"));
        assert_eq!(
            inner,
            Some(&Json::Arr(vec![
                Json::Uint(1),
                Json::Num(2.5),
                Json::Str("x".into())
            ]))
        );
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn malformed_input_reports_offset() {
        let e = Json::parse("{\"a\": }").unwrap_err();
        assert_eq!(e.at, 6);
        assert!(Json::parse("[1, 2,]").is_err());
        assert!(Json::parse("[1] trailing").is_err());
    }
}
