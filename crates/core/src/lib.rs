//! Energy-driven computing: the core of the workspace.
//!
//! This crate holds the paper's primary contribution — the **taxonomy of
//! computing systems** from Section II (Fig. 2) — together with the system
//! assembly layer that wires the substrate crates (`edc-harvest`,
//! `edc-power`, `edc-mcu`, `edc-workloads`, `edc-transient`, `edc-neutral`,
//! `edc-mpsoc`) into runnable experiments, and the canonical scenario
//! presets behind every figure reproduction.
//!
//! # Examples
//!
//! Classifying the paper's exemplar systems (Fig. 2):
//!
//! ```
//! use edc_core::taxonomy::{catalog, classify};
//!
//! for profile in catalog() {
//!     let class = classify(&profile);
//!     println!("{:<26} {}", profile.name, class);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod experiment;
pub mod fleet;
pub mod json;
pub mod scenarios;
pub mod system;
pub mod taxonomy;
pub mod telemetry;

pub use catalog::{TraceCatalog, TraceError, TraceId};
pub use edc_telemetry::TelemetryKind;
pub use experiment::{BuildError, Experiment, ExperimentSpec, System};
pub use fleet::{FieldSpec, FleetError, FleetSpec, Placement};
pub use scenarios::{FieldEnvelope, SourceKind, StrategyKind};
pub use system::{SystemReport, Topology};
pub use taxonomy::{classify, Adaptation, Classification, SupplyKind, SystemProfile};
pub use telemetry::TelemetryReport;
