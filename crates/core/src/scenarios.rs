//! Canonical experiment scenarios — one preset per figure/claim, shared by
//! the examples, the integration tests, and the bench harnesses so that
//! every consumer reproduces the *same* experiment.

use edc_harvest::{
    DcSupply, EnergySource, FieldView, GustProfile, Photovoltaic, SignalGenerator, Waveform,
    WindTurbine,
};
use edc_transient::{
    Hibernus, HibernusPP, HibernusPn, Mementos, Nvp, QuickRecall, Restart, Strategy,
};
use edc_units::{Hertz, Ohms, Seconds, Volts};

use crate::catalog::{TraceCatalog, TraceId};
use crate::json::Json;

/// The checkpoint strategies compared throughout the workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyKind {
    /// Recompute-from-scratch baseline.
    Restart,
    /// Mementos (compile-time sites + voltage poll).
    Mementos,
    /// Hibernus (Eq. 4 voltage interrupt).
    Hibernus,
    /// Hibernus++ (self-calibrating).
    HibernusPP,
    /// Hibernus-PN (power-neutral DFS governor on top of Hibernus).
    HibernusPn,
    /// QuickRecall (unified FRAM).
    QuickRecall,
    /// Non-volatile processor.
    Nvp,
}

impl StrategyKind {
    /// Every strategy, in presentation order.
    pub const ALL: [StrategyKind; 7] = [
        StrategyKind::Restart,
        StrategyKind::Mementos,
        StrategyKind::Hibernus,
        StrategyKind::HibernusPP,
        StrategyKind::HibernusPn,
        StrategyKind::QuickRecall,
        StrategyKind::Nvp,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            StrategyKind::Restart => "restart",
            StrategyKind::Mementos => "mementos",
            StrategyKind::Hibernus => "hibernus",
            StrategyKind::HibernusPP => "hibernus++",
            StrategyKind::HibernusPn => "hibernus-pn",
            StrategyKind::QuickRecall => "quickrecall",
            StrategyKind::Nvp => "nvp",
        }
    }

    /// The kind with the given [`StrategyKind::name`], for JSON decoding.
    pub fn from_name(name: &str) -> Option<StrategyKind> {
        Self::ALL.iter().copied().find(|k| k.name() == name)
    }

    /// Instantiates the strategy with its default calibration.
    pub fn make(self) -> Box<dyn Strategy> {
        match self {
            StrategyKind::Restart => Box::new(Restart::new()),
            StrategyKind::Mementos => Box::new(Mementos::new()),
            StrategyKind::Hibernus => Box::new(Hibernus::new()),
            StrategyKind::HibernusPP => Box::new(HibernusPP::new()),
            StrategyKind::HibernusPn => Box::new(HibernusPn::new()),
            StrategyKind::QuickRecall => Box::new(QuickRecall::new()),
            StrategyKind::Nvp => Box::new(Nvp::new()),
        }
    }
}

/// An energy source identified by kind and parameters — plain `Copy` data,
/// so experiment grids can carry, clone and serialise their stimulus the
/// same way they carry a [`StrategyKind`].
///
/// Every variant instantiates one of the canonical supplies used across the
/// paper's figures; custom sources still plug in through
/// [`Experiment::source`](crate::experiment::Experiment::source).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SourceKind {
    /// The Fig. 7 stimulus: 4 V half-wave rectified sine behind 100 Ω at
    /// the given frequency.
    RectifiedSine {
        /// Supply frequency in hertz.
        hz: f64,
    },
    /// The Fig. 8 supply: a micro wind turbine's gust (5 V peak, 8 Hz
    /// electrical, Fig. 1(a) envelope, 150 Ω).
    Turbine,
    /// Square-wave interrupted supply, 50% availability at the given
    /// interruption frequency — the Eq. (5) stimulus.
    Interrupted {
        /// Interruption frequency in hertz.
        hz: f64,
    },
    /// A steady DC bench supply behind 10 Ω.
    Dc {
        /// Supply EMF in volts.
        volts: f64,
    },
    /// Indoor photovoltaic cell (Fig. 1(b) band) with the given noise seed.
    IndoorPv {
        /// Deterministic noise seed.
        seed: u64,
    },
    /// Outdoor photovoltaic cell with the given noise seed.
    OutdoorPv {
        /// Deterministic noise seed.
        seed: u64,
    },
    /// One fleet node's view of a shared harvest field: the ambient
    /// [`FieldEnvelope`] seen through a placement attenuation and a phase
    /// stagger. Built by `edc-fleet` when it partitions one field across a
    /// population of nodes; plain `Copy` data like every other kind, so
    /// per-node specs flow through sweeps and searchers unchanged.
    FieldView {
        /// The shared ambient envelope.
        field: FieldEnvelope,
        /// Placement attenuation in `(0, 1]` applied to the envelope's
        /// amplitude.
        attenuation: f64,
        /// Phase stagger in seconds: the node samples the field at
        /// `t + phase_s`.
        phase_s: f64,
    },
    /// A recorded harvested-power trace from the
    /// [`TraceCatalog`]: the spec names the
    /// recording by its `Copy` [`TraceId`] handle (interned name + content
    /// hash) and build-time consumers resolve the samples through the
    /// catalog threaded into `build_in`/`run_specs_in`. Absent from
    /// [`SourceKind::ALL`] because traces have no canonical parameters —
    /// a catalog supplies them.
    Trace {
        /// The registered trace.
        id: TraceId,
        /// Fidelity knob: keep every `decimate`-th sample (`1` = full
        /// fidelity). The explore evaluator discounts decimated runs the
        /// same way it discounts coarse timesteps.
        decimate: u64,
        /// Repeat the recording indefinitely instead of holding its last
        /// value.
        looped: bool,
    },
}

impl SourceKind {
    /// Every standalone source kind at its canonical parameters, in
    /// presentation order. [`SourceKind::FieldView`] is deliberately absent:
    /// it has no canonical parameters of its own — `edc-fleet` derives one
    /// per node placement.
    pub const ALL: [SourceKind; 6] = [
        SourceKind::RectifiedSine { hz: 50.0 },
        SourceKind::Turbine,
        SourceKind::Interrupted { hz: 10.0 },
        SourceKind::Dc { volts: 3.3 },
        SourceKind::IndoorPv { seed: 2017 },
        SourceKind::OutdoorPv { seed: 7 },
    ];

    /// A full-fidelity, non-looping spec handle for a registered trace —
    /// the common case when building a `SpecSpace` source axis from
    /// [`TraceCatalog::ids`].
    pub fn trace(id: TraceId) -> SourceKind {
        SourceKind::Trace {
            id,
            decimate: 1,
            looped: false,
        }
    }

    /// Display name of the source class.
    pub fn name(self) -> &'static str {
        match self {
            SourceKind::RectifiedSine { .. } => "rectified-sine",
            SourceKind::Turbine => "turbine",
            SourceKind::Interrupted { .. } => "interrupted",
            SourceKind::Dc { .. } => "dc",
            SourceKind::IndoorPv { .. } => "indoor-pv",
            SourceKind::OutdoorPv { .. } => "outdoor-pv",
            SourceKind::FieldView { .. } => "field-view",
            SourceKind::Trace { .. } => "trace",
        }
    }

    /// The fidelity discount a trace-backed kind runs at: its decimation
    /// factor (`≥ 1`), or `1.0` for synthetic kinds. The explore
    /// evaluator divides a run's cost by this, mirroring the coarse-`dt`
    /// discount.
    pub fn fidelity_discount(self) -> f64 {
        match self {
            SourceKind::Trace { decimate, .. }
            | SourceKind::FieldView {
                field: FieldEnvelope::Trace { decimate, .. },
                ..
            } => decimate.max(1) as f64,
            _ => 1.0,
        }
    }

    /// Checks the kind's parameters against the source constructors'
    /// domains, so fallible assembly layers can reject a bad kind instead
    /// of letting [`SourceKind::make`] hit a constructor assert.
    ///
    /// # Errors
    ///
    /// Returns the violated constraint.
    pub fn validate(self) -> Result<(), &'static str> {
        match self {
            SourceKind::RectifiedSine { hz } | SourceKind::Interrupted { hz }
                if !(hz.is_finite() && hz > 0.0) =>
            {
                Err("supply frequency must be positive and finite")
            }
            SourceKind::Dc { volts } if !volts.is_finite() => {
                Err("DC supply voltage must be finite")
            }
            SourceKind::FieldView {
                field,
                attenuation,
                phase_s,
            } => {
                field.validate()?;
                if !(attenuation.is_finite() && attenuation > 0.0 && attenuation <= 1.0) {
                    return Err("field-view attenuation must be in (0, 1]");
                }
                if !(phase_s.is_finite() && phase_s >= 0.0) {
                    return Err("field-view phase must be finite and ≥ 0");
                }
                Ok(())
            }
            SourceKind::Trace { decimate: 0, .. } => Err("trace decimation must be ≥ 1"),
            _ => Ok(()),
        }
    }

    /// [`SourceKind::validate`], plus resolution of trace handles against
    /// the build catalog — the check `build_in`/`run_specs_in` gate on, so
    /// a spec naming a trace the catalog does not hold fails as a value,
    /// never a panic.
    ///
    /// # Errors
    ///
    /// Returns the violated constraint.
    pub fn validate_in(self, catalog: &TraceCatalog) -> Result<(), &'static str> {
        self.validate()?;
        match self {
            SourceKind::Trace { id, .. }
            | SourceKind::FieldView {
                field: FieldEnvelope::Trace { id, .. },
                ..
            } if !catalog.contains(id) => Err("trace is not registered in the build catalog"),
            _ => Ok(()),
        }
    }

    /// Instantiates the source, resolving trace handles through `catalog`.
    ///
    /// # Panics
    ///
    /// Panics when the parameters violate the constructor domain or a
    /// trace handle does not resolve in `catalog`; call
    /// [`SourceKind::validate_in`] first to get the violation as a value.
    pub fn make_in(self, catalog: &TraceCatalog) -> Box<dyn EnergySource> {
        match self {
            SourceKind::RectifiedSine { hz } => Box::new(fig7_supply(Hertz(hz))),
            SourceKind::Turbine => Box::new(fig8_turbine()),
            SourceKind::Interrupted { hz } => Box::new(interrupted_supply(Hertz(hz))),
            SourceKind::Dc { volts } => {
                Box::new(DcSupply::new(Volts(volts)).with_resistance(Ohms(10.0)))
            }
            SourceKind::IndoorPv { seed } => Box::new(Photovoltaic::indoor(seed)),
            SourceKind::OutdoorPv { seed } => Box::new(Photovoltaic::outdoor(seed)),
            SourceKind::FieldView {
                field,
                attenuation,
                phase_s,
            } => Box::new(FieldView::new(
                field.make_in(catalog),
                attenuation,
                Seconds(phase_s),
            )),
            SourceKind::Trace {
                id,
                decimate,
                looped,
            } => Box::new(
                catalog
                    .playback(id, decimate, looped)
                    .expect("validate_in gates unresolvable traces"),
            ),
        }
    }

    /// Instantiates the source without a catalog.
    ///
    /// # Panics
    ///
    /// Panics when the parameters violate the constructor domain — and
    /// always for trace-backed kinds, whose samples live in a
    /// [`TraceCatalog`]; use [`SourceKind::make_in`] for those.
    pub fn make(self) -> Box<dyn EnergySource> {
        self.make_in(&TraceCatalog::new())
    }

    /// The kind as a JSON value, lossless: every parameter that
    /// distinguishes one source from another is serialised. Used by
    /// [`ExperimentSpec::to_json`](crate::experiment::ExperimentSpec::to_json)
    /// and fleet field serialisation, so one encoding covers both.
    pub fn to_json(self) -> Json {
        match self {
            SourceKind::RectifiedSine { hz } => Json::obj(vec![
                ("kind", Json::Str("rectified-sine".into())),
                ("hz", Json::Num(hz)),
            ]),
            SourceKind::Turbine => Json::obj(vec![("kind", Json::Str("turbine".into()))]),
            SourceKind::Interrupted { hz } => Json::obj(vec![
                ("kind", Json::Str("interrupted".into())),
                ("hz", Json::Num(hz)),
            ]),
            SourceKind::Dc { volts } => Json::obj(vec![
                ("kind", Json::Str("dc".into())),
                ("volts", Json::Num(volts)),
            ]),
            SourceKind::IndoorPv { seed } => Json::obj(vec![
                ("kind", Json::Str("indoor-pv".into())),
                ("seed", Json::Uint(seed)),
            ]),
            SourceKind::OutdoorPv { seed } => Json::obj(vec![
                ("kind", Json::Str("outdoor-pv".into())),
                ("seed", Json::Uint(seed)),
            ]),
            SourceKind::FieldView {
                field,
                attenuation,
                phase_s,
            } => Json::obj(vec![
                ("kind", Json::Str("field-view".into())),
                ("field", field.source_kind().to_json()),
                ("attenuation", Json::Num(attenuation)),
                ("phase_s", Json::Num(phase_s)),
            ]),
            // Lossless by reference: name + content hash pin *which*
            // recording this is; the samples themselves are serialised once
            // by `TraceCatalog::to_json`, not per spec.
            SourceKind::Trace {
                id,
                decimate,
                looped,
            } => Json::obj(vec![
                ("kind", Json::Str("trace".into())),
                ("name", Json::Str(id.name().into())),
                ("hash", Json::Uint(id.content_hash())),
                ("decimate", Json::Uint(decimate)),
                ("looped", Json::Bool(looped)),
            ]),
        }
    }

    /// Rebuilds a kind from [`SourceKind::to_json`] output, resolving trace
    /// references (name + content hash) through `catalog`.
    ///
    /// # Errors
    ///
    /// Returns the first shape mismatch, unknown kind, or trace reference
    /// the catalog does not hold.
    pub fn from_json(json: &Json, catalog: &TraceCatalog) -> Result<SourceKind, &'static str> {
        let num = |key: &str| match json.get(key) {
            Some(Json::Num(n)) => Some(*n),
            Some(Json::Uint(u)) => Some(*u as f64),
            _ => None,
        };
        let uint = |key: &str| match json.get(key) {
            Some(Json::Uint(u)) => Some(*u),
            _ => None,
        };
        let Some(Json::Str(kind)) = json.get("kind") else {
            return Err("source missing 'kind'");
        };
        match kind.as_str() {
            "rectified-sine" => Ok(SourceKind::RectifiedSine {
                hz: num("hz").ok_or("rectified-sine missing 'hz'")?,
            }),
            "turbine" => Ok(SourceKind::Turbine),
            "interrupted" => Ok(SourceKind::Interrupted {
                hz: num("hz").ok_or("interrupted missing 'hz'")?,
            }),
            "dc" => Ok(SourceKind::Dc {
                volts: num("volts").ok_or("dc missing 'volts'")?,
            }),
            "indoor-pv" => Ok(SourceKind::IndoorPv {
                seed: uint("seed").ok_or("indoor-pv missing 'seed'")?,
            }),
            "outdoor-pv" => Ok(SourceKind::OutdoorPv {
                seed: uint("seed").ok_or("outdoor-pv missing 'seed'")?,
            }),
            "field-view" => {
                let field = json.get("field").ok_or("field-view missing 'field'")?;
                let field = FieldEnvelope::from_source_kind(Self::from_json(field, catalog)?)
                    .ok_or("field-view cannot nest another field-view")?;
                Ok(SourceKind::FieldView {
                    field,
                    attenuation: num("attenuation").ok_or("field-view missing 'attenuation'")?,
                    phase_s: num("phase_s").ok_or("field-view missing 'phase_s'")?,
                })
            }
            "trace" => {
                let Some(Json::Str(name)) = json.get("name") else {
                    return Err("trace missing 'name'");
                };
                let hash = uint("hash").ok_or("trace missing 'hash'")?;
                let decimate = uint("decimate").ok_or("trace missing 'decimate'")?;
                let Some(Json::Bool(looped)) = json.get("looped") else {
                    return Err("trace missing 'looped'");
                };
                let id = catalog
                    .ids()
                    .into_iter()
                    .find(|id| id.name() == name && id.content_hash() == hash)
                    .ok_or("trace is not registered in the build catalog")?;
                Ok(SourceKind::Trace {
                    id,
                    decimate,
                    looped: *looped,
                })
            }
            _ => Err("unknown source kind"),
        }
    }
}

/// The ambient envelope of a shared harvest field, as plain `Copy` data.
///
/// A field is an *environment* — the wind over a deployment site, a room's
/// light, a reader's carrier — where a [`SourceKind`] is one node's supply.
/// The variants mirror the synthetic source kinds one-for-one, plus
/// [`FieldEnvelope::Trace`] for recorded fields named through the
/// [`TraceCatalog`]; `edc-fleet` hands each node a
/// [`SourceKind::FieldView`] over the shared envelope.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FieldEnvelope {
    /// Half-wave rectified sine ambient (the Fig. 7 stimulus).
    RectifiedSine {
        /// Supply frequency in hertz.
        hz: f64,
    },
    /// The Fig. 8 micro wind turbine gust envelope.
    Turbine,
    /// Square-wave interrupted ambient, 50% availability.
    Interrupted {
        /// Interruption frequency in hertz.
        hz: f64,
    },
    /// A steady DC field (bench conditions).
    Dc {
        /// Supply EMF in volts.
        volts: f64,
    },
    /// Indoor photovoltaic band with the given noise seed.
    IndoorPv {
        /// Deterministic noise seed.
        seed: u64,
    },
    /// Outdoor photovoltaic band with the given noise seed.
    OutdoorPv {
        /// Deterministic noise seed.
        seed: u64,
    },
    /// A recorded ambient field from the [`TraceCatalog`] — what
    /// `edc_core::fleet::FieldSpec::PowerTrace` registers itself as, so
    /// trace-backed fleets run through the same spec-driven path as
    /// synthetic ones.
    Trace {
        /// The registered trace.
        id: TraceId,
        /// Fidelity knob: keep every `decimate`-th sample (`1` = full
        /// fidelity).
        decimate: u64,
        /// Repeat the recording indefinitely.
        looped: bool,
    },
}

impl FieldEnvelope {
    /// The inverse of [`FieldEnvelope::source_kind`]: every standalone kind
    /// maps to its envelope; [`SourceKind::FieldView`] (already a view of a
    /// field) has none.
    pub fn from_source_kind(kind: SourceKind) -> Option<FieldEnvelope> {
        match kind {
            SourceKind::RectifiedSine { hz } => Some(FieldEnvelope::RectifiedSine { hz }),
            SourceKind::Turbine => Some(FieldEnvelope::Turbine),
            SourceKind::Interrupted { hz } => Some(FieldEnvelope::Interrupted { hz }),
            SourceKind::Dc { volts } => Some(FieldEnvelope::Dc { volts }),
            SourceKind::IndoorPv { seed } => Some(FieldEnvelope::IndoorPv { seed }),
            SourceKind::OutdoorPv { seed } => Some(FieldEnvelope::OutdoorPv { seed }),
            SourceKind::Trace {
                id,
                decimate,
                looped,
            } => Some(FieldEnvelope::Trace {
                id,
                decimate,
                looped,
            }),
            SourceKind::FieldView { .. } => None,
        }
    }

    /// The equivalent standalone source kind (the envelope sampled at full
    /// strength, zero stagger).
    pub fn source_kind(self) -> SourceKind {
        match self {
            FieldEnvelope::RectifiedSine { hz } => SourceKind::RectifiedSine { hz },
            FieldEnvelope::Turbine => SourceKind::Turbine,
            FieldEnvelope::Interrupted { hz } => SourceKind::Interrupted { hz },
            FieldEnvelope::Dc { volts } => SourceKind::Dc { volts },
            FieldEnvelope::IndoorPv { seed } => SourceKind::IndoorPv { seed },
            FieldEnvelope::OutdoorPv { seed } => SourceKind::OutdoorPv { seed },
            FieldEnvelope::Trace {
                id,
                decimate,
                looped,
            } => SourceKind::Trace {
                id,
                decimate,
                looped,
            },
        }
    }

    /// Display name of the envelope class.
    pub fn name(self) -> &'static str {
        self.source_kind().name()
    }

    /// Checks the envelope's parameters (see [`SourceKind::validate`]).
    ///
    /// # Errors
    ///
    /// Returns the violated constraint.
    pub fn validate(self) -> Result<(), &'static str> {
        self.source_kind().validate()
    }

    /// Instantiates the bare envelope as an energy source, resolving
    /// trace-backed fields through `catalog`.
    ///
    /// # Panics
    ///
    /// Panics when the parameters violate the constructor domain or a
    /// trace handle does not resolve; validate via
    /// [`SourceKind::validate_in`] first to get the violation as a value.
    pub fn make_in(self, catalog: &TraceCatalog) -> Box<dyn EnergySource> {
        self.source_kind().make_in(catalog)
    }

    /// Instantiates the bare envelope without a catalog.
    ///
    /// # Panics
    ///
    /// Panics when the parameters violate the constructor domain — and
    /// always for [`FieldEnvelope::Trace`]; use
    /// [`FieldEnvelope::make_in`] for those.
    pub fn make(self) -> Box<dyn EnergySource> {
        self.source_kind().make()
    }
}

/// The Fig. 7 supply: a half-wave rectified sine from a signal generator
/// (4 V peak behind 100 Ω). The frequency is a parameter because the figure
/// is defined by *cycles*, not absolute time.
pub fn fig7_supply(frequency: Hertz) -> SignalGenerator {
    SignalGenerator::new(Waveform::HalfRectifiedSine, Volts(4.0), frequency)
        .with_resistance(Ohms(100.0))
}

/// The Fig. 8 supply: a micro wind turbine's output during a gust,
/// half-wave rectified at the system input (the rectifier is applied by the
/// system builder). 5 V peak, 8 Hz electrical frequency.
pub fn fig8_turbine() -> WindTurbine {
    WindTurbine::new(Volts(5.0), Hertz(8.0), GustProfile::fig1a()).with_resistance(Ohms(150.0))
}

/// A square-wave interrupted supply with the given interruption frequency
/// and 50% availability — the stimulus of the Eq. (5) crossover sweep
/// (outages at a controlled rate).
pub fn interrupted_supply(interruptions: Hertz) -> SignalGenerator {
    SignalGenerator::new(Waveform::Pulse { duty: 0.5 }, Volts(3.4), interruptions)
        .with_resistance(Ohms(15.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use edc_harvest::EnergySource;
    use edc_units::Seconds;

    #[test]
    fn all_strategies_instantiate() {
        for kind in StrategyKind::ALL {
            let s = kind.make();
            assert_eq!(s.name(), kind.name());
        }
    }

    #[test]
    fn all_sources_instantiate_and_deliver() {
        for kind in SourceKind::ALL {
            let mut s = kind.make();
            assert!(!s.name().is_empty(), "{kind:?}");
            // Every canonical source must push some current into a low rail
            // at some point of its first day. Probe on an irrational-ish
            // stride so periodic sources aren't sampled at zero crossings.
            let delivers = (0..100_000)
                .any(|i| s.current_into(Volts(0.5), Seconds(i as f64 * 0.8641)).0 > 0.0);
            assert!(delivers, "{kind:?} never delivers current");
        }
    }

    #[test]
    fn trace_kind_validates_resolves_and_serialises() {
        let mut catalog = TraceCatalog::new();
        let id = catalog
            .register("site", vec![(0.0, 1e-3), (0.5, 3e-3), (1.0, 2e-3)])
            .expect("valid trace");
        let kind = SourceKind::Trace {
            id,
            decimate: 2,
            looped: true,
        };
        assert_eq!(kind.name(), "trace");
        assert_eq!(kind.fidelity_discount(), 2.0);
        kind.validate().expect("kind-level checks pass");
        kind.validate_in(&catalog).expect("resolves");
        assert_eq!(
            kind.validate_in(&TraceCatalog::new()),
            Err("trace is not registered in the build catalog")
        );
        assert_eq!(
            SourceKind::Trace {
                id,
                decimate: 0,
                looped: false,
            }
            .validate(),
            Err("trace decimation must be ≥ 1")
        );
        let mut source = kind.make_in(&catalog);
        assert_eq!(source.name(), "site");
        assert!(source.sample(Seconds(0.5)).power_into(Volts(1.0)).0 > 0.0);
        let json = kind.to_json().to_string();
        assert!(json.contains("\"kind\":\"trace\""), "{json}");
        assert!(json.contains("\"name\":\"site\""), "{json}");
        assert!(
            json.contains(&format!("\"hash\":{}", id.content_hash())),
            "{json}"
        );
        assert!(json.contains("\"decimate\":2"), "{json}");
        assert!(json.contains("\"looped\":true"), "{json}");
        // The shorthand constructor is full fidelity, non-looping.
        assert_eq!(
            SourceKind::trace(id),
            SourceKind::Trace {
                id,
                decimate: 1,
                looped: false,
            }
        );
    }

    #[test]
    fn trace_envelope_views_resolve_through_the_catalog() {
        let mut catalog = TraceCatalog::new();
        let id = catalog
            .register("field", vec![(0.0, 4e-3), (1.0, 4e-3)])
            .expect("valid trace");
        let view = SourceKind::FieldView {
            field: FieldEnvelope::Trace {
                id,
                decimate: 1,
                looped: true,
            },
            attenuation: 0.5,
            phase_s: 0.25,
        };
        view.validate_in(&catalog).expect("resolves");
        assert!(view.validate_in(&TraceCatalog::new()).is_err());
        assert_eq!(view.fidelity_discount(), 1.0);
        let mut source = view.make_in(&catalog);
        // Half the field's regulated 4 mW.
        let p = source.sample(Seconds(0.0)).power_into(Volts(1.0));
        assert!((p.0 - 2e-3).abs() < 1e-12);
    }

    #[test]
    fn fig7_supply_is_rectified() {
        let g = fig7_supply(Hertz(2.0));
        assert_eq!(g.voltage_at(Seconds(0.375)), Volts(0.0));
        assert!(g.voltage_at(Seconds(0.125)).0 > 3.9);
    }

    #[test]
    fn fig8_turbine_has_gust_window() {
        let mut t = fig8_turbine();
        assert_eq!(t.sample(Seconds(0.0)).current_into(Volts(0.5)).0, 0.0);
        let mid_gust: f64 = (0..100)
            .map(|i| t.output_voltage(Seconds(3.0 + i as f64 * 0.01)).0.abs())
            .fold(0.0, f64::max);
        assert!(mid_gust > 4.0);
    }

    #[test]
    fn interrupted_supply_has_outages() {
        let g = interrupted_supply(Hertz(10.0));
        assert!(g.voltage_at(Seconds(0.01)).0 > 3.0);
        assert_eq!(g.voltage_at(Seconds(0.06)), Volts(0.0));
    }
}
