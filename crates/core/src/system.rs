//! System assembly: wiring an energy source, a power-subsystem topology,
//! a workload, and a checkpoint strategy into a runnable whole.
//!
//! Two topologies mirror the paper's block diagrams:
//!
//! - [`Topology::Direct`] — Fig. 4: harvester → (optional rectifier) →
//!   supply node → harvesting-aware load. Only decoupling-scale capacitance.
//! - [`Topology::Buffered`] — Fig. 3: the same chain but with explicit
//!   added storage and a conversion stage whose efficiency taxes every
//!   joule on the way in.

use edc_harvest::{EnergySource, SourceSample};
use edc_power::Rectifier;
use edc_transient::{RunOutcome, RunnerStats, Strategy, TransientRunner};
use edc_units::{Amps, Farads, Seconds, Volts};
use edc_workloads::{VerifyError, Workload};

/// Energy-subsystem topology (Fig. 3 vs. Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Topology {
    /// Fig. 4: direct, energy-driven. The node capacitance is the system's
    /// decoupling capacitance only.
    Direct,
    /// Fig. 3: buffered, energy-neutral style. Adds explicit storage and an
    /// input conversion stage with the given efficiency in `(0, 1]`.
    Buffered {
        /// Added storage capacitance.
        storage: Farads,
        /// Input converter efficiency.
        efficiency: f64,
    },
}

/// Adapts an [`EnergySource`] (plus an optional rectifier and conversion
/// efficiency) into the `(V, t) → I` closure the transient runner consumes.
pub fn adapt_source<'a>(
    mut source: impl EnergySource + 'a,
    rectifier: Option<Rectifier>,
    efficiency: f64,
) -> impl FnMut(Volts, Seconds) -> Amps + 'a {
    assert!(
        efficiency > 0.0 && efficiency <= 1.0,
        "efficiency in (0, 1]"
    );
    move |v, t| {
        let mut sample = source.sample(t);
        if let (Some(rect), SourceSample::Thevenin { v_oc, r_s }) = (rectifier, sample) {
            sample = SourceSample::Thevenin {
                v_oc: rect.rectify(v_oc),
                r_s,
            };
        }
        sample.current_into(v) * efficiency
    }
}

/// A complete report of one system run.
#[derive(Debug)]
pub struct SystemReport {
    /// Why the run ended.
    pub outcome: RunOutcome,
    /// Runner statistics.
    pub stats: RunnerStats,
    /// Golden-model verification of the workload's persisted results.
    pub verification: Result<(), VerifyError>,
    /// The strategy's display name.
    pub strategy: String,
    /// The workload's display name.
    pub workload: String,
}

impl SystemReport {
    /// `true` when the workload completed *and* verified.
    pub fn succeeded(&self) -> bool {
        self.outcome == RunOutcome::Completed && self.verification.is_ok()
    }
}

/// Builder for a complete energy-driven system.
///
/// # Examples
///
/// ```
/// use edc_core::system::{SystemBuilder, Topology};
/// use edc_harvest::{SignalGenerator, Waveform};
/// use edc_transient::Hibernus;
/// use edc_units::{Hertz, Ohms, Seconds, Volts};
/// use edc_workloads::Crc16;
///
/// let report = SystemBuilder::new()
///     .source(SignalGenerator::new(
///         Waveform::HalfRectifiedSine,
///         Volts(4.0),
///         Hertz(5.0),
///     ).with_resistance(Ohms(100.0)))
///     .strategy(Box::new(Hibernus::new()))
///     .workload(Box::new(Crc16::new(64)))
///     .run(Seconds(10.0));
/// assert!(report.succeeded());
/// ```
pub struct SystemBuilder<'a> {
    source: Option<Box<dyn EnergySource + 'a>>,
    rectifier: Option<Rectifier>,
    topology: Topology,
    decoupling: Farads,
    strategy: Option<Box<dyn Strategy + 'a>>,
    workload: Option<Box<dyn Workload + 'a>>,
    timestep: Seconds,
    leakage: Option<edc_units::Ohms>,
    trace_decimation: Option<u64>,
}

impl<'a> SystemBuilder<'a> {
    /// Starts a system description with Fig. 4 defaults (direct topology,
    /// 10 µF decoupling).
    pub fn new() -> Self {
        Self {
            source: None,
            rectifier: None,
            topology: Topology::Direct,
            decoupling: Farads::from_micro(10.0),
            strategy: None,
            workload: None,
            timestep: Seconds(20e-6),
            leakage: None,
            trace_decimation: None,
        }
    }

    /// Adds a board-leakage path across the supply rail.
    pub fn leakage(mut self, r: edc_units::Ohms) -> Self {
        self.leakage = Some(r);
        self
    }

    /// The energy source (required).
    pub fn source(mut self, s: impl EnergySource + 'a) -> Self {
        self.source = Some(Box::new(s));
        self
    }

    /// Adds a rectifier stage in front of the node.
    pub fn rectifier(mut self, r: Rectifier) -> Self {
        self.rectifier = Some(r);
        self
    }

    /// Selects the energy-subsystem topology.
    pub fn topology(mut self, t: Topology) -> Self {
        self.topology = t;
        self
    }

    /// Overrides the decoupling capacitance (Fig. 4's only storage).
    pub fn decoupling(mut self, c: Farads) -> Self {
        self.decoupling = c;
        self
    }

    /// The checkpoint strategy (required).
    pub fn strategy(mut self, s: Box<dyn Strategy + 'a>) -> Self {
        self.strategy = Some(s);
        self
    }

    /// The workload (required).
    pub fn workload(mut self, w: Box<dyn Workload + 'a>) -> Self {
        self.workload = Some(w);
        self
    }

    /// Overrides the simulation timestep.
    pub fn timestep(mut self, dt: Seconds) -> Self {
        self.timestep = dt;
        self
    }

    /// Enables `V_cc`/frequency tracing with the given decimation.
    pub fn trace(mut self, decimation: u64) -> Self {
        self.trace_decimation = Some(decimation);
        self
    }

    /// Builds the runner and the workload verifier.
    ///
    /// # Panics
    ///
    /// Panics if source, strategy or workload is missing.
    pub fn build(self) -> (TransientRunner<'a>, Box<dyn Workload + 'a>) {
        let source = self.source.expect("source is required");
        let strategy = self.strategy.expect("strategy is required");
        let workload = self.workload.expect("workload is required");
        let (capacitance, efficiency) = match self.topology {
            Topology::Direct => (self.decoupling, 1.0),
            Topology::Buffered {
                storage,
                efficiency,
            } => (storage + self.decoupling, efficiency),
        };
        let mut builder = TransientRunner::builder()
            .capacitance(capacitance)
            .timestep(self.timestep)
            .strategy(strategy)
            .program(workload.program())
            .source(adapt_source(source, self.rectifier, efficiency));
        if let Some(d) = self.trace_decimation {
            builder = builder.trace(d);
        }
        if let Some(r) = self.leakage {
            builder = builder.leakage(r);
        }
        (builder.build(), workload)
    }

    /// Builds and runs to completion (or `deadline`), returning the report.
    ///
    /// # Panics
    ///
    /// Panics if source, strategy or workload is missing.
    pub fn run(self, deadline: Seconds) -> SystemReport {
        let (mut runner, workload) = self.build();
        let outcome = runner.run_until_complete(deadline);
        SystemReport {
            outcome,
            stats: runner.stats(),
            verification: if outcome == RunOutcome::Completed {
                workload.verify(runner.mcu())
            } else {
                Err(VerifyError::NotCompleted)
            },
            strategy: "system".to_string(),
            workload: workload.name().to_string(),
        }
    }
}

impl Default for SystemBuilder<'_> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edc_harvest::{DcSupply, SignalGenerator, Waveform};
    use edc_power::RectifierKind;
    use edc_transient::{Hibernus, Restart};
    use edc_units::{Hertz, Ohms};
    use edc_workloads::{BusyLoop, Crc16};

    #[test]
    fn direct_topology_hibernus_on_rectified_sine() {
        // Fourier-64 needs ~25 ms of execution; at 20 Hz the usable on-window
        // per cycle is shorter, so completion must span supply dips.
        let report = SystemBuilder::new()
            .source(
                SignalGenerator::new(Waveform::Sine, Volts(4.0), Hertz(20.0))
                    .with_resistance(Ohms(100.0)),
            )
            .rectifier(Rectifier::ideal(RectifierKind::HalfWave))
            .strategy(Box::new(Hibernus::new()))
            .workload(Box::new(edc_workloads::Fourier::new(64)))
            .run(Seconds(5.0));
        assert!(report.succeeded(), "outcome {:?}", report.outcome);
        assert!(report.stats.snapshots >= 1, "sine dips must force snapshots");
    }

    #[test]
    fn buffered_topology_rides_through_dips() {
        // With a 1 mF buffer the same supply never browns the system out.
        let report = SystemBuilder::new()
            .source(
                SignalGenerator::new(Waveform::Sine, Volts(4.0), Hertz(5.0))
                    .with_resistance(Ohms(100.0)),
            )
            .rectifier(Rectifier::ideal(RectifierKind::HalfWave))
            .topology(Topology::Buffered {
                storage: Farads::from_milli(1.0),
                efficiency: 0.9,
            })
            .strategy(Box::new(Hibernus::new()))
            .workload(Box::new(Crc16::new(64)))
            .run(Seconds(10.0));
        assert!(report.succeeded());
        assert_eq!(report.stats.brownouts, 0);
        assert_eq!(report.stats.snapshots, 0, "buffer absorbs the dips");
    }

    #[test]
    fn adapt_source_applies_rectifier_and_efficiency() {
        let mut f = adapt_source(
            DcSupply::new(Volts(3.0)).with_resistance(Ohms(10.0)),
            None,
            0.5,
        );
        let i = f(Volts(1.0), Seconds(0.0));
        assert!((i.0 - 0.1).abs() < 1e-12); // (3−1)/10 × 0.5

        let mut r = adapt_source(
            SignalGenerator::new(Waveform::Sine, Volts(3.0), Hertz(1.0))
                .with_resistance(Ohms(10.0)),
            Some(Rectifier::ideal(RectifierKind::HalfWave)),
            1.0,
        );
        // Negative half-cycle → rectified to zero → no current.
        assert_eq!(r(Volts(0.0), Seconds(0.75)), Amps::ZERO);
    }

    #[test]
    fn restart_on_steady_supply_also_succeeds() {
        let report = SystemBuilder::new()
            .source(DcSupply::new(Volts(3.3)).with_resistance(Ohms(10.0)))
            .strategy(Box::new(Restart::new()))
            .workload(Box::new(BusyLoop::new(1000)))
            .run(Seconds(1.0));
        assert!(report.succeeded());
    }

    #[test]
    #[should_panic(expected = "source is required")]
    fn missing_source_panics() {
        let _ = SystemBuilder::new()
            .strategy(Box::new(Restart::new()))
            .workload(Box::new(BusyLoop::new(10)))
            .run(Seconds(0.1));
    }
}
