//! System assembly: wiring an energy source, a power-subsystem topology,
//! a workload, and a checkpoint strategy into a runnable whole.
//!
//! Two topologies mirror the paper's block diagrams:
//!
//! - [`Topology::Direct`] — Fig. 4: harvester → (optional rectifier) →
//!   supply node → harvesting-aware load. Only decoupling-scale capacitance.
//! - [`Topology::Buffered`] — Fig. 3: the same chain but with explicit
//!   added storage and a conversion stage whose efficiency taxes every
//!   joule on the way in.
//!
//! Assembly itself lives in [`crate::experiment`]: declarative
//! [`ExperimentSpec`](crate::experiment::ExperimentSpec)s built from the
//! kind registries, and the fallible
//! [`Experiment`](crate::experiment::Experiment) builder for custom
//! components.

use edc_harvest::{EnergySource, SourceSample};
use edc_power::Rectifier;
use edc_transient::{RunOutcome, RunnerStats};
use edc_units::{Amps, Farads, Seconds, Volts};
use edc_workloads::VerifyError;

use crate::json::Json;
use crate::telemetry::TelemetryReport;

/// Energy-subsystem topology (Fig. 3 vs. Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Topology {
    /// Fig. 4: direct, energy-driven. The node capacitance is the system's
    /// decoupling capacitance only.
    Direct,
    /// Fig. 3: buffered, energy-neutral style. Adds explicit storage and an
    /// input conversion stage with the given efficiency in `(0, 1]`.
    Buffered {
        /// Added storage capacitance.
        storage: Farads,
        /// Input converter efficiency.
        efficiency: f64,
    },
}

/// Adapts an [`EnergySource`] (plus an optional rectifier and conversion
/// efficiency) into the `(V, t) → I` closure the transient runner consumes.
pub fn adapt_source<'a>(
    mut source: impl EnergySource + 'a,
    rectifier: Option<Rectifier>,
    efficiency: f64,
) -> impl FnMut(Volts, Seconds) -> Amps + 'a {
    assert!(
        efficiency > 0.0 && efficiency <= 1.0,
        "efficiency in (0, 1]"
    );
    move |v, t| {
        let mut sample = source.sample(t);
        if let (Some(rect), SourceSample::Thevenin { v_oc, r_s }) = (rectifier, sample) {
            sample = SourceSample::Thevenin {
                v_oc: rect.rectify(v_oc),
                r_s,
            };
        }
        sample.current_into(v) * efficiency
    }
}

/// A complete report of one system run.
#[derive(Debug, Clone)]
pub struct SystemReport {
    /// Why the run ended.
    pub outcome: RunOutcome,
    /// Runner statistics.
    pub stats: RunnerStats,
    /// Golden-model verification of the workload's persisted results.
    pub verification: Result<(), VerifyError>,
    /// The strategy's display name.
    pub strategy: String,
    /// The workload's display name.
    pub workload: String,
    /// What the run's telemetry sink captured, when one was installed and
    /// readable (`None` for the default [`TelemetryKind::Null`](
    /// edc_telemetry::TelemetryKind::Null)).
    pub telemetry: Option<TelemetryReport>,
}

impl SystemReport {
    /// `true` when the workload completed *and* verified.
    pub fn succeeded(&self) -> bool {
        self.outcome == RunOutcome::Completed && self.verification.is_ok()
    }

    /// The report as a JSON value with deterministic field order.
    pub fn to_json(&self) -> Json {
        let outcome = match self.outcome {
            RunOutcome::Completed => "completed",
            RunOutcome::DeadlineExpired => "deadline-expired",
            RunOutcome::Faulted => "faulted",
        };
        let mut pairs = vec![
            ("strategy", Json::Str(self.strategy.clone())),
            ("workload", Json::Str(self.workload.clone())),
            ("outcome", Json::Str(outcome.into())),
            ("verified", Json::Bool(self.verification.is_ok())),
            (
                "verify_error",
                Json::option(self.verification.as_ref().err(), |e| {
                    Json::Str(e.to_string())
                }),
            ),
            (
                "stats",
                Json::obj(vec![
                    ("snapshots", Json::Uint(self.stats.snapshots)),
                    ("torn_snapshots", Json::Uint(self.stats.torn_snapshots)),
                    ("restores", Json::Uint(self.stats.restores)),
                    ("brownouts", Json::Uint(self.stats.brownouts)),
                    ("boots", Json::Uint(self.stats.boots)),
                    ("active_s", Json::Num(self.stats.active_time.0)),
                    ("sleep_s", Json::Num(self.stats.sleep_time.0)),
                    ("off_s", Json::Num(self.stats.off_time.0)),
                    ("cycles", Json::Uint(self.stats.cycles)),
                    (
                        "completed_at_s",
                        Json::option(self.stats.completed_at, |t| Json::Num(t.0)),
                    ),
                    ("energy_j", Json::Num(self.stats.energy_consumed.0)),
                    ("ticks", Json::Uint(self.stats.ticks)),
                    ("instructions", Json::Uint(self.stats.instructions)),
                    (
                        "carry_activations",
                        Json::Uint(self.stats.carry_activations),
                    ),
                ]),
            ),
        ];
        // Appended only when a sink captured something, so default runs
        // serialise byte-identically to the pre-telemetry format.
        if let Some(telemetry) = &self.telemetry {
            pairs.push(("telemetry", telemetry.to_json()));
        }
        Json::obj(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{Experiment, ExperimentSpec};
    use crate::scenarios::{SourceKind, StrategyKind};
    use edc_harvest::{DcSupply, SignalGenerator, Waveform};
    use edc_power::RectifierKind;
    use edc_transient::Hibernus;
    use edc_units::{Hertz, Ohms};
    use edc_workloads::{Crc16, WorkloadKind};

    #[test]
    fn direct_topology_hibernus_on_rectified_sine() {
        // Fourier-64 needs ~25 ms of execution; at 20 Hz the usable on-window
        // per cycle is shorter, so completion must span supply dips.
        let report = Experiment::new()
            .source(
                SignalGenerator::new(Waveform::Sine, Volts(4.0), Hertz(20.0))
                    .with_resistance(Ohms(100.0)),
            )
            .rectifier(Rectifier::ideal(RectifierKind::HalfWave))
            .strategy(Box::new(Hibernus::new()))
            .workload(Box::new(edc_workloads::Fourier::new(64)))
            .run(Seconds(5.0))
            .expect("assembles");
        assert!(report.succeeded(), "outcome {:?}", report.outcome);
        assert!(
            report.stats.snapshots >= 1,
            "sine dips must force snapshots"
        );
        assert_eq!(report.strategy, "hibernus", "report carries the real name");
    }

    #[test]
    fn buffered_topology_rides_through_dips() {
        // With a 1 mF buffer the same supply never browns the system out.
        let report = Experiment::new()
            .source(
                SignalGenerator::new(Waveform::Sine, Volts(4.0), Hertz(5.0))
                    .with_resistance(Ohms(100.0)),
            )
            .rectifier(Rectifier::ideal(RectifierKind::HalfWave))
            .topology(Topology::Buffered {
                storage: Farads::from_milli(1.0),
                efficiency: 0.9,
            })
            .strategy(Box::new(Hibernus::new()))
            .workload(Box::new(Crc16::new(64)))
            .run(Seconds(10.0))
            .expect("assembles");
        assert!(report.succeeded());
        assert_eq!(report.stats.brownouts, 0);
        assert_eq!(report.stats.snapshots, 0, "buffer absorbs the dips");
    }

    #[test]
    fn adapt_source_applies_rectifier_and_efficiency() {
        let mut f = adapt_source(
            DcSupply::new(Volts(3.0)).with_resistance(Ohms(10.0)),
            None,
            0.5,
        );
        let i = f(Volts(1.0), Seconds(0.0));
        assert!((i.0 - 0.1).abs() < 1e-12); // (3−1)/10 × 0.5

        let mut r = adapt_source(
            SignalGenerator::new(Waveform::Sine, Volts(3.0), Hertz(1.0))
                .with_resistance(Ohms(10.0)),
            Some(Rectifier::ideal(RectifierKind::HalfWave)),
            1.0,
        );
        // Negative half-cycle → rectified to zero → no current.
        assert_eq!(r(Volts(0.0), Seconds(0.75)), Amps::ZERO);
    }

    #[test]
    fn restart_on_steady_supply_also_succeeds() {
        let report = ExperimentSpec::new(
            SourceKind::Dc { volts: 3.3 },
            StrategyKind::Restart,
            WorkloadKind::BusyLoop(1000),
        )
        .deadline(Seconds(1.0))
        .run()
        .expect("assembles");
        assert!(report.succeeded());
    }

    #[test]
    fn report_json_is_deterministic() {
        let spec = ExperimentSpec::new(
            SourceKind::Dc { volts: 3.3 },
            StrategyKind::Hibernus,
            WorkloadKind::Crc16(64),
        )
        .deadline(Seconds(2.0));
        let a = spec.run().unwrap().to_json().to_string();
        let b = spec.run().unwrap().to_json().to_string();
        assert_eq!(a, b, "identical runs serialise byte-identically");
        assert!(a.contains("\"strategy\":\"hibernus\""));
        assert!(a.contains("\"workload\":\"crc16\""));
    }
}
