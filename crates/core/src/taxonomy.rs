//! The energy-based taxonomy of computing systems — Section II / Fig. 2 of
//! the paper, as executable predicates.
//!
//! The taxonomy classifies a system along two aspects:
//!
//! 1. *How much energy storage it contains* (the distance-from-origin axis,
//!    [`StorageSpec`]);
//! 2. *Whether operation survives an intermittent supply* once that storage
//!    is exhausted (the energy-neutral and transient axes).
//!
//! [`classify`] derives the four overlapping classes from a
//! [`SystemProfile`]:
//!
//! - **energy-neutral** — Eqs. (1)+(2) hold via buffering/adaptation;
//! - **transient** — Eq. (2) may be violated yet the system still operates
//!   correctly;
//! - **power-neutral** — Eq. (3): consumption tracks harvested power
//!   instant-by-instant;
//! - **energy-driven** — the energy environment was a driving factor of the
//!   design (the shaded region of Fig. 2).

use std::fmt;

use edc_power::StorageSpec;

/// What ultimately powers the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SupplyKind {
    /// Mains-connected (desktop PC).
    Mains,
    /// A primary or externally recharged battery (smartphone, laptop).
    Battery,
    /// An energy harvester.
    Harvester,
}

/// How the load adapts its consumption to the energy environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Adaptation {
    /// None: consumption is whatever the application demands.
    None,
    /// Task-based: buffer energy, execute an atomic task, repeat (right of
    /// the arc in Fig. 2 — WISPCam, Gomez, Monjolo).
    TaskBased,
    /// Continuous: checkpointing and/or performance modulation at machine
    /// timescales (left of the arc — Mementos, Hibernus, power-neutral).
    Continuous,
}

/// A system description sufficient for taxonomy placement.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemProfile {
    /// Display name (as annotated in Fig. 2).
    pub name: String,
    /// Contained energy storage.
    pub storage: StorageSpec,
    /// Supply class.
    pub supply: SupplyKind,
    /// `true` when the system keeps operating *correctly* (per its own
    /// application semantics) across a complete loss of supply.
    pub survives_interruption: bool,
    /// Consumption-adaptation style.
    pub adaptation: Adaptation,
    /// `true` when the system modulates instantaneous consumption to match
    /// instantaneous harvested power (DVFS/hot-plug against `P_h(t)`).
    pub modulates_power: bool,
}

/// The derived Fig. 2 placement of a system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Classification {
    /// Eqs. (1)+(2) hold during normal operation.
    pub energy_neutral: bool,
    /// Operation survives Eq. (2) violations.
    pub transient: bool,
    /// Eq. (3): instantaneous consumption tracks harvest.
    pub power_neutral: bool,
    /// The energy subsystem drove the design (the shaded Fig. 2 region).
    pub energy_driven: bool,
    /// `log10` of equivalent stored energy in joules (the storage axis).
    pub storage_decade: f64,
}

/// Places a profile in the taxonomy.
pub fn classify(profile: &SystemProfile) -> Classification {
    // Every correctly-sized buffered system meets Eq. (1)/(2) while its
    // storage lasts; that is the energy-neutral *mode of operation*. A
    // power-neutral system is the degenerate T→0 case and is therefore also
    // on the energy-neutral axis (as the paper places the PN-MPSoC).
    let energy_neutral = !profile.survives_interruption || profile.modulates_power;
    let transient = profile.survives_interruption;
    let power_neutral = profile.modulates_power;
    // Energy-driven: harvesting-supplied and designed around interruption
    // or instantaneous-power tracking — the paper's shaded region. A classic
    // energy-neutral WSN makes the harvester "appear like a battery" and so
    // stays on the traditional side.
    let energy_driven = profile.supply == SupplyKind::Harvester && (transient || power_neutral);
    Classification {
        energy_neutral,
        transient,
        power_neutral,
        energy_driven,
        storage_decade: profile.storage.energy_decade(),
    }
}

impl fmt::Display for Classification {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut tags: Vec<&str> = Vec::new();
        if self.energy_neutral {
            tags.push("energy-neutral");
        }
        if self.transient {
            tags.push("transient");
        }
        if self.power_neutral {
            tags.push("power-neutral");
        }
        if self.energy_driven {
            tags.push("ENERGY-DRIVEN");
        }
        if tags.is_empty() {
            tags.push("unclassified");
        }
        write!(f, "{}", tags.join(" + "))
    }
}

/// The Fig. 2 exemplar systems, with the parameters the paper cites
/// (WISPCam's 6 mF, Gomez's 80 µF, Monjolo's 500 µF, …).
pub fn catalog() -> Vec<SystemProfile> {
    use edc_units::{Farads, Joules};
    let profile = |name: &str,
                   storage: StorageSpec,
                   supply: SupplyKind,
                   survives: bool,
                   adaptation: Adaptation,
                   modulates: bool| SystemProfile {
        name: name.to_string(),
        storage,
        supply,
        survives_interruption: survives,
        adaptation,
        modulates_power: modulates,
    };
    vec![
        profile(
            "Desktop PC",
            StorageSpec::Mains,
            SupplyKind::Mains,
            false,
            Adaptation::None,
            false,
        ),
        profile(
            "Smartphone",
            StorageSpec::Battery(Joules(40_000.0)),
            SupplyKind::Battery,
            false,
            Adaptation::None,
            false,
        ),
        profile(
            "Laptop (hibernation)",
            StorageSpec::Battery(Joules(200_000.0)),
            SupplyKind::Battery,
            true,
            Adaptation::None,
            false,
        ),
        profile(
            "Energy-neutral WSN [3]",
            StorageSpec::Supercapacitor(Farads(25.0)),
            SupplyKind::Harvester,
            false,
            Adaptation::TaskBased,
            false,
        ),
        profile(
            "WISPCam [4]",
            StorageSpec::Capacitor(Farads::from_milli(6.0)),
            SupplyKind::Harvester,
            true,
            Adaptation::TaskBased,
            false,
        ),
        profile(
            "Gomez et al. [5]",
            StorageSpec::Capacitor(Farads::from_micro(80.0)),
            SupplyKind::Harvester,
            true,
            Adaptation::TaskBased,
            false,
        ),
        profile(
            "Monjolo [6]",
            StorageSpec::Capacitor(Farads::from_micro(500.0)),
            SupplyKind::Harvester,
            true,
            Adaptation::TaskBased,
            false,
        ),
        profile(
            "Mementos [7]",
            StorageSpec::Decoupling(Farads::from_micro(10.0)),
            SupplyKind::Harvester,
            true,
            Adaptation::Continuous,
            false,
        ),
        profile(
            "QuickRecall [8]",
            StorageSpec::Decoupling(Farads::from_micro(10.0)),
            SupplyKind::Harvester,
            true,
            Adaptation::Continuous,
            false,
        ),
        profile(
            "Hibernus [9]",
            StorageSpec::Decoupling(Farads::from_micro(10.0)),
            SupplyKind::Harvester,
            true,
            Adaptation::Continuous,
            false,
        ),
        profile(
            "Power-neutral MPSoC [11]",
            StorageSpec::Decoupling(Farads::from_micro(2200.0)),
            SupplyKind::Harvester,
            false,
            Adaptation::Continuous,
            true,
        ),
        profile(
            "Hibernus-PN [14]",
            StorageSpec::Decoupling(Farads::from_micro(10.0)),
            SupplyKind::Harvester,
            true,
            Adaptation::Continuous,
            true,
        ),
    ]
}

/// Renders the catalogue's classification as an aligned text table — the
/// Fig. 2 regeneration used by the `fig2_taxonomy` binary.
pub fn render_table(profiles: &[SystemProfile]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<26} {:>9} {:>3} {:>3} {:>3} {:>3}  {}\n",
        "system", "log10(E)", "EN", "TR", "PN", "ED", "storage"
    ));
    out.push_str(&format!("{}\n", "-".repeat(78)));
    let mut sorted = profiles.to_vec();
    sorted.sort_by(|a, b| {
        a.storage
            .energy_decade()
            .total_cmp(&b.storage.energy_decade())
    });
    for p in &sorted {
        let c = classify(p);
        let mark = |b: bool| if b { "✓" } else { "·" };
        let decade = if c.storage_decade.is_finite() {
            format!("{:+.1}", c.storage_decade)
        } else {
            "∞".to_string()
        };
        out.push_str(&format!(
            "{:<26} {:>9} {:>3} {:>3} {:>3} {:>3}  {}\n",
            p.name,
            decade,
            mark(c.energy_neutral),
            mark(c.transient),
            mark(c.power_neutral),
            mark(c.energy_driven),
            p.storage,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn find(name: &str) -> Classification {
        let cat = catalog();
        let p = cat
            .iter()
            .find(|p| p.name.contains(name))
            .unwrap_or_else(|| panic!("{name} not in catalogue"));
        classify(p)
    }

    #[test]
    fn traditional_systems_are_energy_neutral_only() {
        for name in ["Desktop", "Smartphone"] {
            let c = find(name);
            assert!(c.energy_neutral, "{name} must be energy-neutral");
            assert!(!c.transient, "{name} fails on outage");
            assert!(!c.power_neutral);
            assert!(!c.energy_driven, "{name} is a traditional system");
        }
    }

    #[test]
    fn laptop_is_transient_but_not_energy_driven() {
        let c = find("Laptop");
        assert!(c.transient, "hibernation survives Eq. 2 violation");
        assert!(!c.energy_driven, "battery-powered: not energy-driven");
    }

    #[test]
    fn wsn_is_energy_neutral_not_energy_driven() {
        // The paper: energy-neutral WSNs make the harvester "appear like a
        // battery" — harvesting supply, but a traditional design.
        let c = find("WSN");
        assert!(c.energy_neutral);
        assert!(!c.transient);
        assert!(!c.energy_driven);
    }

    #[test]
    fn task_based_systems_are_transient_and_energy_driven() {
        for name in ["WISPCam", "Gomez", "Monjolo"] {
            let c = find(name);
            assert!(c.transient, "{name}");
            assert!(c.energy_driven, "{name}");
            assert!(!c.power_neutral, "{name}");
        }
    }

    #[test]
    fn checkpointing_systems_are_transient_and_energy_driven() {
        for name in ["Mementos", "QuickRecall", "Hibernus [9]"] {
            let c = find(name);
            assert!(c.transient, "{name}");
            assert!(c.energy_driven, "{name}");
        }
    }

    #[test]
    fn pn_mpsoc_is_power_neutral_on_the_energy_neutral_axis() {
        // The paper: "this particular point is on the Energy-Neutral axis as
        // it is not equipped with transient functionality".
        let c = find("Power-neutral MPSoC");
        assert!(c.power_neutral);
        assert!(c.energy_neutral);
        assert!(!c.transient);
        assert!(c.energy_driven);
    }

    #[test]
    fn hibernus_pn_is_all_three() {
        let c = find("Hibernus-PN");
        assert!(c.transient && c.power_neutral && c.energy_driven);
    }

    #[test]
    fn storage_axis_orders_catalogue_as_fig2() {
        // Gomez (80 µF) < Monjolo (500 µF) < WISPCam (6 mF) < WSN supercap
        // < smartphone battery < laptop < mains.
        let cat = catalog();
        let decade = |name: &str| {
            cat.iter()
                .find(|p| p.name.contains(name))
                .unwrap()
                .storage
                .energy_decade()
        };
        assert!(decade("Hibernus [9]") < decade("Gomez"));
        assert!(decade("Gomez") < decade("Monjolo"));
        assert!(decade("Monjolo") < decade("WISPCam"));
        assert!(decade("WISPCam") < decade("WSN"));
        assert!(decade("WSN") < decade("Smartphone"));
        assert!(decade("Smartphone") < decade("Laptop"));
        assert!(decade("Laptop") < decade("Desktop"));
    }

    #[test]
    fn table_renders_every_system() {
        let table = render_table(&catalog());
        for p in catalog() {
            assert!(table.contains(&p.name), "missing {}", p.name);
        }
        assert!(table.contains("ED"));
    }

    #[test]
    fn classification_display() {
        let c = find("Hibernus-PN");
        let s = c.to_string();
        assert!(s.contains("transient") && s.contains("power-neutral"));
    }
}
