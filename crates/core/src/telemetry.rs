//! Report-side view of a run's telemetry.
//!
//! The runner owns its [`Sink`] for the duration of a run; this module
//! recovers the sink's contents afterwards as a [`TelemetryReport`] — a
//! plain value that `SystemReport` can carry, sweeps can aggregate, and
//! [`crate::json`] can serialise with deterministic field order.

use edc_telemetry::{
    Event, GaugeSample, Histogram, PhaseChange, Record, RingBuffer, Sink, StatsSink, Summary,
    TelemetryKind, TimelineSink,
};

use crate::json::Json;

/// What a run's telemetry sink captured, as plain data.
#[derive(Debug, Clone)]
pub enum TelemetryReport {
    /// Contents of a [`RingBuffer`] sink.
    Ring {
        /// The ring's capacity.
        capacity: usize,
        /// Records evicted because the ring was full.
        dropped: u64,
        /// Retained records, oldest first.
        records: Vec<Record>,
    },
    /// A finished [`StatsSink`] (mergeable across sweep cells). Boxed so
    /// the variant stays pointer-sized next to `Ring`.
    Stats(Box<StatsSink>),
    /// A finished [`TimelineSink`]: the run's complete record, phase, and
    /// gauge streams, exportable as a Perfetto timeline by `edc-obs`.
    Timeline(Box<TimelineSink>),
}

impl TelemetryReport {
    /// Recovers a report from a runner's sink. Returns `None` for sinks
    /// with no readable state (`NullSink`, borrowed adapters, custom
    /// sinks the report layer does not know).
    pub fn from_sink(sink: &dyn Sink) -> Option<TelemetryReport> {
        let any = sink.as_any()?;
        if let Some(ring) = any.downcast_ref::<RingBuffer>() {
            return Some(TelemetryReport::Ring {
                capacity: ring.capacity(),
                dropped: ring.dropped(),
                records: ring.records(),
            });
        }
        if let Some(stats) = any.downcast_ref::<StatsSink>() {
            return Some(TelemetryReport::Stats(Box::new(stats.clone())));
        }
        any.downcast_ref::<TimelineSink>()
            .map(|tl| TelemetryReport::Timeline(Box::new(tl.clone())))
    }

    /// The kind of sink this report came from.
    pub fn kind(&self) -> TelemetryKind {
        match self {
            TelemetryReport::Ring { capacity, .. } => TelemetryKind::Ring {
                capacity: *capacity,
            },
            TelemetryReport::Stats(_) => TelemetryKind::Stats,
            TelemetryReport::Timeline(_) => TelemetryKind::Timeline,
        }
    }

    /// The report as a JSON value with deterministic field order.
    pub fn to_json(&self) -> Json {
        match self {
            TelemetryReport::Ring {
                capacity,
                dropped,
                records,
            } => Json::obj(vec![
                ("kind", Json::Str("ring".into())),
                ("capacity", Json::Uint(*capacity as u64)),
                ("dropped", Json::Uint(*dropped)),
                (
                    "events",
                    Json::Arr(records.iter().map(record_json).collect()),
                ),
            ]),
            TelemetryReport::Stats(stats) => stats_json(stats),
            TelemetryReport::Timeline(tl) => timeline_json(tl),
        }
    }
}

/// One phase transition as JSON.
fn phase_json(p: &PhaseChange) -> Json {
    Json::obj(vec![
        ("t_s", Json::Num(p.t.0)),
        ("phase", Json::Str(p.phase.name().into())),
    ])
}

/// One gauge sample as JSON.
fn gauge_json(g: &GaugeSample) -> Json {
    Json::obj(vec![
        ("t_s", Json::Num(g.t.0)),
        ("stored_j", Json::Num(g.stored.0)),
        ("supply_w", Json::Num(g.supply.0)),
    ])
}

/// A [`TimelineSink`]'s retained streams as JSON — the lossless,
/// deterministic account `edc-obs` maps onto Perfetto tracks.
pub fn timeline_json(tl: &TimelineSink) -> Json {
    Json::obj(vec![
        ("kind", Json::Str("timeline".into())),
        (
            "events",
            Json::Arr(tl.records().iter().map(record_json).collect()),
        ),
        (
            "phases",
            Json::Arr(tl.phases().iter().map(phase_json).collect()),
        ),
        (
            "gauges",
            Json::Arr(tl.gauges().iter().map(gauge_json).collect()),
        ),
    ])
}

/// One event record as JSON (`cost_j` only on snapshot events).
fn record_json(r: &Record) -> Json {
    let mut pairs = vec![
        ("t_s", Json::Num(r.t.0)),
        ("energy_j", Json::Num(r.energy.0)),
        ("event", Json::Str(r.event.name().into())),
    ];
    if let Event::Snapshot { cost, .. } = r.event {
        pairs.push(("cost_j", Json::Num(cost.0)));
    }
    Json::obj(pairs)
}

/// A histogram summary as JSON.
pub fn summary_json(s: &Summary) -> Json {
    Json::obj(vec![
        ("count", Json::Uint(s.count)),
        ("min", Json::Num(s.min)),
        ("max", Json::Num(s.max)),
        ("mean", Json::Num(s.mean)),
        ("p50", Json::Num(s.p50)),
        ("p90", Json::Num(s.p90)),
        ("p99", Json::Num(s.p99)),
        ("p999", Json::Num(s.p999)),
    ])
}

/// A [`Histogram`]'s summary *plus* its explicit cumulative `le` buckets
/// as JSON — the exposition-style view that resolves the blind spot a
/// fixed summary leaves between p999 and max. Buckets are compact (only
/// populated bounds appear; see [`Histogram::le_buckets`]) and close with
/// a `+Inf` entry whose `le` serialises as the string `"+Inf"`.
pub fn histogram_json(h: &Histogram) -> Json {
    let s = h.summary();
    Json::obj(vec![
        ("count", Json::Uint(s.count)),
        ("min", Json::Num(s.min)),
        ("max", Json::Num(s.max)),
        ("mean", Json::Num(s.mean)),
        ("p50", Json::Num(s.p50)),
        ("p90", Json::Num(s.p90)),
        ("p99", Json::Num(s.p99)),
        ("p999", Json::Num(s.p999)),
        (
            "buckets",
            Json::Arr(
                h.le_buckets()
                    .into_iter()
                    .map(|(le, n)| {
                        Json::obj(vec![
                            ("le", le.map_or_else(|| Json::Str("+Inf".into()), Json::Num)),
                            ("count", Json::Uint(n)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// A [`StatsSink`]'s aggregates as JSON — also used by the sweep engine
/// for grid-level (merged) summaries.
pub fn stats_json(stats: &StatsSink) -> Json {
    let c = stats.counts();
    let b = stats.energy_breakdown();
    Json::obj(vec![
        ("kind", Json::Str("stats".into())),
        ("events", Json::Uint(c.records)),
        (
            "counts",
            Json::obj(vec![
                ("boots", Json::Uint(c.boots)),
                ("brownouts", Json::Uint(c.brownouts)),
                ("power_fails", Json::Uint(c.power_fails)),
                ("snapshots_sealed", Json::Uint(c.snapshots_sealed)),
                ("snapshots_torn", Json::Uint(c.snapshots_torn)),
                ("restores", Json::Uint(c.restores)),
                ("crossings_rising", Json::Uint(c.crossings_rising)),
                ("crossings_falling", Json::Uint(c.crossings_falling)),
                ("completions", Json::Uint(c.completions)),
            ]),
        ),
        ("outage_s", histogram_json(stats.outage_s())),
        (
            "between_brownouts_s",
            histogram_json(stats.between_brownouts_s()),
        ),
        ("snapshot_j", histogram_json(stats.snapshot_j())),
        (
            "energy_breakdown_j",
            Json::obj(vec![
                ("run", Json::Num(b.run_j)),
                ("snapshot", Json::Num(b.snapshot_j)),
                ("restore", Json::Num(b.restore_j)),
                ("idle", Json::Num(b.idle_j)),
                ("total", Json::Num(b.total_j())),
            ]),
        ),
        (
            "completed_at_s",
            Json::option(stats.completed_at(), |t| Json::Num(t.0)),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use edc_telemetry::NullSink;
    use edc_units::{Joules, Seconds};

    #[test]
    fn null_sink_yields_no_report() {
        assert!(TelemetryReport::from_sink(&NullSink).is_none());
    }

    #[test]
    fn ring_report_round_trips_through_json() {
        let mut ring = RingBuffer::with_capacity(4);
        ring.record(Record {
            t: Seconds(0.5),
            energy: Joules(1e-5),
            event: Event::Snapshot {
                sealed: false,
                cost: Joules(4e-6),
            },
        });
        let report = TelemetryReport::from_sink(&ring).expect("ring is readable");
        assert_eq!(report.kind(), TelemetryKind::Ring { capacity: 4 });
        let json = report.to_json().to_string();
        let parsed = Json::parse(&json).expect("valid JSON");
        assert_eq!(parsed.get("kind"), Some(&Json::Str("ring".into())));
        assert!(json.contains("\"event\":\"snapshot-torn\""));
        assert!(json.contains("\"cost_j\":0.000004"));
    }

    #[test]
    fn stats_report_serialises_every_section() {
        let mut stats = StatsSink::new();
        let feed = [
            (0.0, 0.0, Event::Boot),
            (0.1, 1e-4, Event::Brownout),
            (0.3, 1e-4, Event::Boot),
            (0.4, 2e-4, Event::TaskComplete),
        ];
        for (t, e, event) in feed {
            stats.record(Record {
                t: Seconds(t),
                energy: Joules(e),
                event,
            });
        }
        let report = TelemetryReport::from_sink(&stats).expect("stats is readable");
        let json = report.to_json().to_string();
        for key in [
            "counts",
            "outage_s",
            "between_brownouts_s",
            "snapshot_j",
            "energy_breakdown_j",
            "completed_at_s",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert_eq!(
            Json::parse(&json).unwrap().to_string(),
            json,
            "parse → emit is byte-identical"
        );
        assert!(
            json.contains("\"p99\":") && json.contains("\"p999\":"),
            "summaries carry the tail percentile"
        );
    }

    #[test]
    fn timeline_report_serialises_all_three_streams() {
        use edc_telemetry::Phase;
        use edc_units::Watts;
        let mut tl = TimelineSink::new();
        tl.phase(Seconds(0.0), Phase::Off);
        tl.gauge(Seconds(0.0), Joules::ZERO, Watts::ZERO);
        tl.record(Record {
            t: Seconds(0.1),
            energy: Joules(1e-6),
            event: Event::Boot,
        });
        tl.phase(Seconds(0.1), Phase::Active);
        let report = TelemetryReport::from_sink(&tl).expect("timeline is readable");
        assert_eq!(report.kind(), TelemetryKind::Timeline);
        let json = report.to_json().to_string();
        for key in [
            "\"kind\":\"timeline\"",
            "\"events\"",
            "\"phases\"",
            "\"gauges\"",
            "\"phase\":\"off\"",
            "\"stored_j\"",
            "\"supply_w\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert_eq!(
            Json::parse(&json).unwrap().to_string(),
            json,
            "parse → emit is byte-identical"
        );
    }
}
