//! Branch-and-bound benchmark: identical Pareto fronts at lower cost than
//! the lint prefilter alone.
//!
//! The space is `bench_lint`'s 224-design space, but the objective set
//! adds `BrownoutCount` — which has no static DNF score, so the lint
//! prefilter alone can prune *nothing*: a flagged design's brownout count
//! still depends on how the run fails. The interval engine closes exactly
//! that gap. The same exhaustive grid is run twice — lint prefilter only,
//! then with score-bracket branch-and-bound on top — and the artifact
//! proves the tentpole claim:
//!
//! - the Pareto fronts are **byte-identical** (a candidate is only pruned
//!   when an incumbent's exact scores dominate its whole bracket, so no
//!   front point can be lost);
//! - the bounded run's simulation cost is **strictly lower**, with the
//!   bounding work billed separately (`bound.checks` / `bound.pruned`).
//!
//! The binary exits non-zero if either property fails, so CI regression
//! checks are the assertions themselves. `BENCH_bound.json` layout: the
//! catalog, the space-level lint report, both `ExploreReport` sections
//! (deterministic, byte-diffable), the comparison, and wall-clock timing
//! under `bound_timing` (non-deterministic, kept outside the reports).
//!
//! Run: `cargo run --release -p edc-explore --bin bench_bound`
//! Output path override: `bench_bound <path>` (default `BENCH_bound.json`).
//!
//! `--store DIR` runs both searches against a persistent evaluation
//! store and hard-asserts each front byte-identical to the committed
//! cold `BENCH_bound.json`. Store hits bypass the interval engine (a
//! stored score needs no bounding), so the prune-count and
//! cost-strictness assertions only apply to store-less runs.

use std::time::Instant;

use edc_bench::banner;
use edc_core::catalog::TraceCatalog;
use edc_core::experiment::ExperimentSpec;
use edc_core::json::Json;
use edc_core::scenarios::{SourceKind, StrategyKind};
use edc_explore::seed::sizing_seeded_decoupling_axis;
use edc_explore::{
    lint_space, BrownoutCount, CompletionTime, EnergyPerTask, ExhaustiveGrid, Explorer, SpecSpace,
};
use edc_lint::Linter;
use edc_units::{Joules, Seconds, Volts};
use edc_workloads::WorkloadKind;

/// The same two synthetic "recordings" as `bench_lint` (see `bench_trace`
/// for provenance): a rectified mains cycle and a bursty office profile.
fn catalog() -> TraceCatalog {
    let mut catalog = TraceCatalog::new();
    let mains: Vec<(f64, f64)> = (0..20)
        .map(|i| {
            let phase = (i as f64 / 20.0) * std::f64::consts::TAU;
            (i as f64 * 1e-3, 8e-3 * phase.sin().max(0.0))
        })
        .collect();
    catalog
        .register("mains-cycle", mains)
        .expect("valid recording");
    let bursty: Vec<(f64, f64)> = (0..16)
        .map(|i| (i as f64 * 2e-3, if i % 4 < 2 { 6e-3 } else { 0.5e-3 }))
        .collect();
    catalog
        .register("bursty-office", bursty)
        .expect("valid recording");
    catalog
}

/// `bench_lint`'s 224-design space, byte for byte: (2 recordings × 2
/// decimations × 2 loop modes) × 2 workloads × 7 strategies × 2
/// capacitances, a large fraction of them provably dead weight (`E004`
/// non-looped starvation, `E005` endless workloads).
fn space(catalog: &TraceCatalog) -> SpecSpace {
    let sources: Vec<SourceKind> = catalog
        .ids()
        .into_iter()
        .flat_map(|id| {
            [1u64, 4].into_iter().flat_map(move |decimate| {
                [true, false]
                    .into_iter()
                    .map(move |looped| SourceKind::Trace {
                        id,
                        decimate,
                        looped,
                    })
            })
        })
        .collect();
    let decoupling =
        sizing_seeded_decoupling_axis(Joules::from_micro(5.0), Volts(2.0), Volts(3.6), 0.1, 8.0, 2)
            .expect("canonical rails are valid");
    let base = ExperimentSpec::new(
        sources[0],
        StrategyKind::Hibernus,
        WorkloadKind::Fourier(256),
    )
    .deadline(Seconds(4.0));
    SpecSpace::over(base)
        .sources(&sources)
        .workloads(&[WorkloadKind::Fourier(256), WorkloadKind::Endless])
        .strategies(&StrategyKind::ALL)
        .decoupling(&decoupling)
}

fn main() {
    let args = edc_bench::bench_args("BENCH_bound.json");
    let path = args.path.clone();
    let catalog = catalog();
    let space = space(&catalog);

    // The space-level static report, committed alongside the search.
    let space_lint = lint_space(&space, &mut Linter::with_catalog(catalog.clone()));

    let mut explorer = Explorer::new()
        .objective(CompletionTime)
        .objective(EnergyPerTask)
        .objective(BrownoutCount)
        .prefilter(true)
        .catalog(catalog.clone());
    if let Some(dir) = &args.store {
        match edc_explore::Store::open(dir) {
            Ok(store) => explorer = explorer.store(store.into_handle()),
            Err(e) => {
                eprintln!("cannot open store at {dir}: {e}");
                std::process::exit(1);
            }
        }
    }

    let started = Instant::now();
    let lint_only = explorer.run(&space, &ExhaustiveGrid).unwrap_or_else(|e| {
        eprintln!("lint-only exploration failed: {e}");
        std::process::exit(1);
    });
    let lint_only_s = started.elapsed().as_secs_f64();

    let started = Instant::now();
    let bounded = explorer
        .bound(true)
        .run(&space, &ExhaustiveGrid)
        .unwrap_or_else(|e| {
            eprintln!("bounded exploration failed: {e}");
            std::process::exit(1);
        });
    let bounded_s = started.elapsed().as_secs_f64();

    banner("Space: bench_lint's 224 designs, with a brownout objective");
    println!(
        "{} designs; space lint: {} error(s), {} warning(s)",
        space.len(),
        space_lint.error_count(),
        space_lint.warning_count(),
    );
    banner("Branch-and-bound effect");
    println!(
        "lint only: {} sims ({:.2} cost units) in {lint_only_s:.3} s \
         ({} lint pruned — brownouts have no DNF score)",
        lint_only.evaluations, lint_only.cost_units, lint_only.lint_pruned,
    );
    println!(
        "  bounded: {} sims ({:.2} cost units) in {bounded_s:.3} s \
         ({} bound checks, {} pruned, {} lint pruned)",
        bounded.evaluations,
        bounded.cost_units,
        bounded.bound_checks,
        bounded.bound_pruned,
        bounded.lint_pruned,
    );

    // The tentpole's load-bearing properties, asserted hard: the front is
    // byte-identical, something was bound-pruned, and the simulation cost
    // is strictly lower than the lint prefilter could manage alone.
    let objectives: Vec<String> = lint_only.objectives.clone();
    let front_a_json = lint_only.front.to_json(&objectives);
    let front_b_json = bounded.front.to_json(&objectives);
    let fronts_identical = front_a_json.to_string() == front_b_json.to_string();
    if !fronts_identical {
        eprintln!("FAIL: branch-and-bound changed the Pareto front");
        std::process::exit(1);
    }
    if args.store.is_none() {
        // Store hits bypass the interval engine entirely (a stored score
        // needs no bounding), so these only hold for store-less runs.
        if bounded.bound_pruned == 0 {
            eprintln!("FAIL: nothing was bound-pruned — the space must contain dominated brackets");
            std::process::exit(1);
        }
        if bounded.cost_units >= lint_only.cost_units {
            eprintln!(
                "FAIL: bounded cost {} is not strictly below lint-only {}",
                bounded.cost_units, lint_only.cost_units
            );
            std::process::exit(1);
        }
        println!(
            "fronts byte-identical; cost {:.2} → {:.2} units ({:.0}% saved)",
            lint_only.cost_units,
            bounded.cost_units,
            (1.0 - bounded.cost_units / lint_only.cost_units) * 100.0
        );
    } else {
        println!(
            "store: lint-only {} hits, bounded {} hits",
            lint_only.store_hits, bounded.store_hits
        );
        edc_bench::assert_front_matches("BENCH_bound.json", "lint_only", &front_a_json);
        edc_bench::assert_front_matches("BENCH_bound.json", "bounded", &front_b_json);
    }

    edc_bench::banner("Metrics");
    print!("{}", edc_metrics::global().render_text());

    let artifact = edc_bench::artifact(
        "bound",
        vec![
            ("catalog", catalog.to_json()),
            ("space_lint", space_lint.to_json()),
            ("lint_only", lint_only.to_json()),
            ("bounded", bounded.to_json()),
            (
                "comparison",
                Json::obj(vec![
                    ("fronts_identical", Json::Bool(fronts_identical)),
                    ("lint_only_simulations", Json::Uint(lint_only.evaluations)),
                    ("bounded_simulations", Json::Uint(bounded.evaluations)),
                    ("lint_only_cost_units", Json::Num(lint_only.cost_units)),
                    ("bounded_cost_units", Json::Num(bounded.cost_units)),
                    ("bound_checks", Json::Uint(bounded.bound_checks)),
                    ("bound_pruned", Json::Uint(bounded.bound_pruned)),
                    ("lint_pruned", Json::Uint(bounded.lint_pruned)),
                ]),
            ),
            // Non-deterministic section, deliberately outside both
            // reports; BENCH_policy.json shape-checks it.
            (
                "bound_timing",
                Json::obj(vec![
                    ("lint_only_s", Json::Num(lint_only_s)),
                    ("bounded_s", Json::Num(bounded_s)),
                ]),
            ),
        ],
    );
    edc_bench::write_artifact(&path, &artifact);
}
