//! Exploration benchmark: exhaustive grid vs. successive halving on the
//! capacitor-sizing trade-off, at matched front quality.
//!
//! The space is the paper's Fig. 7 stimulus (half-wave rectified sine)
//! with a sizing-seeded decoupling axis (the Eq. 4 feasibility floor up to
//! 32× it) crossed with every checkpoint strategy. Both searchers
//! minimise completion time and energy per task; the artifact records how
//! much of the exhaustive grid's budget the multi-fidelity search needed
//! to land on the grid's own Pareto front.
//!
//! `BENCH_explore.json` layout: the two deterministic `ExploreReport`
//! sections (byte-diffable between commits), the budget comparison, and
//! wall-clock timing (non-deterministic, kept outside the reports).
//!
//! Run: `cargo run --release -p edc-explore --bin bench_explore`
//! Output path override: `bench_explore <path>` (default
//! `BENCH_explore.json` in the working directory).
//!
//! `--store DIR` runs both searches against a persistent evaluation
//! store: misses are simulated once and written back, repeats are served
//! from disk, and each front is hard-asserted byte-identical to the
//! committed cold `BENCH_explore.json` — a warm store must change the
//! budget, never the result.

use std::time::Instant;

use edc_bench::{banner, TextTable};
use edc_core::experiment::ExperimentSpec;
use edc_core::json::Json;
use edc_core::scenarios::{SourceKind, StrategyKind};
use edc_explore::seed::sizing_seeded_decoupling_axis;
use edc_explore::{
    CompletionTime, EnergyPerTask, ExhaustiveGrid, ExploreReport, Explorer, SpecSpace,
    SuccessiveHalving,
};
use edc_units::{Joules, Seconds, Volts};
use edc_workloads::WorkloadKind;

/// The benchmark space: 8 sizing-seeded capacitances × all 7 strategies
/// over the Fig. 7 supply (56 designs).
fn space() -> SpecSpace {
    let decoupling = sizing_seeded_decoupling_axis(
        Joules::from_micro(5.0), // snapshot cost scale of the paper's platform
        Volts(2.0),              // MSP430 V_min
        Volts(3.6),              // rail V_max
        0.1,                     // 10% safety margin
        32.0,                    // bracket the floor up to 32×
        8,
    )
    .expect("canonical rails are valid");
    let base = ExperimentSpec::new(
        SourceKind::RectifiedSine { hz: 50.0 },
        StrategyKind::Hibernus,
        WorkloadKind::Fourier(256),
    )
    .deadline(Seconds(10.0));
    SpecSpace::over(base)
        .strategies(&StrategyKind::ALL)
        .decoupling(&decoupling)
}

fn front_table(report: &ExploreReport) -> String {
    let mut t = TextTable::new(&[
        "decoupling (µF)",
        "strategy",
        "completion (s)",
        "energy (mJ)",
    ]);
    for p in report.front.points() {
        t.row(&[
            format!("{:.2}", p.spec.decoupling.as_micro()),
            p.spec.strategy.name().to_string(),
            if p.scores[0].is_finite() {
                format!("{:.3}", p.scores[0])
            } else {
                "DNF".to_string()
            },
            if p.scores[1].is_finite() {
                format!("{:.4}", p.scores[1] * 1e3)
            } else {
                "DNF".to_string()
            },
        ]);
    }
    t.render()
}

fn main() {
    let args = edc_bench::bench_args("BENCH_explore.json");
    let path = args.path.clone();
    let space = space();
    let mut explorer = Explorer::new()
        .objective(CompletionTime)
        .objective(EnergyPerTask);
    if let Some(dir) = &args.store {
        match edc_explore::Store::open(dir) {
            Ok(store) => explorer = explorer.store(store.into_handle()),
            Err(e) => {
                eprintln!("cannot open store at {dir}: {e}");
                std::process::exit(1);
            }
        }
    }

    let started = Instant::now();
    let grid = explorer.run(&space, &ExhaustiveGrid).unwrap_or_else(|e| {
        eprintln!("exhaustive exploration failed: {e}");
        std::process::exit(1);
    });
    let grid_s = started.elapsed().as_secs_f64();

    let started = Instant::now();
    let halving = explorer
        .run(&space, &SuccessiveHalving::new())
        .unwrap_or_else(|e| {
            eprintln!("successive-halving exploration failed: {e}");
            std::process::exit(1);
        });
    let halving_s = started.elapsed().as_secs_f64();

    banner("Design space: Fig. 7 supply, sizing-seeded capacitance x strategy");
    println!(
        "{} designs; exhaustive grid = {} simulations",
        space.len(),
        grid.evaluations
    );
    banner("Exhaustive Pareto front (completion time vs energy per task)");
    print!("{}", front_table(&grid));
    banner("Successive-halving front");
    print!("{}", front_table(&halving));

    let cost_ratio = halving.cost_units / grid.cost_units;
    // Simulations halving ran at the grid's own fidelity (its final rung);
    // the coarse prefilter rungs run 4-16x cheaper and are accounted in
    // cost units.
    let fine = space.finest_timestep();
    let halving_full_fidelity = halving
        .trace
        .iter()
        .filter(|t| !t.cached && t.spec.timestep == fine)
        .count();
    let best_on_grid_front = halving
        .best()
        .map(|p| grid.front.contains_key(&p.key))
        .unwrap_or(false);
    let front_overlap = halving
        .front
        .points()
        .iter()
        .filter(|p| grid.front.contains_key(&p.key))
        .count();
    banner("Budget");
    println!(
        "exhaustive: {} sims ({:.1} cost units) in {grid_s:.3} s",
        grid.evaluations, grid.cost_units
    );
    println!(
        "   halving: {} sims, {halving_full_fidelity} at full fidelity ({:.1} cost units) in {halving_s:.3} s",
        halving.evaluations, halving.cost_units
    );
    println!(
        "cost ratio {:.3} ({} of the halving front's {} points sit on the grid front)",
        cost_ratio,
        front_overlap,
        halving.front.len()
    );

    // The --store warm-start contract: the store may change the budget,
    // never the result. Both fronts must match the committed cold run.
    if args.store.is_some() {
        println!(
            "store: grid {} hits, halving {} hits",
            grid.store_hits, halving.store_hits
        );
        let objectives: Vec<String> = grid.objectives.clone();
        edc_bench::assert_front_matches(
            "BENCH_explore.json",
            "exhaustive",
            &grid.front.to_json(&objectives),
        );
        edc_bench::assert_front_matches(
            "BENCH_explore.json",
            "halving",
            &halving.front.to_json(&objectives),
        );
    }

    edc_bench::banner("Metrics");
    print!("{}", edc_metrics::global().render_text());

    let artifact = edc_bench::artifact(
        "explore",
        vec![
            ("exhaustive", grid.to_json()),
            ("halving", halving.to_json()),
            (
                "comparison",
                Json::obj(vec![
                    ("grid_simulations", Json::Uint(grid.evaluations)),
                    ("halving_simulations", Json::Uint(halving.evaluations)),
                    (
                        "halving_full_fidelity_simulations",
                        Json::Uint(halving_full_fidelity as u64),
                    ),
                    ("grid_cost_units", Json::Num(grid.cost_units)),
                    ("halving_cost_units", Json::Num(halving.cost_units)),
                    ("cost_ratio", Json::Num(cost_ratio)),
                    ("halving_best_on_grid_front", Json::Bool(best_on_grid_front)),
                    ("front_overlap", Json::Uint(front_overlap as u64)),
                ]),
            ),
            // Non-deterministic section, deliberately outside both reports.
            (
                "timing",
                Json::obj(vec![
                    ("grid_s", Json::Num(grid_s)),
                    ("halving_s", Json::Num(halving_s)),
                ]),
            ),
        ],
    );
    edc_bench::write_artifact(&path, &artifact);
}
