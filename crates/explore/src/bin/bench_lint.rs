//! Lint-prefilter benchmark: identical Pareto fronts at lower cost.
//!
//! The space is `bench_trace`'s search space *extended with designs the
//! static analyzer can prove infeasible*: non-looped trace variants (the
//! mains recording decays to 0 W and is then held there — `E004`, the
//! supply bound can never fund the workload) and the `endless` workload
//! (`E005`, no completion state). The same exhaustive grid is run twice —
//! prefilter off, then on — and the artifact proves the tentpole claim:
//!
//! - the Pareto fronts are **byte-identical** (the prefilter only replaces
//!   simulations whose scores are statically known);
//! - the prefiltered run's simulation cost is **strictly lower**, with the
//!   lint work billed separately (`lint.checks` / `lint.pruned`).
//!
//! The binary exits non-zero if either property fails, so CI regression
//! checks are the assertions themselves. `BENCH_lint.json` layout: the
//! catalog, the space-level lint report, both `ExploreReport` sections
//! (deterministic, byte-diffable), the comparison, and wall-clock timing
//! (non-deterministic, kept outside the reports).
//!
//! Run: `cargo run --release -p edc-explore --bin bench_lint`
//! Output path override: `bench_lint <path>` (default `BENCH_lint.json`).
//!
//! `--store DIR` runs both searches against a persistent evaluation
//! store and hard-asserts each front byte-identical to the committed
//! cold `BENCH_lint.json`. Store hits bypass the lint prefilter (a
//! stored score needs no static analysis), so the prune-count and
//! cost-strictness assertions only apply to store-less runs.

use std::time::Instant;

use edc_bench::banner;
use edc_core::catalog::TraceCatalog;
use edc_core::experiment::ExperimentSpec;
use edc_core::json::Json;
use edc_core::scenarios::{SourceKind, StrategyKind};
use edc_explore::seed::sizing_seeded_decoupling_axis;
use edc_explore::{lint_space, CompletionTime, EnergyPerTask, ExhaustiveGrid, Explorer, SpecSpace};
use edc_lint::Linter;
use edc_units::{Joules, Seconds, Volts};
use edc_workloads::WorkloadKind;

/// The same two synthetic "recordings" as `bench_trace` (see that binary
/// for provenance): a rectified mains cycle and a bursty office profile.
fn catalog() -> TraceCatalog {
    let mut catalog = TraceCatalog::new();
    let mains: Vec<(f64, f64)> = (0..20)
        .map(|i| {
            let phase = (i as f64 / 20.0) * std::f64::consts::TAU;
            (i as f64 * 1e-3, 8e-3 * phase.sin().max(0.0))
        })
        .collect();
    catalog
        .register("mains-cycle", mains)
        .expect("valid recording");
    let bursty: Vec<(f64, f64)> = (0..16)
        .map(|i| (i as f64 * 2e-3, if i % 4 < 2 { 6e-3 } else { 0.5e-3 }))
        .collect();
    catalog
        .register("bursty-office", bursty)
        .expect("valid recording");
    catalog
}

/// `bench_trace`'s space, extended along two axes with statically
/// infeasible designs: non-looped trace playback (the 19 ms mains
/// recording ends on a 0 W sample held for the remaining ~4 s → `E004`)
/// and the `endless` workload (→ `E005`). (2 recordings × 2 decimations ×
/// 2 loop modes) × 2 workloads × 7 strategies × 2 capacitances = 224
/// designs, a large fraction of them provably dead weight.
fn space(catalog: &TraceCatalog) -> SpecSpace {
    let sources: Vec<SourceKind> = catalog
        .ids()
        .into_iter()
        .flat_map(|id| {
            [1u64, 4].into_iter().flat_map(move |decimate| {
                [true, false]
                    .into_iter()
                    .map(move |looped| SourceKind::Trace {
                        id,
                        decimate,
                        looped,
                    })
            })
        })
        .collect();
    let decoupling =
        sizing_seeded_decoupling_axis(Joules::from_micro(5.0), Volts(2.0), Volts(3.6), 0.1, 8.0, 2)
            .expect("canonical rails are valid");
    let base = ExperimentSpec::new(
        sources[0],
        StrategyKind::Hibernus,
        WorkloadKind::Fourier(256),
    )
    .deadline(Seconds(4.0));
    SpecSpace::over(base)
        .sources(&sources)
        .workloads(&[WorkloadKind::Fourier(256), WorkloadKind::Endless])
        .strategies(&StrategyKind::ALL)
        .decoupling(&decoupling)
}

fn main() {
    let args = edc_bench::bench_args("BENCH_lint.json");
    let path = args.path.clone();
    let catalog = catalog();
    let space = space(&catalog);

    // The space-level static report, committed alongside the search: which
    // designs the analyzer flags, and where.
    let space_lint = lint_space(&space, &mut Linter::with_catalog(catalog.clone()));

    let mut explorer = Explorer::new()
        .objective(CompletionTime)
        .objective(EnergyPerTask)
        .catalog(catalog.clone());
    if let Some(dir) = &args.store {
        match edc_explore::Store::open(dir) {
            Ok(store) => explorer = explorer.store(store.into_handle()),
            Err(e) => {
                eprintln!("cannot open store at {dir}: {e}");
                std::process::exit(1);
            }
        }
    }

    let started = Instant::now();
    let baseline = explorer.run(&space, &ExhaustiveGrid).unwrap_or_else(|e| {
        eprintln!("baseline exploration failed: {e}");
        std::process::exit(1);
    });
    let baseline_s = started.elapsed().as_secs_f64();

    let started = Instant::now();
    let prefiltered = explorer
        .prefilter(true)
        .run(&space, &ExhaustiveGrid)
        .unwrap_or_else(|e| {
            eprintln!("prefiltered exploration failed: {e}");
            std::process::exit(1);
        });
    let prefiltered_s = started.elapsed().as_secs_f64();

    banner("Space: bench_trace extended with statically-infeasible designs");
    println!(
        "{} designs; space lint: {} error(s), {} warning(s)",
        space.len(),
        space_lint.error_count(),
        space_lint.warning_count(),
    );
    banner("Prefilter effect");
    println!(
        " baseline: {} sims ({:.2} cost units) in {baseline_s:.3} s",
        baseline.evaluations, baseline.cost_units
    );
    println!(
        "prefilter: {} sims ({:.2} cost units) in {prefiltered_s:.3} s \
         ({} lint checks, {} pruned)",
        prefiltered.evaluations,
        prefiltered.cost_units,
        prefiltered.lint_checks,
        prefiltered.lint_pruned,
    );

    // The tentpole's two load-bearing properties, asserted hard: the front
    // is byte-identical and the simulation cost strictly lower.
    let objectives: Vec<String> = baseline.objectives.clone();
    let front_a_json = baseline.front.to_json(&objectives);
    let front_b_json = prefiltered.front.to_json(&objectives);
    let fronts_identical = front_a_json.to_string() == front_b_json.to_string();
    if !fronts_identical {
        eprintln!("FAIL: prefilter changed the Pareto front");
        std::process::exit(1);
    }
    if args.store.is_none() {
        // Store hits bypass the prefilter entirely (a stored score needs
        // no static analysis), so these only hold for store-less runs.
        if prefiltered.lint_pruned == 0 {
            eprintln!(
                "FAIL: prefilter pruned nothing — the extended space must contain E-flagged designs"
            );
            std::process::exit(1);
        }
        if prefiltered.cost_units >= baseline.cost_units {
            eprintln!(
                "FAIL: prefiltered cost {} is not strictly below baseline {}",
                prefiltered.cost_units, baseline.cost_units
            );
            std::process::exit(1);
        }
        println!(
            "fronts byte-identical; cost {:.2} → {:.2} units ({:.0}% saved)",
            baseline.cost_units,
            prefiltered.cost_units,
            (1.0 - prefiltered.cost_units / baseline.cost_units) * 100.0
        );
    } else {
        println!(
            "store: baseline {} hits, prefiltered {} hits",
            baseline.store_hits, prefiltered.store_hits
        );
        edc_bench::assert_front_matches("BENCH_lint.json", "baseline", &front_a_json);
        edc_bench::assert_front_matches("BENCH_lint.json", "prefiltered", &front_b_json);
    }

    edc_bench::banner("Metrics");
    print!("{}", edc_metrics::global().render_text());

    let artifact = edc_bench::artifact(
        "lint",
        vec![
            ("catalog", catalog.to_json()),
            ("space_lint", space_lint.to_json()),
            ("baseline", baseline.to_json()),
            ("prefiltered", prefiltered.to_json()),
            (
                "comparison",
                Json::obj(vec![
                    ("fronts_identical", Json::Bool(fronts_identical)),
                    ("baseline_simulations", Json::Uint(baseline.evaluations)),
                    (
                        "prefiltered_simulations",
                        Json::Uint(prefiltered.evaluations),
                    ),
                    ("baseline_cost_units", Json::Num(baseline.cost_units)),
                    ("prefiltered_cost_units", Json::Num(prefiltered.cost_units)),
                    ("lint_checks", Json::Uint(prefiltered.lint_checks)),
                    ("lint_pruned", Json::Uint(prefiltered.lint_pruned)),
                ]),
            ),
            // Non-deterministic section, deliberately outside both reports.
            (
                "timing",
                Json::obj(vec![
                    ("baseline_s", Json::Num(baseline_s)),
                    ("prefiltered_s", Json::Num(prefiltered_s)),
                ]),
            ),
        ],
    );
    edc_bench::write_artifact(&path, &artifact);
}
