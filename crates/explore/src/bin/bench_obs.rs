//! Observability overhead benchmark: what the full-retention
//! `TimelineSink` costs relative to the default `NullSink` fast path, on
//! the same 56-design sizing sweep `bench_explore` searches.
//!
//! Each variant runs the whole grid through the sweep engine; the
//! timeline variant additionally retains every lifecycle event, phase
//! transition, and gauge sample. The artifact records the (deterministic)
//! captured-volume counts and two invariants — observation never perturbs
//! the simulation (per-cell stats identical across variants) and the
//! timeline capture itself is byte-deterministic across repeats — plus
//! the (non-deterministic, quarantined) wall-clock comparison.
//!
//! `BENCH_obs.json` layout: `capture` and the two invariant booleans are
//! byte-diffable between commits; `timing` is wall-clock and excluded
//! from determinism expectations.
//!
//! Run: `cargo run --release -p edc-explore --bin bench_obs`
//! Output path override: `bench_obs <path>` (default `BENCH_obs.json` in
//! the working directory).

use edc_bench::sweep::{run_specs_timed, SweepRow};
use edc_bench::{banner, TextTable};
use edc_core::experiment::ExperimentSpec;
use edc_core::json::Json;
use edc_core::scenarios::{SourceKind, StrategyKind};
use edc_core::telemetry::{timeline_json, TelemetryReport};
use edc_core::TelemetryKind;
use edc_explore::seed::sizing_seeded_decoupling_axis;
use edc_explore::SpecSpace;
use edc_units::{Joules, Seconds, Volts};
use edc_workloads::WorkloadKind;

/// The benchmark grid: `bench_explore`'s space — 8 sizing-seeded
/// capacitances × all 7 strategies over the Fig. 7 supply (56 designs).
fn space() -> SpecSpace {
    let decoupling = sizing_seeded_decoupling_axis(
        Joules::from_micro(5.0),
        Volts(2.0),
        Volts(3.6),
        0.1,
        32.0,
        8,
    )
    .expect("canonical rails are valid");
    let base = ExperimentSpec::new(
        SourceKind::RectifiedSine { hz: 50.0 },
        StrategyKind::Hibernus,
        WorkloadKind::Fourier(256),
    )
    .deadline(Seconds(10.0));
    SpecSpace::over(base)
        .strategies(&StrategyKind::ALL)
        .decoupling(&decoupling)
}

/// One sweep over the grid with `telemetry`, returning the rows and the
/// best-of-`reps` wall-clock total.
fn run_variant(
    specs: &[ExperimentSpec],
    telemetry: TelemetryKind,
    threads: usize,
    reps: usize,
) -> (Vec<SweepRow>, f64) {
    let mut best_s = f64::INFINITY;
    let mut rows = None;
    for _ in 0..reps {
        let batch: Vec<ExperimentSpec> = specs.iter().map(|s| s.telemetry(telemetry)).collect();
        let run = run_specs_timed(batch, threads).unwrap_or_else(|e| {
            eprintln!("sweep failed: {e}");
            std::process::exit(1);
        });
        best_s = best_s.min(run.timing.total_s);
        rows.get_or_insert(run.rows);
    }
    (rows.expect("reps >= 1"), best_s)
}

/// The deterministic stats section of one row's report JSON.
fn stats_of(row: &SweepRow) -> String {
    row.report
        .to_json()
        .get("stats")
        .expect("every report carries stats")
        .to_string()
}

/// Deterministic timeline-capture JSON for a row, when present.
fn capture_of(row: &SweepRow) -> Option<String> {
    match &row.report.telemetry {
        Some(TelemetryReport::Timeline(tl)) => Some(timeline_json(tl).to_string()),
        _ => None,
    }
}

fn main() {
    let path = edc_bench::artifact_path("BENCH_obs.json");
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    const REPS: usize = 3;
    let specs = space().all_specs();

    let (null_rows, null_s) = run_variant(&specs, TelemetryKind::Null, threads, REPS);
    let (timeline_rows, timeline_s) = run_variant(&specs, TelemetryKind::Timeline, threads, REPS);
    let (repeat_rows, _) = run_variant(&specs, TelemetryKind::Timeline, threads, 1);

    // Invariant 1: observation never perturbs the simulation.
    let stats_match = null_rows
        .iter()
        .zip(&timeline_rows)
        .all(|(a, b)| stats_of(a) == stats_of(b));
    // Invariant 2: the capture itself is byte-deterministic.
    let capture_deterministic = timeline_rows
        .iter()
        .zip(&repeat_rows)
        .all(|(a, b)| capture_of(a) == capture_of(b));

    let mut events = 0u64;
    let mut phases = 0u64;
    let mut gauges = 0u64;
    for row in &timeline_rows {
        if let Some(TelemetryReport::Timeline(tl)) = &row.report.telemetry {
            events += tl.records().len() as u64;
            phases += tl.phases().len() as u64;
            gauges += tl.gauges().len() as u64;
        }
    }

    let overhead = timeline_s / null_s;
    banner("TimelineSink overhead vs NullSink (56-design sizing sweep)");
    let mut t = TextTable::new(&["variant", "wall (s)", "captured"]);
    t.row(&["null".to_string(), format!("{null_s:.3}"), "-".to_string()]);
    t.row(&[
        "timeline".to_string(),
        format!("{timeline_s:.3}"),
        format!("{events} events, {phases} phases, {gauges} gauges"),
    ]);
    print!("{}", t.render());
    println!(
        "overhead x{overhead:.3} (best of {REPS}); stats match: {stats_match}; deterministic: {capture_deterministic}"
    );
    if !stats_match || !capture_deterministic {
        eprintln!("observability invariant violated");
        std::process::exit(1);
    }

    banner("Metrics");
    print!("{}", edc_metrics::global().render_text());

    let artifact = edc_bench::artifact(
        "obs",
        vec![
            ("designs", Json::Uint(specs.len() as u64)),
            (
                "capture",
                Json::obj(vec![
                    ("events", Json::Uint(events)),
                    ("phases", Json::Uint(phases)),
                    ("gauges", Json::Uint(gauges)),
                ]),
            ),
            ("stats_match_null", Json::Bool(stats_match)),
            ("capture_deterministic", Json::Bool(capture_deterministic)),
            // Non-deterministic section, deliberately quarantined.
            (
                "timing",
                Json::obj(vec![
                    ("null_s", Json::Num(null_s)),
                    ("timeline_s", Json::Num(timeline_s)),
                    ("overhead_ratio", Json::Num(overhead)),
                    ("reps", Json::Uint(REPS as u64)),
                ]),
            ),
        ],
    );
    edc_bench::write_artifact(&path, &artifact);
}
