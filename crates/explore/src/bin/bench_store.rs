//! Store benchmark: cold vs. warm search over the persistent evaluation
//! store, on `bench_lint`'s 224-design space.
//!
//! The scenario is the tentpole claim of the store layer, asserted hard:
//!
//! - a **cold** run (fresh store) simulates every design and writes each
//!   result back;
//! - a **fully-warm** run over the *reopened* store performs **zero**
//!   simulations yet produces a byte-identical Pareto front;
//! - a **half-warm** run (a second store seeded with every other entry)
//!   simulates exactly the missing half, same front again;
//! - an **independent rebuild** (a third store, cold) followed by
//!   deterministic compaction leaves all three store directories
//!   **byte-identical** — entry insertion order never leaks into the
//!   serialized files.
//!
//! The binary exits non-zero if any property fails, so CI regression
//! checks are the assertions themselves. `BENCH_store.json` layout: the
//! catalog, the three deterministic `ExploreReport` sections
//! (byte-diffable between commits), the comparison, and wall-clock
//! timing (non-deterministic, kept outside the reports).
//!
//! Run: `cargo run --release -p edc-explore --bin bench_store`
//! Output path override: `bench_store <path>` (default `BENCH_store.json`).
//! Store directories live under the system temp dir and are rebuilt from
//! scratch on every run.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::time::Instant;

use edc_bench::banner;
use edc_core::catalog::TraceCatalog;
use edc_core::experiment::ExperimentSpec;
use edc_core::json::Json;
use edc_core::scenarios::{SourceKind, StrategyKind};
use edc_explore::seed::sizing_seeded_decoupling_axis;
use edc_explore::{
    CompletionTime, EnergyPerTask, ExhaustiveGrid, ExploreReport, Explorer, SpecSpace, Store,
    StoreHandle,
};
use edc_units::{Joules, Seconds, Volts};
use edc_workloads::WorkloadKind;

/// The same two synthetic "recordings" as `bench_lint` (see `bench_trace`
/// for provenance): a rectified mains cycle and a bursty office profile.
fn catalog() -> TraceCatalog {
    let mut catalog = TraceCatalog::new();
    let mains: Vec<(f64, f64)> = (0..20)
        .map(|i| {
            let phase = (i as f64 / 20.0) * std::f64::consts::TAU;
            (i as f64 * 1e-3, 8e-3 * phase.sin().max(0.0))
        })
        .collect();
    catalog
        .register("mains-cycle", mains)
        .expect("valid recording");
    let bursty: Vec<(f64, f64)> = (0..16)
        .map(|i| (i as f64 * 2e-3, if i % 4 < 2 { 6e-3 } else { 0.5e-3 }))
        .collect();
    catalog
        .register("bursty-office", bursty)
        .expect("valid recording");
    catalog
}

/// `bench_lint`'s 224-design space, byte for byte: (2 recordings × 2
/// decimations × 2 loop modes) × 2 workloads × 7 strategies × 2
/// capacitances.
fn space(catalog: &TraceCatalog) -> SpecSpace {
    let sources: Vec<SourceKind> = catalog
        .ids()
        .into_iter()
        .flat_map(|id| {
            [1u64, 4].into_iter().flat_map(move |decimate| {
                [true, false]
                    .into_iter()
                    .map(move |looped| SourceKind::Trace {
                        id,
                        decimate,
                        looped,
                    })
            })
        })
        .collect();
    let decoupling =
        sizing_seeded_decoupling_axis(Joules::from_micro(5.0), Volts(2.0), Volts(3.6), 0.1, 8.0, 2)
            .expect("canonical rails are valid");
    let base = ExperimentSpec::new(
        sources[0],
        StrategyKind::Hibernus,
        WorkloadKind::Fourier(256),
    )
    .deadline(Seconds(4.0));
    SpecSpace::over(base)
        .sources(&sources)
        .workloads(&[WorkloadKind::Fourier(256), WorkloadKind::Endless])
        .strategies(&StrategyKind::ALL)
        .decoupling(&decoupling)
}

fn open_handle(dir: &Path) -> StoreHandle {
    match Store::open(dir) {
        Ok(store) => store.into_handle(),
        Err(e) => {
            eprintln!("cannot open store at {}: {e}", dir.display());
            std::process::exit(1);
        }
    }
}

/// One exhaustive grid over the space, backed by `store`.
fn run(catalog: &TraceCatalog, space: &SpecSpace, store: StoreHandle) -> (ExploreReport, f64) {
    let explorer = Explorer::new()
        .objective(CompletionTime)
        .objective(EnergyPerTask)
        .catalog(catalog.clone())
        .store(store);
    let started = Instant::now();
    let report = explorer.run(space, &ExhaustiveGrid).unwrap_or_else(|e| {
        eprintln!("exploration failed: {e}");
        std::process::exit(1);
    });
    (report, started.elapsed().as_secs_f64())
}

/// Compacts the store at `dir` so its file bytes are a pure function of
/// its contents.
fn compact(dir: &Path) {
    let mut store = Store::open(dir).unwrap_or_else(|e| {
        eprintln!("cannot reopen store at {}: {e}", dir.display());
        std::process::exit(1);
    });
    if let Err(e) = store.compact() {
        eprintln!("compaction failed at {}: {e}", dir.display());
        std::process::exit(1);
    }
}

/// Every file in `dir` as sorted `(name, bytes)` pairs — the directory's
/// identity for byte-level comparison.
fn files(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let entries = std::fs::read_dir(dir).unwrap_or_else(|e| {
        eprintln!("cannot list {}: {e}", dir.display());
        std::process::exit(1);
    });
    let mut out: Vec<(String, Vec<u8>)> = Vec::new();
    for entry in entries {
        let entry = entry.unwrap_or_else(|e| {
            eprintln!("cannot list {}: {e}", dir.display());
            std::process::exit(1);
        });
        let name = entry.file_name().to_string_lossy().into_owned();
        let bytes = std::fs::read(entry.path()).unwrap_or_else(|e| {
            eprintln!("cannot read {}: {e}", entry.path().display());
            std::process::exit(1);
        });
        out.push((name, bytes));
    }
    out.sort();
    out
}

fn fail(message: &str) -> ! {
    eprintln!("FAIL: {message}");
    std::process::exit(1);
}

fn main() {
    let path = edc_bench::artifact_path("BENCH_store.json");
    let root: PathBuf = std::env::temp_dir().join("edc-bench-store");
    let _ = std::fs::remove_dir_all(&root);
    let (dir_a, dir_b, dir_c) = (root.join("cold"), root.join("half"), root.join("rebuild"));

    let catalog = catalog();
    let space = space(&catalog);
    let designs = space.len() as u64;

    // Cold: a fresh store simulates everything and writes it all back.
    let (cold, cold_s) = run(&catalog, &space, open_handle(&dir_a));
    if (cold.evaluations, cold.store_hits) != (designs, 0) {
        fail("cold run must simulate every design with zero store hits");
    }

    // Fully warm: reopen the store from disk — zero simulations, same
    // front. This is the tentpole claim: persistence replaces simulation
    // without perturbing the result.
    let (warm, warm_s) = run(&catalog, &space, open_handle(&dir_a));
    if (warm.evaluations, warm.store_hits) != (0, designs) {
        fail("fully-warm run must hit the store for every design and simulate nothing");
    }
    let objectives: Vec<String> = cold.objectives.clone();
    let cold_front = cold.front.to_json(&objectives);
    if warm.front.to_json(&objectives).to_string() != cold_front.to_string() {
        fail("fully-warm front differs from the cold front");
    }

    // Half-warm: a second store seeded with every other entry simulates
    // exactly the missing half.
    let seeded = {
        let source = Store::open(&dir_a).unwrap_or_else(|e| {
            eprintln!("cannot reopen store at {}: {e}", dir_a.display());
            std::process::exit(1);
        });
        let mut target = Store::open(&dir_b).unwrap_or_else(|e| {
            eprintln!("cannot open store at {}: {e}", dir_b.display());
            std::process::exit(1);
        });
        let mut seeded = 0u64;
        for entry in source.sorted_entries().iter().step_by(2) {
            let spec = Json::parse(&entry.spec_json).unwrap_or_else(|e| {
                eprintln!("stored spec is not valid JSON: {e}");
                std::process::exit(1);
            });
            let scores: BTreeMap<String, f64> = entry.scores.clone();
            match target.put(&spec, entry.report.clone(), scores, entry.cost) {
                Ok(true) => seeded += 1,
                Ok(false) => fail("seeding a fresh store must append every entry"),
                Err(e) => {
                    eprintln!("seeding failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        seeded
    };
    let (half, half_s) = run(&catalog, &space, open_handle(&dir_b));
    if (half.evaluations, half.store_hits) != (designs - seeded, seeded) {
        fail("half-warm run must simulate exactly the unseeded half");
    }
    if half.front.to_json(&objectives).to_string() != cold_front.to_string() {
        fail("half-warm front differs from the cold front");
    }

    // Independent rebuild: a third store built from scratch, in whatever
    // order the parallel evaluator writes back.
    let (rebuild, rebuild_s) = run(&catalog, &space, open_handle(&dir_c));
    if (rebuild.evaluations, rebuild.store_hits) != (designs, 0) {
        fail("rebuild run must simulate every design with zero store hits");
    }

    // Deterministic compaction: all three stores now hold the same runs,
    // inserted in different orders; their files must end up
    // byte-identical.
    for dir in [&dir_a, &dir_b, &dir_c] {
        compact(dir);
    }
    let (files_a, files_b, files_c) = (files(&dir_a), files(&dir_b), files(&dir_c));
    let stores_identical = files_a == files_b && files_a == files_c;
    if !stores_identical {
        fail("compacted stores are not byte-identical");
    }
    let store_bytes: u64 = files_a.iter().map(|(_, bytes)| bytes.len() as u64).sum();

    banner("Store warm-start on bench_lint's 224-design space");
    println!(
        "cold:      {} sims, {} hits in {cold_s:.3} s",
        cold.evaluations, cold.store_hits
    );
    println!(
        "warm:      {} sims, {} hits in {warm_s:.3} s (front byte-identical)",
        warm.evaluations, warm.store_hits
    );
    println!(
        "half-warm: {} sims, {} hits in {half_s:.3} s ({seeded} entries seeded)",
        half.evaluations, half.store_hits
    );
    println!(
        "rebuild:   {} sims in {rebuild_s:.3} s; 3 compacted stores byte-identical \
         ({} files, {store_bytes} bytes each)",
        rebuild.evaluations,
        files_a.len()
    );

    edc_bench::banner("Metrics");
    print!("{}", edc_metrics::global().render_text());

    let artifact = edc_bench::artifact(
        "store",
        vec![
            ("catalog", catalog.to_json()),
            ("cold", cold.to_json()),
            ("warm", warm.to_json()),
            ("half_warm", half.to_json()),
            (
                "comparison",
                Json::obj(vec![
                    ("designs", Json::Uint(designs)),
                    ("fronts_identical", Json::Bool(true)),
                    ("cold_simulations", Json::Uint(cold.evaluations)),
                    ("warm_simulations", Json::Uint(warm.evaluations)),
                    ("warm_store_hits", Json::Uint(warm.store_hits)),
                    ("half_seeded", Json::Uint(seeded)),
                    ("half_simulations", Json::Uint(half.evaluations)),
                    ("half_store_hits", Json::Uint(half.store_hits)),
                    ("rebuild_simulations", Json::Uint(rebuild.evaluations)),
                    ("stores_identical", Json::Bool(stores_identical)),
                    ("store_files", Json::Uint(files_a.len() as u64)),
                    ("store_bytes", Json::Uint(store_bytes)),
                ]),
            ),
            // Non-deterministic section, deliberately outside the reports.
            (
                "timing",
                Json::obj(vec![
                    ("cold_s", Json::Num(cold_s)),
                    ("warm_s", Json::Num(warm_s)),
                    ("half_s", Json::Num(half_s)),
                    ("rebuild_s", Json::Num(rebuild_s)),
                ]),
            ),
        ],
    );
    edc_bench::write_artifact(&path, &artifact);
}
