//! Trace benchmark: sizing search over *recorded* power sources.
//!
//! The scenario is the capability this artifact pins down: register two
//! synthetic "recordings" (a rectified mains cycle and a bursty office
//! profile) in a [`TraceCatalog`], enumerate them — with decimation as a
//! budgeted fidelity knob — on a `SpecSpace` source axis next to a
//! sizing-seeded capacitance ladder and every checkpoint strategy, and
//! compare the exhaustive grid against successive halving whose early
//! rungs coarsen the timestep *and* shorten the deadline.
//!
//! `BENCH_trace.json` layout: the catalog (name + hash + samples, the
//! lossless half of trace spec JSON), the two deterministic
//! `ExploreReport` sections (byte-diffable between commits), the budget
//! comparison, and wall-clock timing (non-deterministic, kept outside the
//! reports).
//!
//! Run: `cargo run --release -p edc-explore --bin bench_trace`
//! Output path override: `bench_trace <path>` (default `BENCH_trace.json`
//! in the working directory).
//!
//! `--store DIR` runs both searches against a persistent evaluation
//! store and hard-asserts each front byte-identical to the committed
//! cold `BENCH_trace.json` — a warm store must change the budget, never
//! the result.

use std::time::Instant;

use edc_bench::{banner, TextTable};
use edc_core::catalog::TraceCatalog;
use edc_core::experiment::ExperimentSpec;
use edc_core::json::Json;
use edc_core::scenarios::{SourceKind, StrategyKind};
use edc_explore::seed::sizing_seeded_decoupling_axis;
use edc_explore::{
    CompletionTime, EnergyPerTask, ExhaustiveGrid, ExploreReport, Explorer, SpecSpace,
    SuccessiveHalving,
};
use edc_units::{Joules, Seconds, Volts};
use edc_workloads::WorkloadKind;

/// The two deterministic synthetic "recordings". Offline stand-ins for
/// the paper's published traces (DOI 10.5258/SOTON/404058), generated
/// rather than downloaded, so the artifact stays reproducible.
fn catalog() -> TraceCatalog {
    let mut catalog = TraceCatalog::new();
    // One rectified mains cycle of harvested power, 1 ms sampling.
    let mains: Vec<(f64, f64)> = (0..20)
        .map(|i| {
            let phase = (i as f64 / 20.0) * std::f64::consts::TAU;
            (i as f64 * 1e-3, 8e-3 * phase.sin().max(0.0))
        })
        .collect();
    catalog
        .register("mains-cycle", mains)
        .expect("valid recording");
    // A bursty office profile: strong bursts with weak troughs, 2 ms
    // sampling — the duty pattern that separates eager from lazy
    // checkpoint strategies.
    let bursty: Vec<(f64, f64)> = (0..16)
        .map(|i| (i as f64 * 2e-3, if i % 4 < 2 { 6e-3 } else { 0.5e-3 }))
        .collect();
    catalog
        .register("bursty-office", bursty)
        .expect("valid recording");
    catalog
}

/// The benchmark space: (2 recordings × 2 decimation levels) × all 7
/// strategies × 2 sizing-seeded capacitances = 56 designs.
fn space(catalog: &TraceCatalog) -> SpecSpace {
    let sources: Vec<SourceKind> = catalog
        .ids()
        .into_iter()
        .flat_map(|id| {
            [1u64, 4]
                .into_iter()
                .map(move |decimate| SourceKind::Trace {
                    id,
                    decimate,
                    looped: true,
                })
        })
        .collect();
    let decoupling = sizing_seeded_decoupling_axis(
        Joules::from_micro(5.0), // snapshot cost scale of the paper's platform
        Volts(2.0),              // MSP430 V_min
        Volts(3.6),              // rail V_max
        0.1,                     // 10% safety margin
        8.0,                     // bracket the floor up to 8×
        2,
    )
    .expect("canonical rails are valid");
    let base = ExperimentSpec::new(
        sources[0],
        StrategyKind::Hibernus,
        WorkloadKind::Fourier(256),
    )
    .deadline(Seconds(4.0));
    SpecSpace::over(base)
        .sources(&sources)
        .strategies(&StrategyKind::ALL)
        .decoupling(&decoupling)
}

fn front_table(report: &ExploreReport) -> String {
    let mut t = TextTable::new(&[
        "source",
        "decimate",
        "decoupling (µF)",
        "strategy",
        "completion (s)",
        "energy (mJ)",
    ]);
    for p in report.front.points() {
        let (name, decimate) = match p.spec.source {
            SourceKind::Trace { id, decimate, .. } => (id.name(), decimate),
            other => (other.name(), 1),
        };
        t.row(&[
            name.to_string(),
            format!("{decimate}x"),
            format!("{:.2}", p.spec.decoupling.as_micro()),
            p.spec.strategy.name().to_string(),
            if p.scores[0].is_finite() {
                format!("{:.3}", p.scores[0])
            } else {
                "DNF".to_string()
            },
            if p.scores[1].is_finite() {
                format!("{:.4}", p.scores[1] * 1e3)
            } else {
                "DNF".to_string()
            },
        ]);
    }
    t.render()
}

fn main() {
    let args = edc_bench::bench_args("BENCH_trace.json");
    let path = args.path.clone();
    let catalog = catalog();
    let space = space(&catalog);
    let mut explorer = Explorer::new()
        .objective(CompletionTime)
        .objective(EnergyPerTask)
        .catalog(catalog.clone());
    if let Some(dir) = &args.store {
        match edc_explore::Store::open(dir) {
            Ok(store) => explorer = explorer.store(store.into_handle()),
            Err(e) => {
                eprintln!("cannot open store at {dir}: {e}");
                std::process::exit(1);
            }
        }
    }

    let started = Instant::now();
    let grid = explorer.run(&space, &ExhaustiveGrid).unwrap_or_else(|e| {
        eprintln!("exhaustive exploration failed: {e}");
        std::process::exit(1);
    });
    let grid_s = started.elapsed().as_secs_f64();

    // Early rungs coarsen the timestep *and* shorten the deadline; the
    // evaluator charges both discounts, compounding the budget saving.
    let halving_searcher = SuccessiveHalving::new().deadline_divisors(&[4.0, 2.0, 1.0]);
    let started = Instant::now();
    let halving = explorer.run(&space, &halving_searcher).unwrap_or_else(|e| {
        eprintln!("successive-halving exploration failed: {e}");
        std::process::exit(1);
    });
    let halving_s = started.elapsed().as_secs_f64();

    banner("Design space: recorded traces x decimation x strategy x capacitance");
    println!(
        "{} registered recordings, {} designs; exhaustive grid = {} simulations",
        catalog.len(),
        space.len(),
        grid.evaluations
    );
    banner("Exhaustive Pareto front (completion time vs energy per task)");
    print!("{}", front_table(&grid));
    banner("Successive-halving front (short-deadline, coarse-dt prefilters)");
    print!("{}", front_table(&halving));

    let cost_ratio = halving.cost_units / grid.cost_units;
    let front_overlap = halving
        .front
        .points()
        .iter()
        .filter(|p| grid.front.contains_key(&p.key))
        .count();
    banner("Budget");
    println!(
        "exhaustive: {} sims ({:.2} cost units) in {grid_s:.3} s",
        grid.evaluations, grid.cost_units
    );
    println!(
        "   halving: {} sims ({:.2} cost units) in {halving_s:.3} s",
        halving.evaluations, halving.cost_units
    );
    println!(
        "cost ratio {:.3} ({} of the halving front's {} points sit on the grid front)",
        cost_ratio,
        front_overlap,
        halving.front.len()
    );

    // The --store warm-start contract: the store may change the budget,
    // never the result. Both fronts must match the committed cold run.
    if args.store.is_some() {
        println!(
            "store: grid {} hits, halving {} hits",
            grid.store_hits, halving.store_hits
        );
        let objectives: Vec<String> = grid.objectives.clone();
        edc_bench::assert_front_matches(
            "BENCH_trace.json",
            "exhaustive",
            &grid.front.to_json(&objectives),
        );
        edc_bench::assert_front_matches(
            "BENCH_trace.json",
            "halving",
            &halving.front.to_json(&objectives),
        );
    }

    banner("Metrics");
    print!("{}", edc_metrics::global().render_text());

    let artifact = edc_bench::artifact(
        "trace",
        vec![
            ("catalog", catalog.to_json()),
            ("exhaustive", grid.to_json()),
            ("halving", halving.to_json()),
            (
                "comparison",
                Json::obj(vec![
                    ("grid_simulations", Json::Uint(grid.evaluations)),
                    ("halving_simulations", Json::Uint(halving.evaluations)),
                    ("grid_cost_units", Json::Num(grid.cost_units)),
                    ("halving_cost_units", Json::Num(halving.cost_units)),
                    ("cost_ratio", Json::Num(cost_ratio)),
                    ("front_overlap", Json::Uint(front_overlap as u64)),
                ]),
            ),
            // Non-deterministic section, deliberately outside both reports.
            (
                "timing",
                Json::obj(vec![
                    ("grid_s", Json::Num(grid_s)),
                    ("halving_s", Json::Num(halving_s)),
                ]),
            ),
        ],
    );
    edc_bench::write_artifact(&path, &artifact);
}
