//! The incremental experiment service: line-delimited JSON requests
//! (`evaluate` / `search` / `lint` / `fetch` / `metrics`) over stdin or a
//! TCP socket, backed by the parallel evaluator and an optional
//! persistent evaluation store. See [`edc_explore::serve`] for the
//! protocol.
//!
//! - Stdin mode (default): requests on stdin, one response per line on
//!   stdout. Consecutive `evaluate` lines batch until a blank line or a
//!   different op; end-of-input flushes the last batch and
//!   deterministically compacts the store, so two servers fed the same
//!   script leave byte-identical store files.
//! - TCP mode (`--listen ADDR`): connections are accepted and served one
//!   at a time over the same session, so every client shares the session
//!   memo and store. A connection's end flushes its pending batch; the
//!   store is compacted when the listener terminates (never, under
//!   normal operation — the store stays durable via its append-only
//!   log).
//!
//! Run: `cargo run --release -p edc-explore --bin edc_serve -- \
//!       [--store DIR] [--listen ADDR] [--threads N] [--objectives a,b]`

use std::io::{BufRead, BufReader, Write};

use edc_explore::serve::ServeSession;
use edc_explore::{objective_by_name, Objective, Store};

fn usage() -> ! {
    eprintln!(
        "usage: edc_serve [--store DIR] [--listen ADDR] [--threads N] [--objectives NAME,NAME]\n\
         \n\
         Speaks line-delimited JSON on stdin (default) or ADDR. Objective\n\
         names: completion_s, brownouts, p99_outage_s, energy_per_task_j\n\
         (default: completion_s,energy_per_task_j)."
    );
    std::process::exit(2);
}

fn main() {
    let mut store_dir: Option<String> = None;
    let mut listen: Option<String> = None;
    let mut threads: Option<usize> = None;
    let mut objective_names: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--store" => store_dir = Some(value()),
            "--listen" => listen = Some(value()),
            "--threads" => match value().parse() {
                Ok(n) => threads = Some(n),
                Err(_) => usage(),
            },
            "--objectives" => objective_names = Some(value()),
            _ => usage(),
        }
    }

    let mut session = ServeSession::new().metrics(edc_metrics::global());
    if let Some(n) = threads {
        session = session.threads(n);
    }
    if let Some(names) = objective_names {
        let mut objectives: Vec<Box<dyn Objective>> = Vec::new();
        for name in names.split(',').filter(|n| !n.is_empty()) {
            match objective_by_name(name) {
                Some(o) => objectives.push(o),
                None => {
                    eprintln!("unknown objective: {name}");
                    std::process::exit(2);
                }
            }
        }
        if objectives.is_empty() {
            usage();
        }
        session = session.objectives(objectives);
    }
    if let Some(dir) = store_dir {
        match Store::open(&dir) {
            Ok(store) => session = session.store(store.into_handle()),
            Err(e) => {
                eprintln!("cannot open store at {dir}: {e}");
                std::process::exit(1);
            }
        }
    }

    match listen {
        None => serve_stdin(session),
        Some(addr) => serve_tcp(session, &addr),
    }
}

/// Stdin mode: one response line per request, batches flushed on blank
/// lines and at end-of-input (which also compacts the store).
fn serve_stdin(mut session: ServeSession) {
    let stdin = std::io::stdin();
    let mut out = std::io::stdout().lock();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        for response in session.handle_line(&line) {
            emit(&mut out, &response);
        }
    }
    for response in session.finish() {
        emit(&mut out, &response);
    }
}

/// TCP mode: connections served one at a time over the shared session,
/// so every client warms the same memo and store.
fn serve_tcp(mut session: ServeSession, addr: &str) {
    let listener = std::net::TcpListener::bind(addr).unwrap_or_else(|e| {
        eprintln!("cannot listen on {addr}: {e}");
        std::process::exit(1);
    });
    eprintln!("edc_serve listening on {addr}");
    for stream in listener.incoming() {
        let Ok(stream) = stream else { continue };
        let mut writer = match stream.try_clone() {
            Ok(w) => w,
            Err(_) => continue,
        };
        let reader = BufReader::new(stream);
        for line in reader.lines() {
            let Ok(line) = line else { break };
            let mut broken = false;
            for response in session.handle_line(&line) {
                if writeln!(writer, "{response}").is_err() {
                    broken = true;
                    break;
                }
            }
            if broken || writer.flush().is_err() {
                break;
            }
        }
        // The connection's end answers its still-pending batch; when the
        // client is already gone the responses are simply dropped.
        for response in session.flush() {
            let _ = writeln!(writer, "{response}");
        }
        let _ = writer.flush();
    }
}

fn emit(out: &mut impl Write, response: &str) {
    if writeln!(out, "{response}")
        .and_then(|()| out.flush())
        .is_err()
    {
        std::process::exit(1);
    }
}
