//! The shared evaluation engine: memoised, budgeted, parallel.
//!
//! Every searcher funds its simulations through one [`Evaluator`]. The
//! evaluator:
//!
//! - **canonicalises** each candidate spec (forcing stats telemetry when an
//!   objective needs it) and keys its memo cache on the spec's canonical
//!   JSON, so the same design is never simulated twice — within a search
//!   *or* across rungs of different fidelity (the timestep is part of the
//!   key);
//! - **enforces the budget**: a batch whose cache misses would exceed the
//!   configured cost ceiling (in full-fidelity-equivalent units) fails
//!   with [`ExploreError::BudgetExhausted`] before any of them run. Cost
//!   per miss is `(reference_dt / dt) × (deadline / reference_deadline) ÷
//!   trace decimation × objective cost scale`: coarse timesteps, shortened
//!   rung deadlines and decimated trace sources all charge fractionally,
//!   while fleet objectives (which deploy every candidate as a whole
//!   population) charge ≈ their node count per miss;
//! - **fans out** cache misses across scoped worker threads via the sweep
//!   engine's [`run_specs_timed_metered`], whose results come back in
//!   input order —
//!   so thread count affects wall-clock only, never results — resolving
//!   [`SourceKind::Trace`](edc_core::scenarios::SourceKind::Trace)
//!   candidates through the catalog supplied by
//!   [`Evaluator::with_catalog`];
//! - **records a trace** entry per requested evaluation, in request order,
//!   which is what makes [`ExploreReport`](crate::ExploreReport) JSON
//!   byte-identical across repeated and serial-vs-parallel runs.

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::collections::HashSet;
use std::time::Instant;

use edc_bench::sweep::run_specs_timed_metered;
use edc_core::catalog::TraceCatalog;
use edc_core::experiment::ExperimentSpec;
use edc_core::SystemReport;
use edc_core::TelemetryKind;
use edc_lint::Linter;
use edc_obs::{ProfileReport, ProfileSpan};
use edc_store::StoreHandle;
use edc_units::Seconds;

use crate::objective::Objective;
use crate::pareto::dominates;
use crate::ExploreError;

/// One evaluated candidate: its (canonicalised) spec, the cache key, and
/// one score per objective.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// The candidate spec, after canonicalisation.
    pub spec: ExperimentSpec,
    /// The spec's canonical JSON — the memo-cache key.
    pub key: String,
    /// One score per objective, in objective order; lower is better.
    pub scores: Vec<f64>,
}

/// One trace entry: an evaluation request and whether the cache served it.
#[derive(Debug, Clone)]
pub struct TraceEntry {
    /// Which search phase requested the evaluation (e.g. `grid`,
    /// `rung0@16x`, `round1/decoupling`).
    pub phase: String,
    /// The candidate spec.
    pub spec: ExperimentSpec,
    /// One score per objective.
    pub scores: Vec<f64>,
    /// `true` when the memo cache served the request without simulating.
    pub cached: bool,
    /// `true` when the lint prefilter scored the candidate statically —
    /// it was never simulated and its scores are the objectives' DNF
    /// values.
    pub pruned: bool,
    /// `true` when branch-and-bound dominance pruned the candidate — it
    /// was never simulated and its scores are its objectives' static
    /// lower bounds (sound optimistic stand-ins; an already-simulated
    /// incumbent dominates even these, so the true scores cannot reach
    /// the Pareto front).
    pub bound_pruned: bool,
    /// `true` when the persistent store served the request without
    /// simulating (first request for the key only; repeats within the
    /// process hit the memo cache as usual).
    pub store_hit: bool,
}

/// The memoised, budgeted, parallel evaluation engine.
pub struct Evaluator<'a> {
    objectives: &'a [Box<dyn Objective>],
    force_stats: bool,
    threads: usize,
    budget: Option<u64>,
    reference_dt: Seconds,
    reference_deadline: Option<Seconds>,
    cost_scale: f64,
    catalog: TraceCatalog,
    cache: HashMap<String, Vec<f64>>,
    simulations: u64,
    cache_hits: u64,
    cost_units: f64,
    trace: Vec<TraceEntry>,
    prefilter: bool,
    linter: Option<Linter>,
    pruned: HashSet<String>,
    lint_checks: u64,
    lint_pruned: u64,
    bound: bool,
    bound_checks: u64,
    bound_pruned: u64,
    bound_pruned_keys: HashSet<String>,
    /// Exact score vectors (simulated or statically-exact) that serve as
    /// dominance incumbents for branch-and-bound pruning. Never contains
    /// a bound-pruned candidate's lower-bound stand-in.
    incumbents: Vec<Vec<f64>>,
    profile: ProfileReport,
    metrics: Option<edc_metrics::Registry>,
    store: Option<StoreHandle>,
    store_hits: u64,
}

/// Histogram bounds for per-miss simulation cost in
/// full-fidelity-equivalent units: powers of four from a 64×-discounted
/// prefilter run up to a 64-node fleet deployment, `+Inf` beyond.
pub const COST_UNIT_BOUNDS: [f64; 7] = [0.015625, 0.0625, 0.25, 1.0, 4.0, 16.0, 64.0];

/// Chunk size for branch-and-bound evaluation: surviving cache misses are
/// simulated in fixed input-order chunks of this many specs, with a
/// dominance-pruning pass over the remaining misses between chunks.
/// Input-order chunking keeps results thread-independent and repeatable.
const BOUND_CHUNK: usize = 16;

impl<'a> Evaluator<'a> {
    /// An evaluator scoring with `objectives`, fanning cache misses out
    /// over `threads` workers, optionally capped at a `budget` of
    /// full-fidelity-equivalent cost units.
    ///
    /// `reference_dt` is the full-fidelity timestep used to normalise
    /// [`Evaluator::cost_units`] and the budget: a run at
    /// `k × reference_dt` costs `1/k` units, because simulation cost
    /// scales inversely with the timestep. A budget of `N` therefore
    /// admits exactly an `N`-point exhaustive grid at full fidelity, or a
    /// proportionally larger number of cheap coarse runs.
    ///
    /// The scale also reflects what the objectives *do* with each miss:
    /// every cache miss is charged `max` over the objectives of
    /// [`Objective::cost_multiplier`], so a fleet objective that deploys
    /// the candidate as an `n`-node population charges ≈ `n` units where a
    /// single-node objective charges 1.
    pub fn new(
        objectives: &'a [Box<dyn Objective>],
        threads: usize,
        budget: Option<u64>,
        reference_dt: Seconds,
    ) -> Self {
        Self {
            force_stats: objectives.iter().any(|o| o.requires_stats()),
            cost_scale: objectives
                .iter()
                .map(|o| o.cost_multiplier())
                .fold(1.0, f64::max),
            objectives,
            threads: threads.max(1),
            budget,
            reference_dt,
            reference_deadline: None,
            catalog: TraceCatalog::new(),
            cache: HashMap::new(),
            simulations: 0,
            cache_hits: 0,
            cost_units: 0.0,
            trace: Vec::new(),
            prefilter: false,
            linter: None,
            pruned: HashSet::new(),
            lint_checks: 0,
            lint_pruned: 0,
            bound: false,
            bound_checks: 0,
            bound_pruned: 0,
            bound_pruned_keys: HashSet::new(),
            incumbents: Vec::new(),
            profile: ProfileReport::new(),
            metrics: None,
            store: None,
            store_hits: 0,
        }
    }

    /// Supplies the catalog trace-backed candidate specs resolve through.
    pub fn with_catalog(mut self, catalog: TraceCatalog) -> Self {
        self.catalog = catalog;
        self.linter = None; // rebuilt lazily against the new catalog
        self
    }

    /// Enables the static lint prefilter: before simulating a cache miss,
    /// the spec is linted ([`Linter::lint_spec`]) and, if any `E`-severity
    /// diagnostic fires, scored with the objectives' [DNF
    /// values](crate::objective::Objective::dnf_score) at zero simulation
    /// cost. Pruning only happens when *every* objective declares a DNF
    /// score — otherwise (brownout counts, outage percentiles) the flagged
    /// candidate is simulated as usual, so enabling the prefilter never
    /// changes any score, only what it costs to obtain them. Lint work is
    /// billed separately ([`Evaluator::lint_checks`] /
    /// [`Evaluator::lint_pruned`]), never against the simulation budget.
    pub fn with_prefilter(mut self, on: bool) -> Self {
        self.prefilter = on;
        self
    }

    /// Enables branch-and-bound dominance pruning on top of (and
    /// independently of) the lint prefilter. Before simulating, every
    /// cache miss gets a vector of static score *lower* bounds — one
    /// [`Objective::static_bracket`] `lo` per objective, from the shared
    /// interval engine. Misses are then simulated in fixed input-order
    /// chunks; between chunks, any pending miss whose lower-bound vector
    /// is dominated by an already-exact incumbent score is cached at its
    /// lower bounds without simulating (billed as
    /// [`Evaluator::bound_pruned`]). Sound by construction: the true
    /// score is no better than its lower bound, so a candidate dominated
    /// *at its lower bounds* is dominated at its true scores too and can
    /// never reach the Pareto front.
    ///
    /// With bound pruning enabled, the prefilter can also statically
    /// score `E`-flagged candidates whose objectives lack a constant
    /// [`Objective::dnf_score`] whenever their brackets are *exact*
    /// (e.g. a proven never-boot pins the brownout count to zero).
    ///
    /// Two behavioural caveats versus the plain path, both only when
    /// enabled: a batch is budget-checked chunk by chunk (a mid-batch
    /// exhaustion can leave earlier chunks simulated and charged), and a
    /// bound-pruned candidate's recorded scores are its lower bounds, not
    /// its true scores — fine for front construction (it provably cannot
    /// be on the front), misleading if read as measurements.
    pub fn with_bound(mut self, on: bool) -> Self {
        self.bound = on;
        self
    }

    /// Routes this evaluator's process metrics into `registry` instead of
    /// [`edc_metrics::global`]: per-phase request/hit/miss/lint counters,
    /// a per-miss cost histogram, and the sweep-layer counters of every
    /// miss batch it fans out. Point different evaluators at different
    /// registries to compare their expositions in isolation.
    ///
    /// ```
    /// use edc_explore::evaluator::Evaluator;
    /// use edc_explore::objective::CompletionTime;
    /// use edc_explore::objective::Objective;
    /// use edc_units::Seconds;
    ///
    /// let objectives: Vec<Box<dyn Objective>> = vec![Box::new(CompletionTime)];
    /// let registry = edc_metrics::Registry::new();
    /// let eval = Evaluator::new(&objectives, 1, None, Seconds(20e-6))
    ///     .with_metrics(registry.clone());
    /// ```
    pub fn with_metrics(mut self, registry: edc_metrics::Registry) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// Connects a persistent evaluation store. Before simulating, every
    /// memo-cache miss is looked up by its canonical-spec key; a hit is
    /// billed at **zero** cost, never simulated, and (in bound mode)
    /// becomes a dominance incumbent, so searches warm-started from a
    /// fully-populated store run zero simulations yet produce
    /// byte-identical Pareto fronts. Scores the stored entry lacks are
    /// recomputed bit-exactly from its stored report via
    /// [`Objective::score_json`] and merged back into the store; misses
    /// that do simulate are written back, so every process enriches the
    /// store for the next one. Store traffic is counted by the
    /// `edc_store_hits` / `edc_store_misses` / `edc_store_writes`
    /// metrics.
    ///
    /// ```
    /// use edc_explore::evaluator::Evaluator;
    /// use edc_explore::objective::{CompletionTime, Objective};
    /// use edc_store::Store;
    /// use edc_units::Seconds;
    ///
    /// let dir = std::env::temp_dir().join("edc-eval-doc-store");
    /// let _ = std::fs::remove_dir_all(&dir);
    /// let store = Store::open(&dir).unwrap().into_handle();
    /// let objectives: Vec<Box<dyn Objective>> = vec![Box::new(CompletionTime)];
    /// let eval = Evaluator::new(&objectives, 1, None, Seconds(20e-6))
    ///     .with_store(store);
    /// ```
    pub fn with_store(mut self, store: StoreHandle) -> Self {
        self.store = Some(store);
        self
    }

    /// Sets the full-horizon deadline cost is normalised against: a run
    /// whose spec deadline is `d` charges a further factor `d /
    /// reference_deadline`, so rung-shortened deadlines (see
    /// [`SuccessiveHalving::deadline_divisors`](crate::SuccessiveHalving::deadline_divisors))
    /// compound with coarse timesteps in the budget. Without a reference,
    /// deadlines do not enter the cost model.
    pub fn with_reference_deadline(mut self, deadline: Seconds) -> Self {
        self.reference_deadline = Some(deadline);
        self
    }

    /// What one cache miss of `spec` costs, in full-fidelity-equivalent
    /// units: timestep ratio × deadline ratio ÷ trace-decimation discount,
    /// scaled by the objectives' per-miss multiplier.
    fn cost_of(&self, spec: &ExperimentSpec) -> f64 {
        let dt_ratio = self.reference_dt.0 / spec.timestep.0;
        let deadline_ratio = self
            .reference_deadline
            .map(|d| spec.deadline.0 / d.0)
            .unwrap_or(1.0);
        dt_ratio * deadline_ratio / spec.source.fidelity_discount() * self.cost_scale
    }

    /// Evaluates a batch of candidates, serving repeats from the memo
    /// cache and simulating the rest in parallel. Results come back in
    /// input order; one trace entry is recorded per input.
    ///
    /// # Errors
    ///
    /// [`ExploreError::BudgetExhausted`] when the batch's cache misses
    /// would exceed the budget — denominated in full-fidelity-equivalent
    /// cost units, so coarse prefilter runs are charged fractionally, the
    /// same currency as [`Evaluator::cost_units`] (nothing is simulated in
    /// that case) — or the first
    /// [`BuildError`](edc_core::experiment::BuildError) if a candidate
    /// fails validation.
    pub fn evaluate(
        &mut self,
        specs: Vec<ExperimentSpec>,
        phase: &str,
    ) -> Result<Vec<Evaluation>, ExploreError> {
        let started = Instant::now();
        let before = (
            self.cache_hits,
            self.lint_checks,
            self.lint_pruned,
            self.cost_units,
            self.bound_checks,
            self.bound_pruned,
        );
        let objectives = self.objectives;
        let prepared: Vec<ExperimentSpec> = specs
            .into_iter()
            .map(|s| {
                if self.force_stats {
                    s.telemetry(TelemetryKind::Stats)
                } else {
                    s
                }
            })
            .collect();
        let keys: Vec<String> = prepared.iter().map(|s| s.to_json().to_string()).collect();

        // Cache misses, first occurrence only, in input order.
        let mut missing: Vec<usize> = Vec::new();
        let mut queued: HashSet<&str> = HashSet::new();
        for (i, key) in keys.iter().enumerate() {
            if !self.cache.contains_key(key) && queued.insert(key) {
                missing.push(i);
            }
        }

        // Persistent store: resolve misses from prior processes' runs
        // before any lint/bound/simulation work. Hits are billed at zero
        // cost and (in bound mode) become dominance incumbents; scores
        // the stored entry lacks are recomputed bit-exactly from its
        // stored report and merged back for the next reader.
        let mut store_fresh: HashSet<usize> = HashSet::new();
        let mut store_misses: u64 = 0;
        if let Some(store) = self.store.clone() {
            let mut guard = store
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let mut survivors = Vec::with_capacity(missing.len());
            for &i in &missing {
                let hit = guard.get(&keys[i]).and_then(|entry| {
                    let resolved: Option<Vec<f64>> = objectives
                        .iter()
                        .map(|o| {
                            o.store_key()
                                .and_then(|k| entry.scores.get(&k).copied())
                                .or_else(|| o.score_json(&entry.report))
                        })
                        .collect();
                    resolved.map(|scores| {
                        let mut recomputed: BTreeMap<String, f64> = BTreeMap::new();
                        for (o, s) in objectives.iter().zip(&scores) {
                            if let Some(key) = o.store_key() {
                                if !entry.scores.contains_key(&key) && !s.is_nan() {
                                    recomputed.insert(key, *s);
                                }
                            }
                        }
                        (scores, recomputed, entry.report.clone(), entry.cost)
                    })
                });
                let Some((scores, recomputed, report, cost)) = hit else {
                    store_misses += 1;
                    survivors.push(i);
                    continue;
                };
                if !recomputed.is_empty() {
                    guard
                        .put(&prepared[i].to_json(), report, recomputed, cost)
                        .map_err(ExploreError::Store)?;
                }
                if self.bound {
                    // Store hits carry exact scores: valid incumbents.
                    self.incumbents.push(scores.clone());
                }
                self.cache.insert(keys[i].clone(), scores);
                store_fresh.insert(i);
                self.store_hits += 1;
            }
            missing = survivors;
        }

        // Lint prefilter: score statically-infeasible misses without
        // simulating. Only sound when every objective's static score is
        // exact — a declared constant DNF score, or (with bound pruning
        // enabled) a degenerate `lo == hi` bracket from the shared
        // engine. The budget below then only sees the surviving misses.
        if self.prefilter {
            let dnf: Option<Vec<f64>> = objectives.iter().map(|o| o.dnf_score()).collect();
            if dnf.is_some() || self.bound {
                let linter = self
                    .linter
                    .get_or_insert_with(|| Linter::with_catalog(self.catalog.clone()));
                let mut survivors = Vec::with_capacity(missing.len());
                for &i in &missing {
                    self.lint_checks += 1;
                    if linter.lint_spec(&prepared[i]).has_errors() {
                        let static_scores: Option<Vec<f64>> = if self.bound {
                            objectives
                                .iter()
                                .map(|o| {
                                    o.dnf_score().or_else(|| {
                                        o.static_bracket(&prepared[i], linter.bounder())
                                            .filter(|b| b.is_exact())
                                            .map(|b| b.lo)
                                    })
                                })
                                .collect()
                        } else {
                            dnf.clone()
                        };
                        match static_scores {
                            Some(scores) => {
                                if self.bound {
                                    // Statically-exact scores are valid
                                    // dominance incumbents.
                                    self.incumbents.push(scores.clone());
                                }
                                self.cache.insert(keys[i].clone(), scores);
                                self.pruned.insert(keys[i].clone());
                                self.lint_pruned += 1;
                            }
                            None => survivors.push(i),
                        }
                    } else {
                        survivors.push(i);
                    }
                }
                missing = survivors;
            }
        }

        if self.budget.is_some() && !self.bound {
            // With bound pruning the batch is charged chunk by chunk
            // below (later chunks may never run); without it the whole
            // batch is admitted or rejected up front.
            if let Some(budget) = self.budget {
                let batch_cost: f64 = missing.iter().map(|&i| self.cost_of(&prepared[i])).sum();
                let needed = self.cost_units + batch_cost;
                if needed > budget as f64 {
                    return Err(ExploreError::BudgetExhausted { budget, needed });
                }
            }
        }

        let registry = self.metrics.clone().unwrap_or_else(edc_metrics::global);
        if !missing.is_empty() {
            let miss_cost = registry.histogram(
                "edc_eval_miss_cost_units",
                "Per-miss simulation cost in full-fidelity-equivalent units.",
                &[("phase", phase)],
                &COST_UNIT_BOUNDS,
            );
            if self.bound {
                // Branch-and-bound: a per-miss lower-bound vector, then
                // chunked simulation with a dominance-pruning pass over
                // the pending misses before each chunk.
                let mut lo_vecs: HashMap<usize, Vec<f64>> = HashMap::new();
                {
                    let linter = self
                        .linter
                        .get_or_insert_with(|| Linter::with_catalog(self.catalog.clone()));
                    for &i in &missing {
                        self.bound_checks += 1;
                        let lo: Option<Vec<f64>> = objectives
                            .iter()
                            .map(|o| {
                                o.static_bracket(&prepared[i], linter.bounder())
                                    .map(|b| b.lo)
                            })
                            .collect();
                        if let Some(lo) = lo {
                            lo_vecs.insert(i, lo);
                        }
                    }
                }
                let mut pending = missing.clone();
                while !pending.is_empty() {
                    let mut survivors = Vec::with_capacity(pending.len());
                    for &i in &pending {
                        let dominated = lo_vecs
                            .get(&i)
                            .is_some_and(|lo| self.incumbents.iter().any(|inc| dominates(inc, lo)));
                        if dominated {
                            // An exact incumbent dominates this candidate
                            // even at its optimistic lower bounds; its true
                            // scores can never reach the front. Cache the
                            // bounds as a sound stand-in.
                            self.cache.insert(keys[i].clone(), lo_vecs[&i].clone());
                            self.bound_pruned_keys.insert(keys[i].clone());
                            self.bound_pruned += 1;
                        } else {
                            survivors.push(i);
                        }
                    }
                    pending = survivors;
                    if pending.is_empty() {
                        break;
                    }
                    let take = pending.len().min(BOUND_CHUNK);
                    let chunk: Vec<usize> = pending.drain(..take).collect();
                    if let Some(budget) = self.budget {
                        let chunk_cost: f64 =
                            chunk.iter().map(|&i| self.cost_of(&prepared[i])).sum();
                        let needed = self.cost_units + chunk_cost;
                        if needed > budget as f64 {
                            return Err(ExploreError::BudgetExhausted { budget, needed });
                        }
                    }
                    let batch: Vec<ExperimentSpec> = chunk.iter().map(|&i| prepared[i]).collect();
                    let rows =
                        run_specs_timed_metered(batch, self.threads, &self.catalog, &registry)?
                            .rows;
                    for (&i, row) in chunk.iter().zip(rows) {
                        let scores: Vec<f64> = objectives
                            .iter()
                            .map(|o| o.score(&prepared[i], &row.report))
                            .collect();
                        self.incumbents.push(scores.clone());
                        let cost = self.cost_of(&prepared[i]);
                        if let Some(store) = &self.store {
                            store_write_back(
                                store,
                                objectives,
                                &prepared[i],
                                &row.report,
                                &scores,
                                cost,
                                &registry,
                                phase,
                            )?;
                        }
                        self.cache.insert(keys[i].clone(), scores);
                        self.simulations += 1;
                        self.cost_units += cost;
                        miss_cost.observe(cost);
                    }
                }
            } else {
                let batch: Vec<ExperimentSpec> = missing.iter().map(|&i| prepared[i]).collect();
                let rows =
                    run_specs_timed_metered(batch, self.threads, &self.catalog, &registry)?.rows;
                for (&i, row) in missing.iter().zip(rows) {
                    let scores: Vec<f64> = objectives
                        .iter()
                        .map(|o| o.score(&prepared[i], &row.report))
                        .collect();
                    let cost = self.cost_of(&prepared[i]);
                    if let Some(store) = &self.store {
                        store_write_back(
                            store,
                            objectives,
                            &prepared[i],
                            &row.report,
                            &scores,
                            cost,
                            &registry,
                            phase,
                        )?;
                    }
                    self.cache.insert(keys[i].clone(), scores);
                    self.simulations += 1;
                    self.cost_units += cost;
                    miss_cost.observe(cost);
                }
            }
        }

        let fresh: HashSet<usize> = missing.iter().copied().collect();
        let mut evaluations = Vec::with_capacity(prepared.len());
        for (i, (spec, key)) in prepared.into_iter().zip(keys).enumerate() {
            let scores = self.cache[&key].clone();
            // A pruned candidate was never simulated: its entries are
            // marked pruned (or bound-pruned), not cached, and don't count
            // as cache hits.
            let pruned = self.pruned.contains(&key);
            let bound_pruned = self.bound_pruned_keys.contains(&key);
            let store_hit = store_fresh.contains(&i);
            let cached = !pruned && !bound_pruned && !store_hit && !fresh.contains(&i);
            if cached {
                self.cache_hits += 1;
            }
            self.trace.push(TraceEntry {
                phase: phase.to_string(),
                spec,
                scores: scores.clone(),
                cached,
                pruned,
                bound_pruned,
                store_hit,
            });
            evaluations.push(Evaluation { spec, key, scores });
        }
        let phase_label = [("phase", phase)];
        registry
            .counter(
                "edc_eval_requests",
                "Evaluation requests, per search phase.",
                &phase_label,
            )
            .inc_by(evaluations.len() as u64);
        registry
            .counter(
                "edc_eval_misses",
                "Evaluation requests that simulated (memo-cache misses), per search phase.",
                &phase_label,
            )
            .inc_by(missing.len() as u64);
        registry
            .counter(
                "edc_eval_cache_hits",
                "Evaluation requests served by the memo cache, per search phase.",
                &phase_label,
            )
            .inc_by(self.cache_hits - before.0);
        registry
            .counter(
                "edc_eval_lint_checks",
                "Cache misses the lint prefilter examined, per search phase.",
                &phase_label,
            )
            .inc_by(self.lint_checks - before.1);
        registry
            .counter(
                "edc_eval_lint_pruned",
                "Cache misses the lint prefilter scored statically, per search phase.",
                &phase_label,
            )
            .inc_by(self.lint_pruned - before.2);
        registry
            .counter(
                "edc_eval_bound_checks",
                "Cache misses branch-and-bound derived static lower bounds for, per search phase.",
                &phase_label,
            )
            .inc_by(self.bound_checks - before.4);
        registry
            .counter(
                "edc_eval_bound_pruned",
                "Cache misses branch-and-bound dominance-pruned without simulating, per search \
                 phase.",
                &phase_label,
            )
            .inc_by(self.bound_pruned - before.5);
        if self.store.is_some() {
            registry
                .counter(
                    "edc_store_hits",
                    "Memo-cache misses served by the persistent store, per search phase.",
                    &phase_label,
                )
                .inc_by(store_fresh.len() as u64);
            registry
                .counter(
                    "edc_store_misses",
                    "Memo-cache misses the persistent store could not serve, per search phase.",
                    &phase_label,
                )
                .inc_by(store_misses);
        }
        let mut span = ProfileSpan::new(phase)
            .counter("requests", evaluations.len() as f64)
            .counter("misses", missing.len() as f64)
            .counter("cache_hits", (self.cache_hits - before.0) as f64)
            .counter("lint_checks", (self.lint_checks - before.1) as f64)
            .counter("lint_pruned", (self.lint_pruned - before.2) as f64)
            .counter("bound_checks", (self.bound_checks - before.4) as f64)
            .counter("bound_pruned", (self.bound_pruned - before.5) as f64)
            .counter("cost", self.cost_units - before.3);
        if self.store.is_some() {
            // Appended so store-less profiles keep their exact shape.
            span = span.counter("store_hits", store_fresh.len() as f64);
        }
        self.profile
            .push(span.wall(started.elapsed().as_secs_f64()));
        Ok(evaluations)
    }

    /// Number of objectives each evaluation is scored on.
    pub fn objective_count(&self) -> usize {
        self.objectives.len()
    }

    /// Number of simulations actually run (cache misses).
    pub fn simulations(&self) -> u64 {
        self.simulations
    }

    /// Number of evaluation requests served from the memo cache.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// Full-fidelity-equivalent simulation cost: each run contributes
    /// `(reference_dt / its_dt) × (deadline / reference_deadline) ÷
    /// trace decimation × objective cost scale` — coarse, short-horizon or
    /// decimated prefilter runs are cheap, fleet-objective misses are
    /// charged per node.
    pub fn cost_units(&self) -> f64 {
        self.cost_units
    }

    /// Number of specs the lint prefilter examined (cache misses seen
    /// while the prefilter was enabled and every objective had a DNF
    /// score).
    pub fn lint_checks(&self) -> u64 {
        self.lint_checks
    }

    /// Number of specs the lint prefilter scored statically instead of
    /// simulating.
    pub fn lint_pruned(&self) -> u64 {
        self.lint_pruned
    }

    /// Number of cache misses branch-and-bound examined for static lower
    /// bounds (bound pruning enabled; misses where an objective produced
    /// no bracket are still counted, they just can never be pruned).
    pub fn bound_checks(&self) -> u64 {
        self.bound_checks
    }

    /// Number of cache misses branch-and-bound dominance-pruned: scored
    /// at their static lower bounds instead of simulating, because an
    /// already-exact incumbent dominates even their most optimistic
    /// possible scores.
    pub fn bound_pruned(&self) -> u64 {
        self.bound_pruned
    }

    /// Number of memo-cache misses the persistent store served without
    /// simulating (each billed at zero cost). Always zero without
    /// [`Evaluator::with_store`].
    pub fn store_hits(&self) -> u64 {
        self.store_hits
    }

    /// The recorded trace, in evaluation-request order.
    pub fn trace(&self) -> &[TraceEntry] {
        &self.trace
    }

    /// Per-phase profiling: one [`ProfileSpan`] per successful
    /// [`Evaluator::evaluate`] call, named after its search phase, whose
    /// counters (`requests`, `misses`, `cache_hits`, `lint_checks`,
    /// `lint_pruned`, `bound_checks`, `bound_pruned`, `cost`) are the
    /// call's deltas of the corresponding
    /// totals — deterministic — while `wall_s` carries the call's real
    /// duration, quarantined by [`ProfileReport`]. Calls that fail (budget
    /// exhaustion, validation) record no span.
    pub fn profile(&self) -> &ProfileReport {
        &self.profile
    }

    /// Consumes the evaluator, yielding its trace.
    pub fn into_trace(self) -> Vec<TraceEntry> {
        self.trace
    }
}

/// Writes one simulated evaluation back to the persistent store: the
/// canonical spec, the full report JSON, every persistable objective
/// score (by [`Objective::store_key`]; NaN never stored), and the cost
/// the miss was billed.
#[allow(clippy::too_many_arguments)]
fn store_write_back(
    store: &StoreHandle,
    objectives: &[Box<dyn Objective>],
    spec: &ExperimentSpec,
    report: &SystemReport,
    scores: &[f64],
    cost: f64,
    registry: &edc_metrics::Registry,
    phase: &str,
) -> Result<(), ExploreError> {
    let mut named: BTreeMap<String, f64> = BTreeMap::new();
    for (o, s) in objectives.iter().zip(scores) {
        if let Some(key) = o.store_key() {
            if !s.is_nan() {
                named.insert(key, *s);
            }
        }
    }
    let mut guard = store
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let appended = guard
        .put(&spec.to_json(), report.to_json(), named, cost)
        .map_err(ExploreError::Store)?;
    if appended {
        registry
            .counter(
                "edc_store_writes",
                "Simulated evaluations written back to the persistent store, per search phase.",
                &[("phase", phase)],
            )
            .inc();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::{BrownoutCount, CompletionTime, P99Outage};
    use edc_core::scenarios::{SourceKind, StrategyKind};
    use edc_workloads::WorkloadKind;

    fn spec(n: u16) -> ExperimentSpec {
        ExperimentSpec::new(
            SourceKind::Dc { volts: 3.3 },
            StrategyKind::Restart,
            WorkloadKind::BusyLoop(n),
        )
        .deadline(Seconds(1.0))
    }

    fn objectives() -> Vec<Box<dyn Objective>> {
        vec![Box::new(CompletionTime), Box::new(BrownoutCount)]
    }

    #[test]
    fn repeats_hit_the_cache() {
        let objectives = objectives();
        let mut eval = Evaluator::new(&objectives, 2, None, Seconds(20e-6));
        let first = eval
            .evaluate(vec![spec(100), spec(200), spec(100)], "a")
            .expect("evaluates");
        assert_eq!(first.len(), 3);
        assert_eq!(eval.simulations(), 2, "dup within the batch memoises");
        assert_eq!(eval.cache_hits(), 1);
        assert_eq!(first[0].scores, first[2].scores);

        let again = eval.evaluate(vec![spec(200)], "b").expect("evaluates");
        assert_eq!(eval.simulations(), 2, "cross-batch repeat memoises");
        assert_eq!(eval.cache_hits(), 2);
        assert_eq!(again[0].scores, first[1].scores);
        assert_eq!(eval.trace().len(), 4);
        assert!(eval.trace()[3].cached);
    }

    #[test]
    fn budget_rejects_before_simulating() {
        let objectives = objectives();
        let mut eval = Evaluator::new(&objectives, 1, Some(1), Seconds(20e-6));
        eval.evaluate(vec![spec(100)], "a").expect("within budget");
        let err = eval
            .evaluate(vec![spec(200), spec(300)], "b")
            .expect_err("over budget");
        match err {
            ExploreError::BudgetExhausted { budget, needed } => {
                assert_eq!(budget, 1);
                assert!((needed - 3.0).abs() < 1e-12);
            }
            other => panic!("unexpected error {other:?}"),
        }
        assert_eq!(eval.simulations(), 1, "the doomed batch never ran");
        // Cached repeats stay free even at the budget's edge.
        eval.evaluate(vec![spec(100)], "c").expect("cache is free");
    }

    #[test]
    fn budget_charges_coarse_runs_fractionally() {
        // Budget 1 admits four quarter-cost coarse runs but not a fifth
        // full-fidelity one: budget and cost_units share a currency.
        let objectives = objectives();
        let mut eval = Evaluator::new(&objectives, 1, Some(1), Seconds(20e-6));
        let coarse: Vec<ExperimentSpec> = (0..4u16)
            .map(|i| spec(100 + i).timestep(Seconds(80e-6)))
            .collect();
        eval.evaluate(coarse, "rung")
            .expect("4 × 1/4 fits budget 1");
        assert!((eval.cost_units() - 1.0).abs() < 1e-12);
        eval.evaluate(vec![spec(500)], "fine")
            .expect_err("budget spent");
    }

    #[test]
    fn stats_objectives_force_stats_telemetry() {
        let objectives: Vec<Box<dyn Objective>> = vec![Box::new(P99Outage)];
        let mut eval = Evaluator::new(&objectives, 1, None, Seconds(20e-6));
        let evals = eval.evaluate(vec![spec(100)], "a").expect("evaluates");
        assert_eq!(evals[0].spec.telemetry, TelemetryKind::Stats);
        assert!(evals[0].key.contains("\"telemetry\""));
        assert!(evals[0].scores[0].is_finite());
    }

    #[test]
    fn profile_records_one_span_per_call_with_delta_counters() {
        let objectives = objectives();
        let mut eval = Evaluator::new(&objectives, 2, None, Seconds(20e-6));
        eval.evaluate(vec![spec(100), spec(200), spec(100)], "grid")
            .expect("evaluates");
        eval.evaluate(vec![spec(200)], "rung0@4x")
            .expect("evaluates");
        let spans = eval.profile().spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "grid");
        assert_eq!(
            spans[0].counters,
            vec![
                ("requests".to_string(), 3.0),
                ("misses".to_string(), 2.0),
                ("cache_hits".to_string(), 1.0),
                ("lint_checks".to_string(), 0.0),
                ("lint_pruned".to_string(), 0.0),
                ("bound_checks".to_string(), 0.0),
                ("bound_pruned".to_string(), 0.0),
                ("cost".to_string(), 2.0),
            ]
        );
        // The second call is a pure cache hit: no misses, no new cost.
        assert_eq!(spans[1].name, "rung0@4x");
        assert_eq!(spans[1].counters[1], ("misses".to_string(), 0.0));
        assert_eq!(spans[1].counters[2], ("cache_hits".to_string(), 1.0));
        assert_eq!(spans[1].counters[7], ("cost".to_string(), 0.0));
        assert!(spans.iter().all(|s| s.wall_s >= 0.0));
    }

    #[test]
    fn bound_prunes_dominated_misses_without_simulating() {
        let objectives: Vec<Box<dyn Objective>> =
            vec![Box::new(CompletionTime), Box::new(BrownoutCount)];
        let mut eval = Evaluator::new(&objectives, 1, None, Seconds(20e-6)).with_bound(true);
        let seeded = eval.evaluate(vec![spec(100)], "seed").expect("evaluates");
        assert_eq!(eval.simulations(), 1);
        assert!(seeded[0].scores[0].is_finite());
        assert_eq!(seeded[0].scores[1], 0.0, "DC supply never browns out");

        // 1.5 V provably never boots: bracket (∞, [0,0]) — dominated by
        // the completed zero-brownout incumbent, so it is never simulated.
        let dark = ExperimentSpec::new(
            SourceKind::Dc { volts: 1.5 },
            StrategyKind::Restart,
            WorkloadKind::BusyLoop(100),
        )
        .deadline(Seconds(1.0));
        let evals = eval.evaluate(vec![dark], "probe").expect("evaluates");
        assert_eq!(eval.simulations(), 1, "dominated candidate skipped");
        assert_eq!(eval.bound_checks(), 2);
        assert_eq!(eval.bound_pruned(), 1);
        assert_eq!(evals[0].scores, vec![f64::INFINITY, 0.0]);
        let entry = &eval.trace()[1];
        assert!(entry.bound_pruned && !entry.cached && !entry.pruned);
    }

    #[test]
    fn coarse_runs_cost_fractional_units() {
        let objectives = objectives();
        let mut eval = Evaluator::new(&objectives, 1, None, Seconds(20e-6));
        eval.evaluate(vec![spec(100).timestep(Seconds(80e-6))], "coarse")
            .expect("evaluates");
        assert!((eval.cost_units() - 0.25).abs() < 1e-12);
        eval.evaluate(vec![spec(100)], "fine").expect("evaluates");
        assert!((eval.cost_units() - 1.25).abs() < 1e-12);
    }
}
