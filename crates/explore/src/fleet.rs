//! Fleet objectives: score a candidate *design* by deploying it as a
//! whole population.
//!
//! The searchers in this crate explore per-node designs (a
//! [`SpecSpace`](crate::SpecSpace) over [`ExperimentSpec`]); a
//! [`FleetTemplate`] holds
//! everything about the deployment *except* the design — the shared
//! field, the node count, the placement, the phase stagger and the duty
//! period. Each fleet objective expands the candidate design through its
//! template into a [`FleetSpec`], runs the fleet (deterministically —
//! thread count never affects results), and scores one
//! [`FleetMetrics`] figure:
//!
//! - [`FleetNodesToCover`] — the sizing question itself: how many nodes of
//!   this design cover the duty cycle (smaller fleets are better;
//!   `INFINITY` when even the full template fleet cannot cover);
//! - [`FleetCoverageShortfall`] — `1 − coverage`, for spaces where no
//!   design fully covers;
//! - [`FleetEnergyPerTask`] — fleet energy per completed task;
//! - [`FleetBrownoutShortfall`] — `1 −` the brownout-free fraction.
//!
//! Fleet runs are memoised per design within a template (all objectives
//! sharing a *cloned* template share one cache), so pairing several fleet
//! objectives costs one fleet run per candidate. The design's single-node
//! run funded by the [`Evaluator`](crate::Evaluator) still happens and
//! stays useful: mixing fleet objectives with per-node ones (e.g.
//! [`CompletionTime`](crate::CompletionTime)) trades population questions
//! against lone-node behaviour in one Pareto front.
//!
//! The evaluator's budget is denominated in full-fidelity-equivalent
//! single-node simulations, and fleet objectives report an honest
//! [`cost_multiplier`](Objective::cost_multiplier) of their template's
//! node count — so a budgeted search over an `n`-node template charges
//! ≈ `n` units per cache miss instead of pretending a whole fleet costs
//! one run.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use edc_bound::{Bounder, ScoreBracket};
use edc_core::experiment::ExperimentSpec;
use edc_core::fleet::{FieldSpec, FleetSpec, Placement};
use edc_core::scenarios::SourceKind;
use edc_core::SystemReport;
use edc_fleet::{Fleet, FleetMetrics};
use edc_units::Seconds;

use crate::objective::Objective;

/// Sound static facts about one template fleet, aggregated across the
/// per-node brackets of the shared interval engine. All fields describe
/// *every* node, so a `true` flag is a proof about the whole population.
#[derive(Debug, Clone, Copy)]
struct NodeBrackets {
    /// Every node's spec is a statically-proven DNF: no node ever
    /// completes, so coverage is exactly 0 and nothing covers the duty
    /// cycle.
    all_dnf: bool,
    /// Every node's supply provably never boots the MCU, so every node
    /// records exactly zero brownouts.
    all_never_boot: bool,
    /// Minimum over the nodes of the per-node energy-bracket lower bound
    /// (`INFINITY` when every node is a proven DNF) — a lower bound on
    /// fleet energy per completed task, since each completion costs at
    /// least its own node's demand.
    energy_lo: f64,
}

/// A fleet deployment with the per-node design left open: the adapter
/// between spec-space searchers and fleet-level questions.
///
/// Cloning is cheap and shares the template's fleet-run memo cache, so
/// several objectives built from clones of one template cost one fleet
/// run per candidate design.
#[derive(Debug, Clone)]
pub struct FleetTemplate {
    field: FieldSpec,
    nodes: usize,
    placement: Placement,
    stagger: Seconds,
    duty_period: Seconds,
    threads: Option<usize>,
    cache: Rc<RefCell<HashMap<String, Option<FleetMetrics>>>>,
    bracket_cache: Rc<RefCell<HashMap<String, Option<NodeBrackets>>>>,
}

impl FleetTemplate {
    /// A template deploying `nodes` nodes into `field` with colocated
    /// placement, no stagger, and a 1 s duty period.
    pub fn new(field: FieldSpec, nodes: usize) -> Self {
        Self {
            field,
            nodes,
            placement: Placement::Colocated,
            stagger: Seconds(0.0),
            duty_period: Seconds(1.0),
            threads: None,
            cache: Rc::new(RefCell::new(HashMap::new())),
            bracket_cache: Rc::new(RefCell::new(HashMap::new())),
        }
    }

    /// Sets the placement rule.
    pub fn placement(mut self, p: Placement) -> Self {
        self.placement = p;
        self
    }

    /// Sets the phase-stagger step.
    pub fn stagger(mut self, s: Seconds) -> Self {
        self.stagger = s;
        self
    }

    /// Sets the sensing duty period the fleet is sized against.
    pub fn duty_period(mut self, p: Seconds) -> Self {
        self.duty_period = p;
        self
    }

    /// Caps the per-fleet worker count (defaults to the machine's
    /// parallelism). Thread count never affects results.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = Some(n.max(1));
        self
    }

    /// Nodes this template deploys — also the honest per-candidate cost
    /// its objectives report to the evaluator's budget.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The fleet this template deploys for a candidate design.
    pub fn fleet_for(&self, design: &ExperimentSpec) -> FleetSpec {
        FleetSpec::new(self.field.clone(), *design, self.nodes)
            .placement(self.placement.clone())
            .stagger(self.stagger)
            .duty_period(self.duty_period)
    }

    /// Runs (or recalls) the template's fleet for `design` and returns its
    /// metrics; `None` when the fleet cannot be assembled for this design.
    pub fn metrics_for(&self, design: &ExperimentSpec) -> Option<FleetMetrics> {
        let key = Self::memo_key(design);
        if let Some(metrics) = self.cache.borrow().get(&key) {
            return *metrics;
        }
        let mut fleet = Fleet::new(self.fleet_for(design));
        if let Some(threads) = self.threads {
            fleet = fleet.threads(threads);
        }
        let metrics = fleet.run().ok().map(|report| report.metrics);
        self.cache.borrow_mut().insert(key, metrics);
        metrics
    }

    /// A deterministic fingerprint of the template's configuration —
    /// field, node count, placement, stagger, and duty period — used to
    /// qualify its objectives' [`Objective::store_key`]s. Two templates
    /// configured identically fingerprint identically (regardless of
    /// their memo caches); any config difference changes the
    /// fingerprint, so differently-configured fleet searches sharing a
    /// persistent store can never alias each other's scores.
    pub fn fingerprint(&self) -> String {
        let config = edc_core::json::Json::obj(vec![
            ("field", self.field.to_json()),
            ("nodes", edc_core::json::Json::Uint(self.nodes as u64)),
            ("placement", self.placement.to_json()),
            ("stagger_s", edc_core::json::Json::Num(self.stagger.0)),
            (
                "duty_period_s",
                edc_core::json::Json::Num(self.duty_period.0),
            ),
        ]);
        edc_store::hex16(edc_store::key_hash(&config.to_string()))
    }

    /// The design's source is replaced by each node's field view, so two
    /// designs differing only there build identical fleets — normalise it
    /// out of the memo keys or a sources axis would redo the same fleet
    /// work once per source kind.
    fn memo_key(design: &ExperimentSpec) -> String {
        design
            .source(SourceKind::Dc { volts: 0.0 })
            .to_json()
            .to_string()
    }

    /// Statically bounds (or recalls) the per-node dynamics of the
    /// template's fleet for `design`; `None` when the fleet spec has
    /// violations, so no bracket is ever claimed for a fleet whose run
    /// could fail.
    fn node_brackets(
        &self,
        design: &ExperimentSpec,
        bounder: &mut Bounder,
    ) -> Option<NodeBrackets> {
        let key = Self::memo_key(design);
        if let Some(cached) = self.bracket_cache.borrow().get(&key) {
            return *cached;
        }
        let summary = self.bound_nodes(design, bounder);
        self.bracket_cache.borrow_mut().insert(key, summary);
        summary
    }

    fn bound_nodes(&self, design: &ExperimentSpec, bounder: &mut Bounder) -> Option<NodeBrackets> {
        let fleet = self.fleet_for(design);
        if !fleet.violations().is_empty() {
            return None;
        }
        // Node specs may reference traces registered while expanding the
        // field, so the sub-bounder gets its own catalog clone; the cycle
        // memo rides along both ways because cycle floors are
        // catalog-independent.
        let mut catalog = bounder.catalog().clone();
        let specs = fleet.node_specs_in(&mut catalog).ok()?;
        let mut sub = Bounder::with_catalog(catalog);
        sub.restore_cycle_memo(bounder.take_cycle_memo());
        let mut summary = NodeBrackets {
            all_dnf: true,
            all_never_boot: true,
            energy_lo: f64::INFINITY,
        };
        let mut bounded_all = !specs.is_empty();
        for spec in &specs {
            let Some(report) = sub.bound_spec(spec) else {
                bounded_all = false;
                break;
            };
            summary.all_dnf &= report.proven_dnf;
            summary.all_never_boot &= report.never_boots;
            summary.energy_lo = summary.energy_lo.min(report.energy_per_task_j.lo);
        }
        bounder.restore_cycle_memo(sub.take_cycle_memo());
        bounded_all.then_some(summary)
    }
}

/// How many nodes of the candidate design cover the template's duty
/// cycle: the smallest covering placement prefix, or `INFINITY` when even
/// the full fleet falls short (or the fleet cannot be assembled).
#[derive(Debug, Clone)]
pub struct FleetNodesToCover(pub FleetTemplate);

impl Objective for FleetNodesToCover {
    fn name(&self) -> &'static str {
        "fleet_nodes_to_cover"
    }

    fn score(&self, spec: &ExperimentSpec, _report: &SystemReport) -> f64 {
        self.0
            .metrics_for(spec)
            .and_then(|m| m.nodes_to_cover)
            .map(|n| n as f64)
            .unwrap_or(f64::INFINITY)
    }

    fn static_bracket(&self, spec: &ExperimentSpec, bounder: &mut Bounder) -> Option<ScoreBracket> {
        let nodes = self.0.node_brackets(spec, bounder)?;
        Some(if nodes.all_dnf {
            // No node can ever complete, so no prefix reaches coverage 1.
            ScoreBracket::exact(f64::INFINITY)
        } else {
            ScoreBracket::new(1.0, f64::INFINITY)
        })
    }

    fn cost_multiplier(&self) -> f64 {
        self.0.nodes().max(1) as f64
    }

    fn store_key(&self) -> Option<String> {
        Some(format!("{}@{}", self.name(), self.0.fingerprint()))
    }
}

/// `1 − coverage` of the template fleet built from the candidate design
/// (0 when the duty cycle is fully covered; 1 when nothing completes).
#[derive(Debug, Clone)]
pub struct FleetCoverageShortfall(pub FleetTemplate);

impl Objective for FleetCoverageShortfall {
    fn name(&self) -> &'static str {
        "fleet_coverage_shortfall"
    }

    fn score(&self, spec: &ExperimentSpec, _report: &SystemReport) -> f64 {
        self.0
            .metrics_for(spec)
            .map(|m| 1.0 - m.coverage)
            .unwrap_or(f64::INFINITY)
    }

    fn static_bracket(&self, spec: &ExperimentSpec, bounder: &mut Bounder) -> Option<ScoreBracket> {
        let nodes = self.0.node_brackets(spec, bounder)?;
        Some(if nodes.all_dnf {
            // Zero completions means zero task rate, so coverage is
            // exactly 0 and the shortfall exactly 1.
            ScoreBracket::exact(1.0)
        } else {
            ScoreBracket::new(0.0, 1.0)
        })
    }

    fn cost_multiplier(&self) -> f64 {
        self.0.nodes().max(1) as f64
    }

    fn store_key(&self) -> Option<String> {
        Some(format!("{}@{}", self.name(), self.0.fingerprint()))
    }
}

/// Fleet energy per completed task, joules; `INFINITY` when no node of
/// the fleet completes.
#[derive(Debug, Clone)]
pub struct FleetEnergyPerTask(pub FleetTemplate);

impl Objective for FleetEnergyPerTask {
    fn name(&self) -> &'static str {
        "fleet_energy_per_task_j"
    }

    fn score(&self, spec: &ExperimentSpec, _report: &SystemReport) -> f64 {
        self.0
            .metrics_for(spec)
            .and_then(|m| m.energy_per_completed_task_j)
            .unwrap_or(f64::INFINITY)
    }

    fn static_bracket(&self, spec: &ExperimentSpec, bounder: &mut Bounder) -> Option<ScoreBracket> {
        // Fleet energy over completed tasks averages at least the
        // cheapest node's own demand (non-completing nodes only add to
        // the numerator); `INFINITY` on both ends when every node is a
        // proven DNF and nothing ever completes.
        let nodes = self.0.node_brackets(spec, bounder)?;
        Some(ScoreBracket::new(nodes.energy_lo, f64::INFINITY))
    }

    fn cost_multiplier(&self) -> f64 {
        self.0.nodes().max(1) as f64
    }

    fn store_key(&self) -> Option<String> {
        Some(format!("{}@{}", self.name(), self.0.fingerprint()))
    }
}

/// `1 −` the fleet's brownout-free fraction (0 when every node rides the
/// field without a single brownout).
#[derive(Debug, Clone)]
pub struct FleetBrownoutShortfall(pub FleetTemplate);

impl Objective for FleetBrownoutShortfall {
    fn name(&self) -> &'static str {
        "fleet_brownout_shortfall"
    }

    fn score(&self, spec: &ExperimentSpec, _report: &SystemReport) -> f64 {
        self.0
            .metrics_for(spec)
            .map(|m| 1.0 - m.brownout_free_fraction)
            .unwrap_or(f64::INFINITY)
    }

    fn static_bracket(&self, spec: &ExperimentSpec, bounder: &mut Bounder) -> Option<ScoreBracket> {
        let nodes = self.0.node_brackets(spec, bounder)?;
        Some(if nodes.all_never_boot {
            // A node that never boots never browns out, so every node is
            // brownout-free and the shortfall is exactly 0.
            ScoreBracket::exact(0.0)
        } else {
            ScoreBracket::new(0.0, 1.0)
        })
    }

    fn cost_multiplier(&self) -> f64 {
        self.0.nodes().max(1) as f64
    }

    fn store_key(&self) -> Option<String> {
        Some(format!("{}@{}", self.name(), self.0.fingerprint()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edc_core::scenarios::{FieldEnvelope, SourceKind, StrategyKind};
    use edc_workloads::WorkloadKind;

    fn template() -> FleetTemplate {
        FleetTemplate::new(
            FieldSpec::Envelope(FieldEnvelope::RectifiedSine { hz: 50.0 }),
            3,
        )
        .stagger(Seconds(0.004))
        .duty_period(Seconds(1.0))
        .threads(2)
    }

    fn design() -> ExperimentSpec {
        ExperimentSpec::new(
            SourceKind::Dc { volts: 3.3 },
            StrategyKind::Hibernus,
            WorkloadKind::BusyLoop(200),
        )
        .timestep(Seconds(50e-6))
        .deadline(Seconds(1.0))
    }

    #[test]
    fn fleet_objectives_score_from_the_design_not_the_report() {
        let template = template();
        let spec = design();
        let report = spec.run().expect("single-node run");
        let covered = FleetCoverageShortfall(template.clone()).score(&spec, &report);
        assert!((0.0..=1.0).contains(&covered));
        let nodes = FleetNodesToCover(template.clone()).score(&spec, &report);
        assert!(nodes == f64::INFINITY || nodes >= 1.0);
        let energy = FleetEnergyPerTask(template.clone()).score(&spec, &report);
        assert!(energy > 0.0);
        let brownouts = FleetBrownoutShortfall(template).score(&spec, &report);
        assert!((0.0..=1.0).contains(&brownouts));
    }

    #[test]
    fn cloned_templates_share_one_fleet_run_per_design() {
        let template = template();
        let a = FleetNodesToCover(template.clone());
        let b = FleetEnergyPerTask(template.clone());
        let spec = design();
        let report = spec.run().expect("single-node run");
        let _ = a.score(&spec, &report);
        assert_eq!(template.cache.borrow().len(), 1);
        let _ = b.score(&spec, &report);
        assert_eq!(
            template.cache.borrow().len(),
            1,
            "second objective hit the cache"
        );
    }

    #[test]
    fn designs_differing_only_in_source_share_one_fleet_run() {
        // The fleet replaces the design's source with per-node field
        // views, so a sources axis must not multiply fleet runs.
        let template = template();
        let objective = FleetCoverageShortfall(template.clone());
        let spec_dc = design();
        let spec_sine = design().source(SourceKind::RectifiedSine { hz: 50.0 });
        let report = spec_dc.run().expect("single-node run");
        let a = objective.score(&spec_dc, &report);
        let b = objective.score(&spec_sine, &report);
        assert_eq!(a.to_bits(), b.to_bits());
        assert_eq!(template.cache.borrow().len(), 1, "one fleet run, not two");
    }

    #[test]
    fn fleet_brackets_contain_fleet_scores() {
        let template = template();
        let spec = design();
        let report = spec.run().expect("single-node run");
        let mut bounder = Bounder::new();
        let objectives: [&dyn Objective; 4] = [
            &FleetNodesToCover(template.clone()),
            &FleetCoverageShortfall(template.clone()),
            &FleetEnergyPerTask(template.clone()),
            &FleetBrownoutShortfall(template.clone()),
        ];
        for o in objectives {
            let bracket = o
                .static_bracket(&spec, &mut bounder)
                .expect("valid fleet has a bracket");
            assert!(
                bracket.contains(o.score(&spec, &report)),
                "{} fleet score outside its bracket",
                o.name()
            );
        }
        assert_eq!(
            template.bracket_cache.borrow().len(),
            1,
            "objectives share one node-bounding pass per design"
        );
    }

    #[test]
    fn dark_field_pins_fleet_brackets_exactly() {
        // A 1.5 V field attenuated below every boot threshold: each node's
        // bracket proves it never boots, so the aggregates are exact.
        let template =
            FleetTemplate::new(FieldSpec::Envelope(FieldEnvelope::Dc { volts: 1.5 }), 3).threads(2);
        let spec = design();
        let mut bounder = Bounder::new();
        let nodes = FleetNodesToCover(template.clone())
            .static_bracket(&spec, &mut bounder)
            .expect("valid fleet");
        assert!(nodes.is_exact() && nodes.lo == f64::INFINITY);
        let coverage = FleetCoverageShortfall(template.clone())
            .static_bracket(&spec, &mut bounder)
            .expect("valid fleet");
        assert!(coverage.is_exact() && coverage.lo == 1.0);
        let energy = FleetEnergyPerTask(template.clone())
            .static_bracket(&spec, &mut bounder)
            .expect("valid fleet");
        assert!(energy.is_exact() && energy.lo == f64::INFINITY);
        let brownouts = FleetBrownoutShortfall(template.clone())
            .static_bracket(&spec, &mut bounder)
            .expect("valid fleet");
        assert!(brownouts.is_exact() && brownouts.lo == 0.0);
        // The static proof matches the simulated fleet.
        let report = spec.run().expect("single-node run");
        let metrics = template.metrics_for(&spec).expect("fleet runs");
        assert_eq!(metrics.completed_nodes, 0);
        assert_eq!(metrics.brownout_free_fraction, 1.0);
        assert_eq!(FleetCoverageShortfall(template).score(&spec, &report), 1.0);
    }

    #[test]
    fn invalid_fleets_claim_no_bracket() {
        let template = template().duty_period(Seconds(0.0));
        assert!(FleetNodesToCover(template)
            .static_bracket(&design(), &mut Bounder::new())
            .is_none());
    }

    #[test]
    fn scores_are_deterministic_across_repeats_and_threads() {
        let spec = design();
        let report = spec.run().expect("single-node run");
        let serial = FleetCoverageShortfall(template().threads(1)).score(&spec, &report);
        let parallel = FleetCoverageShortfall(template().threads(4)).score(&spec, &report);
        assert_eq!(serial.to_bits(), parallel.to_bits());
    }
}
