//! `edc-explore`: deterministic design-space exploration and auto-tuning
//! over experiment specs.
//!
//! The paper's core claim is that energy-driven systems must be
//! *co-designed*: storage size, wake/hibernate thresholds and workload
//! choice trade off against completion time and brownout behaviour. The
//! rest of the workspace can *run what you specify* (one spec, or a fixed
//! cartesian [`Sweep`](edc_bench::sweep::Sweep) grid); this crate *finds
//! the design*:
//!
//! - [`SpecSpace`] — typed axes over [`ExperimentSpec`]: source, workload
//!   and strategy kinds, decoupling capacitance, timestep, board leakage;
//! - [`Objective`] — scalar figures of merit from a run's report (built-ins:
//!   [`CompletionTime`], [`BrownoutCount`], [`P99Outage`],
//!   [`EnergyPerTask`]); several at once yield a [`ParetoFront`];
//! - [`Searcher`]s — [`ExhaustiveGrid`] (delegates to the sweep engine),
//!   seeded [`RandomSearch`], multi-fidelity [`SuccessiveHalving`]
//!   (coarse-timestep prefilter, refine survivors), and greedy
//!   [`CoordinateDescent`] — all funded through one memoised, budgeted,
//!   parallel [`Evaluator`];
//! - [`seed`] — axis ladders anchored at the paper's Eq. (4) closed-form
//!   sizing answers, so searches start where hand analysis ends.
//!
//! **Determinism contract:** an [`ExploreReport`]'s JSON is byte-identical
//! across repeated runs, thread counts, and serial-vs-parallel execution.
//! Wall-clock time never enters the report; harness binaries measure it
//! *around* [`Explorer::run`].
//!
//! # Examples
//!
//! ```
//! use edc_core::experiment::ExperimentSpec;
//! use edc_core::scenarios::{SourceKind, StrategyKind};
//! use edc_explore::{CompletionTime, ExhaustiveGrid, Explorer, SpecSpace};
//! use edc_units::{Farads, Seconds};
//! use edc_workloads::WorkloadKind;
//!
//! let base = ExperimentSpec::new(
//!     SourceKind::Dc { volts: 3.3 },
//!     StrategyKind::Restart,
//!     WorkloadKind::BusyLoop(200),
//! )
//! .deadline(Seconds(1.0));
//! let space = SpecSpace::over(base)
//!     .decoupling(&[Farads::from_micro(4.7), Farads::from_micro(10.0)]);
//! let report = Explorer::new()
//!     .objective(CompletionTime)
//!     .run(&space, &ExhaustiveGrid)?;
//! assert_eq!(report.evaluations, 2);
//! assert!(!report.front.is_empty());
//! # Ok::<(), edc_explore::ExploreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod evaluator;
pub mod fleet;
pub mod lint;
pub mod objective;
pub mod pareto;
pub mod search;
pub mod seed;
pub mod serve;
pub mod space;

pub use edc_store::{Store, StoreEntry, StoreError, StoreHandle};
pub use evaluator::{Evaluation, Evaluator, TraceEntry};
pub use fleet::{
    FleetBrownoutShortfall, FleetCoverageShortfall, FleetEnergyPerTask, FleetNodesToCover,
    FleetTemplate,
};
pub use lint::lint_space;
pub use objective::{
    objective_by_name, BrownoutCount, CompletionTime, EnergyPerTask, Objective, P99Outage,
};
pub use pareto::{dominates, FrontPoint, ParetoFront};
pub use search::{CoordinateDescent, ExhaustiveGrid, RandomSearch, Searcher, SuccessiveHalving};
pub use serve::ServeSession;
pub use space::{Point, SpecSpace, AXES, AXIS_NAMES};

use std::fmt;

use edc_core::catalog::TraceCatalog;
use edc_core::experiment::{BuildError, ExperimentSpec};
use edc_core::json::Json;
use edc_power::sizing::SizingError;

/// Why an exploration could not run (or finish).
#[derive(Debug, Clone, PartialEq)]
pub enum ExploreError {
    /// A candidate spec failed assembly validation.
    Build(BuildError),
    /// A search-space axis has no values.
    EmptyAxis(&'static str),
    /// The explorer was given no objectives.
    NoObjectives,
    /// The next evaluation batch would exceed the simulation budget.
    BudgetExhausted {
        /// The configured budget, in full-fidelity-equivalent cost units.
        budget: u64,
        /// The cost units the batch would have brought the total to.
        needed: f64,
    },
    /// A sizing-seeded axis rejected its arguments.
    Seed(SizingError),
    /// A searcher's scalarisation weights do not match the objective count.
    WeightCount {
        /// Number of weights supplied.
        weights: usize,
        /// Number of objectives configured on the explorer.
        objectives: usize,
    },
    /// A searcher's start point lies outside the space.
    StartOutOfRange {
        /// The flat start index supplied.
        start: usize,
        /// The space's size.
        size: usize,
    },
    /// The persistent evaluation store failed (I/O, corruption, or a
    /// conflicting duplicate entry).
    Store(edc_store::StoreError),
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::Build(e) => write!(f, "candidate spec invalid: {e}"),
            ExploreError::EmptyAxis(axis) => write!(f, "search-space axis '{axis}' is empty"),
            ExploreError::NoObjectives => f.write_str("at least one objective is required"),
            ExploreError::BudgetExhausted { budget, needed } => write!(
                f,
                "evaluation budget exhausted: {needed} full-fidelity-equivalent \
                 units needed, {budget} allowed"
            ),
            ExploreError::Seed(e) => write!(f, "sizing seed rejected: {e}"),
            ExploreError::WeightCount {
                weights,
                objectives,
            } => write!(
                f,
                "{weights} scalarisation weights for {objectives} objectives"
            ),
            ExploreError::StartOutOfRange { start, size } => {
                write!(f, "start index {start} outside the {size}-point space")
            }
            ExploreError::Store(e) => write!(f, "evaluation store failed: {e}"),
        }
    }
}

impl std::error::Error for ExploreError {}

impl From<edc_store::StoreError> for ExploreError {
    fn from(e: edc_store::StoreError) -> Self {
        ExploreError::Store(e)
    }
}

impl From<BuildError> for ExploreError {
    fn from(e: BuildError) -> Self {
        ExploreError::Build(e)
    }
}

impl From<SizingError> for ExploreError {
    fn from(e: SizingError) -> Self {
        ExploreError::Seed(e)
    }
}

/// The exploration driver: objectives + resource limits, reusable across
/// spaces and searchers.
pub struct Explorer {
    objectives: Vec<Box<dyn Objective>>,
    threads: Option<usize>,
    budget: Option<u64>,
    catalog: TraceCatalog,
    prefilter: bool,
    bound: bool,
    metrics: Option<edc_metrics::Registry>,
    store: Option<edc_store::StoreHandle>,
}

impl Explorer {
    /// An explorer with no objectives yet (add at least one).
    pub fn new() -> Self {
        Self {
            objectives: Vec::new(),
            threads: None,
            budget: None,
            catalog: TraceCatalog::new(),
            prefilter: false,
            bound: false,
            metrics: None,
            store: None,
        }
    }

    /// Supplies the trace catalog that
    /// [`SourceKind::Trace`](edc_core::scenarios::SourceKind::Trace) axis
    /// values resolve through, so searches can enumerate recorded power
    /// profiles next to synthetic ones. Spaces without trace sources never
    /// need one.
    pub fn catalog(mut self, catalog: TraceCatalog) -> Self {
        self.catalog = catalog;
        self
    }

    /// Adds an objective; order fixes the score order everywhere
    /// (dominance, report JSON, scalarisation weights).
    pub fn objective(mut self, o: impl Objective + 'static) -> Self {
        self.objectives.push(Box::new(o));
        self
    }

    /// Caps the worker count (defaults to the machine's parallelism).
    /// Thread count never affects results, only wall-clock time.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = Some(n.max(1));
        self
    }

    /// Caps the search's total simulation cost, in full-fidelity-equivalent
    /// units (a run at a `k×`-coarsened timestep costs `1/k`, the same
    /// currency as [`ExploreReport::cost_units`]). A budget of `N` admits
    /// exactly an `N`-point exhaustive grid at full fidelity.
    pub fn budget(mut self, max_cost_units: u64) -> Self {
        self.budget = Some(max_cost_units);
        self
    }

    /// Enables the static lint prefilter
    /// ([`Evaluator::with_prefilter`]): candidates `edc-lint` proves
    /// infeasible (`E`-severity diagnostics) are scored with the
    /// objectives' DNF values instead of being simulated. Fronts and every
    /// score are unchanged — only the simulation cost drops; prefilter
    /// work is reported separately under `lint` in the report JSON.
    pub fn prefilter(mut self, on: bool) -> Self {
        self.prefilter = on;
        self
    }

    /// Enables branch-and-bound dominance pruning
    /// ([`Evaluator::with_bound`]): every cache miss gets a static score
    /// *lower-bound* vector from the shared interval engine
    /// ([`edc_bound::Bounder`]), misses are simulated in fixed
    /// input-order chunks, and a pending miss dominated at its lower
    /// bounds by an already-simulated score is cached at those bounds
    /// without simulating. For an exhaustive grid the Pareto front is
    /// provably unchanged (every incumbent is a final candidate, and a
    /// candidate dominated at its optimistic bounds is dominated at its
    /// true scores); pruning work is reported under `bound` in the
    /// report JSON.
    ///
    /// ```
    /// use edc_core::experiment::ExperimentSpec;
    /// use edc_core::scenarios::{SourceKind, StrategyKind};
    /// use edc_explore::{BrownoutCount, CompletionTime, ExhaustiveGrid, Explorer, SpecSpace};
    /// use edc_units::Seconds;
    /// use edc_workloads::WorkloadKind;
    ///
    /// let base = ExperimentSpec::new(
    ///     SourceKind::Dc { volts: 3.3 },
    ///     StrategyKind::Restart,
    ///     WorkloadKind::BusyLoop(100),
    /// )
    /// .deadline(Seconds(0.05));
    /// let space = SpecSpace::over(base)
    ///     .sources(&[SourceKind::Dc { volts: 3.3 }, SourceKind::Dc { volts: 1.5 }]);
    /// let report = Explorer::new()
    ///     .objective(CompletionTime)
    ///     .objective(BrownoutCount) // no DNF score — the lint prefilter abstains
    ///     .bound(true)
    ///     .run(&space, &ExhaustiveGrid)?;
    /// assert_eq!(report.bound_checks, 2);
    /// # Ok::<(), edc_explore::ExploreError>(())
    /// ```
    pub fn bound(mut self, on: bool) -> Self {
        self.bound = on;
        self
    }

    /// Routes the search's process metrics (the evaluator's per-phase
    /// counters plus the sweep- and runner-level counters of every miss
    /// batch; see [`Evaluator::with_metrics`]) into `registry` instead of
    /// the process-wide [`edc_metrics::global`] registry.
    pub fn metrics(mut self, registry: edc_metrics::Registry) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// Connects a persistent evaluation store
    /// ([`Evaluator::with_store`]): memo-cache misses found in the store
    /// are served at zero simulation cost, and every simulated miss is
    /// written back — so repeated searches over overlapping spaces
    /// warm-start across processes with byte-identical fronts. The
    /// report gains a `store` JSON section; store-less reports keep
    /// their exact byte shape.
    ///
    /// ```
    /// use edc_core::experiment::ExperimentSpec;
    /// use edc_core::scenarios::{SourceKind, StrategyKind};
    /// use edc_explore::{CompletionTime, ExhaustiveGrid, Explorer, SpecSpace};
    /// use edc_store::Store;
    /// use edc_units::{Farads, Seconds};
    /// use edc_workloads::WorkloadKind;
    ///
    /// let dir = std::env::temp_dir().join("edc-explorer-doc-store");
    /// let _ = std::fs::remove_dir_all(&dir);
    /// let base = ExperimentSpec::new(
    ///     SourceKind::Dc { volts: 3.3 },
    ///     StrategyKind::Restart,
    ///     WorkloadKind::BusyLoop(120),
    /// )
    /// .deadline(Seconds(1.0));
    /// let space = SpecSpace::over(base)
    ///     .decoupling(&[Farads::from_micro(4.7), Farads::from_micro(10.0)]);
    ///
    /// let cold = Explorer::new()
    ///     .objective(CompletionTime)
    ///     .store(Store::open(&dir)?.into_handle())
    ///     .run(&space, &ExhaustiveGrid)?;
    /// assert_eq!((cold.evaluations, cold.store_hits), (2, 0));
    ///
    /// // A fresh process over the same space simulates nothing.
    /// let warm = Explorer::new()
    ///     .objective(CompletionTime)
    ///     .store(Store::open(&dir)?.into_handle())
    ///     .run(&space, &ExhaustiveGrid)?;
    /// assert_eq!((warm.evaluations, warm.store_hits), (0, 2));
    /// assert_eq!(
    ///     warm.front.to_json(&warm.objectives).to_string(),
    ///     cold.front.to_json(&cold.objectives).to_string(),
    /// );
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn store(mut self, store: edc_store::StoreHandle) -> Self {
        self.store = Some(store);
        self
    }

    /// Explores `space` with `searcher` and reports the front.
    ///
    /// # Errors
    ///
    /// [`ExploreError::NoObjectives`] without objectives, axis/spec
    /// validation failures, or budget exhaustion mid-search.
    pub fn run(
        &self,
        space: &SpecSpace,
        searcher: &dyn Searcher,
    ) -> Result<ExploreReport, ExploreError> {
        if self.objectives.is_empty() {
            return Err(ExploreError::NoObjectives);
        }
        space.validate_in(&self.catalog)?;
        let threads = self
            .threads
            .or_else(|| std::thread::available_parallelism().ok().map(|n| n.get()))
            .unwrap_or(1);
        let mut eval = Evaluator::new(
            &self.objectives,
            threads,
            self.budget,
            space.finest_timestep(),
        )
        .with_catalog(self.catalog.clone())
        .with_reference_deadline(space.base().deadline)
        .with_prefilter(self.prefilter)
        .with_bound(self.bound);
        if let Some(registry) = &self.metrics {
            eval = eval.with_metrics(registry.clone());
        }
        if let Some(store) = &self.store {
            eval = eval.with_store(store.clone());
        }
        let finals = searcher.search(space, &mut eval)?;
        let front = ParetoFront::from_evaluations(&finals);
        Ok(ExploreReport {
            searcher: searcher.name().to_string(),
            objectives: self
                .objectives
                .iter()
                .map(|o| o.name().to_string())
                .collect(),
            space: space.clone(),
            evaluations: eval.simulations(),
            cache_hits: eval.cache_hits(),
            cost_units: eval.cost_units(),
            prefilter: self.prefilter,
            lint_checks: eval.lint_checks(),
            lint_pruned: eval.lint_pruned(),
            bound: self.bound,
            bound_checks: eval.bound_checks(),
            bound_pruned: eval.bound_pruned(),
            store: self.store.is_some(),
            store_hits: eval.store_hits(),
            front,
            profile: eval.profile().clone(),
            trace: eval.into_trace(),
        })
    }
}

impl Default for Explorer {
    fn default() -> Self {
        Self::new()
    }
}

/// A finished exploration: what was searched, what it cost, what won.
///
/// Serialisation is **byte-stable**: identical searches (same space,
/// objectives, searcher, seed) produce identical JSON regardless of thread
/// count or repetition. Wall-clock time is deliberately absent.
#[derive(Debug)]
pub struct ExploreReport {
    /// The searcher's name.
    pub searcher: String,
    /// Objective names, in score order.
    pub objectives: Vec<String>,
    /// The space that was searched.
    pub space: SpecSpace,
    /// Simulations actually run (cache misses).
    pub evaluations: u64,
    /// Evaluation requests served by the memo cache.
    pub cache_hits: u64,
    /// Full-fidelity-equivalent simulation cost (coarse rungs cost
    /// fractionally; see [`Evaluator::cost_units`]).
    pub cost_units: f64,
    /// Whether the static lint prefilter was enabled for this search.
    pub prefilter: bool,
    /// Specs the lint prefilter examined (0 when disabled).
    pub lint_checks: u64,
    /// Specs the prefilter scored statically instead of simulating.
    pub lint_pruned: u64,
    /// Whether branch-and-bound dominance pruning was enabled.
    pub bound: bool,
    /// Cache misses branch-and-bound examined for static lower bounds
    /// (0 when disabled).
    pub bound_checks: u64,
    /// Cache misses branch-and-bound dominance-pruned without simulating.
    pub bound_pruned: u64,
    /// Whether a persistent evaluation store was connected.
    pub store: bool,
    /// Memo-cache misses served by the persistent store at zero cost.
    pub store_hits: u64,
    /// The non-dominated designs among the searcher's final candidates.
    pub front: ParetoFront,
    /// Per-phase profiling: one span per [`Evaluator::evaluate`] call,
    /// with deterministic counters and quarantined wall-clock readings.
    /// Deliberately **not** part of [`ExploreReport::to_json`] — its
    /// deterministic half is available as `profile.counters_json()`, its
    /// wall-clock half as `profile.timing_json()`, mirroring how
    /// `SweepRun.timing` stays out of committed artifacts.
    pub profile: edc_obs::ProfileReport,
    /// Every evaluation request, in order.
    pub trace: Vec<TraceEntry>,
}

impl ExploreReport {
    /// Fraction of evaluation requests the memo cache absorbed.
    pub fn cache_hit_rate(&self) -> f64 {
        let requests = self.evaluations + self.cache_hits;
        if requests == 0 {
            0.0
        } else {
            self.cache_hits as f64 / requests as f64
        }
    }

    /// The best design under the deterministic front order, if any
    /// candidate was evaluated.
    pub fn best(&self) -> Option<&FrontPoint> {
        self.front.points().first()
    }

    /// The report as a JSON value with deterministic field order. The
    /// `lint` section only appears when the prefilter was enabled, so
    /// reports from prefilter-free searches are byte-identical to those of
    /// earlier versions.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("searcher", Json::Str(self.searcher.clone())),
            (
                "objectives",
                Json::Arr(
                    self.objectives
                        .iter()
                        .map(|n| Json::Str(n.clone()))
                        .collect(),
                ),
            ),
            ("space", self.space.to_json()),
            ("evaluations", Json::Uint(self.evaluations)),
            ("cache_hits", Json::Uint(self.cache_hits)),
            ("cache_hit_rate", Json::Num(self.cache_hit_rate())),
            ("cost_units", Json::Num(self.cost_units)),
        ];
        if self.prefilter {
            fields.push((
                "lint",
                Json::obj(vec![
                    ("checks", Json::Uint(self.lint_checks)),
                    ("pruned", Json::Uint(self.lint_pruned)),
                ]),
            ));
        }
        if self.bound {
            fields.push((
                "bound",
                Json::obj(vec![
                    ("checks", Json::Uint(self.bound_checks)),
                    ("pruned", Json::Uint(self.bound_pruned)),
                ]),
            ));
        }
        if self.store {
            fields.push((
                "store",
                Json::obj(vec![("hits", Json::Uint(self.store_hits))]),
            ));
        }
        fields.push(("front", self.front.to_json(&self.objectives)));
        fields.push((
            "trace",
            Json::Arr(
                self.trace
                    .iter()
                    .map(|t| trace_json(t, &self.objectives))
                    .collect(),
            ),
        ));
        Json::obj(fields)
    }
}

/// One trace entry as JSON (scores keyed by objective name; non-finite
/// scores emit as `null`). The `pruned` / `bound_pruned` keys only appear
/// on entries a static pass scored without simulating, keeping
/// prefilter-free trace JSON unchanged.
fn trace_json(t: &TraceEntry, objectives: &[String]) -> Json {
    let mut fields = vec![
        ("phase", Json::Str(t.phase.clone())),
        ("spec", t.spec.to_json()),
        (
            "scores",
            Json::Obj(
                objectives
                    .iter()
                    .cloned()
                    .zip(t.scores.iter().map(|&s| Json::Num(s)))
                    .collect(),
            ),
        ),
        ("cached", Json::Bool(t.cached)),
    ];
    if t.pruned {
        fields.push(("pruned", Json::Bool(true)));
    }
    if t.bound_pruned {
        fields.push(("bound_pruned", Json::Bool(true)));
    }
    if t.store_hit {
        fields.push(("store", Json::Bool(true)));
    }
    Json::obj(fields)
}

/// Re-exported spec type, so downstream callers can name candidate specs
/// without importing `edc-core` directly.
pub type Spec = ExperimentSpec;

#[cfg(test)]
mod tests {
    use super::*;
    use edc_core::scenarios::{SourceKind, StrategyKind};
    use edc_units::{Farads, Seconds};
    use edc_workloads::WorkloadKind;

    fn space() -> SpecSpace {
        let base = ExperimentSpec::new(
            SourceKind::Dc { volts: 3.3 },
            StrategyKind::Restart,
            WorkloadKind::BusyLoop(150),
        )
        .deadline(Seconds(1.0));
        SpecSpace::over(base)
            .strategies(&[StrategyKind::Restart, StrategyKind::Hibernus])
            .decoupling(&[Farads::from_micro(10.0), Farads::from_micro(22.0)])
    }

    #[test]
    fn explorer_requires_objectives() {
        let err = Explorer::new()
            .run(&space(), &ExhaustiveGrid)
            .expect_err("no objectives");
        assert_eq!(err, ExploreError::NoObjectives);
        assert!(err.to_string().contains("objective"));
    }

    #[test]
    fn exhaustive_report_accounts_for_every_point() {
        let report = Explorer::new()
            .objective(CompletionTime)
            .objective(BrownoutCount)
            .threads(2)
            .run(&space(), &ExhaustiveGrid)
            .expect("explores");
        assert_eq!(report.evaluations, 4);
        assert_eq!(report.cache_hits, 0);
        assert_eq!(report.trace.len(), 4);
        assert!(!report.front.is_empty());
        assert!(report.best().is_some());
        let json = report.to_json().to_string();
        for key in ["searcher", "objectives", "space", "front", "trace"] {
            assert!(json.contains(&format!("\"{key}\"")), "missing {key}");
        }
        assert_eq!(
            Json::parse(&json).expect("valid JSON").to_string(),
            json,
            "parse → emit round-trips byte-identically"
        );
    }

    #[test]
    fn budget_errors_surface_from_run() {
        let err = Explorer::new()
            .objective(CompletionTime)
            .budget(2)
            .run(&space(), &ExhaustiveGrid)
            .expect_err("4 > 2");
        assert!(matches!(
            err,
            ExploreError::BudgetExhausted { budget: 2, .. }
        ));
    }
}
