//! Static analysis over a whole [`SpecSpace`]: per-point diagnostics plus
//! the space-level dead-axis check (`W105`).
//!
//! [`lint_space`] probes the space the same way
//! [`SpecSpace::validate_in`] does — axis values are independent spec
//! fields, so linting each value once (others held at the base position)
//! covers what every cartesian combination can add — and reports:
//!
//! - the base point's diagnostics under `$.base`;
//! - each non-base axis value's diagnostics under `$.axes.<name>[i]`;
//! - `W105` at `$.axes.<name>` when an axis is *dead*, for either of two
//!   statically-provable reasons: every one of its values lints to the
//!   identical non-clean outcome, or — even when the per-value diagnostics
//!   differ — every value's probe is a proven DNF or bracket-dominated by
//!   another value of the same axis (its whole score bracket is no better
//!   than a sibling's on every built-in objective). Either way, sweeping
//!   the axis multiplies the search without differentiating designs.

use edc_bound::BoundReport;
use edc_lint::{Code, Diagnostic, LintReport, Linter};

use crate::space::{SpecSpace, AXES, AXIS_NAMES};

/// `true` when `winner`'s bracket is no worse than `loser`'s on every
/// built-in objective even in the worst case (`winner.hi <= loser.lo`
/// dimension-wise) and strictly better somewhere: any design at `loser`'s
/// axis value is then provably dominated by the same design at
/// `winner`'s.
fn bracket_dominates(winner: &BoundReport, loser: &BoundReport) -> bool {
    let dims = [
        (&winner.completion_s, &loser.completion_s),
        (&winner.energy_per_task_j, &loser.energy_per_task_j),
        (&winner.brownouts, &loser.brownouts),
        (&winner.p99_outage_s, &loser.p99_outage_s),
    ];
    dims.iter().all(|(w, l)| w.hi <= l.lo) && dims.iter().any(|(w, l)| w.hi < l.lo)
}

/// Lints every axis value of `space` (others held at the base position)
/// and flags dead axes.
///
/// A clean report means the space is worth searching: no point is provably
/// infeasible for a spec-level reason an axis value introduces, and no
/// axis is statically inert. `Linter` state (the workload cycle memo) is
/// reused across probes, so wide spaces lint in milliseconds.
///
/// # W105: dead axis
///
/// ```
/// use edc_core::experiment::ExperimentSpec;
/// use edc_core::scenarios::{SourceKind, StrategyKind};
/// use edc_explore::{lint_space, SpecSpace};
/// use edc_lint::{Code, Linter};
/// use edc_units::{Farads, Seconds};
/// use edc_workloads::WorkloadKind;
///
/// // A 1.5 V rail can never reach any boot threshold: E002 fires for
/// // every decoupling value, so the decoupling axis differentiates
/// // nothing — it is dead, and searching it is pure waste.
/// let base = ExperimentSpec::new(
///     SourceKind::Dc { volts: 1.5 },
///     StrategyKind::Restart,
///     WorkloadKind::Crc16(64),
/// )
/// .deadline(Seconds(0.5));
/// let space = SpecSpace::over(base)
///     .decoupling(&[Farads::from_micro(4.7), Farads::from_micro(10.0)]);
/// let report = lint_space(&space, &mut Linter::new());
/// assert!(report
///     .diagnostics()
///     .iter()
///     .any(|d| d.code == Code::W105 && d.path == "$.axes.decoupling"));
/// ```
pub fn lint_space(space: &SpecSpace, linter: &mut Linter) -> LintReport {
    let mut report = LintReport::new();
    let dims = space.dims();
    for (axis, &n) in dims.iter().enumerate() {
        if n == 0 {
            report.push(Diagnostic::new(
                Code::E001,
                format!("$.axes.{}", AXIS_NAMES[axis]),
                format!("axis '{}' has no values", AXIS_NAMES[axis]),
            ));
        }
    }
    if report.has_errors() {
        return report;
    }

    let base_report = linter.lint_spec(&space.spec([0; AXES]));
    report.merge_prefixed("$.base", base_report.clone());

    for (axis, &n) in dims.iter().enumerate() {
        let mut value_reports = Vec::with_capacity(n);
        let mut value_specs = Vec::with_capacity(n);
        value_reports.push(base_report.clone()); // index 0 IS the base probe
        value_specs.push(space.spec([0; AXES]));
        for i in 1..n {
            let mut point = [0usize; AXES];
            point[axis] = i;
            let spec = space.spec(point);
            let probe = linter.lint_spec(&spec);
            report.merge_prefixed(&format!("$.axes.{}[{i}]", AXIS_NAMES[axis]), probe.clone());
            value_reports.push(probe);
            value_specs.push(spec);
        }
        let dead = n >= 2
            && !value_reports[0].is_clean()
            && value_reports.iter().all(|r| *r == value_reports[0]);
        if dead {
            report.push(Diagnostic::new(
                Code::W105,
                format!("$.axes.{}", AXIS_NAMES[axis]),
                format!(
                    "dead axis: all {n} values of '{}' lint to the identical non-clean outcome \
                     ({} error(s), {} warning(s)); sweeping it multiplies the search space \
                     without differentiating designs",
                    AXIS_NAMES[axis],
                    value_reports[0].error_count(),
                    value_reports[0].warning_count(),
                ),
            ));
        } else if n >= 2 {
            // Identical diagnostics are not the only way an axis dies: the
            // interval engine can prove every value hopeless even when they
            // fail *differently* (one value never boots, another starves on
            // energy), or prove one value's whole bracket no better than a
            // sibling's.
            let brackets: Vec<Option<BoundReport>> = value_specs
                .iter()
                .map(|spec| linter.bounder().bound_spec(spec))
                .collect();
            let value_is_dead = |i: usize| {
                let Some(bracket) = &brackets[i] else {
                    return false;
                };
                bracket.proven_dnf
                    || brackets.iter().enumerate().any(|(j, other)| {
                        j != i
                            && other
                                .as_ref()
                                .is_some_and(|winner| bracket_dominates(winner, bracket))
                    })
            };
            let infeasible = (0..n)
                .filter(|&i| brackets[i].as_ref().is_some_and(|b| b.proven_dnf))
                .count();
            if (0..n).all(value_is_dead) {
                report.push(Diagnostic::new(
                    Code::W105,
                    format!("$.axes.{}", AXIS_NAMES[axis]),
                    format!(
                        "dead axis: all {n} values of '{}' are statically infeasible \
                         ({infeasible} proven DNF) or bracket-dominated by a sibling value; \
                         sweeping it multiplies the search space without differentiating \
                         viable designs",
                        AXIS_NAMES[axis],
                    ),
                ));
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use edc_core::experiment::ExperimentSpec;
    use edc_core::scenarios::{SourceKind, StrategyKind};
    use edc_units::{Farads, Seconds};
    use edc_workloads::WorkloadKind;

    fn base() -> ExperimentSpec {
        ExperimentSpec::new(
            SourceKind::RectifiedSine { hz: 50.0 },
            StrategyKind::Hibernus,
            WorkloadKind::Crc16(64),
        )
        .deadline(Seconds(0.5))
    }

    #[test]
    fn healthy_space_is_clean() {
        let space = SpecSpace::over(base())
            .strategies(&[StrategyKind::Restart, StrategyKind::Hibernus])
            .decoupling(&[Farads::from_micro(4.7), Farads::from_micro(10.0)]);
        let report = lint_space(&space, &mut Linter::new());
        assert!(report.is_clean(), "{}", report.render_text());
    }

    #[test]
    fn differentiating_axis_is_not_dead() {
        // Sub-boot DC base, but the source axis also offers a healthy
        // supply: per-value outcomes differ, so no W105 on `source`.
        let space = SpecSpace::over(base().source(SourceKind::Dc { volts: 1.5 })).sources(&[
            SourceKind::Dc { volts: 1.5 },
            SourceKind::RectifiedSine { hz: 50.0 },
        ]);
        let report = lint_space(&space, &mut Linter::new());
        assert!(!report.diagnostics().iter().any(|d| d.code == Code::W105));
        // The broken base still surfaces, located at the base point.
        assert!(report
            .diagnostics()
            .iter()
            .any(|d| d.code == Code::E002 && d.path == "$.base.source"));
    }

    #[test]
    fn statically_dead_axis_with_differing_reports_is_flagged() {
        // A sub-boot DC value (E002, never boots) and a starved dim trace
        // (E004, boots but drowns): the per-value diagnostics differ, so
        // the identical-outcome rule misses the axis — but the interval
        // engine proves both values DNF, so the bracket rule flags it.
        let mut catalog = edc_core::catalog::TraceCatalog::new();
        let id = catalog
            .register_uniform("dim", Seconds(1e-3), &[1e-6, 1e-6, 1e-6])
            .expect("valid trace");
        let mut linter = Linter::with_catalog(catalog);
        let space = SpecSpace::over(base().source(SourceKind::Dc { volts: 1.5 })).sources(&[
            SourceKind::Dc { volts: 1.5 },
            SourceKind::Trace {
                id,
                decimate: 1,
                looped: false,
            },
        ]);
        let report = lint_space(&space, &mut linter);
        let w105 = report
            .diagnostics()
            .iter()
            .find(|d| d.code == Code::W105)
            .expect("bracket rule flags the axis");
        assert_eq!(w105.path, "$.axes.source");
        assert!(w105.message.contains("statically infeasible"));
        // The differing per-value errors still surface individually.
        assert!(report
            .diagnostics()
            .iter()
            .any(|d| d.code == Code::E002 && d.path.starts_with("$.base")));
        assert!(report
            .diagnostics()
            .iter()
            .any(|d| d.code == Code::E004 && d.path.starts_with("$.axes.source[1]")));
    }

    #[test]
    fn identical_outcome_message_takes_priority_over_bracket_rule() {
        // Both values fail identically (and are proven DNF): exactly one
        // W105 fires, with the original identical-outcome message, so
        // existing reports stay byte-stable.
        let dark = ExperimentSpec::new(
            SourceKind::Dc { volts: 1.5 },
            StrategyKind::Restart,
            WorkloadKind::Crc16(64),
        )
        .deadline(Seconds(0.5));
        let space =
            SpecSpace::over(dark).decoupling(&[Farads::from_micro(4.7), Farads::from_micro(10.0)]);
        let report = lint_space(&space, &mut Linter::new());
        let w105s: Vec<_> = report
            .diagnostics()
            .iter()
            .filter(|d| d.code == Code::W105)
            .collect();
        assert_eq!(w105s.len(), 1);
        assert!(w105s[0].message.contains("identical non-clean outcome"));
    }

    #[test]
    fn empty_axis_reports_instead_of_panicking() {
        let space = SpecSpace::over(base()).strategies(&[]);
        let report = lint_space(&space, &mut Linter::new());
        assert!(report.has_errors());
        assert_eq!(report.diagnostics()[0].path, "$.axes.strategy");
    }
}
