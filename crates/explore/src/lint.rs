//! Static analysis over a whole [`SpecSpace`]: per-point diagnostics plus
//! the space-level dead-axis check (`W105`).
//!
//! [`lint_space`] probes the space the same way
//! [`SpecSpace::validate_in`] does — axis values are independent spec
//! fields, so linting each value once (others held at the base position)
//! covers what every cartesian combination can add — and reports:
//!
//! - the base point's diagnostics under `$.base`;
//! - each non-base axis value's diagnostics under `$.axes.<name>[i]`;
//! - `W105` at `$.axes.<name>` when an axis is *dead*: every one of its
//!   values lints to the identical non-clean outcome, so sweeping it
//!   multiplies the search without differentiating designs.

use edc_lint::{Code, Diagnostic, LintReport, Linter};

use crate::space::{SpecSpace, AXES, AXIS_NAMES};

/// Lints every axis value of `space` (others held at the base position)
/// and flags dead axes.
///
/// A clean report means the space is worth searching: no point is provably
/// infeasible for a spec-level reason an axis value introduces, and no
/// axis is statically inert. `Linter` state (the workload cycle memo) is
/// reused across probes, so wide spaces lint in milliseconds.
///
/// # W105: dead axis
///
/// ```
/// use edc_core::experiment::ExperimentSpec;
/// use edc_core::scenarios::{SourceKind, StrategyKind};
/// use edc_explore::{lint_space, SpecSpace};
/// use edc_lint::{Code, Linter};
/// use edc_units::{Farads, Seconds};
/// use edc_workloads::WorkloadKind;
///
/// // A 1.5 V rail can never reach any boot threshold: E002 fires for
/// // every decoupling value, so the decoupling axis differentiates
/// // nothing — it is dead, and searching it is pure waste.
/// let base = ExperimentSpec::new(
///     SourceKind::Dc { volts: 1.5 },
///     StrategyKind::Restart,
///     WorkloadKind::Crc16(64),
/// )
/// .deadline(Seconds(0.5));
/// let space = SpecSpace::over(base)
///     .decoupling(&[Farads::from_micro(4.7), Farads::from_micro(10.0)]);
/// let report = lint_space(&space, &mut Linter::new());
/// assert!(report
///     .diagnostics()
///     .iter()
///     .any(|d| d.code == Code::W105 && d.path == "$.axes.decoupling"));
/// ```
pub fn lint_space(space: &SpecSpace, linter: &mut Linter) -> LintReport {
    let mut report = LintReport::new();
    let dims = space.dims();
    for (axis, &n) in dims.iter().enumerate() {
        if n == 0 {
            report.push(Diagnostic::new(
                Code::E001,
                format!("$.axes.{}", AXIS_NAMES[axis]),
                format!("axis '{}' has no values", AXIS_NAMES[axis]),
            ));
        }
    }
    if report.has_errors() {
        return report;
    }

    let base_report = linter.lint_spec(&space.spec([0; AXES]));
    report.merge_prefixed("$.base", base_report.clone());

    for (axis, &n) in dims.iter().enumerate() {
        let mut value_reports = Vec::with_capacity(n);
        value_reports.push(base_report.clone()); // index 0 IS the base probe
        for i in 1..n {
            let mut point = [0usize; AXES];
            point[axis] = i;
            let probe = linter.lint_spec(&space.spec(point));
            report.merge_prefixed(&format!("$.axes.{}[{i}]", AXIS_NAMES[axis]), probe.clone());
            value_reports.push(probe);
        }
        let dead = n >= 2
            && !value_reports[0].is_clean()
            && value_reports.iter().all(|r| *r == value_reports[0]);
        if dead {
            report.push(Diagnostic::new(
                Code::W105,
                format!("$.axes.{}", AXIS_NAMES[axis]),
                format!(
                    "dead axis: all {n} values of '{}' lint to the identical non-clean outcome \
                     ({} error(s), {} warning(s)); sweeping it multiplies the search space \
                     without differentiating designs",
                    AXIS_NAMES[axis],
                    value_reports[0].error_count(),
                    value_reports[0].warning_count(),
                ),
            ));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use edc_core::experiment::ExperimentSpec;
    use edc_core::scenarios::{SourceKind, StrategyKind};
    use edc_units::{Farads, Seconds};
    use edc_workloads::WorkloadKind;

    fn base() -> ExperimentSpec {
        ExperimentSpec::new(
            SourceKind::RectifiedSine { hz: 50.0 },
            StrategyKind::Hibernus,
            WorkloadKind::Crc16(64),
        )
        .deadline(Seconds(0.5))
    }

    #[test]
    fn healthy_space_is_clean() {
        let space = SpecSpace::over(base())
            .strategies(&[StrategyKind::Restart, StrategyKind::Hibernus])
            .decoupling(&[Farads::from_micro(4.7), Farads::from_micro(10.0)]);
        let report = lint_space(&space, &mut Linter::new());
        assert!(report.is_clean(), "{}", report.render_text());
    }

    #[test]
    fn differentiating_axis_is_not_dead() {
        // Sub-boot DC base, but the source axis also offers a healthy
        // supply: per-value outcomes differ, so no W105 on `source`.
        let space = SpecSpace::over(base().source(SourceKind::Dc { volts: 1.5 })).sources(&[
            SourceKind::Dc { volts: 1.5 },
            SourceKind::RectifiedSine { hz: 50.0 },
        ]);
        let report = lint_space(&space, &mut Linter::new());
        assert!(!report.diagnostics().iter().any(|d| d.code == Code::W105));
        // The broken base still surfaces, located at the base point.
        assert!(report
            .diagnostics()
            .iter()
            .any(|d| d.code == Code::E002 && d.path == "$.base.source"));
    }

    #[test]
    fn empty_axis_reports_instead_of_panicking() {
        let space = SpecSpace::over(base()).strategies(&[]);
        let report = lint_space(&space, &mut Linter::new());
        assert!(report.has_errors());
        assert_eq!(report.diagnostics()[0].path, "$.axes.strategy");
    }
}
