//! Objectives: scalar figures of merit extracted from a candidate's run.
//!
//! Every objective maps a candidate — its [`ExperimentSpec`] and the
//! [`SystemReport`] of its run — to a score where **lower is better**;
//! searchers minimise. Multi-objective searches pass several objectives
//! and get a Pareto front back instead of a single winner.
//!
//! Most objectives read only the report; the spec parameter exists for
//! adapters whose figure of merit is a function of the *design* rather
//! than the single run — the fleet objectives in [`crate::fleet`] deploy
//! the candidate design as a whole population and score the fleet.
//!
//! Scores must be deterministic functions of their inputs. Infeasible
//! designs score `f64::INFINITY` (e.g. completion time of a run that never
//! completed), which dominance handles naturally: an infeasible design can
//! never dominate a feasible one on that objective.

use edc_bound::{Bounder, ScoreBracket};
use edc_core::experiment::ExperimentSpec;
use edc_core::json::Json;
use edc_core::telemetry::TelemetryReport;
use edc_core::SystemReport;

/// Reads a JSON number (the parser yields `Uint` for whole numbers).
fn json_num(value: &Json) -> Option<f64> {
    match value {
        Json::Num(x) => Some(*x),
        Json::Uint(n) => Some(*n as f64),
        _ => None,
    }
}

/// A scalar figure of merit over a candidate; lower is better.
pub trait Objective {
    /// Stable machine-readable name (used in report JSON).
    fn name(&self) -> &'static str;

    /// Scores the candidate: its (canonicalised) spec and the report of
    /// its run. Must be deterministic; return `f64::INFINITY` (never
    /// `NaN`) for infeasible designs.
    fn score(&self, spec: &ExperimentSpec, report: &SystemReport) -> f64;

    /// `true` when the objective reads [`TelemetryReport::Stats`] and the
    /// evaluator must therefore force stats telemetry onto every candidate
    /// spec.
    fn requires_stats(&self) -> bool {
        false
    }

    /// The score this objective provably assigns to a candidate that can
    /// never complete its workload — a statically-known DNF. `Some(score)`
    /// lets the evaluator's lint prefilter score `E`-flagged candidates
    /// without simulating them; `None` (the default) means the objective's
    /// value on a DNF depends on how the run fails (brownout counts,
    /// outage percentiles), so flagged candidates must still be simulated
    /// whenever this objective is in play.
    fn dnf_score(&self) -> Option<f64> {
        None
    }

    /// A sound static bracket `[lo, hi]` on this objective's score for
    /// `spec`, derived without simulating: the simulated score provably
    /// lands inside it. `None` (the default) means the objective has no
    /// static theory — the evaluator then cannot bound-prune candidates
    /// for it. Implementations delegate to the shared [`Bounder`] so one
    /// interval analysis per spec serves every objective.
    ///
    /// ```
    /// use edc_bound::Bounder;
    /// use edc_core::experiment::ExperimentSpec;
    /// use edc_core::scenarios::{SourceKind, StrategyKind};
    /// use edc_explore::{BrownoutCount, Objective};
    /// use edc_units::Seconds;
    /// use edc_workloads::WorkloadKind;
    ///
    /// // 1.5 V can never reach a boot threshold: the brownout bracket is
    /// // exactly [0, 0] even though the objective has no DNF score.
    /// let dark = ExperimentSpec::new(
    ///     SourceKind::Dc { volts: 1.5 },
    ///     StrategyKind::Restart,
    ///     WorkloadKind::BusyLoop(100),
    /// )
    /// .deadline(Seconds(0.05));
    /// let bracket = BrownoutCount
    ///     .static_bracket(&dark, &mut Bounder::new())
    ///     .expect("valid spec");
    /// assert!(bracket.is_exact() && bracket.lo == 0.0);
    /// ```
    fn static_bracket(&self, spec: &ExperimentSpec, bounder: &mut Bounder) -> Option<ScoreBracket> {
        let _ = (spec, bounder);
        None
    }

    /// Scores the candidate from its **serialized** `SystemReport` JSON —
    /// the form the persistent store holds. Must return exactly the bits
    /// [`Objective::score`] would have produced on the live report, or
    /// `None` when that is impossible (a field is missing, or the score
    /// depends on state outside the report, as for the fleet adapters):
    /// `None` sends the candidate back through the simulator, which is
    /// always sound.
    ///
    /// Built-in objectives read the same fields their `score` reads —
    /// canonical JSON emission uses shortest round-trip formatting, so
    /// the re-parsed values are bit-identical and warm-started fronts
    /// match cold ones byte-for-byte.
    ///
    /// ```
    /// use edc_core::json::Json;
    /// use edc_explore::{CompletionTime, Objective};
    ///
    /// let report = Json::parse(
    ///     r#"{"stats":{"completed_at_s":1.25,"energy_j":0.5,"brownouts":0}}"#,
    /// )
    /// .unwrap();
    /// assert_eq!(CompletionTime.score_json(&report), Some(1.25));
    /// ```
    fn score_json(&self, report: &Json) -> Option<f64> {
        let _ = report;
        None
    }

    /// The name this objective's scores are persisted under in a shared
    /// evaluation store, or `None` to never persist them. The default —
    /// the objective's [`Objective::name`] — is correct whenever the
    /// score is a pure function of (spec, report). Objectives whose
    /// score depends on configuration *outside* the spec must qualify
    /// the key with that configuration (the fleet adapters append their
    /// template's fingerprint), so two differently-configured searches
    /// sharing one store can never alias each other's scores.
    fn store_key(&self) -> Option<String> {
        Some(self.name().to_string())
    }

    /// How many full-fidelity-equivalent simulations scoring one *cache
    /// miss* really costs. `1.0` (the default) means the objective only
    /// reads the shared single-node report; objectives that launch extra
    /// simulations per candidate — the fleet adapters deploy it as a whole
    /// `n`-node population — return that true cost so budgeted searches
    /// charge what they actually spend. The evaluator bills each miss at
    /// the *maximum* multiplier across its objectives (the dominant cost;
    /// cloned-template fleet objectives share one fleet run, so their
    /// costs overlap rather than add).
    fn cost_multiplier(&self) -> f64 {
        1.0
    }
}

/// Looks up one of the four single-node objectives by its
/// [`Objective::name`] — the registry behind wire protocols (the
/// `edc_serve` `--objectives` flag and `search` op) that name objectives
/// as strings. Fleet objectives are not constructible here: they need a
/// [`FleetTemplate`](crate::FleetTemplate) no name can carry.
///
/// ```
/// use edc_explore::objective_by_name;
///
/// assert_eq!(objective_by_name("completion_s").unwrap().name(), "completion_s");
/// assert!(objective_by_name("fleet_nodes_to_cover").is_none());
/// ```
pub fn objective_by_name(name: &str) -> Option<Box<dyn Objective>> {
    match name {
        "completion_s" => Some(Box::new(CompletionTime)),
        "brownouts" => Some(Box::new(BrownoutCount)),
        "p99_outage_s" => Some(Box::new(P99Outage)),
        "energy_per_task_j" => Some(Box::new(EnergyPerTask)),
        _ => None,
    }
}

/// Workload completion time in seconds; `INFINITY` when the run did not
/// complete (deadline expired or faulted).
#[derive(Debug, Clone, Copy, Default)]
pub struct CompletionTime;

impl Objective for CompletionTime {
    fn name(&self) -> &'static str {
        "completion_s"
    }

    fn score(&self, _spec: &ExperimentSpec, report: &SystemReport) -> f64 {
        report
            .stats
            .completed_at
            .map(|t| t.0)
            .unwrap_or(f64::INFINITY)
    }

    fn dnf_score(&self) -> Option<f64> {
        Some(f64::INFINITY)
    }

    fn static_bracket(&self, spec: &ExperimentSpec, bounder: &mut Bounder) -> Option<ScoreBracket> {
        Some(bounder.bound_spec(spec)?.completion_s)
    }

    fn score_json(&self, report: &Json) -> Option<f64> {
        match report.get("stats")?.get("completed_at_s")? {
            Json::Null => Some(f64::INFINITY),
            value => json_num(value),
        }
    }
}

/// Number of brownouts (Eq. 2 violations while executing) over the run.
///
/// There is no constant DNF score: a design that never completes may
/// brown out never (it never boots) or hundreds of times (it boots and
/// dies repeatedly), so [`Objective::dnf_score`] stays `None`. The static
/// theory lives in [`Objective::static_bracket`] instead: the shared
/// engine's brownout bracket is *exact* (`[0, 0]`) when the supply
/// provably never boots the MCU, which lets the evaluator prune
/// statically-dead candidates even with this objective in play.
#[derive(Debug, Clone, Copy, Default)]
pub struct BrownoutCount;

impl Objective for BrownoutCount {
    fn name(&self) -> &'static str {
        "brownouts"
    }

    fn score(&self, _spec: &ExperimentSpec, report: &SystemReport) -> f64 {
        report.stats.brownouts as f64
    }

    fn static_bracket(&self, spec: &ExperimentSpec, bounder: &mut Bounder) -> Option<ScoreBracket> {
        Some(bounder.bound_spec(spec)?.brownouts)
    }

    fn score_json(&self, report: &Json) -> Option<f64> {
        json_num(report.get("stats")?.get("brownouts")?)
    }
}

/// The p99 outage duration in seconds, from stats telemetry. Zero when the
/// run saw no outages; `INFINITY` when the report carries no stats sink
/// (the evaluator prevents that by forcing stats telemetry).
#[derive(Debug, Clone, Copy, Default)]
pub struct P99Outage;

impl Objective for P99Outage {
    fn name(&self) -> &'static str {
        "p99_outage_s"
    }

    fn score(&self, _spec: &ExperimentSpec, report: &SystemReport) -> f64 {
        match &report.telemetry {
            Some(TelemetryReport::Stats(stats)) => stats.outage_s().summary().p99,
            _ => f64::INFINITY,
        }
    }

    fn requires_stats(&self) -> bool {
        true
    }

    fn static_bracket(&self, spec: &ExperimentSpec, bounder: &mut Bounder) -> Option<ScoreBracket> {
        Some(bounder.bound_spec(spec)?.p99_outage_s)
    }

    fn score_json(&self, report: &Json) -> Option<f64> {
        // Mirror `score` exactly: a report without a stats telemetry
        // section scores INFINITY; one with it reads the p99 outage.
        match report.get("telemetry") {
            Some(telemetry) if telemetry.get("kind") == Some(&Json::Str("stats".into())) => {
                json_num(telemetry.get("outage_s")?.get("p99")?)
            }
            _ => Some(f64::INFINITY),
        }
    }
}

/// Total energy drawn per completed task in joules; `INFINITY` when the
/// task never completed (one task per run, so this is the run's consumed
/// energy on success).
#[derive(Debug, Clone, Copy, Default)]
pub struct EnergyPerTask;

impl Objective for EnergyPerTask {
    fn name(&self) -> &'static str {
        "energy_per_task_j"
    }

    fn score(&self, _spec: &ExperimentSpec, report: &SystemReport) -> f64 {
        if report.stats.completed_at.is_some() {
            report.stats.energy_consumed.0
        } else {
            f64::INFINITY
        }
    }

    fn dnf_score(&self) -> Option<f64> {
        Some(f64::INFINITY)
    }

    fn static_bracket(&self, spec: &ExperimentSpec, bounder: &mut Bounder) -> Option<ScoreBracket> {
        Some(bounder.bound_spec(spec)?.energy_per_task_j)
    }

    fn score_json(&self, report: &Json) -> Option<f64> {
        let stats = report.get("stats")?;
        match stats.get("completed_at_s")? {
            Json::Null => Some(f64::INFINITY),
            _ => json_num(stats.get("energy_j")?),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edc_core::scenarios::{SourceKind, StrategyKind};
    use edc_core::TelemetryKind;
    use edc_units::Seconds;
    use edc_workloads::WorkloadKind;

    fn completed(telemetry: TelemetryKind) -> (ExperimentSpec, SystemReport) {
        let spec = ExperimentSpec::new(
            SourceKind::Dc { volts: 3.3 },
            StrategyKind::Restart,
            WorkloadKind::BusyLoop(100),
        )
        .deadline(Seconds(1.0))
        .telemetry(telemetry);
        let report = spec.run().expect("spec runs");
        (spec, report)
    }

    #[test]
    fn completion_time_scores_finite_on_success() {
        let (spec, report) = completed(TelemetryKind::Null);
        let t = CompletionTime.score(&spec, &report);
        assert!(t.is_finite() && t > 0.0);
        assert_eq!(BrownoutCount.score(&spec, &report), 0.0);
        let e = EnergyPerTask.score(&spec, &report);
        assert!(e.is_finite() && e > 0.0);
    }

    #[test]
    fn p99_outage_requires_stats_telemetry() {
        assert!(P99Outage.requires_stats());
        let (spec, without) = completed(TelemetryKind::Null);
        assert_eq!(P99Outage.score(&spec, &without), f64::INFINITY);
        let (spec, with) = completed(TelemetryKind::Stats);
        assert_eq!(
            P99Outage.score(&spec, &with),
            0.0,
            "DC supply has no outages"
        );
    }

    #[test]
    fn incomplete_runs_score_infinite() {
        let spec = ExperimentSpec::new(
            SourceKind::Dc { volts: 3.3 },
            StrategyKind::Restart,
            WorkloadKind::Endless,
        )
        .deadline(Seconds(0.01));
        let report = spec.run().expect("spec runs");
        assert_eq!(CompletionTime.score(&spec, &report), f64::INFINITY);
        assert_eq!(EnergyPerTask.score(&spec, &report), f64::INFINITY);
    }

    #[test]
    fn static_brackets_contain_simulated_scores() {
        let (spec, report) = completed(TelemetryKind::Stats);
        let mut bounder = Bounder::new();
        let objectives: [&dyn Objective; 4] =
            [&CompletionTime, &BrownoutCount, &P99Outage, &EnergyPerTask];
        for o in objectives {
            let bracket = o
                .static_bracket(&spec, &mut bounder)
                .expect("valid spec has a bracket");
            assert!(
                bracket.contains(o.score(&spec, &report)),
                "{} score outside its bracket",
                o.name()
            );
        }
    }

    #[test]
    fn never_boot_pins_brownouts_and_outages_exactly() {
        // 1.5 V can never reach a boot threshold above V_min = 2 V.
        let dark = ExperimentSpec::new(
            SourceKind::Dc { volts: 1.5 },
            StrategyKind::Restart,
            WorkloadKind::BusyLoop(100),
        )
        .deadline(Seconds(0.05));
        let mut bounder = Bounder::new();
        let brownouts = BrownoutCount
            .static_bracket(&dark, &mut bounder)
            .expect("valid spec");
        assert!(brownouts.is_exact() && brownouts.lo == 0.0);
        let p99 = P99Outage
            .static_bracket(&dark, &mut bounder)
            .expect("valid spec");
        assert!(p99.is_exact() && p99.lo == 0.0);
        let completion = CompletionTime
            .static_bracket(&dark, &mut bounder)
            .expect("valid spec");
        assert!(completion.is_exact() && completion.lo == f64::INFINITY);
    }

    #[test]
    fn score_json_matches_live_score_bit_exactly() {
        let objectives: [&dyn Objective; 4] =
            [&CompletionTime, &BrownoutCount, &P99Outage, &EnergyPerTask];
        // Completed run with stats, completed run without, and a DNF.
        let mut cases = vec![
            completed(TelemetryKind::Stats),
            completed(TelemetryKind::Null),
        ];
        let dnf = ExperimentSpec::new(
            SourceKind::Dc { volts: 3.3 },
            StrategyKind::Restart,
            WorkloadKind::Endless,
        )
        .deadline(Seconds(0.01))
        .telemetry(TelemetryKind::Stats);
        let dnf_report = dnf.run().expect("spec runs");
        cases.push((dnf, dnf_report));
        for (spec, report) in &cases {
            // Round-trip through text, the way the store sees reports.
            let json = edc_core::json::Json::parse(&report.to_json().to_string()).expect("valid");
            for o in objectives {
                let live = o.score(spec, report);
                let stored = o.score_json(&json).expect("built-ins score from JSON");
                assert_eq!(
                    live.to_bits(),
                    stored.to_bits(),
                    "{} diverges on stored report",
                    o.name()
                );
            }
        }
    }

    #[test]
    fn score_json_refuses_unreadable_reports() {
        let report = edc_core::json::Json::parse(r#"{"outcome":"Completed"}"#).expect("valid");
        assert_eq!(CompletionTime.score_json(&report), None);
        assert_eq!(BrownoutCount.score_json(&report), None);
        assert_eq!(EnergyPerTask.score_json(&report), None);
        // No telemetry section means no stats sink: INFINITY, as `score`.
        assert_eq!(P99Outage.score_json(&report), Some(f64::INFINITY));
    }

    #[test]
    fn invalid_specs_have_no_bracket() {
        let bad = ExperimentSpec::new(
            SourceKind::Dc { volts: 3.3 },
            StrategyKind::Restart,
            WorkloadKind::BusyLoop(100),
        )
        .timestep(Seconds(0.0));
        assert!(CompletionTime
            .static_bracket(&bad, &mut Bounder::new())
            .is_none());
    }
}
