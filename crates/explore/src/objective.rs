//! Objectives: scalar figures of merit extracted from a run's report.
//!
//! Every objective maps a [`SystemReport`] to a score where **lower is
//! better**; searchers minimise. Multi-objective searches pass several
//! objectives and get a Pareto front back instead of a single winner.
//!
//! Scores must be deterministic functions of the report. Infeasible
//! designs score `f64::INFINITY` (e.g. completion time of a run that never
//! completed), which dominance handles naturally: an infeasible design can
//! never dominate a feasible one on that objective.

use edc_core::telemetry::TelemetryReport;
use edc_core::SystemReport;

/// A scalar figure of merit over a run's report; lower is better.
pub trait Objective {
    /// Stable machine-readable name (used in report JSON).
    fn name(&self) -> &'static str;

    /// Scores the report. Must be deterministic; return `f64::INFINITY`
    /// (never `NaN`) for infeasible designs.
    fn score(&self, report: &SystemReport) -> f64;

    /// `true` when the objective reads [`TelemetryReport::Stats`] and the
    /// evaluator must therefore force stats telemetry onto every candidate
    /// spec.
    fn requires_stats(&self) -> bool {
        false
    }
}

/// Workload completion time in seconds; `INFINITY` when the run did not
/// complete (deadline expired or faulted).
#[derive(Debug, Clone, Copy, Default)]
pub struct CompletionTime;

impl Objective for CompletionTime {
    fn name(&self) -> &'static str {
        "completion_s"
    }

    fn score(&self, report: &SystemReport) -> f64 {
        report
            .stats
            .completed_at
            .map(|t| t.0)
            .unwrap_or(f64::INFINITY)
    }
}

/// Number of brownouts (Eq. 2 violations while executing) over the run.
#[derive(Debug, Clone, Copy, Default)]
pub struct BrownoutCount;

impl Objective for BrownoutCount {
    fn name(&self) -> &'static str {
        "brownouts"
    }

    fn score(&self, report: &SystemReport) -> f64 {
        report.stats.brownouts as f64
    }
}

/// The p99 outage duration in seconds, from stats telemetry. Zero when the
/// run saw no outages; `INFINITY` when the report carries no stats sink
/// (the evaluator prevents that by forcing stats telemetry).
#[derive(Debug, Clone, Copy, Default)]
pub struct P99Outage;

impl Objective for P99Outage {
    fn name(&self) -> &'static str {
        "p99_outage_s"
    }

    fn score(&self, report: &SystemReport) -> f64 {
        match &report.telemetry {
            Some(TelemetryReport::Stats(stats)) => stats.outage_s().summary().p99,
            _ => f64::INFINITY,
        }
    }

    fn requires_stats(&self) -> bool {
        true
    }
}

/// Total energy drawn per completed task in joules; `INFINITY` when the
/// task never completed (one task per run, so this is the run's consumed
/// energy on success).
#[derive(Debug, Clone, Copy, Default)]
pub struct EnergyPerTask;

impl Objective for EnergyPerTask {
    fn name(&self) -> &'static str {
        "energy_per_task_j"
    }

    fn score(&self, report: &SystemReport) -> f64 {
        if report.stats.completed_at.is_some() {
            report.stats.energy_consumed.0
        } else {
            f64::INFINITY
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edc_core::experiment::ExperimentSpec;
    use edc_core::scenarios::{SourceKind, StrategyKind};
    use edc_core::TelemetryKind;
    use edc_units::Seconds;
    use edc_workloads::WorkloadKind;

    fn completed_report(telemetry: TelemetryKind) -> SystemReport {
        ExperimentSpec::new(
            SourceKind::Dc { volts: 3.3 },
            StrategyKind::Restart,
            WorkloadKind::BusyLoop(100),
        )
        .deadline(Seconds(1.0))
        .telemetry(telemetry)
        .run()
        .expect("spec runs")
    }

    #[test]
    fn completion_time_scores_finite_on_success() {
        let report = completed_report(TelemetryKind::Null);
        let t = CompletionTime.score(&report);
        assert!(t.is_finite() && t > 0.0);
        assert_eq!(BrownoutCount.score(&report), 0.0);
        let e = EnergyPerTask.score(&report);
        assert!(e.is_finite() && e > 0.0);
    }

    #[test]
    fn p99_outage_requires_stats_telemetry() {
        assert!(P99Outage.requires_stats());
        let without = completed_report(TelemetryKind::Null);
        assert_eq!(P99Outage.score(&without), f64::INFINITY);
        let with = completed_report(TelemetryKind::Stats);
        assert_eq!(P99Outage.score(&with), 0.0, "DC supply has no outages");
    }

    #[test]
    fn incomplete_runs_score_infinite() {
        let report = ExperimentSpec::new(
            SourceKind::Dc { volts: 3.3 },
            StrategyKind::Restart,
            WorkloadKind::Endless,
        )
        .deadline(Seconds(0.01))
        .run()
        .expect("spec runs");
        assert_eq!(CompletionTime.score(&report), f64::INFINITY);
        assert_eq!(EnergyPerTask.score(&report), f64::INFINITY);
    }
}
