//! Objectives: scalar figures of merit extracted from a candidate's run.
//!
//! Every objective maps a candidate — its [`ExperimentSpec`] and the
//! [`SystemReport`] of its run — to a score where **lower is better**;
//! searchers minimise. Multi-objective searches pass several objectives
//! and get a Pareto front back instead of a single winner.
//!
//! Most objectives read only the report; the spec parameter exists for
//! adapters whose figure of merit is a function of the *design* rather
//! than the single run — the fleet objectives in [`crate::fleet`] deploy
//! the candidate design as a whole population and score the fleet.
//!
//! Scores must be deterministic functions of their inputs. Infeasible
//! designs score `f64::INFINITY` (e.g. completion time of a run that never
//! completed), which dominance handles naturally: an infeasible design can
//! never dominate a feasible one on that objective.

use edc_core::experiment::ExperimentSpec;
use edc_core::telemetry::TelemetryReport;
use edc_core::SystemReport;

/// A scalar figure of merit over a candidate; lower is better.
pub trait Objective {
    /// Stable machine-readable name (used in report JSON).
    fn name(&self) -> &'static str;

    /// Scores the candidate: its (canonicalised) spec and the report of
    /// its run. Must be deterministic; return `f64::INFINITY` (never
    /// `NaN`) for infeasible designs.
    fn score(&self, spec: &ExperimentSpec, report: &SystemReport) -> f64;

    /// `true` when the objective reads [`TelemetryReport::Stats`] and the
    /// evaluator must therefore force stats telemetry onto every candidate
    /// spec.
    fn requires_stats(&self) -> bool {
        false
    }

    /// The score this objective provably assigns to a candidate that can
    /// never complete its workload — a statically-known DNF. `Some(score)`
    /// lets the evaluator's lint prefilter score `E`-flagged candidates
    /// without simulating them; `None` (the default) means the objective's
    /// value on a DNF depends on how the run fails (brownout counts,
    /// outage percentiles), so flagged candidates must still be simulated
    /// whenever this objective is in play.
    fn dnf_score(&self) -> Option<f64> {
        None
    }

    /// How many full-fidelity-equivalent simulations scoring one *cache
    /// miss* really costs. `1.0` (the default) means the objective only
    /// reads the shared single-node report; objectives that launch extra
    /// simulations per candidate — the fleet adapters deploy it as a whole
    /// `n`-node population — return that true cost so budgeted searches
    /// charge what they actually spend. The evaluator bills each miss at
    /// the *maximum* multiplier across its objectives (the dominant cost;
    /// cloned-template fleet objectives share one fleet run, so their
    /// costs overlap rather than add).
    fn cost_multiplier(&self) -> f64 {
        1.0
    }
}

/// Workload completion time in seconds; `INFINITY` when the run did not
/// complete (deadline expired or faulted).
#[derive(Debug, Clone, Copy, Default)]
pub struct CompletionTime;

impl Objective for CompletionTime {
    fn name(&self) -> &'static str {
        "completion_s"
    }

    fn score(&self, _spec: &ExperimentSpec, report: &SystemReport) -> f64 {
        report
            .stats
            .completed_at
            .map(|t| t.0)
            .unwrap_or(f64::INFINITY)
    }

    fn dnf_score(&self) -> Option<f64> {
        Some(f64::INFINITY)
    }
}

/// Number of brownouts (Eq. 2 violations while executing) over the run.
#[derive(Debug, Clone, Copy, Default)]
pub struct BrownoutCount;

impl Objective for BrownoutCount {
    fn name(&self) -> &'static str {
        "brownouts"
    }

    fn score(&self, _spec: &ExperimentSpec, report: &SystemReport) -> f64 {
        report.stats.brownouts as f64
    }
}

/// The p99 outage duration in seconds, from stats telemetry. Zero when the
/// run saw no outages; `INFINITY` when the report carries no stats sink
/// (the evaluator prevents that by forcing stats telemetry).
#[derive(Debug, Clone, Copy, Default)]
pub struct P99Outage;

impl Objective for P99Outage {
    fn name(&self) -> &'static str {
        "p99_outage_s"
    }

    fn score(&self, _spec: &ExperimentSpec, report: &SystemReport) -> f64 {
        match &report.telemetry {
            Some(TelemetryReport::Stats(stats)) => stats.outage_s().summary().p99,
            _ => f64::INFINITY,
        }
    }

    fn requires_stats(&self) -> bool {
        true
    }
}

/// Total energy drawn per completed task in joules; `INFINITY` when the
/// task never completed (one task per run, so this is the run's consumed
/// energy on success).
#[derive(Debug, Clone, Copy, Default)]
pub struct EnergyPerTask;

impl Objective for EnergyPerTask {
    fn name(&self) -> &'static str {
        "energy_per_task_j"
    }

    fn score(&self, _spec: &ExperimentSpec, report: &SystemReport) -> f64 {
        if report.stats.completed_at.is_some() {
            report.stats.energy_consumed.0
        } else {
            f64::INFINITY
        }
    }

    fn dnf_score(&self) -> Option<f64> {
        Some(f64::INFINITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edc_core::scenarios::{SourceKind, StrategyKind};
    use edc_core::TelemetryKind;
    use edc_units::Seconds;
    use edc_workloads::WorkloadKind;

    fn completed(telemetry: TelemetryKind) -> (ExperimentSpec, SystemReport) {
        let spec = ExperimentSpec::new(
            SourceKind::Dc { volts: 3.3 },
            StrategyKind::Restart,
            WorkloadKind::BusyLoop(100),
        )
        .deadline(Seconds(1.0))
        .telemetry(telemetry);
        let report = spec.run().expect("spec runs");
        (spec, report)
    }

    #[test]
    fn completion_time_scores_finite_on_success() {
        let (spec, report) = completed(TelemetryKind::Null);
        let t = CompletionTime.score(&spec, &report);
        assert!(t.is_finite() && t > 0.0);
        assert_eq!(BrownoutCount.score(&spec, &report), 0.0);
        let e = EnergyPerTask.score(&spec, &report);
        assert!(e.is_finite() && e > 0.0);
    }

    #[test]
    fn p99_outage_requires_stats_telemetry() {
        assert!(P99Outage.requires_stats());
        let (spec, without) = completed(TelemetryKind::Null);
        assert_eq!(P99Outage.score(&spec, &without), f64::INFINITY);
        let (spec, with) = completed(TelemetryKind::Stats);
        assert_eq!(
            P99Outage.score(&spec, &with),
            0.0,
            "DC supply has no outages"
        );
    }

    #[test]
    fn incomplete_runs_score_infinite() {
        let spec = ExperimentSpec::new(
            SourceKind::Dc { volts: 3.3 },
            StrategyKind::Restart,
            WorkloadKind::Endless,
        )
        .deadline(Seconds(0.01));
        let report = spec.run().expect("spec runs");
        assert_eq!(CompletionTime.score(&spec, &report), f64::INFINITY);
        assert_eq!(EnergyPerTask.score(&spec, &report), f64::INFINITY);
    }
}
