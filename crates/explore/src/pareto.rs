//! Pareto dominance over objective-score vectors, with deterministic
//! ordering.
//!
//! All scores minimise. Point `a` dominates `b` when `a` is no worse on
//! every objective and strictly better on at least one. The front of a
//! candidate set is its non-dominated subset, ordered deterministically
//! (lexicographic by scores under IEEE total order, ties broken by the
//! canonical spec key) so that front JSON is byte-stable.

use std::cmp::Ordering;

use edc_core::experiment::ExperimentSpec;
use edc_core::json::Json;

use crate::evaluator::Evaluation;

/// `true` when `a` dominates `b`: no worse everywhere, strictly better
/// somewhere (both minimising).
///
/// # Panics
///
/// Panics if the score vectors differ in length.
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    assert_eq!(a.len(), b.len(), "score vectors must align");
    let mut strictly = false;
    for (x, y) in a.iter().zip(b) {
        match x.total_cmp(y) {
            Ordering::Greater => return false,
            Ordering::Less => strictly = true,
            Ordering::Equal => {}
        }
    }
    strictly
}

/// Lexicographic IEEE-total-order comparison of score vectors.
pub fn cmp_scores(a: &[f64], b: &[f64]) -> Ordering {
    for (x, y) in a.iter().zip(b) {
        match x.total_cmp(y) {
            Ordering::Equal => {}
            other => return other,
        }
    }
    a.len().cmp(&b.len())
}

/// Dominance depth of every point: how many other points dominate it
/// (0 = on the front). Deterministic and independent of input order up to
/// the obvious index correspondence.
pub fn dominator_counts(scores: &[Vec<f64>]) -> Vec<usize> {
    scores
        .iter()
        .map(|s| scores.iter().filter(|o| dominates(o, s)).count())
        .collect()
}

/// One non-dominated design.
#[derive(Debug, Clone)]
pub struct FrontPoint {
    /// The design's spec.
    pub spec: ExperimentSpec,
    /// The spec's canonical JSON key.
    pub key: String,
    /// One score per objective.
    pub scores: Vec<f64>,
}

/// The non-dominated subset of an evaluated candidate set, in
/// deterministic order.
#[derive(Debug, Clone, Default)]
pub struct ParetoFront {
    points: Vec<FrontPoint>,
}

impl ParetoFront {
    /// Builds the front: deduplicates candidates by spec key (first
    /// occurrence wins), drops every dominated point, and sorts the rest
    /// by scores (lexicographic total order), then key.
    pub fn from_evaluations(evaluations: &[Evaluation]) -> Self {
        let mut seen = std::collections::HashSet::new();
        let mut unique: Vec<&Evaluation> = Vec::new();
        for e in evaluations {
            if seen.insert(e.key.as_str()) {
                unique.push(e);
            }
        }
        let mut points: Vec<FrontPoint> = unique
            .iter()
            .filter(|e| !unique.iter().any(|o| dominates(&o.scores, &e.scores)))
            .map(|e| FrontPoint {
                spec: e.spec,
                key: e.key.clone(),
                scores: e.scores.clone(),
            })
            .collect();
        points.sort_by(|a, b| cmp_scores(&a.scores, &b.scores).then_with(|| a.key.cmp(&b.key)));
        Self { points }
    }

    /// The front's points, best-first under the deterministic order.
    pub fn points(&self) -> &[FrontPoint] {
        &self.points
    }

    /// Number of points on the front.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when the front is empty (no candidates were evaluated).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// `true` when a design with this canonical spec key is on the front.
    pub fn contains_key(&self, key: &str) -> bool {
        self.points.iter().any(|p| p.key == key)
    }

    /// The front as a JSON value (objective *scores* serialise per point;
    /// non-finite scores emit as `null`).
    pub fn to_json(&self, objective_names: &[String]) -> Json {
        Json::obj(vec![
            ("size", Json::Uint(self.points.len() as u64)),
            (
                "points",
                Json::Arr(
                    self.points
                        .iter()
                        .map(|p| {
                            Json::obj(vec![
                                ("spec", p.spec.to_json()),
                                (
                                    "scores",
                                    Json::Obj(
                                        objective_names
                                            .iter()
                                            .cloned()
                                            .zip(p.scores.iter().map(|&s| Json::Num(s)))
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edc_core::scenarios::{SourceKind, StrategyKind};
    use edc_workloads::WorkloadKind;

    fn eval(key: &str, scores: Vec<f64>) -> Evaluation {
        let spec = ExperimentSpec::new(
            SourceKind::Dc { volts: 3.3 },
            StrategyKind::Restart,
            WorkloadKind::BusyLoop(1),
        );
        Evaluation {
            spec,
            key: key.to_string(),
            scores,
        }
    }

    #[test]
    fn dominance_definition() {
        assert!(dominates(&[1.0, 1.0], &[2.0, 1.0]));
        assert!(!dominates(&[1.0, 2.0], &[2.0, 1.0]), "incomparable");
        assert!(!dominates(&[1.0, 1.0], &[1.0, 1.0]), "equal points");
        assert!(dominates(&[1.0, 1.0], &[f64::INFINITY, 1.0]));
        assert!(dominates(&[f64::INFINITY, 1.0], &[f64::INFINITY, 2.0]));
    }

    #[test]
    fn front_drops_dominated_and_orders_deterministically() {
        let front = ParetoFront::from_evaluations(&[
            eval("c", vec![3.0, 1.0]),
            eval("a", vec![1.0, 3.0]),
            eval("b", vec![2.0, 2.0]),
            eval("d", vec![2.5, 2.5]), // dominated by b
        ]);
        assert_eq!(front.len(), 3);
        let keys: Vec<&str> = front.points().iter().map(|p| p.key.as_str()).collect();
        assert_eq!(keys, ["a", "b", "c"], "sorted by scores, not input order");
        assert!(!front.contains_key("d"));
    }

    #[test]
    fn duplicate_keys_collapse() {
        let front = ParetoFront::from_evaluations(&[eval("a", vec![1.0]), eval("a", vec![1.0])]);
        assert_eq!(front.len(), 1);
    }

    #[test]
    fn dominator_counts_rank_rungs() {
        let counts = dominator_counts(&[
            vec![1.0, 1.0],
            vec![2.0, 2.0],
            vec![3.0, 3.0],
            vec![0.5, 3.5],
        ]);
        assert_eq!(counts, vec![0, 1, 2, 0]);
    }
}
