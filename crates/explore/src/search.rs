//! The pluggable searchers: how a design space gets explored.
//!
//! Every searcher funds its simulations through the shared [`Evaluator`]
//! (memo cache, budget, parallel fan-out) and returns the candidate set it
//! considers *final* — the evaluations at full fidelity from which the
//! caller derives the Pareto front. All searchers are deterministic:
//! identical inputs (space, objectives, seed) produce identical traces and
//! fronts regardless of thread count.

use rand::{rngs::StdRng, Rng as _, SeedableRng as _};

use edc_core::experiment::ExperimentSpec;
use edc_units::Seconds;

use crate::evaluator::{Evaluation, Evaluator};
use crate::pareto::{cmp_scores, dominator_counts};
use crate::space::{SpecSpace, AXES, AXIS_NAMES};
use crate::ExploreError;

/// A design-space search procedure.
pub trait Searcher {
    /// Stable machine-readable name (used in report JSON).
    fn name(&self) -> &'static str;

    /// Explores `space`, funding evaluations through `eval`, and returns
    /// the final full-fidelity candidate set (the Pareto front is computed
    /// over exactly these evaluations).
    ///
    /// # Errors
    ///
    /// Propagates evaluator errors (budget exhaustion, invalid specs).
    fn search(
        &self,
        space: &SpecSpace,
        eval: &mut Evaluator<'_>,
    ) -> Result<Vec<Evaluation>, ExploreError>;
}

/// Evaluates every point of the space, delegating the fan-out to the sweep
/// engine. The exactness baseline the budgeted searchers are measured
/// against.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExhaustiveGrid;

impl Searcher for ExhaustiveGrid {
    fn name(&self) -> &'static str {
        "exhaustive-grid"
    }

    fn search(
        &self,
        space: &SpecSpace,
        eval: &mut Evaluator<'_>,
    ) -> Result<Vec<Evaluation>, ExploreError> {
        eval.evaluate(space.all_specs(), "grid")
    }
}

/// Uniform random sampling of the space without replacement, seeded and
/// platform-stable (the workspace's deterministic `rand` shim).
#[derive(Debug, Clone, Copy)]
pub struct RandomSearch {
    /// RNG seed; equal seeds reproduce the sample byte-for-byte.
    pub seed: u64,
    /// Number of distinct points to evaluate (capped at the space size).
    pub samples: usize,
}

impl RandomSearch {
    /// A seeded sampler drawing `samples` distinct points.
    pub fn new(seed: u64, samples: usize) -> Self {
        Self { seed, samples }
    }
}

impl Searcher for RandomSearch {
    fn name(&self) -> &'static str {
        "random-search"
    }

    fn search(
        &self,
        space: &SpecSpace,
        eval: &mut Evaluator<'_>,
    ) -> Result<Vec<Evaluation>, ExploreError> {
        let len = space.len();
        let target = self.samples.min(len);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut seen: std::collections::HashSet<usize> = std::collections::HashSet::new();
        let mut chosen: Vec<usize> = Vec::with_capacity(target);
        while chosen.len() < target {
            // Repeats are redrawn until `target` distinct points are held,
            // so the sample really is without replacement. The generator is
            // full-period, so the loop terminates (and, for a fixed seed,
            // always after the same number of draws).
            let flat = draw_below(&mut rng, len as u64) as usize;
            if seen.insert(flat) {
                chosen.push(flat);
            }
        }
        let specs: Vec<ExperimentSpec> = chosen.iter().map(|&i| space.spec_at(i)).collect();
        eval.evaluate(specs, "random")
    }
}

/// An unbiased draw from `[0, n)` — Lemire's multiply–shift method with
/// rejection. A plain `next_u64() % n` over-weights the smallest residues
/// whenever `n` does not divide `2^64`, skewing which designs a seed
/// visits; multiply–shift keeps exactly the draws whose low word clears
/// the `(2^64 − n) mod n` threshold, which makes every value of `[0, n)`
/// equally likely while staying deterministic per seed.
fn draw_below(rng: &mut StdRng, n: u64) -> u64 {
    debug_assert!(n > 0, "cannot draw from an empty range");
    let threshold = n.wrapping_neg() % n; // (2^64 − n) mod n
    loop {
        let wide = u128::from(rng.next_u64()) * u128::from(n);
        if (wide as u64) >= threshold {
            return (wide >> 64) as u64;
        }
    }
}

/// Multi-fidelity successive halving: evaluate *everything* at a coarse
/// timestep (cheap, noisy), keep the best fraction, refine the survivors
/// at finer timesteps, and finish the last rung at the space's own
/// fidelity. Exploits that simulation cost scales inversely with the
/// timestep, so a full coarse pass costs a fraction of a full-fidelity
/// grid. Early rungs can *also* shorten the run deadline (see
/// [`SuccessiveHalving::deadline_divisors`]), which compounds the budget
/// savings for long-horizon workloads: a design that cannot finish a
/// quarter of the horizon rarely wins the full one.
///
/// Between rungs, candidates are ranked by dominance depth (fewest
/// dominators first), then lexicographic scores, then flat index — fully
/// deterministic.
#[derive(Debug, Clone)]
pub struct SuccessiveHalving {
    /// Timestep coarsening factor per rung, strictly decreasing, ending at
    /// `1.0` (the space's own timestep). Private: the [`rungs`](Self::rungs)
    /// setter enforces the schedule invariant the search loop relies on.
    rungs: Vec<f64>,
    /// Fraction of candidates kept after each non-final rung, in `(0, 1)`.
    keep: f64,
    /// Optional per-rung deadline divisors (same length as `rungs`,
    /// strictly decreasing to `1.0`): rung `r` runs each candidate to
    /// `deadline / deadline_divisors[r]`. `None` leaves every rung at the
    /// spec's own deadline.
    deadline_divisors: Option<Vec<f64>>,
}

impl SuccessiveHalving {
    /// The default schedule: a 16× coarse prefilter, a 4× middle rung, and
    /// a full-fidelity finish, keeping the top quarter each time. On a
    /// grid of `N` points this costs `N/16 + N/64 + …` ≈ well under `N/4`
    /// full-fidelity equivalents.
    pub fn new() -> Self {
        Self {
            rungs: vec![16.0, 4.0, 1.0],
            keep: 0.25,
            deadline_divisors: None,
        }
    }

    /// Overrides the rung schedule. Clears any configured deadline
    /// divisors (they are per-rung; set them after the schedule).
    ///
    /// # Panics
    ///
    /// Panics unless the factors are strictly decreasing, all `≥ 1`, and
    /// the last is `1.0`.
    pub fn rungs(mut self, factors: &[f64]) -> Self {
        assert!(
            factors.windows(2).all(|w| w[0] > w[1]) && factors.last() == Some(&1.0),
            "rung factors must strictly decrease to 1.0"
        );
        self.rungs = factors.to_vec();
        self.deadline_divisors = None;
        self
    }

    /// Shortens early rungs' deadlines: rung `r` runs its candidates to
    /// `deadline / divisors[r]`, so prefilter rungs spend less simulated
    /// time *and* fewer budget units (the evaluator charges the deadline
    /// ratio when given a reference deadline) before the final rung
    /// restores the full horizon. Deadlines are monotonically
    /// non-decreasing across rungs by construction.
    ///
    /// # Panics
    ///
    /// Panics unless `divisors` has one entry per rung, strictly
    /// decreasing to `1.0` (the final rung always runs the full deadline).
    pub fn deadline_divisors(mut self, divisors: &[f64]) -> Self {
        assert_eq!(
            divisors.len(),
            self.rungs.len(),
            "one deadline divisor per rung"
        );
        assert!(
            divisors.windows(2).all(|w| w[0] > w[1]) && divisors.last() == Some(&1.0),
            "deadline divisors must strictly decrease to 1.0"
        );
        self.deadline_divisors = Some(divisors.to_vec());
        self
    }

    /// Overrides the survivor fraction.
    ///
    /// # Panics
    ///
    /// Panics unless `keep` is in `(0, 1)`.
    pub fn keep(mut self, keep: f64) -> Self {
        assert!(keep > 0.0 && keep < 1.0, "keep fraction must be in (0, 1)");
        self.keep = keep;
        self
    }
}

impl Default for SuccessiveHalving {
    fn default() -> Self {
        Self::new()
    }
}

impl Searcher for SuccessiveHalving {
    fn name(&self) -> &'static str {
        "successive-halving"
    }

    fn search(
        &self,
        space: &SpecSpace,
        eval: &mut Evaluator<'_>,
    ) -> Result<Vec<Evaluation>, ExploreError> {
        let mut candidates: Vec<usize> = (0..space.len()).collect();
        for (r, &factor) in self.rungs.iter().enumerate() {
            let divisor = self.deadline_divisors.as_ref().map(|d| d[r]).unwrap_or(1.0);
            let specs: Vec<ExperimentSpec> = candidates
                .iter()
                .map(|&i| {
                    let spec = space.spec_at(i);
                    spec.timestep(Seconds(spec.timestep.0 * factor))
                        .deadline(Seconds(spec.deadline.0 / divisor))
                })
                .collect();
            let phase = format!("rung{r}@{factor}x");
            let evals = eval.evaluate(specs, &phase)?;
            if r + 1 == self.rungs.len() {
                return Ok(evals);
            }
            // Rank survivors: dominance depth, then scores, then index.
            let scores: Vec<Vec<f64>> = evals.iter().map(|e| e.scores.clone()).collect();
            let depth = dominator_counts(&scores);
            let mut order: Vec<usize> = (0..candidates.len()).collect();
            order.sort_by(|&a, &b| {
                depth[a]
                    .cmp(&depth[b])
                    .then_with(|| cmp_scores(&scores[a], &scores[b]))
                    .then_with(|| candidates[a].cmp(&candidates[b]))
            });
            // `ceil` with a `keep` close to 1 can round up to the whole
            // rung; a rung that keeps everyone does no halving and burns
            // budget for nothing, so clamp to a strict shrink whenever
            // there is more than one candidate left.
            let kept = ((candidates.len() as f64 * self.keep).ceil() as usize)
                .max(1)
                .min((candidates.len() - 1).max(1));
            let mut survivors: Vec<usize> = order[..kept].iter().map(|&i| candidates[i]).collect();
            survivors.sort_unstable();
            candidates = survivors;
        }
        unreachable!("rungs always end at factor 1.0");
    }
}

/// Greedy coordinate descent on a weighted sum of the objectives: sweep
/// one axis at a time from a start point, move to the best value, repeat
/// until a full round improves nothing (or the round limit is reached).
/// Returns every point it evaluated, so the front reflects the whole
/// trajectory, not just the end point.
#[derive(Debug, Clone)]
pub struct CoordinateDescent {
    /// Maximum full rounds over the axes.
    rounds: usize,
    /// Start point as a flat index; defaults to each axis's midpoint.
    start: Option<usize>,
    /// Scalarisation weights, one per objective; defaults to all-ones.
    /// Objectives are minimised, so the weighted sum is too.
    weights: Option<Vec<f64>>,
}

impl CoordinateDescent {
    /// A descent capped at `rounds` full rounds.
    pub fn new(rounds: usize) -> Self {
        Self {
            rounds,
            start: None,
            weights: None,
        }
    }

    /// Starts the descent from this flat index (e.g. a sizing-seeded
    /// design) instead of the axis midpoints.
    pub fn start(mut self, flat: usize) -> Self {
        self.start = Some(flat);
        self
    }

    /// Sets the scalarisation weights.
    pub fn weights(mut self, weights: &[f64]) -> Self {
        self.weights = Some(weights.to_vec());
        self
    }

    fn weighted(&self, scores: &[f64]) -> f64 {
        match &self.weights {
            // Zero-weight objectives are skipped, not multiplied: an
            // ignored objective may legitimately score INFINITY, and
            // 0 × ∞ = NaN would poison the ranking.
            Some(w) => scores
                .iter()
                .zip(w)
                .filter(|&(_, &w)| w != 0.0)
                .map(|(s, w)| s * w)
                .sum(),
            None => scores.iter().sum(),
        }
    }
}

impl Searcher for CoordinateDescent {
    fn name(&self) -> &'static str {
        "coordinate-descent"
    }

    fn search(
        &self,
        space: &SpecSpace,
        eval: &mut Evaluator<'_>,
    ) -> Result<Vec<Evaluation>, ExploreError> {
        if let Some(w) = &self.weights {
            if w.len() != eval.objective_count() {
                return Err(ExploreError::WeightCount {
                    weights: w.len(),
                    objectives: eval.objective_count(),
                });
            }
        }
        if let Some(flat) = self.start {
            if flat >= space.len() {
                return Err(ExploreError::StartOutOfRange {
                    start: flat,
                    size: space.len(),
                });
            }
        }
        let dims = space.dims();
        let mut here = match self.start {
            Some(flat) => space.point_of(flat),
            None => {
                let mut mid = [0usize; AXES];
                for (axis, m) in mid.iter_mut().enumerate() {
                    *m = dims[axis] / 2;
                }
                mid
            }
        };
        let mut all: Vec<Evaluation> = Vec::new();
        let mut seen: std::collections::HashSet<String> = std::collections::HashSet::new();
        let mut collect = |evals: &[Evaluation], all: &mut Vec<Evaluation>| {
            for e in evals {
                if seen.insert(e.key.clone()) {
                    all.push(e.clone());
                }
            }
        };
        for round in 0..self.rounds {
            let mut improved = false;
            for axis in 0..AXES {
                if dims[axis] < 2 {
                    continue;
                }
                let candidates: Vec<[usize; AXES]> = (0..dims[axis])
                    .map(|v| {
                        let mut p = here;
                        p[axis] = v;
                        p
                    })
                    .collect();
                let specs: Vec<ExperimentSpec> =
                    candidates.iter().map(|&p| space.spec(p)).collect();
                let phase = format!("round{round}/{}", AXIS_NAMES[axis]);
                let evals = eval.evaluate(specs, &phase)?;
                collect(&evals, &mut all);
                let current = self.weighted(&evals[here[axis]].scores);
                let (best_v, best) = evals
                    .iter()
                    .enumerate()
                    .map(|(v, e)| (v, self.weighted(&e.scores)))
                    .min_by(|(va, a), (vb, b)| a.total_cmp(b).then_with(|| va.cmp(vb)))
                    .expect("axis is non-empty");
                if best_v != here[axis] && best.total_cmp(&current).is_lt() {
                    here[axis] = best_v;
                    improved = true;
                }
            }
            if !improved {
                break;
            }
        }
        Ok(all)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::{BrownoutCount, CompletionTime, Objective};
    use edc_core::experiment::ExperimentSpec;
    use edc_core::scenarios::{SourceKind, StrategyKind};
    use edc_units::Farads;
    use edc_workloads::WorkloadKind;

    fn small_space() -> SpecSpace {
        let base = ExperimentSpec::new(
            SourceKind::Dc { volts: 3.3 },
            StrategyKind::Restart,
            WorkloadKind::BusyLoop(150),
        )
        .deadline(Seconds(1.0));
        SpecSpace::over(base)
            .strategies(&[StrategyKind::Restart, StrategyKind::Hibernus])
            .decoupling(&[Farads::from_micro(10.0), Farads::from_micro(22.0)])
    }

    fn objectives() -> Vec<Box<dyn Objective>> {
        vec![Box::new(CompletionTime), Box::new(BrownoutCount)]
    }

    #[test]
    fn exhaustive_covers_the_space() {
        let space = small_space();
        let objectives = objectives();
        let mut eval = Evaluator::new(&objectives, 2, None, space.finest_timestep());
        let evals = ExhaustiveGrid.search(&space, &mut eval).expect("searches");
        assert_eq!(evals.len(), space.len());
        assert_eq!(eval.simulations(), space.len() as u64);
    }

    #[test]
    fn random_search_is_seed_deterministic_and_deduplicated() {
        let space = small_space();
        let objectives = objectives();
        let mut eval = Evaluator::new(&objectives, 2, None, space.finest_timestep());
        let a = RandomSearch::new(42, 16)
            .search(&space, &mut eval)
            .expect("searches");
        let mut eval2 = Evaluator::new(&objectives, 1, None, space.finest_timestep());
        let b = RandomSearch::new(42, 16)
            .search(&space, &mut eval2)
            .expect("searches");
        let keys =
            |evals: &[Evaluation]| -> Vec<String> { evals.iter().map(|e| e.key.clone()).collect() };
        assert_eq!(keys(&a), keys(&b), "same seed, same sample");
        let mut unique = keys(&a);
        unique.dedup();
        assert_eq!(unique.len(), a.len(), "duplicates collapsed");
    }

    #[test]
    fn halving_finishes_at_full_fidelity() {
        let space = small_space();
        let objectives = objectives();
        let mut eval = Evaluator::new(&objectives, 2, None, space.finest_timestep());
        let finals = SuccessiveHalving::new()
            .rungs(&[4.0, 1.0])
            .search(&space, &mut eval)
            .expect("searches");
        assert_eq!(finals.len(), 1, "keeps ceil(4 * 0.25) = 1 survivor");
        let fine_dt = space.base().timestep.0;
        assert!(finals
            .iter()
            .all(|e| (e.spec.timestep.0 - fine_dt).abs() < 1e-18));
        // 4 coarse at quarter cost + 1 fine = 2 full-fidelity units.
        assert!((eval.cost_units() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn coordinate_descent_converges_and_reports_trajectory() {
        let space = small_space();
        let objectives = objectives();
        let mut eval = Evaluator::new(&objectives, 2, None, space.finest_timestep());
        let evals = CoordinateDescent::new(3)
            .start(0)
            .search(&space, &mut eval)
            .expect("searches");
        assert!(!evals.is_empty());
        // The axis sweeps revisit the current point; the cache makes those
        // free.
        assert!(eval.cache_hits() > 0);
        assert!(eval.simulations() <= space.len() as u64);
    }

    #[test]
    #[should_panic(expected = "strictly decrease")]
    fn bad_rung_schedule_is_rejected() {
        let _ = SuccessiveHalving::new().rungs(&[4.0, 4.0, 1.0]);
    }

    #[test]
    fn draw_below_is_unbiased_and_pinned() {
        // Coverage sanity: every residue of a non-power-of-two modulus is
        // reachable and roughly equally likely.
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0u32; 5];
        for _ in 0..5000 {
            counts[draw_below(&mut rng, 5) as usize] += 1;
        }
        for (value, &count) in counts.iter().enumerate() {
            assert!(
                (800..1200).contains(&count),
                "value {value} drawn {count} times"
            );
        }
        // Pinned stream: seeded replay must stay stable across releases,
        // because ExploreReport determinism depends on it.
        let mut rng = StdRng::seed_from_u64(42);
        let draws: Vec<u64> = (0..4).map(|_| draw_below(&mut rng, 4)).collect();
        assert_eq!(draws, vec![0, 2, 1, 1]);
    }

    #[test]
    fn random_search_replay_is_pinned() {
        // The exact without-replacement sample for a fixed seed, pinned so
        // an accidental change to the sampler (or the shim RNG) is caught
        // as a diff here rather than as silently different searches.
        let space = small_space(); // 4 points: strategy × decoupling
        let objectives = objectives();
        let mut eval = Evaluator::new(&objectives, 1, None, space.finest_timestep());
        let evals = RandomSearch::new(42, 4)
            .search(&space, &mut eval)
            .expect("searches");
        let expected: Vec<String> = [0usize, 2, 1, 3]
            .iter()
            .map(|&flat| space.spec_at(flat).to_json().to_string())
            .collect();
        let got: Vec<String> = evals.iter().map(|e| e.key.clone()).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn halving_always_shrinks_rungs_even_with_high_keep() {
        // keep = 0.9 on a 4-point space used to round up to keeping all 4:
        // the rung did no halving and burned budget. The clamp guarantees
        // strictly monotone rung shrinkage whenever a rung holds more than
        // one candidate.
        let space = small_space(); // 4 points
        let objectives = objectives();
        let mut eval = Evaluator::new(&objectives, 1, None, space.finest_timestep());
        let finals = SuccessiveHalving::new()
            .rungs(&[4.0, 2.0, 1.0])
            .keep(0.9)
            .search(&space, &mut eval)
            .expect("searches");
        let mut rung_sizes: Vec<usize> = Vec::new();
        for entry in eval.trace() {
            let rung: usize = entry
                .phase
                .strip_prefix("rung")
                .and_then(|s| s.split('@').next())
                .and_then(|s| s.parse().ok())
                .expect("halving phases are rungN@Fx");
            if rung_sizes.len() <= rung {
                rung_sizes.push(0);
            }
            rung_sizes[rung] += 1;
        }
        assert_eq!(rung_sizes[0], 4, "first rung sees the whole space");
        assert!(
            rung_sizes.windows(2).all(|w| w[1] < w[0]),
            "rungs must strictly shrink: {rung_sizes:?}"
        );
        assert_eq!(finals.len(), *rung_sizes.last().unwrap());
    }

    #[test]
    fn random_search_really_samples_without_replacement() {
        let space = small_space(); // 4 points
        let objectives = objectives();
        let mut eval = Evaluator::new(&objectives, 1, None, space.finest_timestep());
        let evals = RandomSearch::new(9, 4)
            .search(&space, &mut eval)
            .expect("searches");
        assert_eq!(evals.len(), 4, "covers the whole space when asked to");
        let over = RandomSearch::new(9, 100)
            .search(&space, &mut eval)
            .expect("searches");
        assert_eq!(over.len(), 4, "request is capped at the space size");
    }

    #[test]
    fn zero_weights_ignore_infinite_scores() {
        // An objective that is weighted out must not poison the ranking
        // through 0 x INFINITY = NaN.
        let cd = CoordinateDescent::new(1).weights(&[0.0, 1.0]);
        assert_eq!(cd.weighted(&[f64::INFINITY, 3.0]), 3.0);
        assert_eq!(cd.weighted(&[1.0, f64::INFINITY]), f64::INFINITY);
    }

    #[test]
    fn out_of_range_start_is_an_error_not_a_panic() {
        let space = small_space();
        let objectives = objectives();
        let mut eval = Evaluator::new(&objectives, 1, None, space.finest_timestep());
        let err = CoordinateDescent::new(1)
            .start(100)
            .search(&space, &mut eval)
            .expect_err("start outside the 4-point space");
        assert!(matches!(
            err,
            ExploreError::StartOutOfRange {
                start: 100,
                size: 4
            }
        ));
        assert_eq!(eval.simulations(), 0);
    }

    #[test]
    fn mismatched_weights_are_rejected_before_simulating() {
        let space = small_space();
        let objectives = objectives();
        let mut eval = Evaluator::new(&objectives, 1, None, space.finest_timestep());
        let err = CoordinateDescent::new(1)
            .weights(&[1.0])
            .search(&space, &mut eval)
            .expect_err("one weight for two objectives");
        assert!(matches!(
            err,
            ExploreError::WeightCount {
                weights: 1,
                objectives: 2
            }
        ));
        assert_eq!(eval.simulations(), 0);
    }
}
