//! Seeding search spaces from the paper's closed-form sizing answers.
//!
//! Eq. (4) gives the *smallest* capacitance that can ever fund a snapshot
//! between the operating rails — the analytic floor of the capacitor-sizing
//! trade-off. Starting a search from a ladder anchored at that floor means
//! the explorer begins where the paper's hand analysis ends, instead of
//! wasting budget on provably-infeasible designs.

use edc_power::sizing::{try_required_capacitance, SizingError};
use edc_units::{Farads, Joules, Volts};

/// The Eq. (4) feasibility floor: the smallest capacitance for which a
/// snapshot of cost `e_snapshot` (inflated by `margin`) fits between
/// `v_max` and `v_min` — i.e. the smallest `C` for which
/// [`try_hibernate_threshold`](edc_power::sizing::try_hibernate_threshold)
/// still finds a threshold below `v_max`.
///
/// # Errors
///
/// Propagates [`SizingError`] for non-finite or mis-ordered arguments,
/// and rejects a negative or non-finite `margin`.
pub fn feasible_decoupling_floor(
    e_snapshot: Joules,
    v_min: Volts,
    v_max: Volts,
    margin: f64,
) -> Result<Farads, SizingError> {
    if !(margin.is_finite() && margin >= 0.0) {
        return Err(SizingError::Domain("margin must be ≥ 0 and finite"));
    }
    try_required_capacitance(e_snapshot * (1.0 + margin), v_max, v_min)
}

/// A geometric capacitance ladder for the decoupling axis: `n` values from
/// the Eq. (4) feasibility floor up to `floor × span`, so the search
/// brackets the analytic answer from "barely feasible" to "comfortably
/// oversized".
///
/// # Errors
///
/// Propagates [`feasible_decoupling_floor`]'s errors, and rejects
/// `span ≤ 1` or `n < 2`.
pub fn sizing_seeded_decoupling_axis(
    e_snapshot: Joules,
    v_min: Volts,
    v_max: Volts,
    margin: f64,
    span: f64,
    n: usize,
) -> Result<Vec<Farads>, SizingError> {
    if !(span.is_finite() && span > 1.0) {
        return Err(SizingError::Domain("span must be > 1 and finite"));
    }
    if n < 2 {
        return Err(SizingError::Domain("axis needs at least two values"));
    }
    let floor = feasible_decoupling_floor(e_snapshot, v_min, v_max, margin)?;
    Ok((0..n)
        .map(|i| Farads(floor.0 * span.powf(i as f64 / (n - 1) as f64)))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use edc_power::sizing::try_hibernate_threshold;

    #[test]
    fn floor_is_the_feasibility_boundary() {
        let e = Joules::from_micro(5.0);
        let (v_min, v_max) = (Volts(2.0), Volts(3.6));
        let floor = feasible_decoupling_floor(e, v_min, v_max, 0.0).expect("valid");
        // Just above the floor a threshold exists; just below it does not.
        let above = try_hibernate_threshold(e, Farads(floor.0 * 1.01), v_min, v_max, 0.0)
            .expect("valid arguments");
        assert!(above.is_some());
        let below = try_hibernate_threshold(e, Farads(floor.0 * 0.99), v_min, v_max, 0.0)
            .expect("valid arguments");
        assert!(below.is_none());
    }

    #[test]
    fn ladder_brackets_the_floor_geometrically() {
        let axis = sizing_seeded_decoupling_axis(
            Joules::from_micro(5.0),
            Volts(2.0),
            Volts(3.6),
            0.1,
            16.0,
            5,
        )
        .expect("valid");
        assert_eq!(axis.len(), 5);
        assert!(axis.windows(2).all(|w| w[1] > w[0]), "strictly increasing");
        assert!((axis[4].0 / axis[0].0 - 16.0).abs() < 1e-9, "spans 16×");
        // Constant ratio between neighbours (geometric).
        let r0 = axis[1].0 / axis[0].0;
        let r1 = axis[3].0 / axis[2].0;
        assert!((r0 - r1).abs() < 1e-9);
    }

    #[test]
    fn bad_seed_arguments_are_rejected() {
        let e = Joules::from_micro(5.0);
        assert!(feasible_decoupling_floor(e, Volts(3.6), Volts(2.0), 0.0).is_err());
        assert!(feasible_decoupling_floor(e, Volts(2.0), Volts(3.6), -0.5).is_err());
        assert!(sizing_seeded_decoupling_axis(e, Volts(2.0), Volts(3.6), 0.0, 0.5, 5).is_err());
        assert!(sizing_seeded_decoupling_axis(e, Volts(2.0), Volts(3.6), 0.0, 4.0, 1).is_err());
    }
}
