//! The incremental experiment service: a line-delimited JSON protocol
//! over stdin or TCP, backed by the parallel [`Evaluator`] and an
//! optional persistent [`edc_store::Store`].
//!
//! # Protocol
//!
//! Each request is one JSON object per line. An optional `"id"` field is
//! echoed back verbatim on the matching response, and every response
//! carries `"ok"` plus the request's `"op"`. Requests:
//!
//! - `{"op":"evaluate","spec":{…}}` — score one candidate spec under the
//!   session's objectives. **Evaluate requests batch**: consecutive
//!   evaluate lines accumulate until a blank line, any other op, or
//!   end-of-input flushes them through one parallel evaluator call.
//!   Identical in-flight specs deduplicate — one simulation, N responses.
//!   Each response reports the store key of the canonical spec, the
//!   scores by objective name (non-finite as `"inf"` / `"-inf"` strings,
//!   the store's encoding), and a `"source"`: `simulated` (this batch
//!   ran it), `store` (served by the persistent store), `memo` (served
//!   by the session cache), or `inflight` (deduplicated against an
//!   earlier identical request in the same batch).
//! - `{"op":"search","space":{…axes…}}` — run a full search over a
//!   [`SpecSpace::from_json`] space and return the
//!   [`ExploreReport`](crate::ExploreReport) JSON. Optional fields:
//!   `"searcher"` (`exhaustive-grid`, `random-search`,
//!   `successive-halving`, `coordinate-descent`), `"seed"`/`"samples"`
//!   (random search), `"rounds"` (descent), `"objectives"` (score names:
//!   `completion_s`, `brownouts`, `p99_outage_s`, `energy_per_task_j`),
//!   `"prefilter"` and `"bound"` booleans. The
//!   search shares the session's store, so it warm-starts from — and
//!   enriches — the same evaluation corpus as the evaluate op.
//! - `{"op":"lint","spec":{…}}` — static diagnostics for one spec,
//!   without simulating ([`edc_lint::Linter::lint_spec`]).
//! - `{"op":"fetch","key":"<hex16>"}` — look up stored entries by their
//!   16-hex-digit key hash (collisions return every match; the entry's
//!   `spec` disambiguates).
//! - `{"op":"metrics"}` — the session registry's OpenMetrics text
//!   exposition (deterministic section; wall gauges excluded).
//!
//! Responses stream in request order: a batch's evaluate responses are
//! emitted before any later op's response. Malformed lines produce an
//! `"ok":false` response and the session keeps serving.
//!
//! # Examples
//!
//! ```
//! use edc_core::experiment::ExperimentSpec;
//! use edc_core::scenarios::{SourceKind, StrategyKind};
//! use edc_explore::serve::ServeSession;
//! use edc_units::Seconds;
//! use edc_workloads::WorkloadKind;
//!
//! let spec = ExperimentSpec::new(
//!     SourceKind::Dc { volts: 3.3 },
//!     StrategyKind::Restart,
//!     WorkloadKind::BusyLoop(120),
//! )
//! .deadline(Seconds(1.0));
//! let mut session = ServeSession::new().threads(2);
//! let out = session.serve_text(&format!(
//!     "{{\"id\":1,\"op\":\"evaluate\",\"spec\":{}}}\n",
//!     spec.to_json()
//! ));
//! let line = out.lines().next().unwrap();
//! assert!(line.starts_with(r#"{"id":1,"ok":true,"op":"evaluate""#));
//! assert!(line.contains(r#""source":"simulated""#));
//! ```

use std::collections::{HashMap, HashSet};

use edc_core::catalog::TraceCatalog;
use edc_core::experiment::ExperimentSpec;
use edc_core::json::Json;
use edc_store::{encode_score, hex16, key_hash, parse_hex16, StoreEntry, StoreHandle};
use edc_units::Seconds;

use crate::evaluator::Evaluator;
use crate::objective::Objective;
use crate::search::{CoordinateDescent, ExhaustiveGrid, RandomSearch, Searcher, SuccessiveHalving};
use crate::space::SpecSpace;
use crate::{CompletionTime, EnergyPerTask, Explorer};

/// One batched evaluate request, waiting for the next flush.
struct Pending {
    id: Option<Json>,
    spec: ExperimentSpec,
    /// The raw spec's canonical JSON — the session's dedup/memo key.
    key: String,
}

/// A memoised evaluation: the canonical (evaluator-prepared) spec's
/// store-key hex plus the session objectives' scores.
struct Memoised {
    key_hex: String,
    scores: Vec<f64>,
}

/// One serving session: objectives, catalog, optional store, the session
/// memo, and the current batch of pending evaluate requests.
///
/// Drive it with [`ServeSession::handle_line`] per input line and
/// [`ServeSession::finish`] at end-of-input, or [`ServeSession::serve_text`]
/// for a whole script at once.
pub struct ServeSession {
    objectives: Vec<Box<dyn Objective>>,
    threads: usize,
    catalog: TraceCatalog,
    store: Option<StoreHandle>,
    metrics: edc_metrics::Registry,
    memo: HashMap<String, Memoised>,
    pending: Vec<Pending>,
}

impl ServeSession {
    /// A session scoring with the default objective pair
    /// ([`CompletionTime`], [`EnergyPerTask`]) on the machine's
    /// parallelism, with no store attached and an isolated metrics
    /// registry.
    pub fn new() -> Self {
        Self {
            objectives: vec![Box::new(CompletionTime), Box::new(EnergyPerTask)],
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            catalog: TraceCatalog::new(),
            store: None,
            metrics: edc_metrics::Registry::new(),
            memo: HashMap::new(),
            pending: Vec::new(),
        }
    }

    /// Replaces the session objectives (score order everywhere).
    pub fn objectives(mut self, objectives: Vec<Box<dyn Objective>>) -> Self {
        self.objectives = objectives;
        self
    }

    /// Caps the worker count for batch evaluation and searches. Thread
    /// count never affects responses, only wall-clock time.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    /// Supplies the trace catalog specs and spaces resolve through.
    pub fn catalog(mut self, catalog: TraceCatalog) -> Self {
        self.catalog = catalog;
        self
    }

    /// Attaches a persistent evaluation store: batches consult it before
    /// simulating, write their misses back, and the `fetch` op reads it.
    pub fn store(mut self, store: StoreHandle) -> Self {
        self.store = Some(store);
        self
    }

    /// Routes the session's process metrics into `registry` (the
    /// `metrics` op renders this registry's exposition).
    pub fn metrics(mut self, registry: edc_metrics::Registry) -> Self {
        self.metrics = registry;
        self
    }

    /// Handles one input line, returning zero or more response lines.
    /// Valid evaluate requests enqueue silently (their responses stream
    /// at the next flush); everything else — a blank line, another op, or
    /// a malformed line — flushes the batch first, keeping responses in
    /// request order.
    pub fn handle_line(&mut self, line: &str) -> Vec<String> {
        let line = line.trim();
        if line.is_empty() {
            return self.flush();
        }
        let request = match Json::parse(line) {
            Ok(json) => json,
            Err(e) => {
                let mut out = self.flush();
                out.push(response(
                    &None,
                    None,
                    false,
                    vec![error_field(&format!("invalid JSON: {e}"))],
                ));
                return out;
            }
        };
        let id = request.get("id").cloned();
        let Some(Json::Str(op)) = request.get("op") else {
            let mut out = self.flush();
            out.push(response(
                &id,
                None,
                false,
                vec![error_field("request missing 'op'")],
            ));
            return out;
        };
        let op = op.clone();
        match op.as_str() {
            "evaluate" => match self.parse_evaluate(&request) {
                Ok(pending) => {
                    self.pending.push(Pending { id, ..pending });
                    Vec::new()
                }
                Err(message) => {
                    let mut out = self.flush();
                    out.push(response(
                        &id,
                        Some("evaluate"),
                        false,
                        vec![error_field(&message)],
                    ));
                    out
                }
            },
            "search" => {
                let mut out = self.flush();
                out.push(self.handle_search(&id, &request));
                out
            }
            "lint" => {
                let mut out = self.flush();
                out.push(self.handle_lint(&id, &request));
                out
            }
            "fetch" => {
                let mut out = self.flush();
                out.push(self.handle_fetch(&id, &request));
                out
            }
            "metrics" => {
                let mut out = self.flush();
                out.push(response(
                    &id,
                    Some("metrics"),
                    true,
                    vec![("text", Json::Str(self.metrics.render_text()))],
                ));
                out
            }
            other => {
                let mut out = self.flush();
                out.push(response(
                    &id,
                    Some(other),
                    false,
                    vec![error_field("unknown op")],
                ));
                out
            }
        }
    }

    /// Flushes the pending evaluate batch: deduplicates identical and
    /// memo-hit specs, runs the survivors through one parallel
    /// [`Evaluator::evaluate`] call (store consulted, misses written
    /// back), and returns one response per request, in request order.
    pub fn flush(&mut self) -> Vec<String> {
        if self.pending.is_empty() {
            return Vec::new();
        }
        let pending = std::mem::take(&mut self.pending);
        let memo_before: HashSet<String> = pending
            .iter()
            .filter(|p| self.memo.contains_key(&p.key))
            .map(|p| p.key.clone())
            .collect();
        let mut seen: HashSet<&str> = HashSet::new();
        let mut unique: Vec<&Pending> = Vec::new();
        for p in &pending {
            if !memo_before.contains(&p.key) && seen.insert(p.key.as_str()) {
                unique.push(p);
            }
        }
        // Source of each freshly-resolved key: "store" or "simulated".
        let mut fresh_source: HashMap<String, &'static str> = HashMap::new();
        if !unique.is_empty() {
            let reference_dt = Seconds(
                unique
                    .iter()
                    .map(|p| p.spec.timestep.0)
                    .fold(f64::INFINITY, f64::min),
            );
            let mut eval = Evaluator::new(&self.objectives, self.threads, None, reference_dt)
                .with_catalog(self.catalog.clone())
                .with_metrics(self.metrics.clone());
            if let Some(store) = &self.store {
                eval = eval.with_store(store.clone());
            }
            let specs: Vec<ExperimentSpec> = unique.iter().map(|p| p.spec).collect();
            let evaluations = match eval.evaluate(specs, "serve") {
                Ok(evaluations) => evaluations,
                Err(e) => {
                    let message = format!("{e}");
                    return pending
                        .iter()
                        .map(|p| {
                            response(&p.id, Some("evaluate"), false, vec![error_field(&message)])
                        })
                        .collect();
                }
            };
            let trace = eval.into_trace();
            for ((p, evaluation), entry) in unique.iter().zip(&evaluations).zip(&trace) {
                fresh_source.insert(
                    p.key.clone(),
                    if entry.store_hit {
                        "store"
                    } else {
                        "simulated"
                    },
                );
                self.memo.insert(
                    p.key.clone(),
                    Memoised {
                        key_hex: hex16(key_hash(&evaluation.key)),
                        scores: evaluation.scores.clone(),
                    },
                );
            }
        }
        let mut emitted: HashSet<&str> = HashSet::new();
        pending
            .iter()
            .map(|p| {
                let Some(memoised) = self.memo.get(&p.key) else {
                    return response(
                        &p.id,
                        Some("evaluate"),
                        false,
                        vec![error_field("evaluation produced no result")],
                    );
                };
                let source = if memo_before.contains(&p.key) {
                    "memo"
                } else if emitted.insert(p.key.as_str()) {
                    fresh_source.get(&p.key).copied().unwrap_or("simulated")
                } else {
                    "inflight"
                };
                let scores = Json::Obj(
                    self.objectives
                        .iter()
                        .map(|o| o.name().to_string())
                        .zip(memoised.scores.iter().map(|&s| encode_score(s)))
                        .collect(),
                );
                response(
                    &p.id,
                    Some("evaluate"),
                    true,
                    vec![
                        ("key", Json::Str(memoised.key_hex.clone())),
                        ("scores", scores),
                        ("source", Json::Str(source.into())),
                    ],
                )
            })
            .collect()
    }

    /// Ends the session: flushes the last batch and deterministically
    /// compacts the store (if attached), so two servers fed the same
    /// request script leave byte-identical store files behind.
    pub fn finish(&mut self) -> Vec<String> {
        let mut out = self.flush();
        if let Some(store) = &self.store {
            let mut guard = store
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if let Err(e) = guard.compact() {
                out.push(response(
                    &None,
                    Some("compact"),
                    false,
                    vec![error_field(&format!("{e}"))],
                ));
            }
        }
        out
    }

    /// Serves a whole newline-delimited request script (ending with
    /// [`ServeSession::finish`]) and returns the concatenated response
    /// stream, one response per line — the stdin mode of `edc_serve`, and
    /// the function its golden test pins.
    pub fn serve_text(&mut self, input: &str) -> String {
        let mut out = String::new();
        for line in input.lines() {
            for r in self.handle_line(line) {
                out.push_str(&r);
                out.push('\n');
            }
        }
        for r in self.finish() {
            out.push_str(&r);
            out.push('\n');
        }
        out
    }

    fn parse_evaluate(&self, request: &Json) -> Result<Pending, String> {
        let spec_json = request.get("spec").ok_or("evaluate missing 'spec'")?;
        let spec = ExperimentSpec::from_json(spec_json, &self.catalog)?;
        spec.validate_in(&self.catalog)
            .map_err(|e| format!("{e}"))?;
        if !(spec.deadline.0 > 0.0 && spec.deadline.0.is_finite()) {
            return Err(format!("invalid deadline: {}", spec.deadline.0));
        }
        let key = spec.to_json().to_string();
        Ok(Pending {
            id: None,
            spec,
            key,
        })
    }

    fn handle_search(&self, id: &Option<Json>, request: &Json) -> String {
        let fail = |message: &str| response(id, Some("search"), false, vec![error_field(message)]);
        let Some(space_json) = request.get("space") else {
            return fail("search missing 'space'");
        };
        let space = match SpecSpace::from_json(space_json, &self.catalog) {
            Ok(space) => space,
            Err(e) => return fail(e),
        };
        let uint = |key: &str, default: u64| match request.get(key) {
            Some(Json::Uint(u)) => Some(*u),
            None => Some(default),
            _ => None,
        };
        let searcher: Box<dyn Searcher> = match request.get("searcher") {
            None => Box::new(ExhaustiveGrid),
            Some(Json::Str(name)) => match name.as_str() {
                "exhaustive-grid" => Box::new(ExhaustiveGrid),
                "random-search" => {
                    let (Some(seed), Some(samples)) = (uint("seed", 0), uint("samples", 16)) else {
                        return fail("'seed' and 'samples' must be unsigned integers");
                    };
                    Box::new(RandomSearch::new(seed, samples as usize))
                }
                "successive-halving" => Box::new(SuccessiveHalving::new()),
                "coordinate-descent" => {
                    let Some(rounds) = uint("rounds", 3) else {
                        return fail("'rounds' must be an unsigned integer");
                    };
                    Box::new(CoordinateDescent::new(rounds as usize))
                }
                _ => return fail("unknown searcher"),
            },
            Some(_) => return fail("'searcher' must be a string"),
        };
        let names: Vec<String> = match request.get("objectives") {
            None => self
                .objectives
                .iter()
                .map(|o| o.name().to_string())
                .collect(),
            Some(Json::Arr(items)) => {
                let mut names = Vec::with_capacity(items.len());
                for item in items {
                    match item {
                        Json::Str(name) => names.push(name.clone()),
                        _ => return fail("objective names must be strings"),
                    }
                }
                names
            }
            Some(_) => return fail("'objectives' must be an array of names"),
        };
        let flag = |key: &str| matches!(request.get(key), Some(Json::Bool(true)));
        let mut explorer = Explorer::new()
            .catalog(self.catalog.clone())
            .threads(self.threads)
            .metrics(self.metrics.clone())
            .prefilter(flag("prefilter"))
            .bound(flag("bound"));
        for name in &names {
            explorer = match name.as_str() {
                "completion_s" => explorer.objective(CompletionTime),
                "brownouts" => explorer.objective(crate::BrownoutCount),
                "p99_outage_s" => explorer.objective(crate::P99Outage),
                "energy_per_task_j" => explorer.objective(EnergyPerTask),
                _ => return fail("unknown objective name"),
            };
        }
        if let Some(store) = &self.store {
            explorer = explorer.store(store.clone());
        }
        match explorer.run(&space, searcher.as_ref()) {
            Ok(report) => response(id, Some("search"), true, vec![("report", report.to_json())]),
            Err(e) => fail(&format!("{e}")),
        }
    }

    fn handle_lint(&self, id: &Option<Json>, request: &Json) -> String {
        let Some(spec_json) = request.get("spec") else {
            return response(
                id,
                Some("lint"),
                false,
                vec![error_field("lint missing 'spec'")],
            );
        };
        let spec = match ExperimentSpec::from_json(spec_json, &self.catalog) {
            Ok(spec) => spec,
            Err(e) => return response(id, Some("lint"), false, vec![error_field(e)]),
        };
        let report = edc_lint::Linter::with_catalog(self.catalog.clone()).lint_spec(&spec);
        response(id, Some("lint"), true, vec![("report", report.to_json())])
    }

    fn handle_fetch(&self, id: &Option<Json>, request: &Json) -> String {
        let fail = |message: &str| response(id, Some("fetch"), false, vec![error_field(message)]);
        let Some(store) = &self.store else {
            return fail("no store attached");
        };
        let Some(Json::Str(key)) = request.get("key") else {
            return fail("fetch missing 'key'");
        };
        let Some(hash) = parse_hex16(key) else {
            return fail("'key' is not a 16-hex-digit hash");
        };
        let guard = store
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let entries = Json::Arr(
            guard
                .get_by_hash(hash)
                .into_iter()
                .map(entry_json)
                .collect(),
        );
        response(id, Some("fetch"), true, vec![("entries", entries)])
    }
}

impl Default for ServeSession {
    fn default() -> Self {
        Self::new()
    }
}

/// One stored entry as response JSON: key, spec, report, encoded scores,
/// and cost — the `fetch` op's payload shape.
fn entry_json(entry: &StoreEntry) -> Json {
    Json::obj(vec![
        ("key", Json::Str(hex16(entry.hash()))),
        ("spec", Json::parse(&entry.spec_json).unwrap_or(Json::Null)),
        ("report", entry.report.clone()),
        (
            "scores",
            Json::Obj(
                entry
                    .scores
                    .iter()
                    .map(|(name, &score)| (name.clone(), encode_score(score)))
                    .collect(),
            ),
        ),
        ("cost", Json::Num(entry.cost)),
    ])
}

fn error_field(message: &str) -> (&'static str, Json) {
    ("error", Json::Str(message.to_string()))
}

/// Builds one response line: `id` (echoed when the request carried one),
/// `ok`, `op`, then the payload fields, in that order.
fn response(
    id: &Option<Json>,
    op: Option<&str>,
    ok: bool,
    payload: Vec<(&'static str, Json)>,
) -> String {
    let mut fields = Vec::with_capacity(payload.len() + 3);
    if let Some(id) = id {
        fields.push(("id", id.clone()));
    }
    fields.push(("ok", Json::Bool(ok)));
    if let Some(op) = op {
        fields.push(("op", Json::Str(op.to_string())));
    }
    fields.extend(payload);
    Json::obj(fields).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use edc_core::scenarios::{SourceKind, StrategyKind};
    use edc_workloads::WorkloadKind;

    fn spec() -> ExperimentSpec {
        ExperimentSpec::new(
            SourceKind::Dc { volts: 3.3 },
            StrategyKind::Restart,
            WorkloadKind::BusyLoop(150),
        )
        .deadline(Seconds(1.0))
    }

    fn evaluate_line(id: u64, spec: &ExperimentSpec) -> String {
        format!(r#"{{"id":{id},"op":"evaluate","spec":{}}}"#, spec.to_json())
    }

    #[test]
    fn identical_inflight_requests_simulate_once_and_answer_all() {
        let registry = edc_metrics::Registry::new();
        let mut session = ServeSession::new().threads(2).metrics(registry.clone());
        let mut input = String::new();
        for id in 0..4 {
            input.push_str(&evaluate_line(id, &spec()));
            input.push('\n');
        }
        let out = session.serve_text(&input);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4, "one response per request");
        assert!(lines[0].contains(r#""source":"simulated""#));
        for line in &lines[1..] {
            assert!(line.contains(r#""source":"inflight""#), "{line}");
        }
        // One simulation total, pinned by the runner-boot counter.
        let text = registry.render_text();
        assert!(
            text.contains("edc_sweep_cells_total 1"),
            "exactly one cell simulated:\n{text}"
        );
    }

    #[test]
    fn later_batches_hit_the_session_memo() {
        let mut session = ServeSession::new().threads(1);
        let first = session.handle_line(&evaluate_line(1, &spec()));
        assert!(first.is_empty(), "batched, not answered yet");
        let flushed = session.handle_line("");
        assert_eq!(flushed.len(), 1);
        assert!(flushed[0].contains(r#""source":"simulated""#));
        let again = session.handle_line(&evaluate_line(2, &spec()));
        assert!(again.is_empty());
        let flushed = session.handle_line("");
        assert!(flushed[0].contains(r#""source":"memo""#), "{}", flushed[0]);
    }

    #[test]
    fn store_round_trip_serves_warm_and_fetches_by_key() {
        let dir = std::env::temp_dir().join("edc-serve-test-store");
        let _ = std::fs::remove_dir_all(&dir);
        let store = edc_store::Store::open(&dir).expect("open").into_handle();
        let mut cold = ServeSession::new().threads(1).store(store);
        let out = cold.serve_text(&evaluate_line(1, &spec()));
        assert!(out
            .lines()
            .next()
            .unwrap()
            .contains(r#""source":"simulated""#));
        let key = Json::parse(out.lines().next().unwrap())
            .ok()
            .and_then(|j| j.get("key").cloned())
            .expect("response carries a key");

        // A fresh session over a reopened store answers from the store.
        let store = edc_store::Store::open(&dir).expect("reopen").into_handle();
        let mut warm = ServeSession::new().threads(1).store(store);
        let input = format!(
            "{}\n\n{{\"id\":9,\"op\":\"fetch\",\"key\":{key}}}\n",
            evaluate_line(2, &spec())
        );
        let out = warm.serve_text(&input);
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].contains(r#""source":"store""#), "{}", lines[0]);
        assert!(lines[1].starts_with(r#"{"id":9,"ok":true,"op":"fetch""#));
        assert!(lines[1].contains(r#""cost":"#));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn search_op_returns_a_report_and_shares_the_store() {
        let dir = std::env::temp_dir().join("edc-serve-test-search");
        let _ = std::fs::remove_dir_all(&dir);
        let store = edc_store::Store::open(&dir).expect("open").into_handle();
        let space =
            SpecSpace::over(spec()).strategies(&[StrategyKind::Restart, StrategyKind::Hibernus]);
        let request = format!(
            r#"{{"id":1,"op":"search","searcher":"exhaustive-grid","space":{}}}"#,
            space.axes_json()
        );
        let mut session = ServeSession::new().threads(1).store(store.clone());
        let out = session.serve_text(&format!("{request}\n"));
        let report = Json::parse(out.lines().next().unwrap()).expect("response JSON");
        assert_eq!(report.get("ok"), Some(&Json::Bool(true)));
        let evaluations = report.get("report").and_then(|r| r.get("evaluations"));
        assert_eq!(evaluations, Some(&Json::Uint(2)));

        // The same search in the same session warm-starts from the store.
        let mut warm = ServeSession::new().threads(1).store(store);
        let warm_out = warm.serve_text(&format!("{request}\n"));
        let warm_report = Json::parse(warm_out.lines().next().unwrap()).expect("JSON");
        assert_eq!(
            warm_report.get("report").and_then(|r| r.get("evaluations")),
            Some(&Json::Uint(0)),
            "warm search simulates nothing"
        );
        assert_eq!(
            warm_report.get("report").and_then(|r| r.get("front")),
            report.get("report").and_then(|r| r.get("front")),
            "warm front is identical"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_lines_and_unknown_ops_answer_without_killing_the_session() {
        let mut session = ServeSession::new().threads(1);
        let out = session.handle_line("{not json");
        assert_eq!(out.len(), 1);
        assert!(out[0].contains(r#""ok":false"#));
        let out = session.handle_line(r#"{"id":3,"op":"warp"}"#);
        assert!(out[0].starts_with(r#"{"id":3,"ok":false,"op":"warp""#));
        let out = session.handle_line(r#"{"op":"evaluate"}"#);
        assert!(out[0].contains("missing 'spec'"));
        // Still serves afterwards.
        let out = session.serve_text(&evaluate_line(4, &spec()));
        assert!(out.lines().next().unwrap().contains(r#""ok":true"#));
    }

    #[test]
    fn lint_and_metrics_ops_answer_in_shape() {
        let mut session = ServeSession::new().threads(1);
        let line = format!(r#"{{"id":1,"op":"lint","spec":{}}}"#, spec().to_json());
        let out = session.handle_line(&line);
        assert!(out[0].starts_with(r#"{"id":1,"ok":true,"op":"lint""#));
        assert!(out[0].contains(r#""report""#));
        // After an evaluation the exposition carries real counters.
        let out = session.serve_text(&format!(
            "{}\n{{\"op\":\"metrics\"}}\n",
            evaluate_line(2, &spec())
        ));
        let metrics_line = out.lines().nth(1).expect("metrics response");
        assert!(metrics_line.contains(r#""ok":true,"op":"metrics""#));
        assert!(metrics_line.contains("# HELP"));
    }
}
