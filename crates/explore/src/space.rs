//! The typed design space: axes over [`ExperimentSpec`].
//!
//! A [`SpecSpace`] is a base spec plus one value list per *axis* — the
//! spec fields the paper's co-design questions vary: source, workload and
//! strategy kinds, decoupling capacitance, simulation timestep, and board
//! leakage. Every combination of axis values is one candidate design,
//! addressed either by a [`Point`] (one index per axis) or by a flat index
//! in the deterministic enumeration order (source-major, then workload,
//! strategy, decoupling, timestep, leakage — the sweep engine's order,
//! extended).
//!
//! The space is *description*, not computation: searchers decide which of
//! its points to evaluate.

use edc_core::catalog::TraceCatalog;
use edc_core::experiment::ExperimentSpec;
use edc_core::scenarios::{SourceKind, StrategyKind};
use edc_units::{Farads, Ohms, Seconds};
use edc_workloads::WorkloadKind;

use crate::ExploreError;

/// Number of axes in a [`SpecSpace`].
pub const AXES: usize = 6;

/// Human-readable axis names, in axis order.
pub const AXIS_NAMES: [&str; AXES] = [
    "source",
    "workload",
    "strategy",
    "decoupling",
    "timestep",
    "leakage",
];

/// One candidate design's position: an index into each axis, in
/// [`AXIS_NAMES`] order.
pub type Point = [usize; AXES];

/// A cartesian design space over [`ExperimentSpec`] axes.
///
/// # Examples
///
/// ```
/// use edc_core::experiment::ExperimentSpec;
/// use edc_core::scenarios::{SourceKind, StrategyKind};
/// use edc_explore::SpecSpace;
/// use edc_units::Farads;
/// use edc_workloads::WorkloadKind;
///
/// let base = ExperimentSpec::new(
///     SourceKind::RectifiedSine { hz: 50.0 },
///     StrategyKind::Hibernus,
///     WorkloadKind::Crc16(64),
/// );
/// let space = SpecSpace::over(base)
///     .strategies(&[StrategyKind::Restart, StrategyKind::Hibernus])
///     .decoupling(&[Farads::from_micro(4.7), Farads::from_micro(10.0)]);
/// assert_eq!(space.len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct SpecSpace {
    base: ExperimentSpec,
    sources: Vec<SourceKind>,
    workloads: Vec<WorkloadKind>,
    strategies: Vec<StrategyKind>,
    decoupling: Vec<Farads>,
    timesteps: Vec<Seconds>,
    leakages: Vec<Option<Ohms>>,
}

impl SpecSpace {
    /// A space whose axes all start as the base spec's own values — a
    /// single point until widened with the axis setters.
    pub fn over(base: ExperimentSpec) -> Self {
        Self {
            sources: vec![base.source],
            workloads: vec![base.workload],
            strategies: vec![base.strategy],
            decoupling: vec![base.decoupling],
            timesteps: vec![base.timestep],
            leakages: vec![base.leakage],
            base,
        }
    }

    /// Sets the source axis.
    pub fn sources(mut self, axis: &[SourceKind]) -> Self {
        self.sources = axis.to_vec();
        self
    }

    /// Sets the workload axis.
    pub fn workloads(mut self, axis: &[WorkloadKind]) -> Self {
        self.workloads = axis.to_vec();
        self
    }

    /// Sets the strategy axis.
    pub fn strategies(mut self, axis: &[StrategyKind]) -> Self {
        self.strategies = axis.to_vec();
        self
    }

    /// Sets the decoupling-capacitance axis.
    pub fn decoupling(mut self, axis: &[Farads]) -> Self {
        self.decoupling = axis.to_vec();
        self
    }

    /// Sets the simulation-timestep axis.
    pub fn timesteps(mut self, axis: &[Seconds]) -> Self {
        self.timesteps = axis.to_vec();
        self
    }

    /// Sets the board-leakage axis (`None` = no leakage path).
    pub fn leakages(mut self, axis: &[Option<Ohms>]) -> Self {
        self.leakages = axis.to_vec();
        self
    }

    /// The base spec the axes modify.
    pub fn base(&self) -> &ExperimentSpec {
        &self.base
    }

    /// Axis sizes, in [`AXIS_NAMES`] order.
    pub fn dims(&self) -> Point {
        [
            self.sources.len(),
            self.workloads.len(),
            self.strategies.len(),
            self.decoupling.len(),
            self.timesteps.len(),
            self.leakages.len(),
        ]
    }

    /// Total number of candidate designs (the product of axis sizes).
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.dims().iter().product()
    }

    /// The finest (smallest) timestep on the timestep axis — the space's
    /// full-fidelity evaluation cost reference.
    pub fn finest_timestep(&self) -> Seconds {
        Seconds(
            self.timesteps
                .iter()
                .map(|t| t.0)
                .fold(f64::INFINITY, f64::min),
        )
    }

    /// Checks that every axis is non-empty and every axis value passes the
    /// spec registry's own validation, so a search never trips a
    /// `BuildError` mid-run. Axis values are independent spec fields, so
    /// checking each value once (against the base) covers the whole
    /// cartesian product. The base deadline is checked here too, because
    /// `ExperimentSpec::validate` leaves it to `run`.
    ///
    /// # Errors
    ///
    /// Returns the first empty axis or the first invalid axis value.
    pub fn validate(&self) -> Result<(), ExploreError> {
        self.validate_probes(None)
    }

    /// [`SpecSpace::validate`], plus resolution of every trace-backed
    /// source-axis value against `catalog` — so a search over registered
    /// recordings fails up front, as a value, when a handle belongs to a
    /// different catalog.
    ///
    /// # Errors
    ///
    /// Returns the first empty axis or the first invalid axis value.
    pub fn validate_in(&self, catalog: &TraceCatalog) -> Result<(), ExploreError> {
        self.validate_probes(Some(catalog))
    }

    fn validate_probes(&self, catalog: Option<&TraceCatalog>) -> Result<(), ExploreError> {
        let dims = self.dims();
        for (axis, &n) in dims.iter().enumerate() {
            if n == 0 {
                return Err(ExploreError::EmptyAxis(AXIS_NAMES[axis]));
            }
        }
        if !(self.base.deadline.0 > 0.0 && self.base.deadline.0.is_finite()) {
            return Err(ExploreError::Build(
                edc_core::experiment::BuildError::InvalidDeadline(self.base.deadline.0),
            ));
        }
        for i in 0..dims.iter().max().copied().unwrap_or(0) {
            let mut probe = [0usize; AXES];
            for (axis, p) in probe.iter_mut().enumerate() {
                *p = i.min(dims[axis] - 1);
            }
            let spec = self.spec(probe);
            match catalog {
                Some(catalog) => spec.validate_in(catalog)?,
                None => spec.validate()?,
            }
        }
        Ok(())
    }

    /// The spec at a [`Point`].
    ///
    /// # Panics
    ///
    /// Panics if any index is out of its axis's range.
    pub fn spec(&self, point: Point) -> ExperimentSpec {
        let mut spec = self
            .base
            .source(self.sources[point[0]])
            .workload(self.workloads[point[1]])
            .strategy(self.strategies[point[2]])
            .decoupling(self.decoupling[point[3]])
            .timestep(self.timesteps[point[4]]);
        spec.leakage = self.leakages[point[5]];
        spec
    }

    /// The spec at a flat enumeration index.
    ///
    /// # Panics
    ///
    /// Panics if `flat >= self.len()`.
    pub fn spec_at(&self, flat: usize) -> ExperimentSpec {
        self.spec(self.point_of(flat))
    }

    /// Converts a flat enumeration index into a [`Point`]
    /// (source-major order, leakage fastest).
    ///
    /// # Panics
    ///
    /// Panics if `flat >= self.len()`.
    pub fn point_of(&self, flat: usize) -> Point {
        assert!(flat < self.len(), "flat index out of range");
        let dims = self.dims();
        let mut rem = flat;
        let mut point = [0usize; AXES];
        for axis in (0..AXES).rev() {
            point[axis] = rem % dims[axis];
            rem /= dims[axis];
        }
        point
    }

    /// Converts a [`Point`] into its flat enumeration index.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of its axis's range.
    pub fn flat_of(&self, point: Point) -> usize {
        let dims = self.dims();
        let mut flat = 0usize;
        for axis in 0..AXES {
            assert!(point[axis] < dims[axis], "axis index out of range");
            flat = flat * dims[axis] + point[axis];
        }
        flat
    }

    /// Every candidate spec, in flat enumeration order.
    pub fn all_specs(&self) -> Vec<ExperimentSpec> {
        (0..self.len()).map(|i| self.spec_at(i)).collect()
    }

    /// The space's full axis values as a JSON value. Unlike
    /// [`SpecSpace::to_json`] — a lossy report header carrying only axis
    /// *sizes* — this codec is invertible by [`SpecSpace::from_json`], so
    /// a design space can travel over the wire (the `edc_serve` `search`
    /// op) or live in a config file.
    ///
    /// ```
    /// use edc_core::catalog::TraceCatalog;
    /// use edc_core::experiment::ExperimentSpec;
    /// use edc_core::scenarios::{SourceKind, StrategyKind};
    /// use edc_explore::SpecSpace;
    /// use edc_units::Farads;
    /// use edc_workloads::WorkloadKind;
    ///
    /// let base = ExperimentSpec::new(
    ///     SourceKind::Dc { volts: 3.3 },
    ///     StrategyKind::Restart,
    ///     WorkloadKind::Crc16(64),
    /// );
    /// let space = SpecSpace::over(base)
    ///     .strategies(&[StrategyKind::Restart, StrategyKind::Hibernus])
    ///     .decoupling(&[Farads::from_micro(4.7), Farads::from_micro(10.0)]);
    /// let round = SpecSpace::from_json(&space.axes_json(), &TraceCatalog::new())?;
    /// assert_eq!(round.axes_json().to_string(), space.axes_json().to_string());
    /// assert_eq!(round.len(), 4);
    /// # Ok::<(), &'static str>(())
    /// ```
    pub fn axes_json(&self) -> edc_core::json::Json {
        use edc_core::json::Json;
        Json::obj(vec![
            ("base", self.base.to_json()),
            (
                "sources",
                Json::Arr(self.sources.iter().map(|s| s.to_json()).collect()),
            ),
            (
                "workloads",
                Json::Arr(
                    self.workloads
                        .iter()
                        .map(edc_core::experiment::workload_to_json)
                        .collect(),
                ),
            ),
            (
                "strategies",
                Json::Arr(
                    self.strategies
                        .iter()
                        .map(|s| Json::Str(s.name().into()))
                        .collect(),
                ),
            ),
            (
                "decoupling_f",
                Json::Arr(self.decoupling.iter().map(|f| Json::Num(f.0)).collect()),
            ),
            (
                "timestep_s",
                Json::Arr(self.timesteps.iter().map(|t| Json::Num(t.0)).collect()),
            ),
            (
                "leakage_ohm",
                Json::Arr(
                    self.leakages
                        .iter()
                        .map(|l| Json::option(*l, |r| Json::Num(r.0)))
                        .collect(),
                ),
            ),
        ])
    }

    /// Rebuilds a space from [`SpecSpace::axes_json`] output, resolving
    /// trace-backed sources through `catalog`. A missing axis key leaves
    /// that axis at the base spec's own value, exactly like
    /// [`SpecSpace::over`] — so a request may name only the axes it
    /// varies. Parsing is shape-only: the result may still fail
    /// [`SpecSpace::validate_in`], which callers run separately.
    ///
    /// # Errors
    ///
    /// Returns the first shape mismatch, unknown kind name, or trace
    /// reference the catalog does not hold.
    pub fn from_json(
        json: &edc_core::json::Json,
        catalog: &TraceCatalog,
    ) -> Result<Self, &'static str> {
        use edc_core::json::Json;
        let num = |j: &Json| match j {
            Json::Num(n) => Some(*n),
            Json::Uint(u) => Some(*u as f64),
            _ => None,
        };
        let axis = |key: &'static str| match json.get(key) {
            None => Ok(None),
            Some(Json::Arr(items)) => Ok(Some(items)),
            Some(_) => Err("axis is not an array"),
        };
        let base =
            ExperimentSpec::from_json(json.get("base").ok_or("space missing 'base'")?, catalog)?;
        let mut space = SpecSpace::over(base);
        if let Some(items) = axis("sources")? {
            space.sources = items
                .iter()
                .map(|j| SourceKind::from_json(j, catalog))
                .collect::<Result<_, _>>()?;
        }
        if let Some(items) = axis("workloads")? {
            space.workloads = items
                .iter()
                .map(edc_core::experiment::workload_from_json)
                .collect::<Result<_, _>>()?;
        }
        if let Some(items) = axis("strategies")? {
            space.strategies = items
                .iter()
                .map(|j| match j {
                    Json::Str(name) => StrategyKind::from_name(name).ok_or("unknown strategy name"),
                    _ => Err("strategy axis value is not a string"),
                })
                .collect::<Result<_, _>>()?;
        }
        if let Some(items) = axis("decoupling_f")? {
            space.decoupling = items
                .iter()
                .map(|j| {
                    num(j)
                        .map(Farads)
                        .ok_or("decoupling axis value is not a number")
                })
                .collect::<Result<_, _>>()?;
        }
        if let Some(items) = axis("timestep_s")? {
            space.timesteps = items
                .iter()
                .map(|j| {
                    num(j)
                        .map(Seconds)
                        .ok_or("timestep axis value is not a number")
                })
                .collect::<Result<_, _>>()?;
        }
        if let Some(items) = axis("leakage_ohm")? {
            space.leakages = items
                .iter()
                .map(|j| match j {
                    Json::Null => Ok(None),
                    other => num(other)
                        .map(|r| Some(Ohms(r)))
                        .ok_or("leakage axis value is not a number or null"),
                })
                .collect::<Result<_, _>>()?;
        }
        Ok(space)
    }

    /// The space's axes as a JSON value (sizes plus the base spec), for
    /// [`ExploreReport`](crate::ExploreReport) headers.
    pub fn to_json(&self) -> edc_core::json::Json {
        use edc_core::json::Json;
        let dims = self.dims();
        Json::obj(vec![
            ("size", Json::Uint(self.len() as u64)),
            (
                "axes",
                Json::obj(
                    AXIS_NAMES
                        .iter()
                        .zip(dims)
                        .map(|(name, n)| (*name, Json::Uint(n as u64)))
                        .collect(),
                ),
            ),
            ("base", self.base.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> ExperimentSpec {
        ExperimentSpec::new(
            SourceKind::Dc { volts: 3.3 },
            StrategyKind::Restart,
            WorkloadKind::BusyLoop(100),
        )
    }

    #[test]
    fn single_point_space_is_the_base() {
        let space = SpecSpace::over(base());
        assert_eq!(space.len(), 1);
        assert_eq!(space.spec_at(0), base());
    }

    #[test]
    fn flat_and_point_round_trip() {
        let space = SpecSpace::over(base())
            .strategies(&[StrategyKind::Restart, StrategyKind::Hibernus])
            .decoupling(&[
                Farads::from_micro(4.7),
                Farads::from_micro(10.0),
                Farads::from_micro(22.0),
            ])
            .leakages(&[None, Some(Ohms(100_000.0))]);
        assert_eq!(space.len(), 12);
        for flat in 0..space.len() {
            assert_eq!(space.flat_of(space.point_of(flat)), flat);
        }
        // Leakage is the fastest axis, strategies the slowest varied one.
        assert_eq!(space.spec_at(0).leakage, None);
        assert_eq!(space.spec_at(1).leakage, Some(Ohms(100_000.0)));
        assert_eq!(space.spec_at(0).strategy, StrategyKind::Restart);
        assert_eq!(space.spec_at(6).strategy, StrategyKind::Hibernus);
    }

    #[test]
    fn enumeration_covers_every_combination_once() {
        let space = SpecSpace::over(base())
            .strategies(&[StrategyKind::Restart, StrategyKind::Hibernus])
            .timesteps(&[Seconds(20e-6), Seconds(80e-6)]);
        let specs = space.all_specs();
        assert_eq!(specs.len(), 4);
        let mut keys: Vec<String> = specs.iter().map(|s| s.to_json().to_string()).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 4, "all enumerated specs are distinct");
    }

    #[test]
    fn validation_rejects_empty_axes_and_bad_values() {
        let empty = SpecSpace::over(base()).strategies(&[]);
        assert!(matches!(
            empty.validate(),
            Err(ExploreError::EmptyAxis("strategy"))
        ));
        let bad = SpecSpace::over(base()).decoupling(&[Farads(-1.0)]);
        assert!(bad.validate().is_err());
        // The deadline is only checked by ExperimentSpec::run, so the
        // space must gate it up front or every searcher batch would fail.
        let dead = SpecSpace::over(base().deadline(Seconds(0.0)));
        assert!(matches!(
            dead.validate(),
            Err(ExploreError::Build(
                edc_core::experiment::BuildError::InvalidDeadline(_)
            ))
        ));
        assert!(SpecSpace::over(base()).validate().is_ok());
    }

    #[test]
    fn axes_json_round_trips_and_defaults_missing_axes() {
        let space = SpecSpace::over(base())
            .strategies(&[StrategyKind::Restart, StrategyKind::Hibernus])
            .workloads(&[WorkloadKind::Crc16(32), WorkloadKind::Fourier(64)])
            .decoupling(&[Farads::from_micro(4.7), Farads::from_micro(10.0)])
            .timesteps(&[Seconds(20e-6), Seconds(80e-6)])
            .leakages(&[None, Some(Ohms(100_000.0))]);
        let catalog = TraceCatalog::new();
        let round = SpecSpace::from_json(&space.axes_json(), &catalog).expect("round trip");
        assert_eq!(round.axes_json().to_string(), space.axes_json().to_string());
        let specs: Vec<String> = space
            .all_specs()
            .iter()
            .map(|s| s.to_json().to_string())
            .collect();
        let round_specs: Vec<String> = round
            .all_specs()
            .iter()
            .map(|s| s.to_json().to_string())
            .collect();
        assert_eq!(specs, round_specs);

        // Missing axis keys fall back to the base's own value, like over().
        let sparse = edc_core::json::Json::obj(vec![("base", base().to_json())]);
        let single = SpecSpace::from_json(&sparse, &catalog).expect("base only");
        assert_eq!(single.len(), 1);
        assert_eq!(single.spec_at(0), base());

        assert!(SpecSpace::from_json(&edc_core::json::Json::Null, &catalog).is_err());
        let bad = edc_core::json::Json::obj(vec![
            ("base", base().to_json()),
            (
                "strategies",
                edc_core::json::Json::Arr(vec![edc_core::json::Json::Str("warp".into())]),
            ),
        ]);
        assert!(matches!(
            SpecSpace::from_json(&bad, &catalog),
            Err("unknown strategy name")
        ));
    }

    #[test]
    fn finest_timestep_is_the_minimum() {
        let space = SpecSpace::over(base()).timesteps(&[Seconds(80e-6), Seconds(20e-6)]);
        assert_eq!(space.finest_timestep(), Seconds(20e-6));
    }
}
