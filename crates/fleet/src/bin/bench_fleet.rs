//! Fleet benchmark: duty-cycle coverage vs. population size over one
//! shared harvest field.
//!
//! The scenario is the sizing question the fleet layer exists to answer:
//! *how many mementos sense-pipeline nodes does a 50 Hz rectified-sine field
//! need to cover a 1 Hz sensing duty cycle?* The bench scales one design from
//! 1 to 16 nodes along a line placement (full strength down to 75%) with a
//! 4 ms phase stagger, then replays the same design against a recorded
//! power trace of the field, which registers itself in a `TraceCatalog`
//! and runs through the same spec-driven `run_specs` path.
//!
//! `BENCH_fleet.json` layout: the deterministic `FleetReport` sections
//! (byte-diffable between commits) plus wall-clock timing per fleet size
//! (non-deterministic, kept outside the reports).
//!
//! Run: `cargo run --release -p edc-fleet --bin bench_fleet`
//! Output path override: `bench_fleet <path>` (default `BENCH_fleet.json`
//! in the working directory).
//!
//! `--store DIR` additionally persists every node's `(spec, report)`
//! pair into an `edc-store` evaluation store — fleets are pure
//! *producers*: store consumers (the explore evaluator, `edc_serve`) can
//! then serve these per-node designs without re-simulating. The flag
//! also hard-asserts both report sections byte-identical to the
//! committed cold `BENCH_fleet.json`, pinning that persistence never
//! perturbs the runs themselves.

use std::collections::BTreeMap;
use std::time::Instant;

use edc_bench::{banner, TextTable};
use edc_core::catalog::TraceCatalog;
use edc_core::experiment::ExperimentSpec;
use edc_core::fleet::{FieldSpec, FleetSpec, Placement};
use edc_core::json::Json;
use edc_core::scenarios::{FieldEnvelope, SourceKind, StrategyKind};
use edc_core::TelemetryKind;
use edc_fleet::{Fleet, FleetReport};
use edc_store::Store;
use edc_units::{Farads, Seconds};
use edc_workloads::WorkloadKind;

/// The per-node design every fleet in the bench deploys: a Mementos
/// sense→filter→transmit node whose 47 µF decoupling funds the ADC and
/// radio bursts. Verified single-node task latency on this field runs
/// ≈ 1–4 s depending on placement (weak placements do not finish at all),
/// so a 1 Hz duty cycle genuinely needs a fleet.
fn design() -> ExperimentSpec {
    ExperimentSpec::new(
        SourceKind::Dc { volts: 3.3 }, // replaced by each node's field view
        StrategyKind::Mementos,
        WorkloadKind::SensePipeline {
            windows: 256,
            samples: 16,
        },
    )
    .decoupling(Farads::from_micro(47.0))
    .deadline(Seconds(6.0))
    .telemetry(TelemetryKind::Stats)
}

/// A fleet of `nodes` over the shared 50 Hz rectified-sine field.
fn envelope_fleet(nodes: usize) -> FleetSpec {
    FleetSpec::new(
        FieldSpec::Envelope(FieldEnvelope::RectifiedSine { hz: 50.0 }),
        design(),
        nodes,
    )
    .placement(Placement::Line {
        near: 1.0,
        far: 0.75,
    })
    .stagger(Seconds(0.004))
    .duty_period(Seconds(1.0))
}

/// A synthetic recorded power trace of the same field class: one mains
/// cycle's harvested power, sampled at 1 ms and looped. Deterministic, so
/// the artifact stays byte-diffable.
fn trace_fleet(nodes: usize) -> FleetSpec {
    let samples: Vec<(f64, f64)> = (0..20)
        .map(|i| {
            let t = i as f64 * 1e-3;
            let phase = (i as f64 / 20.0) * std::f64::consts::TAU;
            // Half-wave rectified sine, scaled to a few milliwatts.
            (t, 8e-3 * phase.sin().max(0.0))
        })
        .collect();
    FleetSpec::new(
        FieldSpec::PowerTrace {
            name: "mains-cycle".into(),
            samples,
            looping: true,
        },
        design(),
        nodes,
    )
    .placement(Placement::Line {
        near: 1.0,
        far: 0.75,
    })
    .stagger(Seconds(0.004))
    .duty_period(Seconds(1.0))
}

fn run(spec: FleetSpec) -> (FleetReport, f64) {
    let started = Instant::now();
    let report = Fleet::new(spec).run().unwrap_or_else(|e| {
        eprintln!("fleet failed to assemble: {e}");
        std::process::exit(1);
    });
    (report, started.elapsed().as_secs_f64())
}

fn main() {
    let args = edc_bench::bench_args("BENCH_fleet.json");
    let path = args.path.clone();

    let sizes = [1usize, 2, 4, 8, 16];
    let mut scaling: Vec<(usize, FleetReport, f64)> = Vec::new();
    for &n in &sizes {
        let (report, wall_s) = run(envelope_fleet(n));
        scaling.push((n, report, wall_s));
    }
    let (trace_report, trace_s) = run(trace_fleet(8));

    banner("Fleet scaling: 50 Hz rectified-sine field, mementos/sense-pipeline nodes");
    let mut table = TextTable::new(&[
        "nodes",
        "completed",
        "task rate (Hz)",
        "coverage",
        "covers @",
        "brownout-free",
        "energy/task (mJ)",
        "wall (s)",
    ]);
    for (n, report, wall_s) in &scaling {
        let m = &report.metrics;
        table.row(&[
            n.to_string(),
            m.completed_nodes.to_string(),
            format!("{:.3}", m.task_rate_hz),
            format!("{:.3}", m.coverage),
            m.nodes_to_cover
                .map(|k| k.to_string())
                .unwrap_or_else(|| "-".to_string()),
            format!("{:.2}", m.brownout_free_fraction),
            m.energy_per_completed_task_j
                .map(|e| format!("{:.4}", e * 1e3))
                .unwrap_or_else(|| "-".to_string()),
            format!("{wall_s:.3}"),
        ]);
    }
    print!("{}", table.render());

    banner("Trace-backed field (mains-cycle power trace, 8 nodes)");
    let m = &trace_report.metrics;
    println!(
        "completed {}/{} nodes, task rate {:.3} Hz, coverage {:.3}, covers at {}",
        m.completed_nodes,
        m.nodes,
        m.task_rate_hz,
        m.coverage,
        m.nodes_to_cover
            .map(|k| k.to_string())
            .unwrap_or_else(|| "never".to_string()),
    );

    let scaling_json = Json::Arr(
        scaling
            .iter()
            .map(|(_, report, _)| report.to_json())
            .collect(),
    );

    // --store producer mode: persist every node's (spec, report) pair so
    // store consumers can serve these designs without re-simulating, and
    // pin that persistence never perturbs the fleet reports themselves.
    if let Some(dir) = &args.store {
        let mut store = Store::open(dir).unwrap_or_else(|e| {
            eprintln!("cannot open store at {dir}: {e}");
            std::process::exit(1);
        });
        let mut catalog = TraceCatalog::new();
        let (mut appended, mut total) = (0u64, 0u64);
        let reports = scaling
            .iter()
            .map(|(_, report, _)| report)
            .chain(std::iter::once(&trace_report));
        for report in reports {
            let specs = report.spec.node_specs_in(&mut catalog).unwrap_or_else(|e| {
                eprintln!("cannot derive node specs: {e}");
                std::process::exit(1);
            });
            for (spec, node) in specs.iter().zip(&report.nodes) {
                total += 1;
                match store.put(&spec.to_json(), node.to_json(), BTreeMap::new(), 1.0) {
                    Ok(true) => appended += 1,
                    Ok(false) => {}
                    Err(e) => {
                        eprintln!("store write failed: {e}");
                        std::process::exit(1);
                    }
                }
            }
        }
        if let Err(e) = store.compact() {
            eprintln!("store compaction failed: {e}");
            std::process::exit(1);
        }
        banner("Store");
        println!("{appended} of {total} node evaluations appended to {dir}");
        for (section, current) in [
            ("scaling", scaling_json.to_string()),
            ("trace_fleet", trace_report.to_json().to_string()),
        ] {
            let committed = edc_bench::committed_section("BENCH_fleet.json", section);
            if committed.to_string() != current {
                eprintln!("FAIL: store-backed {section} differs from committed BENCH_fleet.json");
                std::process::exit(1);
            }
            println!("store: {section} byte-identical to committed BENCH_fleet.json");
        }
    }

    banner("Metrics");
    print!("{}", edc_metrics::global().render_text());

    let artifact = edc_bench::artifact(
        "fleet",
        vec![
            ("scaling", scaling_json),
            ("trace_fleet", trace_report.to_json()),
            // Non-deterministic section, deliberately outside the reports.
            (
                "timing",
                Json::obj(vec![
                    (
                        "scaling_s",
                        Json::Arr(
                            scaling
                                .iter()
                                .map(|&(_, _, wall_s)| Json::Num(wall_s))
                                .collect(),
                        ),
                    ),
                    ("trace_fleet_s", Json::Num(trace_s)),
                ]),
            ),
        ],
    );
    edc_bench::write_artifact(&path, &artifact);
}
