//! `edc_timeline` — run spec JSON from disk and export a Perfetto trace.
//!
//! Usage: `edc_timeline [-o OUT.perfetto.json] FILE.json`
//!
//! The file is parsed and walked recursively, reusing `edc_lint`'s
//! conventions. Arrays whose every element carries `name`/`hash`/`samples`
//! are merged into one shared trace catalog, so trace-backed specs resolve
//! exactly as they do under the linter. Objects carrying
//! `field`/`design`/`nodes` are treated as fleet specs and deployed — one
//! Perfetto track (process) per node; objects carrying
//! `source`/`strategy`/`workload`/`decoupling_f` are treated as single
//! experiment specs — one track each. Every run is forced onto
//! [`TelemetryKind::Timeline`] telemetry, so the export carries lifecycle
//! phase slices, event instants, and stored-energy/supply-power counters.
//!
//! The output (default: the input path with `.json` replaced by
//! `.perfetto.json`) is classic Chrome trace-event JSON, loadable in
//! `chrome://tracing` or <https://ui.perfetto.dev>. Timestamps are
//! simulation time, so the file is byte-identical across repeated runs.
//!
//! With `--metrics PATH` the process's metrics registry (runner lifecycle
//! counters, sweep/fleet fan-out counters, catalog registrations) is
//! written to `PATH` as OpenMetrics text on exit.

use std::process::ExitCode;

use edc_core::catalog::TraceCatalog;
use edc_core::experiment::ExperimentSpec;
use edc_core::fleet::FleetSpec;
use edc_core::json::Json;
use edc_core::telemetry::TelemetryReport;
use edc_core::TelemetryKind;
use edc_fleet::Fleet;
use edc_obs::PerfettoTrace;

const USAGE: &str = "usage: edc_timeline [-o OUT.perfetto.json] [--metrics PATH] FILE.json";

fn main() -> ExitCode {
    let mut out: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut file: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-o" | "--out" => match args.next() {
                Some(path) => out = Some(path),
                None => {
                    eprintln!("{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--metrics" => match args.next() {
                Some(path) => metrics_path = Some(path),
                None => {
                    eprintln!("{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            _ if file.is_none() => file = Some(arg),
            _ => {
                eprintln!("{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(file) = file else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };

    let doc = match std::fs::read_to_string(&file) {
        Ok(text) => match Json::parse(&text) {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("{file}: not valid JSON: {e}");
                return ExitCode::FAILURE;
            }
        },
        Err(e) => {
            eprintln!("{file}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut catalog = TraceCatalog::new();
    collect_catalogs(&doc, &mut catalog, &file);

    let mut trace = PerfettoTrace::new();
    if let Err(msg) = render(&doc, "$", &catalog, &mut trace) {
        eprintln!("{file}: {msg}");
        return ExitCode::FAILURE;
    }
    if trace.tracks() == 0 {
        eprintln!("{file}: no experiment or fleet specs found");
        return ExitCode::FAILURE;
    }

    let out = out.unwrap_or_else(|| default_out(&file));
    if let Err(e) = std::fs::write(&out, format!("{}\n", trace.to_json())) {
        eprintln!("could not write {out}: {e}");
        return ExitCode::FAILURE;
    }
    if let Some(path) = &metrics_path {
        // The runs above record runner/sweep/fleet counters into the
        // process-wide registry; dump the full exposition (quarantined
        // wall gauges included) for offline inspection.
        if let Err(e) = std::fs::write(path, edc_metrics::global().render_text_full()) {
            eprintln!("could not write metrics to {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    println!(
        "edc_timeline: {} track(s), {} trace event(s) -> {out}",
        trace.tracks(),
        trace.len()
    );
    ExitCode::SUCCESS
}

/// `FILE.json` → `FILE.perfetto.json`; other extensions just append.
fn default_out(file: &str) -> String {
    match file.strip_suffix(".json") {
        Some(stem) => format!("{stem}.perfetto.json"),
        None => format!("{file}.perfetto.json"),
    }
}

/// True for an object that looks like `FleetSpec::to_json` output.
fn is_fleet_object(json: &Json) -> bool {
    json.get("field").is_some() && json.get("design").is_some() && json.get("nodes").is_some()
}

/// True for an object that looks like `ExperimentSpec::to_json` output.
fn is_spec_object(json: &Json) -> bool {
    json.get("source").is_some()
        && json.get("strategy").is_some()
        && json.get("workload").is_some()
        && json.get("decoupling_f").is_some()
}

/// True for an array that looks like `TraceCatalog::to_json` output.
fn is_catalog_array(json: &Json) -> bool {
    match json {
        Json::Arr(items) => {
            !items.is_empty()
                && items.iter().all(|i| {
                    i.get("name").is_some() && i.get("hash").is_some() && i.get("samples").is_some()
                })
        }
        _ => false,
    }
}

/// Walks `json` merging every catalog section into `catalog`.
fn collect_catalogs(json: &Json, catalog: &mut TraceCatalog, file: &str) {
    if is_catalog_array(json) {
        match TraceCatalog::from_json(json) {
            Ok(found) => {
                for id in found.ids() {
                    if let Some(samples) = found.samples(id) {
                        if let Err(e) = catalog.register_ref(id.name(), samples) {
                            eprintln!("{file}: catalog entry '{}': {e}", id.name());
                        }
                    }
                }
            }
            Err(e) => eprintln!("{file}: malformed trace catalog: {e}"),
        }
        return;
    }
    match json {
        Json::Arr(items) => items
            .iter()
            .for_each(|i| collect_catalogs(i, catalog, file)),
        Json::Obj(pairs) => pairs
            .iter()
            .for_each(|(_, v)| collect_catalogs(v, catalog, file)),
        _ => {}
    }
}

/// Walks `json`, running every fleet or experiment spec it finds with
/// timeline telemetry and adding one track per run to `trace`.
fn render(
    json: &Json,
    path: &str,
    catalog: &TraceCatalog,
    trace: &mut PerfettoTrace,
) -> Result<(), String> {
    if is_fleet_object(json) {
        let mut spec = FleetSpec::from_json(json, catalog)
            .map_err(|e| format!("{path}: unparseable fleet spec: {e}"))?;
        spec.design = spec.design.telemetry(TelemetryKind::Timeline);
        let deadline = spec.design.deadline;
        let report = Fleet::new(spec)
            .catalog(catalog.clone())
            .run()
            .map_err(|e| format!("{path}: {e}"))?;
        for (i, node) in report.nodes.iter().enumerate() {
            if let Some(TelemetryReport::Timeline(tl)) = &node.telemetry {
                let end = node.stats.completed_at.unwrap_or(deadline);
                trace.add_track(&format!("node{i}"), tl, end);
            }
        }
        return Ok(());
    }
    if is_spec_object(json) {
        let spec = ExperimentSpec::from_json(json, catalog)
            .map_err(|e| format!("{path}: unparseable experiment spec: {e}"))?
            .telemetry(TelemetryKind::Timeline);
        let report = spec.run_in(catalog).map_err(|e| format!("{path}: {e}"))?;
        if let Some(TelemetryReport::Timeline(tl)) = &report.telemetry {
            let end = report.stats.completed_at.unwrap_or(spec.deadline);
            trace.add_track(&spec.label(), tl, end);
        }
        return Ok(());
    }
    match json {
        Json::Arr(items) => {
            for (i, item) in items.iter().enumerate() {
                render(item, &format!("{path}[{i}]"), catalog, trace)?;
            }
        }
        Json::Obj(pairs) => {
            for (k, v) in pairs {
                render(v, &format!("{path}.{k}"), catalog, trace)?;
            }
        }
        _ => {}
    }
    Ok(())
}
