//! `edc-fleet`: deterministic multi-node scenarios over a shared harvest
//! field.
//!
//! Everything below `edc-fleet` simulates **one** device. This crate
//! simulates a **population**: `N` nodes of one design
//! ([`FleetSpec::design`]) deployed into one ambient field
//! ([`FieldSpec`] — a synthetic envelope or a recorded power trace),
//! partitioned across the nodes by placement-dependent attenuation and a
//! per-node phase stagger. It is the first step from the paper's
//! single-node comparison toward fleet-level co-design questions: *how
//! many nodes of which design cover a sensing duty cycle?*
//!
//! - [`Fleet`] — the runner: expands a [`FleetSpec`] into per-node runs
//!   and fans them out across worker threads. **Every** field kind becomes
//!   plain per-node
//!   [`ExperimentSpec`](edc_core::experiment::ExperimentSpec)s executed by
//!   the sweep engine's [`run_specs_timed_metered`]: synthetic envelopes
//!   directly,
//!   recorded power traces by registering themselves into the runner's
//!   [`TraceCatalog`] and viewing the registered trace per node. One
//!   spec-driven path — thread count affects wall-clock only, never
//!   results.
//! - [`FleetReport`] — per-node [`SystemReport`]s plus [`FleetMetrics`]
//!   (duty-cycle coverage, sustainable task rate, the smallest covering
//!   prefix of the placement, brownout-free fraction, fleet energy per
//!   completed task) and merged [`StatsSink`] telemetry. Its JSON is
//!   **byte-identical** across repeated runs and serial-vs-parallel
//!   execution.
//!
//! # The coverage model
//!
//! A design that completes its sensing task at `t_i` seconds (from cold
//! start, through every brownout its placement suffers) can sustain one
//! task every `t_i` seconds. A fleet's aggregate task rate is
//! `Σ 1 / t_i` over completing nodes, and its *coverage* of a duty cycle
//! with period `T` is `min(1, T · Σ 1 / t_i)` — the fraction of the duty
//! cycle's demand the population can serve. [`FleetMetrics::nodes_to_cover`]
//! is the smallest placement prefix whose coverage reaches 1, which turns
//! one fleet run into an answer for *every* smaller fleet of the same
//! placement.
//!
//! # Examples
//!
//! ```
//! use edc_core::experiment::ExperimentSpec;
//! use edc_core::fleet::{FieldSpec, FleetSpec};
//! use edc_core::scenarios::{FieldEnvelope, SourceKind, StrategyKind};
//! use edc_fleet::Fleet;
//! use edc_units::Seconds;
//! use edc_workloads::WorkloadKind;
//!
//! let design = ExperimentSpec::new(
//!     SourceKind::Dc { volts: 3.3 }, // replaced by each node's field view
//!     StrategyKind::Hibernus,
//!     WorkloadKind::Crc16(64),
//! )
//! .deadline(Seconds(2.0));
//! let spec = FleetSpec::new(
//!     FieldSpec::Envelope(FieldEnvelope::RectifiedSine { hz: 50.0 }),
//!     design,
//!     3,
//! )
//! .stagger(Seconds(0.005));
//! let report = Fleet::new(spec).threads(2).run()?;
//! assert_eq!(report.nodes.len(), 3);
//! assert!(report.metrics.coverage > 0.0);
//! # Ok::<(), edc_core::fleet::FleetError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;

use edc_bench::sweep::{run_specs_timed_metered, BATCH_SIZE_BOUNDS};
use edc_core::catalog::TraceCatalog;
use edc_core::fleet::{FleetError, FleetSpec};
use edc_core::json::Json;
use edc_core::telemetry::{stats_json, TelemetryReport};
use edc_core::SystemReport;
use edc_obs::ProfileReport;
use edc_telemetry::StatsSink;

pub use edc_core::fleet::{FieldSpec, Placement};
pub use edc_core::scenarios::FieldEnvelope;

/// The fleet runner: a [`FleetSpec`] plus execution policy.
#[derive(Debug, Clone)]
pub struct Fleet {
    spec: FleetSpec,
    threads: Option<usize>,
    catalog: TraceCatalog,
    dedup: bool,
    metrics: Option<edc_metrics::Registry>,
}

impl Fleet {
    /// A runner for `spec` using the machine's parallelism.
    pub fn new(spec: FleetSpec) -> Self {
        Self {
            spec,
            threads: None,
            catalog: TraceCatalog::new(),
            dedup: true,
            metrics: None,
        }
    }

    /// Caps the worker count. Thread count never affects results, only
    /// wall-clock time.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = Some(n.max(1));
        self
    }

    /// Seeds the runner's trace catalog. [`FieldSpec::PowerTrace`] fields
    /// register themselves on [`Fleet::run`] regardless; supplying a
    /// shared catalog lets the per-node design itself use
    /// [`SourceKind::Trace`](edc_core::scenarios::SourceKind::Trace)
    /// entries registered elsewhere.
    pub fn catalog(mut self, catalog: TraceCatalog) -> Self {
        self.catalog = catalog;
        self
    }

    /// Enables or disables placement-bucket deduplication (on by
    /// default): nodes whose derived per-node specs are byte-identical
    /// (same attenuation bucket, same phase) simulate **once** and share
    /// the report. Runs are deterministic functions of their spec, so the
    /// report is byte-identical either way — only the simulation cost
    /// changes. Dedup hits are counted by the
    /// `edc_fleet_bucket_dedup_hits` metric.
    pub fn dedup(mut self, on: bool) -> Self {
        self.dedup = on;
        self
    }

    /// Routes this runner's process metrics (fleet deployment counters,
    /// bucket-dedup hits, and the sweep/runner counters of the node batch)
    /// into `registry` instead of the process-wide [`edc_metrics::global`]
    /// registry.
    pub fn metrics(mut self, registry: edc_metrics::Registry) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// The spec this runner executes.
    pub fn spec(&self) -> &FleetSpec {
        &self.spec
    }

    /// Runs every node and reports fleet-level metrics. Both field kinds
    /// take the same path: the spec expands into per-node
    /// [`SourceKind::FieldView`](edc_core::scenarios::SourceKind::FieldView)
    /// specs (recorded traces are first registered into the runner's
    /// catalog) and one [`run_specs_timed_metered`] batch executes the
    /// distinct placement buckets (see [`Fleet::dedup`]).
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint of the spec; once validation
    /// passes, per-node assembly cannot fail.
    pub fn run(&self) -> Result<FleetReport, FleetError> {
        Ok(self.run_profiled()?.0)
    }

    /// Like [`Fleet::run`], additionally yielding a wall-clock profile:
    /// one [`ProfileSpan`](edc_obs::ProfileSpan) per *simulated* node (via
    /// [`SweepRun::profile`](edc_bench::sweep::SweepRun::profile)) — with
    /// [`Fleet::dedup`] on, nodes served by cloning an identical bucket's
    /// report record no span. Span counters are deterministic lifecycle
    /// counts; `wall_s` is that node's real simulation time — quarantined
    /// from the [`FleetReport`], which stays byte-stable.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint of the spec; once validation
    /// passes, per-node assembly cannot fail.
    pub fn run_profiled(&self) -> Result<(FleetReport, ProfileReport), FleetError> {
        self.spec.validate()?;
        let threads = self
            .threads
            .or_else(|| std::thread::available_parallelism().ok().map(|n| n.get()))
            .unwrap_or(1);
        let mut catalog = self.catalog.clone();
        let specs = self.spec.node_specs_in(&mut catalog)?;
        let registry = self.metrics.clone().unwrap_or_else(edc_metrics::global);
        registry
            .counter("edc_fleet_runs", "Fleet deployments executed.", &[])
            .inc();
        registry
            .counter(
                "edc_fleet_nodes",
                "Fleet nodes deployed (simulated or served by bucket dedup).",
                &[],
            )
            .inc_by(specs.len() as u64);
        registry
            .histogram(
                "edc_fleet_batch_nodes",
                "Nodes per fleet deployment.",
                &[],
                &BATCH_SIZE_BOUNDS,
            )
            .observe(specs.len() as f64);

        // Bucket dedup: nodes whose derived specs are byte-identical (the
        // canonical JSON is the bucket key, as in the evaluator's memo
        // cache) simulate once; the rest clone the bucket's report.
        let (unique, assignment) = if self.dedup {
            let mut bucket_of: HashMap<String, usize> = HashMap::new();
            let mut unique = Vec::new();
            let mut assignment = Vec::with_capacity(specs.len());
            for spec in specs {
                let key = spec.to_json().to_string();
                let bucket = *bucket_of.entry(key).or_insert_with(|| {
                    unique.push(spec);
                    unique.len() - 1
                });
                assignment.push(bucket);
            }
            (unique, assignment)
        } else {
            let assignment = (0..specs.len()).collect();
            (specs, assignment)
        };
        registry
            .counter(
                "edc_fleet_bucket_dedup_hits",
                "Fleet nodes served by cloning an identical bucket's report instead of simulating.",
                &[],
            )
            .inc_by((assignment.len() - unique.len()) as u64);
        let run = run_specs_timed_metered(unique, threads, &catalog, &registry)
            .map_err(FleetError::Design)?;
        let profile = run.profile();
        let bucket_reports: Vec<SystemReport> =
            run.rows.into_iter().map(|row| row.report).collect();
        let nodes: Vec<SystemReport> = assignment
            .into_iter()
            .map(|bucket| bucket_reports[bucket].clone())
            .collect();
        let metrics = FleetMetrics::from_reports(&self.spec, &nodes);
        Ok((
            FleetReport {
                spec: self.spec.clone(),
                nodes,
                metrics,
            },
            profile,
        ))
    }

    /// Statically lints the fleet without deploying it: collect-all spec
    /// validation (`E001`), duplicate placement buckets (`W104`), and each
    /// node's derived single-node spec under `$.nodes[i]` — so a placement
    /// whose attenuation statically brownouts a node surfaces as that
    /// node's `E002` before any simulation is paid for.
    pub fn lint(&self) -> edc_lint::LintReport {
        edc_lint::Linter::with_catalog(self.catalog.clone()).lint_fleet(&self.spec)
    }
}

/// Fleet-level figures of merit, derived from the per-node reports in
/// node order (so they are deterministic whenever the runs are).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetMetrics {
    /// Nodes in the fleet.
    pub nodes: usize,
    /// Nodes whose workload completed (and verified) by the deadline.
    pub completed_nodes: usize,
    /// Nodes that saw zero brownouts.
    pub brownout_free_nodes: usize,
    /// `brownout_free_nodes / nodes`.
    pub brownout_free_fraction: f64,
    /// Aggregate sustainable task rate: `Σ 1 / t_i` over completing nodes,
    /// in hertz.
    pub task_rate_hz: f64,
    /// Coverage of the spec's duty period: `min(1, duty_period ×
    /// task_rate_hz)`.
    pub coverage: f64,
    /// Smallest `k` such that nodes `0..k` alone reach coverage 1, if any
    /// prefix does.
    pub nodes_to_cover: Option<usize>,
    /// Total energy drawn across the fleet, joules.
    pub fleet_energy_j: f64,
    /// `fleet_energy_j` per completed task; `None` when nothing completed.
    pub energy_per_completed_task_j: Option<f64>,
}

impl FleetMetrics {
    /// Computes the metrics for `spec` from its per-node reports.
    pub fn from_reports(spec: &FleetSpec, reports: &[SystemReport]) -> Self {
        let duty = spec.duty_period.0;
        let mut completed = 0usize;
        let mut brownout_free = 0usize;
        let mut task_rate = 0.0f64;
        let mut energy = 0.0f64;
        let mut nodes_to_cover = None;
        for (i, report) in reports.iter().enumerate() {
            if let Some(t) = report.stats.completed_at {
                if report.succeeded() {
                    completed += 1;
                    task_rate += 1.0 / t.0;
                }
            }
            if report.stats.brownouts == 0 {
                brownout_free += 1;
            }
            energy += report.stats.energy_consumed.0;
            if nodes_to_cover.is_none() && duty * task_rate >= 1.0 {
                nodes_to_cover = Some(i + 1);
            }
        }
        let nodes = reports.len();
        Self {
            nodes,
            completed_nodes: completed,
            brownout_free_nodes: brownout_free,
            brownout_free_fraction: if nodes > 0 {
                brownout_free as f64 / nodes as f64
            } else {
                0.0
            },
            task_rate_hz: task_rate,
            coverage: (duty * task_rate).min(1.0),
            nodes_to_cover,
            fleet_energy_j: energy,
            energy_per_completed_task_j: if completed > 0 {
                Some(energy / completed as f64)
            } else {
                None
            },
        }
    }

    /// The metrics as a JSON value with deterministic field order.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("nodes", Json::Uint(self.nodes as u64)),
            ("completed_nodes", Json::Uint(self.completed_nodes as u64)),
            (
                "brownout_free_nodes",
                Json::Uint(self.brownout_free_nodes as u64),
            ),
            (
                "brownout_free_fraction",
                Json::Num(self.brownout_free_fraction),
            ),
            ("task_rate_hz", Json::Num(self.task_rate_hz)),
            ("coverage", Json::Num(self.coverage)),
            (
                "nodes_to_cover",
                Json::option(self.nodes_to_cover, |n| Json::Uint(n as u64)),
            ),
            ("fleet_energy_j", Json::Num(self.fleet_energy_j)),
            (
                "energy_per_completed_task_j",
                Json::option(self.energy_per_completed_task_j, Json::Num),
            ),
        ])
    }
}

/// A completed fleet run: the spec, every node's report, and the derived
/// fleet metrics.
///
/// Serialisation is **byte-stable**: identical specs produce identical
/// JSON regardless of thread count or repetition (wall-clock time never
/// enters the report).
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// The scenario that ran.
    pub spec: FleetSpec,
    /// Per-node reports, in node order.
    pub nodes: Vec<SystemReport>,
    /// Fleet-level figures of merit.
    pub metrics: FleetMetrics,
}

impl FleetReport {
    /// Folds every node's [`StatsSink`] telemetry into one fleet-level
    /// sink (deterministic: merge happens in node order). `None` when no
    /// node ran with stats telemetry.
    pub fn aggregate_stats(&self) -> Option<StatsSink> {
        let mut merged: Option<StatsSink> = None;
        for report in &self.nodes {
            if let Some(TelemetryReport::Stats(node)) = &report.telemetry {
                merged.get_or_insert_with(StatsSink::new).merge(node);
            }
        }
        merged
    }

    /// The report as a JSON value: the lossless spec, the fleet metrics,
    /// the merged telemetry aggregate, and every node's placement and
    /// report. Byte-identical across repeated and serial-vs-parallel runs.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("fleet", self.spec.to_json()),
            ("metrics", self.metrics.to_json()),
            (
                "aggregate",
                Json::option(self.aggregate_stats(), |s| stats_json(&s)),
            ),
            (
                "nodes",
                Json::Arr(
                    self.nodes
                        .iter()
                        .enumerate()
                        .map(|(i, report)| {
                            Json::obj(vec![
                                ("node", Json::Uint(i as u64)),
                                ("attenuation", Json::Num(self.spec.attenuation(i))),
                                ("phase_s", Json::Num(self.spec.phase(i).0)),
                                ("report", report.to_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Convenience: runs `spec` with default parallelism.
///
/// # Errors
///
/// Returns the first violated constraint of the spec.
pub fn run_fleet(spec: FleetSpec) -> Result<FleetReport, FleetError> {
    Fleet::new(spec).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use edc_core::experiment::ExperimentSpec;
    use edc_core::scenarios::{SourceKind, StrategyKind};
    use edc_core::TelemetryKind;
    use edc_units::Seconds;
    use edc_workloads::WorkloadKind;

    fn design() -> ExperimentSpec {
        ExperimentSpec::new(
            SourceKind::Dc { volts: 3.3 },
            StrategyKind::Hibernus,
            WorkloadKind::BusyLoop(200),
        )
        .timestep(Seconds(50e-6))
        .deadline(Seconds(1.0))
    }

    fn envelope_spec(nodes: usize) -> FleetSpec {
        FleetSpec::new(
            FieldSpec::Envelope(FieldEnvelope::RectifiedSine { hz: 50.0 }),
            design(),
            nodes,
        )
        .placement(Placement::Line {
            near: 1.0,
            far: 0.7,
        })
        .stagger(Seconds(0.004))
    }

    #[test]
    fn fleet_runs_and_counts_every_node() {
        let report = Fleet::new(envelope_spec(3)).threads(2).run().expect("runs");
        assert_eq!(report.nodes.len(), 3);
        assert_eq!(report.metrics.nodes, 3);
        assert!(
            report.metrics.completed_nodes >= 1,
            "full-strength node 0 completes"
        );
        assert!(report.metrics.fleet_energy_j > 0.0);
        assert!(report.metrics.task_rate_hz > 0.0);
    }

    #[test]
    fn coverage_is_monotone_in_fleet_size() {
        let small = Fleet::new(envelope_spec(1)).run().expect("runs");
        let large = Fleet::new(envelope_spec(4)).run().expect("runs");
        assert!(large.metrics.task_rate_hz >= small.metrics.task_rate_hz);
        assert!(large.metrics.coverage >= small.metrics.coverage);
    }

    #[test]
    fn nodes_to_cover_is_a_covering_prefix() {
        let report = Fleet::new(envelope_spec(4).duty_period(Seconds(1.0)))
            .run()
            .expect("runs");
        if let Some(k) = report.metrics.nodes_to_cover {
            assert!((1..=4).contains(&k));
            let prefix_rate: f64 = report.nodes[..k]
                .iter()
                .filter_map(|r| r.stats.completed_at)
                .map(|t| 1.0 / t.0)
                .sum();
            assert!(prefix_rate * 1.0 >= 1.0, "prefix really covers");
            assert!((report.metrics.coverage - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn stats_telemetry_merges_across_nodes() {
        let spec = FleetSpec::new(
            FieldSpec::Envelope(FieldEnvelope::RectifiedSine { hz: 50.0 }),
            design().telemetry(TelemetryKind::Stats),
            2,
        );
        let report = Fleet::new(spec).run().expect("runs");
        let merged = report.aggregate_stats().expect("stats nodes present");
        let boots: u64 = report
            .nodes
            .iter()
            .filter_map(|r| match &r.telemetry {
                Some(TelemetryReport::Stats(s)) => Some(s.counts().boots),
                _ => None,
            })
            .sum();
        assert_eq!(merged.counts().boots, boots);
        assert!(report.to_json().to_string().contains("\"aggregate\":{"));
    }

    #[test]
    fn run_profiled_yields_one_span_per_node_and_the_same_report() {
        let fleet = Fleet::new(envelope_spec(3)).threads(2);
        let (report, profile) = fleet.run_profiled().expect("runs");
        assert_eq!(profile.spans().len(), 3);
        assert!(profile.spans().iter().all(|s| s.wall_s > 0.0));
        // The profile is quarantined: the report itself is byte-stable.
        let plain = fleet.run().expect("runs");
        assert_eq!(
            report.to_json().to_string(),
            plain.to_json().to_string(),
            "profiling never perturbs the deterministic report"
        );
        let boots = profile.spans()[0]
            .counters
            .iter()
            .find(|(k, _)| k == "boots")
            .expect("boots counter")
            .1;
        assert_eq!(boots, report.nodes[0].stats.boots as f64);
    }

    #[test]
    fn bucket_dedup_simulates_once_and_preserves_the_report() {
        // No placement gradient and no stagger: all 3 node specs are
        // byte-identical, so dedup collapses them to one simulation.
        let spec = FleetSpec::new(
            FieldSpec::Envelope(FieldEnvelope::RectifiedSine { hz: 50.0 }),
            design(),
            3,
        );
        let registry = edc_metrics::Registry::new();
        let fleet = Fleet::new(spec.clone())
            .threads(2)
            .metrics(registry.clone());
        let (deduped, profile) = fleet.run_profiled().expect("runs");
        assert_eq!(profile.spans().len(), 1, "one bucket simulated");
        let text = registry.render_text();
        assert!(
            text.contains("edc_fleet_bucket_dedup_hits_total 2"),
            "{text}"
        );
        assert!(text.contains("edc_fleet_nodes_total 3"), "{text}");
        assert!(text.contains("edc_sweep_cells_total 1"), "{text}");
        let plain = Fleet::new(spec)
            .threads(2)
            .dedup(false)
            .run()
            .expect("runs");
        assert_eq!(
            deduped.to_json().to_string(),
            plain.to_json().to_string(),
            "dedup never perturbs the deterministic report"
        );
    }

    #[test]
    fn distinct_placements_never_dedup() {
        let registry = edc_metrics::Registry::new();
        let fleet = Fleet::new(envelope_spec(3)).metrics(registry.clone());
        let (_, profile) = fleet.run_profiled().expect("runs");
        assert_eq!(profile.spans().len(), 3, "all buckets distinct");
        assert!(registry
            .render_text()
            .contains("edc_fleet_bucket_dedup_hits_total 0"));
    }

    #[test]
    fn invalid_fleet_is_an_error_not_a_panic() {
        let err = Fleet::new(envelope_spec(0)).run().expect_err("no nodes");
        assert_eq!(err, FleetError::NoNodes);
    }

    #[test]
    fn metrics_handle_the_empty_and_dnf_cases() {
        let spec = envelope_spec(2);
        let m = FleetMetrics::from_reports(&spec, &[]);
        assert_eq!(m.nodes, 0);
        assert_eq!(m.energy_per_completed_task_j, None);
        assert_eq!(m.nodes_to_cover, None);
        assert_eq!(m.coverage, 0.0);
        // A fleet whose deadline forbids completion covers nothing.
        let dnf = FleetSpec::new(
            FieldSpec::Envelope(FieldEnvelope::Dc { volts: 3.3 }),
            design()
                .workload(WorkloadKind::Endless)
                .deadline(Seconds(0.01)),
            2,
        );
        let report = Fleet::new(dnf).run().expect("runs");
        assert_eq!(report.metrics.completed_nodes, 0);
        assert_eq!(report.metrics.coverage, 0.0);
        assert_eq!(report.metrics.energy_per_completed_task_j, None);
        let json = report.to_json().to_string();
        assert!(json.contains("\"nodes_to_cover\":null"));
        assert!(json.contains("\"energy_per_completed_task_j\":null"));
    }
}
