//! [`FieldView`] — one node's view of a shared harvest field.
//!
//! A fleet of energy-driven nodes does not see N independent harvesters:
//! it sees *one* ambient field (a gusting wind, a room's light, a reader's
//! RF carrier) through N placements. `FieldView` models a placement as two
//! numbers:
//!
//! - **attenuation** in `(0, 1]` — how much of the field's amplitude the
//!   node's position receives (Thévenin open-circuit voltage, regulated
//!   power, or short-circuit current, depending on the sample kind);
//! - **phase** in seconds — a time stagger, so nodes placed apart
//!   experience the field's dips and peaks at different instants.
//!
//! `edc-fleet` builds one `FieldView` per node over a single shared
//! envelope; any [`EnergySource`] (synthetic or [`TracePlayback`]
//! (crate::TracePlayback)) can serve as the field.
//!
//! # Examples
//!
//! ```
//! use edc_harvest::{EnergySource, FieldView, SignalGenerator, Waveform};
//! use edc_units::{Hertz, Seconds, Volts};
//!
//! let field = || SignalGenerator::new(Waveform::HalfRectifiedSine, Volts(4.0), Hertz(1.0));
//! let mut near = FieldView::new(field(), 1.0, Seconds(0.0));
//! let mut far = FieldView::new(field(), 0.5, Seconds(0.25));
//! // The far node sees half the amplitude, a quarter period later.
//! let v_near = near.sample(Seconds(0.25)).power_into(Volts(1.0));
//! let v_far = far.sample(Seconds(0.0)).power_into(Volts(1.0));
//! assert!(v_far.0 < v_near.0);
//! ```

use edc_units::Seconds;

use crate::{EnergySource, SourceSample};

/// A placement-attenuated, phase-staggered view of a shared field.
#[derive(Debug, Clone)]
pub struct FieldView<S> {
    inner: S,
    attenuation: f64,
    phase: Seconds,
    name: String,
}

impl<S: EnergySource> FieldView<S> {
    /// Wraps `field` as seen from one placement.
    ///
    /// # Panics
    ///
    /// Panics unless `attenuation` is in `(0, 1]` and `phase` is finite
    /// and non-negative.
    pub fn new(field: S, attenuation: f64, phase: Seconds) -> Self {
        assert!(
            attenuation.is_finite() && attenuation > 0.0 && attenuation <= 1.0,
            "attenuation must be in (0, 1]"
        );
        assert!(
            phase.0.is_finite() && phase.0 >= 0.0,
            "phase stagger must be finite and ≥ 0"
        );
        let name = format!("{}@{:.3}x+{}s", field.name(), attenuation, phase.0);
        Self {
            inner: field,
            attenuation,
            phase,
            name,
        }
    }

    /// The placement's attenuation factor.
    pub fn attenuation(&self) -> f64 {
        self.attenuation
    }

    /// The placement's phase stagger.
    pub fn phase(&self) -> Seconds {
        self.phase
    }

    /// Returns the wrapped field.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: EnergySource> EnergySource for FieldView<S> {
    fn name(&self) -> &str {
        &self.name
    }

    fn sample(&mut self, t: Seconds) -> SourceSample {
        match self.inner.sample(t + self.phase) {
            SourceSample::Thevenin { v_oc, r_s } => SourceSample::Thevenin {
                v_oc: v_oc * self.attenuation,
                r_s,
            },
            SourceSample::Power(p) => SourceSample::Power(p * self.attenuation),
            SourceSample::Current { i, v_compliance } => SourceSample::Current {
                i: i * self.attenuation,
                v_compliance,
            },
        }
    }
}
