//! Kinetic (vibration/motion) harvester — piezo- or electromagnetic
//! transducers excited by footsteps or machinery, delivering short energy
//! packets at the excitation rate. One of the "real energy harvesters"
//! against which Hibernus was validated in the paper.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use edc_units::{Hertz, Joules, Seconds, Watts};

use crate::{EnergySource, SourceSample};

/// A kinetic harvester emitting fixed-energy pulses at a (jittered) rate.
///
/// Each excitation (a footstep, a machine revolution) produces a packet of
/// `pulse_energy` spread over `pulse_width`, i.e. a rectangular power burst
/// of `pulse_energy / pulse_width`. Pulse timing jitter is deterministic per
/// seed.
///
/// # Examples
///
/// ```
/// use edc_harvest::KineticHarvester;
/// use edc_units::{Hertz, Joules, Seconds};
///
/// let k = KineticHarvester::footsteps(7);
/// // Mean power = pulse energy × rate: footsteps() uses 150 µJ at 2 Hz.
/// assert!((k.mean_power().as_micro() - 300.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct KineticHarvester {
    name: String,
    pulse_energy: Joules,
    rate: Hertz,
    pulse_width: Seconds,
    /// Per-pulse start-time jitter as a fraction of the period, in `[0, 0.5)`.
    jitter_frac: f64,
    jitter_table: Vec<f64>,
}

const JITTER_TABLE_LEN: usize = 4096;

impl KineticHarvester {
    /// A wearable heel-strike harvester: 150 µJ per step at 2 steps/s,
    /// 20 ms pulses, 10% timing jitter.
    pub fn footsteps(seed: u64) -> Self {
        Self::new(Joules::from_micro(150.0), Hertz(2.0), Seconds(0.020), seed)
    }

    /// A machine-vibration harvester: small, fast, regular pulses.
    pub fn machinery(seed: u64) -> Self {
        Self::new(Joules::from_micro(8.0), Hertz(50.0), Seconds(0.004), seed).with_jitter(0.01)
    }

    /// Creates a kinetic harvester with explicit pulse parameters.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is non-positive or if the pulse width exceeds
    /// the excitation period.
    pub fn new(pulse_energy: Joules, rate: Hertz, pulse_width: Seconds, seed: u64) -> Self {
        assert!(pulse_energy.is_positive(), "pulse energy must be > 0");
        assert!(rate.is_positive(), "rate must be > 0");
        assert!(pulse_width.is_positive(), "pulse width must be > 0");
        assert!(
            pulse_width.0 < rate.to_period().0,
            "pulse width must fit inside the excitation period"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let jitter_table = (0..JITTER_TABLE_LEN)
            .map(|_| rng.gen_range(0.0..1.0))
            .collect();
        Self {
            name: format!("kinetic-{pulse_energy}@{rate}"),
            pulse_energy,
            rate,
            pulse_width,
            jitter_frac: 0.10,
            jitter_table,
        }
    }

    /// Overrides the timing jitter fraction.
    ///
    /// # Panics
    ///
    /// Panics if `frac` is outside `[0, 0.5)`.
    pub fn with_jitter(mut self, frac: f64) -> Self {
        assert!((0.0..0.5).contains(&frac), "jitter fraction in [0, 0.5)");
        self.jitter_frac = frac;
        self
    }

    /// Long-run mean harvested power (`pulse_energy × rate`).
    pub fn mean_power(&self) -> Watts {
        Watts(self.pulse_energy.0 * self.rate.0)
    }

    /// Instantaneous harvested power at `t` (replayable).
    pub fn power_at(&self, t: Seconds) -> Watts {
        let period = self.rate.to_period().0;
        let cycle = (t.0 / period).floor();
        let in_cycle = t.0 - cycle * period;
        let jitter = if self.jitter_frac > 0.0 {
            let idx = (cycle.rem_euclid(JITTER_TABLE_LEN as f64)) as usize;
            self.jitter_table[idx] * self.jitter_frac * period
        } else {
            0.0
        };
        if in_cycle >= jitter && in_cycle < jitter + self.pulse_width.0 {
            Watts(self.pulse_energy.0 / self.pulse_width.0)
        } else {
            Watts::ZERO
        }
    }
}

impl EnergySource for KineticHarvester {
    fn name(&self) -> &str {
        &self.name
    }

    fn sample(&mut self, t: Seconds) -> SourceSample {
        SourceSample::Power(self.power_at(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pulse_power_is_energy_over_width() {
        let k = KineticHarvester::new(Joules::from_micro(100.0), Hertz(1.0), Seconds(0.010), 0)
            .with_jitter(0.0);
        assert!((k.power_at(Seconds(0.005)).0 - 0.010).abs() < 1e-12);
        assert_eq!(k.power_at(Seconds(0.5)), Watts::ZERO);
    }

    #[test]
    fn integrated_energy_matches_mean_power() {
        let k = KineticHarvester::footsteps(3);
        let dt = 1e-4;
        let horizon = 60.0;
        let mut e = 0.0;
        let mut t = 0.0;
        while t < horizon {
            e += k.power_at(Seconds(t)).0 * dt;
            t += dt;
        }
        let expected = k.mean_power().0 * horizon;
        assert!(
            (e - expected).abs() / expected < 0.05,
            "integrated {e} vs expected {expected}"
        );
    }

    #[test]
    fn jitter_is_deterministic() {
        let a = KineticHarvester::footsteps(5);
        let b = KineticHarvester::footsteps(5);
        for i in 0..10_000 {
            let t = Seconds(i as f64 * 0.003);
            assert_eq!(a.power_at(t), b.power_at(t));
        }
    }

    #[test]
    #[should_panic(expected = "pulse width must fit")]
    fn oversize_pulse_rejected() {
        let _ = KineticHarvester::new(Joules(1e-6), Hertz(100.0), Seconds(0.02), 0);
    }

    #[test]
    fn machinery_profile_is_fast_and_regular() {
        let k = KineticHarvester::machinery(0);
        let mut pulses = 0;
        let mut last = false;
        for i in 0..100_000 {
            let on = k.power_at(Seconds(i as f64 * 1e-5)).0 > 0.0;
            if on && !last {
                pulses += 1;
            }
            last = on;
        }
        // 1 second of 50 Hz machinery → ~50 pulses.
        assert!((45..=55).contains(&pulses), "pulse count {pulses}");
    }

    proptest! {
        #[test]
        fn prop_power_nonnegative_and_bounded(t in 0.0f64..100.0, seed in 0u64..8) {
            let k = KineticHarvester::footsteps(seed);
            let p = k.power_at(Seconds(t));
            prop_assert!(p.0 >= 0.0);
            prop_assert!(p.0 <= 150e-6 / 0.020 + 1e-12);
        }
    }
}
