//! Energy-harvesting source models.
//!
//! The paper's central premise is that a harvester is "a power source that is
//! highly unpredictable, and varies by many orders of magnitude both
//! temporally and spatially" (Section I). This crate provides models of every
//! source class the paper mentions — micro wind turbine and indoor
//! photovoltaic (Fig. 1), RF (WISPCam), kinetic, signal generators (the
//! Hibernus validation stimulus) — plus trace playback and combinators.
//!
//! All sources implement [`EnergySource`]: at each simulation instant they
//! yield a [`SourceSample`] (a Thévenin equivalent, an ideal power source, or
//! an ideal current source) which the supply-node integration converts into
//! current *into* the rail via [`EnergySource::current_into`]. Sources never
//! sink current — a series diode is implicit, as in the real front-ends.
//!
//! # Examples
//!
//! ```
//! use edc_harvest::{EnergySource, SignalGenerator, Waveform};
//! use edc_units::{Hertz, Ohms, Seconds, Volts};
//!
//! // The half-wave rectified sine used to drive Fig. 7 of the paper.
//! let mut source = SignalGenerator::new(Waveform::HalfRectifiedSine, Volts(4.0), Hertz(2.0))
//!     .with_resistance(Ohms(100.0));
//! let i = source.current_into(Volts(1.0), Seconds(0.125));
//! assert!(i.0 > 0.0); // quarter period: sine peak
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod field;
mod kinetic;
mod photovoltaic;
mod rf;
mod siggen;
mod thermal;
mod trace;
mod wind;

pub use field::FieldView;
pub use kinetic::KineticHarvester;
pub use photovoltaic::Photovoltaic;
pub use rf::{ReaderSchedule, RfHarvester};
pub use siggen::{SignalGenerator, Waveform};
pub use thermal::ThermalGenerator;
pub use trace::TracePlayback;
pub use wind::{GustProfile, WindTurbine};

use edc_units::{Amps, Ohms, Seconds, Volts, Watts};

/// Minimum rail voltage assumed by regulated power-type sources when
/// computing `I = P/V`; models the boost front-end's minimum output
/// compliance and avoids an unphysical current singularity at `V = 0`.
pub const POWER_SOURCE_COMPLIANCE_FLOOR: Volts = Volts(0.2);

/// What a source looks like electrically at one instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SourceSample {
    /// Thévenin equivalent: open-circuit voltage behind a series resistance.
    /// Used for raw transducers (wind turbine, signal generator).
    Thevenin {
        /// Open-circuit voltage.
        v_oc: Volts,
        /// Series (source) resistance.
        r_s: Ohms,
    },
    /// Regulated power source: delivers up to this power at the rail voltage
    /// (models a harvester behind an MPPT/boost front-end).
    Power(Watts),
    /// Ideal current source up to a compliance voltage (e.g. a PV cell well
    /// below its open-circuit point).
    Current {
        /// Short-circuit-ish output current.
        i: Amps,
        /// Compliance (open-circuit) voltage above which output ceases.
        v_compliance: Volts,
    },
}

impl SourceSample {
    /// A dead source (zero Thévenin voltage).
    pub const OFF: Self = SourceSample::Thevenin {
        v_oc: Volts(0.0),
        r_s: Ohms(1.0),
    };

    /// Converts the sample into the current flowing into a rail held at
    /// `node_v`. Never negative (implicit series diode).
    pub fn current_into(self, node_v: Volts) -> Amps {
        match self {
            SourceSample::Thevenin { v_oc, r_s } => {
                let delta = v_oc - node_v;
                if delta.0 <= 0.0 {
                    Amps::ZERO
                } else {
                    delta / r_s
                }
            }
            SourceSample::Power(p) => {
                if p.0 <= 0.0 {
                    Amps::ZERO
                } else {
                    p / node_v.max(POWER_SOURCE_COMPLIANCE_FLOOR)
                }
            }
            SourceSample::Current { i, v_compliance } => {
                if node_v >= v_compliance || i.0 <= 0.0 {
                    Amps::ZERO
                } else {
                    i
                }
            }
        }
    }

    /// The power this sample would deliver into a rail held at `node_v`.
    pub fn power_into(self, node_v: Volts) -> Watts {
        node_v * self.current_into(node_v)
    }
}

/// A time-varying energy-harvesting source.
///
/// Implementations take `&mut self` so that stochastic sources can advance
/// their internal RNG deterministically with time; repeated calls at the
/// same `t` on sources documented as *replayable* return the same sample.
pub trait EnergySource {
    /// Human-readable name used in logs and figure output.
    fn name(&self) -> &str;

    /// Electrical appearance of the source at time `t`.
    fn sample(&mut self, t: Seconds) -> SourceSample;

    /// Current pushed into a rail at `node_v` at time `t`.
    ///
    /// Provided in terms of [`EnergySource::sample`]; override only for
    /// sources with voltage-dependent behaviour beyond the sample model.
    fn current_into(&mut self, node_v: Volts, t: Seconds) -> Amps {
        self.sample(t).current_into(node_v)
    }
}

impl<S: EnergySource + ?Sized> EnergySource for Box<S> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn sample(&mut self, t: Seconds) -> SourceSample {
        (**self).sample(t)
    }
}

/// A steady DC bench supply behind a series resistance — the "controlled
/// source" of the Hibernus validation, and the stand-in for mains power when
/// classifying traditional systems in the taxonomy.
#[derive(Debug, Clone)]
pub struct DcSupply {
    name: String,
    voltage: Volts,
    resistance: Ohms,
}

impl DcSupply {
    /// Creates a DC supply with the given EMF and a default 1 Ω source
    /// resistance.
    pub fn new(voltage: Volts) -> Self {
        Self {
            name: format!("dc-{voltage}"),
            voltage,
            resistance: Ohms(1.0),
        }
    }

    /// Overrides the series resistance.
    ///
    /// # Panics
    ///
    /// Panics if `r` is not strictly positive.
    pub fn with_resistance(mut self, r: Ohms) -> Self {
        assert!(r.is_positive(), "source resistance must be > 0");
        self.resistance = r;
        self
    }
}

impl EnergySource for DcSupply {
    fn name(&self) -> &str {
        &self.name
    }

    fn sample(&mut self, _t: Seconds) -> SourceSample {
        SourceSample::Thevenin {
            v_oc: self.voltage,
            r_s: self.resistance,
        }
    }
}

/// Scales another source's output (amplitude for Thévenin, power/current for
/// the other sample kinds) — useful for spatial-variation sweeps.
#[derive(Debug, Clone)]
pub struct Scaled<S> {
    inner: S,
    factor: f64,
    name: String,
}

impl<S: EnergySource> Scaled<S> {
    /// Wraps `inner`, scaling its output by `factor`.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or non-finite.
    pub fn new(inner: S, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be finite and ≥ 0"
        );
        let name = format!("{}×{:.3}", inner.name(), factor);
        Self {
            inner,
            factor,
            name,
        }
    }

    /// Returns the wrapped source.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: EnergySource> EnergySource for Scaled<S> {
    fn name(&self) -> &str {
        &self.name
    }

    fn sample(&mut self, t: Seconds) -> SourceSample {
        match self.inner.sample(t) {
            SourceSample::Thevenin { v_oc, r_s } => SourceSample::Thevenin {
                v_oc: v_oc * self.factor,
                r_s,
            },
            SourceSample::Power(p) => SourceSample::Power(p * self.factor),
            SourceSample::Current { i, v_compliance } => SourceSample::Current {
                i: i * self.factor,
                v_compliance,
            },
        }
    }
}

/// Gates another source through on/off windows — models intermittent
/// availability (a reader that is only sometimes present, mains outages …).
#[derive(Debug, Clone)]
pub struct Gated<S> {
    inner: S,
    /// Sorted, non-overlapping `(start, end)` windows during which the
    /// source is live.
    windows: Vec<(Seconds, Seconds)>,
    name: String,
}

impl<S: EnergySource> Gated<S> {
    /// Wraps `inner`, letting it through only inside `windows`.
    ///
    /// # Panics
    ///
    /// Panics if any window is empty or windows are not sorted/disjoint.
    pub fn new(inner: S, windows: Vec<(Seconds, Seconds)>) -> Self {
        let mut last_end = f64::NEG_INFINITY;
        for &(s, e) in &windows {
            assert!(s.0 < e.0, "gate window must have start < end");
            assert!(s.0 >= last_end, "gate windows must be sorted and disjoint");
            last_end = e.0;
        }
        let name = format!("{} (gated)", inner.name());
        Self {
            inner,
            windows,
            name,
        }
    }

    fn is_on(&self, t: Seconds) -> bool {
        self.windows.iter().any(|&(s, e)| t.0 >= s.0 && t.0 < e.0)
    }
}

impl<S: EnergySource> EnergySource for Gated<S> {
    fn name(&self) -> &str {
        &self.name
    }

    fn sample(&mut self, t: Seconds) -> SourceSample {
        if self.is_on(t) {
            self.inner.sample(t)
        } else {
            SourceSample::OFF
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edc_units::Hertz;
    use proptest::prelude::*;

    #[test]
    fn thevenin_sample_diode_behaviour() {
        let s = SourceSample::Thevenin {
            v_oc: Volts(3.0),
            r_s: Ohms(100.0),
        };
        assert_eq!(s.current_into(Volts(1.0)), Amps(0.02));
        // Node above source: diode blocks, no reverse current.
        assert_eq!(s.current_into(Volts(4.0)), Amps::ZERO);
    }

    #[test]
    fn power_sample_respects_compliance_floor() {
        let s = SourceSample::Power(Watts::from_milli(1.0));
        let at_zero = s.current_into(Volts(0.0));
        let expected = Watts::from_milli(1.0) / POWER_SOURCE_COMPLIANCE_FLOOR;
        assert_eq!(at_zero, expected);
        let at_two = s.current_into(Volts(2.0));
        assert_eq!(at_two, Amps(0.0005));
    }

    #[test]
    fn current_sample_stops_at_compliance() {
        let s = SourceSample::Current {
            i: Amps::from_micro(430.0),
            v_compliance: Volts(2.5),
        };
        assert_eq!(s.current_into(Volts(1.0)), Amps::from_micro(430.0));
        assert_eq!(s.current_into(Volts(2.5)), Amps::ZERO);
    }

    #[test]
    fn dc_supply_is_constant() {
        let mut dc = DcSupply::new(Volts(3.3)).with_resistance(Ohms(10.0));
        let a = dc.sample(Seconds(0.0));
        let b = dc.sample(Seconds(100.0));
        assert_eq!(a, b);
        assert!((dc.current_into(Volts(3.0), Seconds(1.0)).0 - 0.03).abs() < 1e-12);
    }

    #[test]
    fn scaled_source_scales_each_kind() {
        let mut s = Scaled::new(DcSupply::new(Volts(4.0)), 0.5);
        match s.sample(Seconds(0.0)) {
            SourceSample::Thevenin { v_oc, .. } => assert_eq!(v_oc, Volts(2.0)),
            other => panic!("unexpected sample {other:?}"),
        }
        assert!(s.name().contains("dc"));
    }

    #[test]
    fn gated_source_switches_off_outside_windows() {
        let mut g = Gated::new(
            DcSupply::new(Volts(3.0)),
            vec![(Seconds(1.0), Seconds(2.0))],
        );
        assert_eq!(g.sample(Seconds(0.5)), SourceSample::OFF);
        assert_ne!(g.sample(Seconds(1.5)), SourceSample::OFF);
        assert_eq!(g.sample(Seconds(2.0)), SourceSample::OFF);
    }

    #[test]
    #[should_panic(expected = "sorted and disjoint")]
    fn gated_rejects_overlapping_windows() {
        let _ = Gated::new(
            DcSupply::new(Volts(3.0)),
            vec![(Seconds(0.0), Seconds(2.0)), (Seconds(1.0), Seconds(3.0))],
        );
    }

    #[test]
    fn boxed_source_is_usable_as_trait_object() {
        let mut boxed: Box<dyn EnergySource> =
            Box::new(SignalGenerator::new(Waveform::Dc, Volts(2.0), Hertz(1.0)));
        assert!(boxed.sample(Seconds(0.0)).current_into(Volts(0.0)).0 > 0.0);
        assert!(!boxed.name().is_empty());
    }

    proptest! {
        #[test]
        fn prop_current_never_negative(
            v_oc in 0.0f64..10.0,
            r_s in 1.0f64..10_000.0,
            node_v in 0.0f64..10.0,
        ) {
            let s = SourceSample::Thevenin { v_oc: Volts(v_oc), r_s: Ohms(r_s) };
            prop_assert!(s.current_into(Volts(node_v)).0 >= 0.0);
        }

        #[test]
        fn prop_power_sample_finite(p in 0.0f64..10.0, node_v in 0.0f64..5.0) {
            let s = SourceSample::Power(Watts(p));
            let i = s.current_into(Volts(node_v));
            prop_assert!(i.is_finite());
            prop_assert!(i.0 >= 0.0);
        }
    }
}
