//! Indoor photovoltaic model — the source of the paper's Fig. 1(b): two days
//! of harvested current from an indoor PV cell, confined to a 280–430 µA
//! band with clear diurnal structure.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use edc_units::{Amps, Seconds, Volts};

use crate::{EnergySource, SourceSample};

/// An indoor photovoltaic cell producing a diurnal current profile.
///
/// The model is a plateau-with-smooth-edges day curve over a night floor:
/// indoor cells under office lighting see a baseline from permanent lighting
/// plus a daytime contribution from windows and occupancy-driven lights.
/// Deterministic per-seed "weather" noise perturbs the day plateau, matching
/// the visible jitter in Fig. 1(b).
///
/// The cell behaves as a current source up to its open-circuit compliance
/// voltage.
///
/// # Examples
///
/// ```
/// use edc_harvest::Photovoltaic;
/// use edc_units::Seconds;
///
/// let mut pv = Photovoltaic::indoor(42);
/// let night = pv.current_at(Seconds::from_hours(3.0));
/// let noon = pv.current_at(Seconds::from_hours(12.0));
/// assert!(noon > night);
/// ```
#[derive(Debug, Clone)]
pub struct Photovoltaic {
    name: String,
    night_floor: Amps,
    day_peak: Amps,
    sunrise: Seconds,
    sunset: Seconds,
    /// Edge softness of the day plateau.
    twilight: Seconds,
    v_oc: Volts,
    /// Relative amplitude of the deterministic per-seed noise.
    noise_frac: f64,
    /// Pre-generated hourly noise factors (two weeks' worth, looped).
    noise_table: Vec<f64>,
}

const NOISE_TABLE_HOURS: usize = 24 * 14;

impl Photovoltaic {
    /// The canonical Fig. 1(b) indoor cell: 285 µA night floor, 425 µA day
    /// peak, day window 07:00–19:00 with 1.5 h twilights, 2.4 V open-circuit.
    pub fn indoor(seed: u64) -> Self {
        Self::new(
            Amps::from_micro(285.0),
            Amps::from_micro(425.0),
            Seconds::from_hours(7.0),
            Seconds::from_hours(19.0),
            seed,
        )
    }

    /// An outdoor-ish cell with a deep night (no permanent lighting) — used
    /// by the energy-neutral WSN scenarios.
    pub fn outdoor(seed: u64) -> Self {
        Self::new(
            Amps::from_micro(2.0),
            Amps::from_milli(1.2),
            Seconds::from_hours(6.0),
            Seconds::from_hours(20.0),
            seed,
        )
    }

    /// Creates a cell with explicit floor/peak currents and day window.
    ///
    /// # Panics
    ///
    /// Panics if `day_peak < night_floor` or the day window is inverted.
    pub fn new(
        night_floor: Amps,
        day_peak: Amps,
        sunrise: Seconds,
        sunset: Seconds,
        seed: u64,
    ) -> Self {
        assert!(
            day_peak.0 >= night_floor.0,
            "day peak must be ≥ night floor"
        );
        assert!(sunrise.0 < sunset.0, "sunrise must precede sunset");
        let mut rng = StdRng::seed_from_u64(seed);
        let noise_table = (0..NOISE_TABLE_HOURS)
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        Self {
            name: format!("pv-{}µA..{}µA", night_floor.as_micro(), day_peak.as_micro()),
            night_floor,
            day_peak,
            sunrise,
            sunset,
            twilight: Seconds::from_hours(1.5),
            v_oc: Volts(2.4),
            noise_frac: 0.06,
            noise_table,
        }
    }

    /// Overrides the open-circuit (compliance) voltage.
    pub fn with_open_circuit_voltage(mut self, v_oc: Volts) -> Self {
        assert!(v_oc.is_positive(), "open-circuit voltage must be > 0");
        self.v_oc = v_oc;
        self
    }

    /// Overrides the relative noise amplitude (0 disables noise).
    pub fn with_noise(mut self, frac: f64) -> Self {
        assert!((0.0..1.0).contains(&frac), "noise fraction in [0, 1)");
        self.noise_frac = frac;
        self
    }

    /// Smooth day-shape factor in `[0, 1]` for the time-of-day of `t`.
    fn day_factor(&self, t: Seconds) -> f64 {
        fn smooth(x: f64) -> f64 {
            let x = x.clamp(0.0, 1.0);
            x * x * (3.0 - 2.0 * x)
        }
        let day = t.0.rem_euclid(86_400.0);
        let rise0 = self.sunrise.0 - self.twilight.0;
        let set1 = self.sunset.0 + self.twilight.0;
        if day < rise0 || day > set1 {
            0.0
        } else if day < self.sunrise.0 {
            smooth((day - rise0) / self.twilight.0)
        } else if day <= self.sunset.0 {
            1.0
        } else {
            smooth(1.0 - (day - self.sunset.0) / self.twilight.0)
        }
    }

    /// Deterministic noise factor for the hour containing `t`.
    fn noise_at(&self, t: Seconds) -> f64 {
        if self.noise_frac == 0.0 {
            return 0.0;
        }
        let hour = (t.0 / 3600.0).floor() as usize % NOISE_TABLE_HOURS;
        self.noise_table[hour] * self.noise_frac
    }

    /// Harvested current at time `t` (replayable: same `t` → same value).
    pub fn current_at(&self, t: Seconds) -> Amps {
        let base = self.night_floor.lerp(self.day_peak, self.day_factor(t));
        let noisy = base * (1.0 + self.noise_at(t) * self.day_factor(t));
        noisy.max(Amps::ZERO)
    }
}

impl EnergySource for Photovoltaic {
    fn name(&self) -> &str {
        &self.name
    }

    fn sample(&mut self, t: Seconds) -> SourceSample {
        SourceSample::Current {
            i: self.current_at(t),
            v_compliance: self.v_oc,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn indoor_band_matches_fig1b() {
        let pv = Photovoltaic::indoor(7);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        // Two days at one-minute resolution, as in the figure.
        for minute in 0..(48 * 60) {
            let i = pv
                .current_at(Seconds::from_minutes(minute as f64))
                .as_micro();
            lo = lo.min(i);
            hi = hi.max(i);
        }
        assert!(lo >= 260.0, "floor {lo} µA below plausible band");
        assert!((270.0..=300.0).contains(&lo), "night floor {lo} µA");
        assert!((390.0..=460.0).contains(&hi), "day peak {hi} µA");
    }

    #[test]
    fn diurnal_structure_repeats_daily() {
        let pv = Photovoltaic::indoor(7).with_noise(0.0);
        let a = pv.current_at(Seconds::from_hours(12.0));
        let b = pv.current_at(Seconds::from_hours(36.0));
        assert!((a.0 - b.0).abs() < 1e-12);
    }

    #[test]
    fn night_is_floor_day_is_peak() {
        let pv = Photovoltaic::indoor(3).with_noise(0.0);
        assert_eq!(
            pv.current_at(Seconds::from_hours(2.0)),
            Amps::from_micro(285.0)
        );
        assert_eq!(
            pv.current_at(Seconds::from_hours(13.0)),
            Amps::from_micro(425.0)
        );
    }

    #[test]
    fn seeded_noise_is_deterministic() {
        let a = Photovoltaic::indoor(99);
        let b = Photovoltaic::indoor(99);
        for h in 0..48 {
            let t = Seconds::from_hours(h as f64 + 0.5);
            assert_eq!(a.current_at(t), b.current_at(t));
        }
        let c = Photovoltaic::indoor(100);
        let differs = (0..48).any(|h| {
            let t = Seconds::from_hours(h as f64 + 0.5);
            a.current_at(t) != c.current_at(t)
        });
        assert!(differs, "different seeds should differ somewhere");
    }

    #[test]
    fn compliance_voltage_stops_charging() {
        let mut pv = Photovoltaic::indoor(1);
        let s = pv.sample(Seconds::from_hours(12.0));
        assert_eq!(s.current_into(Volts(2.4)), Amps::ZERO);
        assert!(s.current_into(Volts(1.0)).0 > 0.0);
    }

    #[test]
    fn outdoor_profile_has_deep_night() {
        let pv = Photovoltaic::outdoor(5).with_noise(0.0);
        let night = pv.current_at(Seconds::from_hours(1.0));
        let noon = pv.current_at(Seconds::from_hours(13.0));
        assert!(noon.0 / night.0 > 100.0, "outdoor day/night contrast");
    }

    proptest! {
        #[test]
        fn prop_current_nonnegative_and_bounded(t_hours in 0.0f64..96.0, seed in 0u64..32) {
            let pv = Photovoltaic::indoor(seed);
            let i = pv.current_at(Seconds::from_hours(t_hours));
            prop_assert!(i.0 >= 0.0);
            // Peak plus max noise margin.
            prop_assert!(i.as_micro() <= 425.0 * 1.07);
        }

        #[test]
        fn prop_day_factor_unit_interval(t_hours in 0.0f64..48.0) {
            let pv = Photovoltaic::indoor(0);
            let f = pv.day_factor(Seconds::from_hours(t_hours));
            prop_assert!((0.0..=1.0).contains(&f));
        }
    }
}
