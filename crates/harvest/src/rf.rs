//! RF energy harvester — the supply class behind WISPCam ([4] in the paper):
//! µW-scale power scavenged from an RFID reader's field, available only while
//! the reader illuminates the tag.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use edc_units::{Seconds, Watts};

use crate::{EnergySource, SourceSample};

/// Reader-activity schedule for an [`RfHarvester`].
#[derive(Debug, Clone)]
pub enum ReaderSchedule {
    /// Reader always on (tag parked in front of a powered reader).
    Continuous,
    /// Reader interrogates periodically: on for `on` out of every `period`.
    Periodic {
        /// Repetition period.
        period: Seconds,
        /// On-duration at the start of each period.
        on: Seconds,
    },
    /// Randomised interrogation: exponentially distributed gaps with the
    /// given mean, fixed burst length. Deterministic per seed.
    Random {
        /// Mean gap between bursts.
        mean_gap: Seconds,
        /// Burst duration.
        burst: Seconds,
    },
}

/// An RF harvester delivering regulated power while the reader is active.
///
/// Field strength (and thus harvested power) falls with the square of the
/// tag–reader distance, normalised to `reference_power` at 1 m.
///
/// # Examples
///
/// ```
/// use edc_harvest::{EnergySource, RfHarvester};
/// use edc_units::{Seconds, Volts, Watts};
///
/// let mut rf = RfHarvester::wispcam(1);
/// let s = rf.sample(Seconds(0.5));
/// assert!(s.power_into(Volts(2.0)).0 >= 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct RfHarvester {
    name: String,
    reference_power: Watts,
    distance_m: f64,
    schedule: ReaderSchedule,
    /// Precomputed burst windows for the `Random` schedule.
    random_windows: Vec<(f64, f64)>,
}

impl RfHarvester {
    /// A WISPCam-like setup: ~4 mW available at 1 m from the reader, tag at
    /// 1 m, reader duty-cycled 50 ms on per 250 ms.
    pub fn wispcam(seed: u64) -> Self {
        Self::new(
            Watts::from_milli(4.0),
            1.0,
            ReaderSchedule::Periodic {
                period: Seconds(0.25),
                on: Seconds(0.05),
            },
            seed,
        )
    }

    /// Creates an RF harvester.
    ///
    /// `reference_power` is the harvested power at 1 m; `distance_m` scales
    /// it by `1/d²`.
    ///
    /// # Panics
    ///
    /// Panics if `reference_power` is negative, `distance_m` is not
    /// strictly positive, or a schedule duration is non-positive.
    pub fn new(
        reference_power: Watts,
        distance_m: f64,
        schedule: ReaderSchedule,
        seed: u64,
    ) -> Self {
        assert!(reference_power.0 >= 0.0, "reference power must be ≥ 0");
        assert!(distance_m > 0.0, "distance must be > 0");
        let random_windows = match &schedule {
            ReaderSchedule::Periodic { period, on } => {
                assert!(
                    period.is_positive() && on.is_positive(),
                    "schedule durations > 0"
                );
                assert!(on.0 <= period.0, "on-time cannot exceed period");
                Vec::new()
            }
            ReaderSchedule::Random { mean_gap, burst } => {
                assert!(
                    mean_gap.is_positive() && burst.is_positive(),
                    "schedule durations > 0"
                );
                let mut rng = StdRng::seed_from_u64(seed);
                let mut windows = Vec::new();
                let mut t = 0.0;
                // One hour of schedule is plenty for every scenario here;
                // beyond it the pattern loops.
                while t < 3600.0 {
                    let gap: f64 = -mean_gap.0 * (1.0 - rng.gen::<f64>()).ln();
                    let start = t + gap;
                    windows.push((start, start + burst.0));
                    t = start + burst.0;
                }
                windows
            }
            ReaderSchedule::Continuous => Vec::new(),
        };
        Self {
            name: format!("rf-{reference_power}@{distance_m}m"),
            reference_power,
            distance_m,
            schedule,
            random_windows,
        }
    }

    /// `true` when the reader illuminates the tag at time `t`.
    pub fn reader_active(&self, t: Seconds) -> bool {
        match &self.schedule {
            ReaderSchedule::Continuous => true,
            ReaderSchedule::Periodic { period, on } => t.0.rem_euclid(period.0) < on.0,
            ReaderSchedule::Random { .. } => {
                let wrapped = t.0.rem_euclid(3600.0);
                // Binary search over sorted windows.
                let idx = self
                    .random_windows
                    .partition_point(|&(_, end)| end <= wrapped);
                self.random_windows
                    .get(idx)
                    .is_some_and(|&(start, _)| wrapped >= start)
            }
        }
    }

    /// Power harvested at time `t` (zero when the reader is off).
    pub fn power_at(&self, t: Seconds) -> Watts {
        if self.reader_active(t) {
            self.reference_power / (self.distance_m * self.distance_m)
        } else {
            Watts::ZERO
        }
    }
}

impl EnergySource for RfHarvester {
    fn name(&self) -> &str {
        &self.name
    }

    fn sample(&mut self, t: Seconds) -> SourceSample {
        SourceSample::Power(self.power_at(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn continuous_reader_always_on() {
        let rf = RfHarvester::new(Watts::from_milli(1.0), 1.0, ReaderSchedule::Continuous, 0);
        assert!(rf.reader_active(Seconds(0.0)));
        assert!(rf.reader_active(Seconds(12345.6)));
        assert_eq!(rf.power_at(Seconds(1.0)), Watts::from_milli(1.0));
    }

    #[test]
    fn periodic_schedule_duty_cycles() {
        let rf = RfHarvester::wispcam(0);
        assert!(rf.reader_active(Seconds(0.01)));
        assert!(!rf.reader_active(Seconds(0.10)));
        assert!(rf.reader_active(Seconds(0.26)));
    }

    #[test]
    fn distance_follows_inverse_square() {
        let near = RfHarvester::new(Watts::from_milli(4.0), 1.0, ReaderSchedule::Continuous, 0);
        let far = RfHarvester::new(Watts::from_milli(4.0), 2.0, ReaderSchedule::Continuous, 0);
        let ratio = near.power_at(Seconds(0.0)) / far.power_at(Seconds(0.0));
        assert!((ratio - 4.0).abs() < 1e-12);
    }

    #[test]
    fn random_schedule_is_deterministic_per_seed() {
        let mk = |seed| {
            RfHarvester::new(
                Watts::from_milli(2.0),
                1.0,
                ReaderSchedule::Random {
                    mean_gap: Seconds(1.0),
                    burst: Seconds(0.1),
                },
                seed,
            )
        };
        let a = mk(11);
        let b = mk(11);
        for i in 0..1000 {
            let t = Seconds(i as f64 * 0.05);
            assert_eq!(a.reader_active(t), b.reader_active(t));
        }
    }

    #[test]
    fn random_schedule_has_bursts_and_gaps() {
        let rf = RfHarvester::new(
            Watts::from_milli(2.0),
            1.0,
            ReaderSchedule::Random {
                mean_gap: Seconds(0.5),
                burst: Seconds(0.1),
            },
            3,
        );
        let mut on = 0usize;
        let n = 10_000;
        for i in 0..n {
            if rf.reader_active(Seconds(i as f64 * 0.01)) {
                on += 1;
            }
        }
        let frac = on as f64 / n as f64;
        // Expected duty ≈ burst/(burst+mean_gap) = 1/6 ≈ 0.17.
        assert!(
            (0.05..0.4).contains(&frac),
            "random duty fraction {frac} implausible"
        );
    }

    proptest! {
        #[test]
        fn prop_power_nonnegative(t in 0.0f64..5000.0, d in 0.1f64..10.0) {
            let rf = RfHarvester::new(
                Watts::from_milli(4.0),
                d,
                ReaderSchedule::Periodic { period: Seconds(0.25), on: Seconds(0.05) },
                0,
            );
            prop_assert!(rf.power_at(Seconds(t)).0 >= 0.0);
        }
    }
}
