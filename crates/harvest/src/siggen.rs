//! Laboratory signal generator — the controlled stimulus (DC–20 Hz) used to
//! validate Hibernus in the paper's Section III.

use std::f64::consts::PI;

use edc_units::{Hertz, Ohms, Seconds, Volts};

use crate::{EnergySource, SourceSample};

/// Waveform shapes produced by [`SignalGenerator`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Waveform {
    /// `A·sin(2πft)` (negative half clipped by the implicit series diode at
    /// the supply node, but reported raw by [`SignalGenerator::voltage_at`]).
    #[default]
    Sine,
    /// `max(0, A·sin(2πft))` — the stimulus of the paper's Fig. 7.
    HalfRectifiedSine,
    /// `|A·sin(2πft)|`.
    FullRectifiedSine,
    /// `±A` square wave.
    Square,
    /// Symmetric triangle between `−A` and `A`.
    Triangle,
    /// Constant `A`.
    Dc,
    /// `A` during the first `duty` fraction of each period, else 0.
    Pulse {
        /// On-fraction of each period, in `(0, 1)`.
        duty: f64,
    },
}

/// A deterministic, replayable waveform source behind a series resistance.
///
/// # Examples
///
/// ```
/// use edc_harvest::{SignalGenerator, Waveform};
/// use edc_units::{Hertz, Seconds, Volts};
///
/// let sg = SignalGenerator::new(Waveform::HalfRectifiedSine, Volts(4.0), Hertz(2.0));
/// assert_eq!(sg.voltage_at(Seconds(0.375)), Volts(0.0)); // negative half clipped
/// assert!((sg.voltage_at(Seconds(0.125)).0 - 4.0).abs() < 1e-9); // positive peak
/// ```
#[derive(Debug, Clone)]
pub struct SignalGenerator {
    name: String,
    waveform: Waveform,
    amplitude: Volts,
    frequency: Hertz,
    offset: Volts,
    resistance: Ohms,
    phase: f64,
}

impl SignalGenerator {
    /// Creates a generator with the given waveform, amplitude, and frequency.
    ///
    /// Defaults: zero DC offset, zero phase, 50 Ω output resistance.
    ///
    /// # Panics
    ///
    /// Panics if the amplitude is negative, the frequency is negative, or a
    /// pulse duty cycle is outside `(0, 1)`.
    pub fn new(waveform: Waveform, amplitude: Volts, frequency: Hertz) -> Self {
        assert!(amplitude.0 >= 0.0, "amplitude must be ≥ 0");
        assert!(frequency.0 >= 0.0, "frequency must be ≥ 0");
        if let Waveform::Pulse { duty } = waveform {
            assert!(
                duty > 0.0 && duty < 1.0,
                "pulse duty cycle must be in (0, 1), got {duty}"
            );
        }
        Self {
            name: format!("siggen-{waveform:?}-{frequency}"),
            waveform,
            amplitude,
            frequency,
            offset: Volts::ZERO,
            resistance: Ohms(50.0),
            phase: 0.0,
        }
    }

    /// Adds a DC offset to the waveform.
    pub fn with_offset(mut self, offset: Volts) -> Self {
        self.offset = offset;
        self
    }

    /// Overrides the output (series) resistance.
    ///
    /// # Panics
    ///
    /// Panics if `r` is not strictly positive.
    pub fn with_resistance(mut self, r: Ohms) -> Self {
        assert!(r.is_positive(), "output resistance must be > 0");
        self.resistance = r;
        self
    }

    /// Sets the initial phase in radians.
    pub fn with_phase(mut self, phase: f64) -> Self {
        self.phase = phase;
        self
    }

    /// The configured waveform.
    pub fn waveform(&self) -> Waveform {
        self.waveform
    }

    /// The configured frequency.
    pub fn frequency(&self) -> Hertz {
        self.frequency
    }

    /// Instantaneous open-circuit output voltage at time `t` (may be
    /// negative for bipolar waveforms).
    pub fn voltage_at(&self, t: Seconds) -> Volts {
        let theta = 2.0 * PI * self.frequency.0 * t.0 + self.phase;
        let unit = match self.waveform {
            Waveform::Sine => theta.sin(),
            Waveform::HalfRectifiedSine => theta.sin().max(0.0),
            Waveform::FullRectifiedSine => theta.sin().abs(),
            Waveform::Square => {
                if theta.sin() >= 0.0 {
                    1.0
                } else {
                    -1.0
                }
            }
            Waveform::Triangle => {
                let frac = (theta / (2.0 * PI)).rem_euclid(1.0);
                if frac < 0.25 {
                    4.0 * frac
                } else if frac < 0.75 {
                    2.0 - 4.0 * frac
                } else {
                    4.0 * frac - 4.0
                }
            }
            Waveform::Dc => 1.0,
            Waveform::Pulse { duty } => {
                let frac = (self.frequency.0 * t.0).rem_euclid(1.0);
                if frac < duty {
                    1.0
                } else {
                    0.0
                }
            }
        };
        self.amplitude * unit + self.offset
    }
}

impl EnergySource for SignalGenerator {
    fn name(&self) -> &str {
        &self.name
    }

    fn sample(&mut self, t: Seconds) -> SourceSample {
        SourceSample::Thevenin {
            v_oc: self.voltage_at(t),
            r_s: self.resistance,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sg(w: Waveform) -> SignalGenerator {
        SignalGenerator::new(w, Volts(2.0), Hertz(1.0))
    }

    #[test]
    fn sine_hits_known_points() {
        let g = sg(Waveform::Sine);
        assert!((g.voltage_at(Seconds(0.25)).0 - 2.0).abs() < 1e-9);
        assert!((g.voltage_at(Seconds(0.75)).0 + 2.0).abs() < 1e-9);
        assert!(g.voltage_at(Seconds(0.0)).0.abs() < 1e-9);
    }

    #[test]
    fn half_rectified_clips_negative_half() {
        let g = sg(Waveform::HalfRectifiedSine);
        assert_eq!(g.voltage_at(Seconds(0.75)), Volts(0.0));
        assert!((g.voltage_at(Seconds(0.25)).0 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn full_rectified_is_absolute_value() {
        let g = sg(Waveform::FullRectifiedSine);
        assert!((g.voltage_at(Seconds(0.75)).0 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn square_switches_sign() {
        let g = sg(Waveform::Square);
        assert_eq!(g.voltage_at(Seconds(0.1)), Volts(2.0));
        assert_eq!(g.voltage_at(Seconds(0.6)), Volts(-2.0));
    }

    #[test]
    fn triangle_peaks_at_quarter_period() {
        let g = sg(Waveform::Triangle);
        assert!((g.voltage_at(Seconds(0.25)).0 - 2.0).abs() < 1e-9);
        assert!((g.voltage_at(Seconds(0.75)).0 + 2.0).abs() < 1e-9);
        assert!(g.voltage_at(Seconds(0.5)).0.abs() < 1e-9);
    }

    #[test]
    fn pulse_duty_cycle() {
        let g = SignalGenerator::new(Waveform::Pulse { duty: 0.25 }, Volts(3.0), Hertz(1.0));
        assert_eq!(g.voltage_at(Seconds(0.1)), Volts(3.0));
        assert_eq!(g.voltage_at(Seconds(0.5)), Volts(0.0));
    }

    #[test]
    fn dc_with_offset() {
        let g = sg(Waveform::Dc).with_offset(Volts(0.5));
        assert_eq!(g.voltage_at(Seconds(42.0)), Volts(2.5));
    }

    #[test]
    fn phase_shift_moves_waveform() {
        let g = sg(Waveform::Sine).with_phase(PI / 2.0);
        assert!((g.voltage_at(Seconds(0.0)).0 - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "duty cycle")]
    fn bad_duty_rejected() {
        let _ = SignalGenerator::new(Waveform::Pulse { duty: 1.5 }, Volts(1.0), Hertz(1.0));
    }

    proptest! {
        #[test]
        fn prop_amplitude_bounds_all_waveforms(
            t in 0.0f64..100.0,
            f in 0.1f64..20.0,
            a in 0.0f64..10.0,
        ) {
            for w in [
                Waveform::Sine,
                Waveform::HalfRectifiedSine,
                Waveform::FullRectifiedSine,
                Waveform::Square,
                Waveform::Triangle,
                Waveform::Dc,
                Waveform::Pulse { duty: 0.5 },
            ] {
                let g = SignalGenerator::new(w, Volts(a), Hertz(f));
                let v = g.voltage_at(Seconds(t));
                prop_assert!(v.0.abs() <= a + 1e-9, "waveform {w:?} exceeded amplitude");
            }
        }

        #[test]
        fn prop_rectified_nonnegative(t in 0.0f64..100.0, f in 0.1f64..20.0) {
            let g = SignalGenerator::new(Waveform::HalfRectifiedSine, Volts(5.0), Hertz(f));
            prop_assert!(g.voltage_at(Seconds(t)).0 >= 0.0);
            let g = SignalGenerator::new(Waveform::FullRectifiedSine, Volts(5.0), Hertz(f));
            prop_assert!(g.voltage_at(Seconds(t)).0 >= 0.0);
        }

        #[test]
        fn prop_periodicity(t in 0.0f64..10.0, f in 0.5f64..10.0) {
            let g = SignalGenerator::new(Waveform::Sine, Volts(1.0), Hertz(f));
            let period = 1.0 / f;
            let a = g.voltage_at(Seconds(t));
            let b = g.voltage_at(Seconds(t + period));
            prop_assert!((a.0 - b.0).abs() < 1e-6);
        }
    }
}
