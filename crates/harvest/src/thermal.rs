//! Thermoelectric generator (TEG) — body-heat or machine-waste-heat
//! harvesting: a low-voltage, slowly varying Thévenin source whose output
//! follows the temperature gradient.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use edc_units::{Ohms, Seconds, Volts};

use crate::{EnergySource, SourceSample};

/// A TEG: open-circuit voltage proportional to the hot–cold gradient, with
/// a slow random walk modelling contact/airflow variation (deterministic
/// per seed).
///
/// # Examples
///
/// ```
/// use edc_harvest::ThermalGenerator;
/// use edc_units::Seconds;
///
/// let teg = ThermalGenerator::wearable(7);
/// let v = teg.open_circuit_at(Seconds(60.0));
/// assert!(v.0 > 0.0 && v.0 < 1.0); // wearable TEGs are sub-volt devices
/// ```
#[derive(Debug, Clone)]
pub struct ThermalGenerator {
    name: String,
    /// Seebeck output per kelvin of gradient.
    volts_per_kelvin: Volts,
    /// Nominal gradient.
    gradient_k: f64,
    /// Gradient excursion amplitude (walk bounds).
    excursion_k: f64,
    internal_resistance: Ohms,
    /// Pre-walked gradient table, one entry per `walk_step`.
    walk: Vec<f64>,
    walk_step: Seconds,
}

const WALK_LEN: usize = 4096;

impl ThermalGenerator {
    /// A wearable body-heat TEG: ~50 mV/K, 2 K nominal gradient, ±1.2 K
    /// excursions on a 10 s timescale, 5 Ω internal resistance.
    pub fn wearable(seed: u64) -> Self {
        Self::new(Volts(0.05), 2.0, 1.2, Ohms(5.0), Seconds(10.0), seed)
    }

    /// An industrial waste-heat TEG: larger, steadier gradient.
    pub fn industrial(seed: u64) -> Self {
        Self::new(Volts(0.05), 15.0, 3.0, Ohms(2.0), Seconds(60.0), seed)
    }

    /// Creates a TEG with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if any magnitude parameter is non-positive or the excursion
    /// exceeds the nominal gradient.
    pub fn new(
        volts_per_kelvin: Volts,
        gradient_k: f64,
        excursion_k: f64,
        internal_resistance: Ohms,
        walk_step: Seconds,
        seed: u64,
    ) -> Self {
        assert!(volts_per_kelvin.is_positive(), "Seebeck coefficient > 0");
        assert!(gradient_k > 0.0, "gradient must be > 0");
        assert!(
            excursion_k >= 0.0 && excursion_k < gradient_k,
            "excursion must be < nominal gradient"
        );
        assert!(internal_resistance.is_positive(), "resistance > 0");
        assert!(walk_step.is_positive(), "walk step > 0");
        // Bounded random walk around the nominal gradient.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = gradient_k;
        let walk = (0..WALK_LEN)
            .map(|_| {
                g += rng.gen_range(-0.2..0.2) * excursion_k;
                g = g.clamp(gradient_k - excursion_k, gradient_k + excursion_k);
                g
            })
            .collect();
        Self {
            name: format!("teg-{gradient_k}K"),
            volts_per_kelvin,
            gradient_k,
            excursion_k,
            internal_resistance,
            walk,
            walk_step,
        }
    }

    /// The instantaneous gradient (kelvin) at `t` (replayable; linear
    /// interpolation over the walk table, looped).
    pub fn gradient_at(&self, t: Seconds) -> f64 {
        let pos = (t.0 / self.walk_step.0).rem_euclid(WALK_LEN as f64);
        let i = pos.floor() as usize % WALK_LEN;
        let j = (i + 1) % WALK_LEN;
        let frac = pos - pos.floor();
        self.walk[i] * (1.0 - frac) + self.walk[j] * frac
    }

    /// Open-circuit voltage at `t`.
    pub fn open_circuit_at(&self, t: Seconds) -> Volts {
        self.volts_per_kelvin * self.gradient_at(t)
    }

    /// The nominal gradient.
    pub fn nominal_gradient(&self) -> f64 {
        self.gradient_k
    }

    /// The excursion bound.
    pub fn excursion(&self) -> f64 {
        self.excursion_k
    }
}

impl EnergySource for ThermalGenerator {
    fn name(&self) -> &str {
        &self.name
    }

    fn sample(&mut self, t: Seconds) -> SourceSample {
        SourceSample::Thevenin {
            v_oc: self.open_circuit_at(t),
            r_s: self.internal_resistance,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn wearable_output_is_sub_volt() {
        let teg = ThermalGenerator::wearable(1);
        for i in 0..500 {
            let v = teg.open_circuit_at(Seconds(i as f64 * 7.0));
            assert!(v.0 > 0.0 && v.0 < 0.5, "wearable TEG {v} implausible");
        }
    }

    #[test]
    fn gradient_stays_in_excursion_band() {
        let teg = ThermalGenerator::wearable(3);
        for i in 0..2000 {
            let g = teg.gradient_at(Seconds(i as f64 * 5.0));
            assert!((0.8 - 1e-9..=3.2 + 1e-9).contains(&g), "gradient {g}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = ThermalGenerator::wearable(9);
        let b = ThermalGenerator::wearable(9);
        for i in 0..100 {
            let t = Seconds(i as f64 * 13.0);
            assert_eq!(a.open_circuit_at(t), b.open_circuit_at(t));
        }
    }

    #[test]
    fn industrial_outpowers_wearable() {
        let w = ThermalGenerator::wearable(1);
        let i = ThermalGenerator::industrial(1);
        assert!(i.open_circuit_at(Seconds(0.0)) > w.open_circuit_at(Seconds(0.0)) * 3.0);
    }

    #[test]
    #[should_panic(expected = "excursion must be")]
    fn oversize_excursion_rejected() {
        let _ = ThermalGenerator::new(Volts(0.05), 1.0, 1.5, Ohms(5.0), Seconds(10.0), 0);
    }

    proptest! {
        #[test]
        fn prop_walk_continuous(t in 0.0f64..10_000.0) {
            let teg = ThermalGenerator::wearable(5);
            let a = teg.gradient_at(Seconds(t));
            let b = teg.gradient_at(Seconds(t + 0.5));
            // Half a walk step can move the gradient only fractionally.
            prop_assert!((a - b).abs() < 0.5);
        }
    }
}
