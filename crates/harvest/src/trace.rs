//! Trace playback — replays recorded `P_h(t)` or `V(t)` series.
//!
//! The paper's experimental data is published as time-series traces (DOI
//! 10.5258/SOTON/404058). Those files are not available offline, so the
//! workspace generates synthetic equivalents; [`TracePlayback`] is the
//! common mechanism that replays either kind of series as an
//! [`EnergySource`], with linear interpolation and optional looping.

use edc_units::{Ohms, Seconds, Volts, Watts};

use crate::{EnergySource, SourceSample};

/// What the trace samples represent.
#[derive(Debug, Clone, Copy, PartialEq)]
enum TraceKind {
    /// Open-circuit voltage behind the given source resistance.
    Voltage(Ohms),
    /// Regulated harvested power.
    Power,
}

/// Replays a recorded time series as an energy source.
///
/// # Examples
///
/// ```
/// use edc_harvest::{EnergySource, TracePlayback};
/// use edc_units::{Seconds, Volts, Watts};
///
/// let trace = TracePlayback::from_power_series(
///     "bench",
///     vec![(Seconds(0.0), Watts(0.001)), (Seconds(1.0), Watts(0.003))],
/// ).looping();
/// let mid = trace.power_at(Seconds(0.5));
/// assert!((mid.0 - 0.002).abs() < 1e-12); // linear interpolation
/// ```
#[derive(Debug, Clone)]
pub struct TracePlayback {
    name: String,
    /// Monotonically increasing sample times with their values.
    samples: Vec<(Seconds, f64)>,
    kind: TraceKind,
    looping: bool,
}

impl TracePlayback {
    /// Creates a playback source from a voltage series behind `r_s`.
    ///
    /// # Panics
    ///
    /// Panics if the series is shorter than two samples or not strictly
    /// increasing in time.
    pub fn from_voltage_series(
        name: impl Into<String>,
        series: Vec<(Seconds, Volts)>,
        r_s: Ohms,
    ) -> Self {
        assert!(r_s.is_positive(), "source resistance must be > 0");
        let samples: Vec<_> = series.into_iter().map(|(t, v)| (t, v.0)).collect();
        Self::validated(name.into(), samples, TraceKind::Voltage(r_s))
    }

    /// Creates a playback source from a harvested-power series.
    ///
    /// # Panics
    ///
    /// Panics if the series is shorter than two samples or not strictly
    /// increasing in time.
    pub fn from_power_series(name: impl Into<String>, series: Vec<(Seconds, Watts)>) -> Self {
        let samples: Vec<_> = series.into_iter().map(|(t, p)| (t, p.0)).collect();
        Self::validated(name.into(), samples, TraceKind::Power)
    }

    fn validated(name: String, samples: Vec<(Seconds, f64)>, kind: TraceKind) -> Self {
        assert!(samples.len() >= 2, "trace needs at least two samples");
        for pair in samples.windows(2) {
            assert!(
                pair[0].0 .0 < pair[1].0 .0,
                "trace times must be strictly increasing"
            );
        }
        Self {
            name,
            samples,
            kind,
            looping: false,
        }
    }

    /// Makes the trace repeat indefinitely instead of holding its last value.
    pub fn looping(mut self) -> Self {
        self.looping = true;
        self
    }

    /// Reduces the trace's sample rate by keeping every `k`-th sample
    /// (indices `0, k, 2k, …`) **plus the final sample**, so the decimated
    /// trace always spans the original duration and stays at least two
    /// samples long. `k = 1` is the identity. Values between the kept
    /// samples change (linear interpolation now bridges a wider gap) — it
    /// is a fidelity knob, exactly like coarsening the simulation
    /// timestep, and the explore evaluator discounts it the same way.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero (the trace would never sample).
    pub fn decimated(self, k: u64) -> Self {
        assert!(k >= 1, "decimation factor must be ≥ 1");
        if k == 1 {
            return self;
        }
        let last = self.samples.len() - 1;
        let samples: Vec<(Seconds, f64)> = self
            .samples
            .iter()
            .enumerate()
            .filter(|&(i, _)| (i as u64).is_multiple_of(k) || i == last)
            .map(|(_, &s)| s)
            .collect();
        Self { samples, ..self }
    }

    /// Duration covered by the underlying samples.
    pub fn duration(&self) -> Seconds {
        Seconds(self.samples.last().unwrap().0 .0 - self.samples[0].0 .0)
    }

    /// Raw interpolated value at `t` (volts or watts depending on the trace
    /// kind).
    ///
    /// Boundary semantics are explicit so fleet-scale replays (thousands of
    /// staggered nodes sampling near period edges) stay well-defined:
    ///
    /// - non-looping traces hold their endpoints: any `t` at or beyond the
    ///   last sample time — including exactly `duration()` past the first
    ///   sample — returns the last sample's value;
    /// - looping traces wrap on the half-open window `[t0, t1)`: exact
    ///   multiples of the period return the first sample's value, and
    ///   rounding artefacts of the wrap (`rem_euclid` landing on the period
    ///   itself for tiny negative offsets) clamp to the window instead of
    ///   indexing out of range.
    fn value_at(&self, t: Seconds) -> f64 {
        let t0 = self.samples[0].0 .0;
        let t1 = self.samples.last().unwrap().0 .0;
        let mut q = t.0;
        if self.looping {
            let span = t1 - t0;
            // rem_euclid is [0, span) over the reals, but in floating point
            // a tiny negative offset rounds to exactly `span`, and t0 + rel
            // can overshoot t1 by an ulp; clamp so the wrapped time always
            // stays inside the sampled window.
            let rel = (q - t0).rem_euclid(span);
            q = (t0 + rel).clamp(t0, t1);
        } else if q <= t0 {
            return self.samples[0].1;
        } else if q >= t1 {
            return self.samples.last().unwrap().1;
        }
        let idx = self
            .samples
            .partition_point(|&(ts, _)| ts.0 <= q)
            .saturating_sub(1)
            .min(self.samples.len() - 2);
        let (ta, va) = self.samples[idx];
        let (tb, vb) = self.samples[idx + 1];
        let frac = (q - ta.0) / (tb.0 - ta.0);
        va + (vb - va) * frac.clamp(0.0, 1.0)
    }

    /// Interpolated power at `t`, or `None` if this is a voltage trace
    /// (power is not defined without a load operating point).
    pub fn try_power_at(&self, t: Seconds) -> Option<Watts> {
        match self.kind {
            TraceKind::Power => Some(Watts(self.value_at(t))),
            TraceKind::Voltage(_) => None,
        }
    }

    /// Interpolated open-circuit voltage at `t`, or `None` if this is a
    /// power trace.
    pub fn try_voltage_at(&self, t: Seconds) -> Option<Volts> {
        match self.kind {
            TraceKind::Voltage(_) => Some(Volts(self.value_at(t))),
            TraceKind::Power => None,
        }
    }

    /// Interpolated power at `t`. Asserting wrapper over
    /// [`TracePlayback::try_power_at`] for call sites that know the trace
    /// kind statically.
    ///
    /// # Panics
    ///
    /// Panics if this is a voltage trace (power is not defined without a
    /// load operating point).
    pub fn power_at(&self, t: Seconds) -> Watts {
        self.try_power_at(t)
            .expect("power_at is only defined for power traces")
    }

    /// Interpolated open-circuit voltage at `t`. Asserting wrapper over
    /// [`TracePlayback::try_voltage_at`] for call sites that know the trace
    /// kind statically.
    ///
    /// # Panics
    ///
    /// Panics if this is a power trace.
    pub fn voltage_at(&self, t: Seconds) -> Volts {
        self.try_voltage_at(t)
            .expect("voltage_at is only defined for voltage traces")
    }
}

impl EnergySource for TracePlayback {
    fn name(&self) -> &str {
        &self.name
    }

    fn sample(&mut self, t: Seconds) -> SourceSample {
        match self.kind {
            TraceKind::Voltage(r_s) => SourceSample::Thevenin {
                v_oc: Volts(self.value_at(t)),
                r_s,
            },
            TraceKind::Power => SourceSample::Power(Watts(self.value_at(t).max(0.0))),
        }
    }
}

#[cfg(test)]
// Tests exercise the asserting wrappers on purpose (they are the
// documented panic surface); production code is held to the try_* forms
// via clippy.toml's disallowed-methods list.
#[allow(clippy::disallowed_methods)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn power_trace() -> TracePlayback {
        TracePlayback::from_power_series(
            "t",
            vec![
                (Seconds(0.0), Watts(0.0)),
                (Seconds(1.0), Watts(1.0)),
                (Seconds(2.0), Watts(0.5)),
            ],
        )
    }

    #[test]
    fn interpolates_linearly() {
        let tr = power_trace();
        assert!((tr.power_at(Seconds(0.5)).0 - 0.5).abs() < 1e-12);
        assert!((tr.power_at(Seconds(1.5)).0 - 0.75).abs() < 1e-12);
    }

    #[test]
    fn holds_endpoints_when_not_looping() {
        let tr = power_trace();
        assert_eq!(tr.power_at(Seconds(-1.0)), Watts(0.0));
        assert_eq!(tr.power_at(Seconds(10.0)), Watts(0.5));
    }

    #[test]
    fn looping_wraps_around() {
        let tr = power_trace().looping();
        assert!((tr.power_at(Seconds(2.5)).0 - tr.power_at(Seconds(0.5)).0).abs() < 1e-12);
        assert_eq!(tr.duration(), Seconds(2.0));
    }

    #[test]
    fn non_looping_boundary_holds_the_last_endpoint() {
        // t == duration() exactly is well-defined: the last sample's value.
        let tr = power_trace();
        assert_eq!(tr.try_power_at(tr.duration()), Some(Watts(0.5)));
        assert_eq!(tr.try_power_at(Seconds(0.0)), Some(Watts(0.0)));
        let v = TracePlayback::from_voltage_series(
            "v",
            vec![(Seconds(0.0), Volts(1.0)), (Seconds(2.0), Volts(4.0))],
            Ohms(100.0),
        );
        assert_eq!(v.try_voltage_at(v.duration()), Some(Volts(4.0)));
    }

    #[test]
    fn looping_boundary_wraps_exact_period_multiples_to_the_first_sample() {
        // The wrap window is half-open: t0 + k·period ≡ t0 for every k.
        let tr = power_trace().looping();
        let period = tr.duration();
        for k in 0..5u32 {
            let t = Seconds(period.0 * k as f64);
            assert_eq!(tr.try_power_at(t), Some(Watts(0.0)), "k = {k}");
        }
        let v = TracePlayback::from_voltage_series(
            "v",
            vec![(Seconds(0.0), Volts(1.0)), (Seconds(2.0), Volts(4.0))],
            Ohms(100.0),
        )
        .looping();
        assert_eq!(v.try_voltage_at(v.duration()), Some(Volts(1.0)));
    }

    #[test]
    fn looping_wrap_rounding_cannot_escape_the_sample_window() {
        // A tiny negative offset makes rem_euclid round to exactly the
        // period; before the clamp that read past the last segment's frac
        // domain. The continuous extension's limit from below is the last
        // sample's value.
        let tr = power_trace().looping();
        assert_eq!(tr.try_power_at(Seconds(-1e-18)), Some(Watts(0.5)));
        // …and a wrap on a trace that does not start at t = 0 stays inside
        // [t0, t1] too.
        let offset = TracePlayback::from_power_series(
            "offset",
            vec![(Seconds(5.0), Watts(1.0)), (Seconds(7.0), Watts(3.0))],
        )
        .looping();
        assert_eq!(offset.try_power_at(Seconds(5.0)), Some(Watts(1.0)));
        assert_eq!(offset.try_power_at(Seconds(7.0)), Some(Watts(1.0)));
        assert_eq!(offset.try_power_at(Seconds(9.0)), Some(Watts(1.0)));
        assert!((offset.power_at(Seconds(6.0)).0 - 2.0).abs() < 1e-12);
        assert!((offset.power_at(Seconds(8.0)).0 - 2.0).abs() < 1e-12);
        // Before t0 the wrap reaches backwards into the period.
        assert!((offset.power_at(Seconds(4.0)).0 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn voltage_trace_presents_thevenin() {
        let mut tr = TracePlayback::from_voltage_series(
            "v",
            vec![(Seconds(0.0), Volts(0.0)), (Seconds(1.0), Volts(4.0))],
            Ohms(100.0),
        );
        match tr.sample(Seconds(0.5)) {
            SourceSample::Thevenin { v_oc, r_s } => {
                assert!((v_oc.0 - 2.0).abs() < 1e-12);
                assert_eq!(r_s, Ohms(100.0));
            }
            other => panic!("unexpected sample {other:?}"),
        }
        assert!((tr.voltage_at(Seconds(0.25)).0 - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_monotone_times_rejected() {
        let _ = TracePlayback::from_power_series(
            "bad",
            vec![(Seconds(1.0), Watts(0.0)), (Seconds(0.5), Watts(1.0))],
        );
    }

    #[test]
    #[should_panic(expected = "at least two samples")]
    fn single_sample_rejected() {
        let _ = TracePlayback::from_power_series("bad", vec![(Seconds(0.0), Watts(0.0))]);
    }

    #[test]
    fn decimation_keeps_anchors_and_widens_interpolation() {
        let dense = TracePlayback::from_power_series(
            "d",
            (0..9)
                .map(|i| (Seconds(i as f64 * 0.25), Watts((i % 3) as f64)))
                .collect(),
        );
        let coarse = dense.clone().decimated(4);
        // Kept anchors (indices 0, 4, 8) agree exactly with the original.
        for &t in &[0.0, 1.0, 2.0] {
            assert_eq!(coarse.power_at(Seconds(t)), dense.power_at(Seconds(t)));
        }
        assert_eq!(coarse.duration(), dense.duration(), "full span retained");
        // Between anchors the coarse trace interpolates across the gap.
        let mid = coarse.power_at(Seconds(0.5)).0;
        assert!((mid - 0.5).abs() < 1e-12, "anchor 0 → anchor 4 midpoint");
        // The final sample is always kept, even off the stride.
        let coarse = dense.clone().decimated(5);
        assert_eq!(coarse.duration(), dense.duration());
        assert_eq!(
            coarse.power_at(dense.duration()),
            dense.power_at(dense.duration())
        );
    }

    #[test]
    fn decimation_by_one_is_the_identity() {
        let tr = power_trace();
        let same = tr.clone().decimated(1);
        for i in 0..20 {
            let t = Seconds(i as f64 * 0.173);
            assert_eq!(same.power_at(t), tr.power_at(t));
        }
    }

    #[test]
    #[should_panic(expected = "must be ≥ 1")]
    fn zero_decimation_panics() {
        let _ = power_trace().decimated(0);
    }

    #[test]
    fn try_accessors_report_kind_mismatch_as_none() {
        let p = power_trace();
        assert_eq!(p.try_power_at(Seconds(0.5)), Some(Watts(0.5)));
        assert_eq!(p.try_voltage_at(Seconds(0.5)), None);
        let v = TracePlayback::from_voltage_series(
            "v",
            vec![(Seconds(0.0), Volts(0.0)), (Seconds(1.0), Volts(4.0))],
            Ohms(100.0),
        );
        assert_eq!(v.try_voltage_at(Seconds(0.5)), Some(Volts(2.0)));
        assert_eq!(v.try_power_at(Seconds(0.5)), None);
    }

    #[test]
    #[should_panic(expected = "only defined for power traces")]
    fn power_at_on_voltage_trace_panics() {
        let tr = TracePlayback::from_voltage_series(
            "v",
            vec![(Seconds(0.0), Volts(0.0)), (Seconds(1.0), Volts(1.0))],
            Ohms(1.0),
        );
        let _ = tr.power_at(Seconds(0.0));
    }

    proptest! {
        #[test]
        fn prop_interpolation_bounded_by_samples(t in -5.0f64..10.0) {
            let tr = power_trace();
            let p = tr.power_at(Seconds(t)).0;
            prop_assert!((0.0..=1.0).contains(&p));
        }

        #[test]
        fn prop_looping_periodic(t in 0.0f64..2.0, k in 1u32..5) {
            let tr = power_trace().looping();
            let a = tr.power_at(Seconds(t)).0;
            let b = tr.power_at(Seconds(t + 2.0 * k as f64)).0;
            prop_assert!((a - b).abs() < 1e-9);
        }
    }
}
