//! Micro wind-turbine model — the source of the paper's Fig. 1(a) and the
//! supply driving the power-neutral demonstration of Fig. 8.
//!
//! A micro turbine produces an AC voltage whose electrical frequency and
//! amplitude both follow the instantaneous wind speed. During a *gust* the
//! output swells over a few seconds and then dies away; Fig. 1(a) of the
//! paper shows a single ~8 s gust with the AC carrier at several hertz and a
//! peak of roughly ±5 V. [`WindTurbine`] reproduces this as a carrier
//! sinusoid multiplied by a gust envelope.

use std::f64::consts::PI;

use edc_units::{Hertz, Ohms, Seconds, Volts};

use crate::{EnergySource, SourceSample};

/// Wind-speed (gust) envelope in `[0, 1]` as a function of time.
#[derive(Debug, Clone)]
pub enum GustProfile {
    /// A single gust: smooth rise over `rise`, hold at 1 for `hold`, smooth
    /// decay over `fall`, all starting at `start`. Matches the single-gust
    /// capture of Fig. 1(a).
    Single {
        /// Gust onset time.
        start: Seconds,
        /// Rise duration (0 → 1).
        rise: Seconds,
        /// Plateau duration at full strength.
        hold: Seconds,
        /// Decay duration (1 → 0).
        fall: Seconds,
    },
    /// Periodic gusts: a [`GustProfile::Single`]-shaped envelope repeated
    /// every `period`.
    Periodic {
        /// Repetition period (must exceed `rise + hold + fall`).
        period: Seconds,
        /// Rise duration.
        rise: Seconds,
        /// Plateau duration.
        hold: Seconds,
        /// Decay duration.
        fall: Seconds,
    },
    /// Constant wind at a fixed fraction of full strength.
    Steady(f64),
}

impl GustProfile {
    /// The canonical Fig. 1(a) single gust: onset at 1 s, 2 s rise, 2 s
    /// hold, 3 s fall — all inside the figure's 8 s window.
    pub fn fig1a() -> Self {
        GustProfile::Single {
            start: Seconds(1.0),
            rise: Seconds(2.0),
            hold: Seconds(2.0),
            fall: Seconds(3.0),
        }
    }

    /// Envelope value in `[0, 1]` at time `t`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if a `Steady` fraction lies outside `[0, 1]`.
    pub fn envelope(&self, t: Seconds) -> f64 {
        fn ramp(x: f64) -> f64 {
            // Smoothstep keeps dV/dt finite at the gust edges.
            let x = x.clamp(0.0, 1.0);
            x * x * (3.0 - 2.0 * x)
        }
        match *self {
            GustProfile::Single {
                start,
                rise,
                hold,
                fall,
            } => {
                let dt = t.0 - start.0;
                if dt < 0.0 {
                    0.0
                } else if dt < rise.0 {
                    ramp(dt / rise.0)
                } else if dt < rise.0 + hold.0 {
                    1.0
                } else if dt < rise.0 + hold.0 + fall.0 {
                    ramp(1.0 - (dt - rise.0 - hold.0) / fall.0)
                } else {
                    0.0
                }
            }
            GustProfile::Periodic {
                period,
                rise,
                hold,
                fall,
            } => {
                let phase = Seconds(t.0.rem_euclid(period.0));
                GustProfile::Single {
                    start: Seconds(0.0),
                    rise,
                    hold,
                    fall,
                }
                .envelope(phase)
            }
            GustProfile::Steady(frac) => {
                debug_assert!((0.0..=1.0).contains(&frac), "steady fraction in [0,1]");
                frac
            }
        }
    }
}

/// A micro wind turbine: AC carrier × gust envelope behind a source
/// resistance.
///
/// The raw (bipolar) output is available through
/// [`WindTurbine::output_voltage`] for regenerating Fig. 1(a); as an
/// [`EnergySource`] the turbine presents its instantaneous Thévenin
/// equivalent, and the negative half-cycles are blocked by the implicit
/// series diode (half-wave rectification, as in the paper's Fig. 8 setup).
///
/// # Examples
///
/// ```
/// use edc_harvest::{GustProfile, WindTurbine};
/// use edc_units::{Hertz, Seconds, Volts};
///
/// let turbine = WindTurbine::new(Volts(5.0), Hertz(8.0), GustProfile::fig1a());
/// assert_eq!(turbine.output_voltage(Seconds(0.0)), Volts(0.0)); // before gust
/// ```
#[derive(Debug, Clone)]
pub struct WindTurbine {
    name: String,
    peak: Volts,
    electrical_frequency: Hertz,
    gust: GustProfile,
    resistance: Ohms,
}

impl WindTurbine {
    /// Creates a turbine with the given full-gust peak voltage, electrical
    /// (AC) frequency, and gust profile. Default source resistance: 220 Ω.
    ///
    /// # Panics
    ///
    /// Panics if `peak` is negative or the frequency is not positive.
    pub fn new(peak: Volts, electrical_frequency: Hertz, gust: GustProfile) -> Self {
        assert!(peak.0 >= 0.0, "peak voltage must be ≥ 0");
        assert!(
            electrical_frequency.is_positive(),
            "electrical frequency must be > 0"
        );
        Self {
            name: format!("wind-{peak}@{electrical_frequency}"),
            peak,
            electrical_frequency,
            gust,
            resistance: Ohms(220.0),
        }
    }

    /// Overrides the source resistance.
    ///
    /// # Panics
    ///
    /// Panics if `r` is not strictly positive.
    pub fn with_resistance(mut self, r: Ohms) -> Self {
        assert!(r.is_positive(), "source resistance must be > 0");
        self.resistance = r;
        self
    }

    /// Raw bipolar AC output voltage at `t` (the Fig. 1(a) trace).
    ///
    /// The electrical frequency also scales weakly with the gust envelope —
    /// a slower rotor produces both lower voltage and lower frequency.
    pub fn output_voltage(&self, t: Seconds) -> Volts {
        let env = self.gust.envelope(t);
        if env <= 0.0 {
            return Volts::ZERO;
        }
        // Frequency tracks rotor speed: from 40% at cut-in to 100% at full gust.
        let f = self.electrical_frequency.0 * (0.4 + 0.6 * env);
        self.peak * env * (2.0 * PI * f * t.0).sin()
    }

    /// The gust envelope in `[0, 1]` at `t`.
    pub fn envelope(&self, t: Seconds) -> f64 {
        self.gust.envelope(t)
    }
}

impl EnergySource for WindTurbine {
    fn name(&self) -> &str {
        &self.name
    }

    fn sample(&mut self, t: Seconds) -> SourceSample {
        SourceSample::Thevenin {
            v_oc: self.output_voltage(t),
            r_s: self.resistance,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fig1a_gust_confined_to_window() {
        let t = WindTurbine::new(Volts(5.0), Hertz(8.0), GustProfile::fig1a());
        assert_eq!(t.output_voltage(Seconds(0.5)), Volts(0.0));
        assert_eq!(t.output_voltage(Seconds(8.1)), Volts(0.0)); // gust ends at 1+2+2+3 = 8
                                                                // Mid-gust there is signal.
        let mid: f64 = (0..100)
            .map(|i| t.output_voltage(Seconds(3.0 + i as f64 * 0.01)).0.abs())
            .fold(0.0, f64::max);
        assert!(mid > 4.0, "expected near-peak output mid-gust, got {mid}");
    }

    #[test]
    fn envelope_plateau_is_one() {
        let g = GustProfile::fig1a();
        assert_eq!(g.envelope(Seconds(3.5)), 1.0);
        assert_eq!(g.envelope(Seconds(0.0)), 0.0);
        assert!(g.envelope(Seconds(2.0)) > 0.0 && g.envelope(Seconds(2.0)) < 1.0);
    }

    #[test]
    fn periodic_gusts_repeat() {
        let g = GustProfile::Periodic {
            period: Seconds(10.0),
            rise: Seconds(1.0),
            hold: Seconds(1.0),
            fall: Seconds(1.0),
        };
        assert!((g.envelope(Seconds(1.5)) - g.envelope(Seconds(11.5))).abs() < 1e-12);
        assert_eq!(g.envelope(Seconds(5.0)), 0.0);
    }

    #[test]
    fn steady_profile_constant() {
        let g = GustProfile::Steady(0.7);
        assert_eq!(g.envelope(Seconds(0.0)), 0.7);
        assert_eq!(g.envelope(Seconds(1e6)), 0.7);
    }

    #[test]
    fn source_sample_blocks_negative_half_cycles() {
        let mut t = WindTurbine::new(Volts(5.0), Hertz(8.0), GustProfile::Steady(1.0));
        // Scan a full electrical period; current into a 1 V rail is never negative.
        for i in 0..200 {
            let time = Seconds(i as f64 * 0.001);
            let i_in = t.sample(time).current_into(Volts(1.0));
            assert!(i_in.0 >= 0.0);
        }
    }

    #[test]
    fn ac_output_alternates_sign_during_gust() {
        let t = WindTurbine::new(Volts(5.0), Hertz(8.0), GustProfile::Steady(1.0));
        let mut pos = false;
        let mut neg = false;
        for i in 0..1000 {
            let v = t.output_voltage(Seconds(i as f64 * 0.001));
            pos |= v.0 > 0.1;
            neg |= v.0 < -0.1;
        }
        assert!(pos && neg, "AC output should swing both ways");
    }

    proptest! {
        #[test]
        fn prop_envelope_in_unit_interval(t in 0.0f64..100.0) {
            for g in [GustProfile::fig1a(), GustProfile::Periodic {
                period: Seconds(7.0),
                rise: Seconds(1.0),
                hold: Seconds(2.0),
                fall: Seconds(2.0),
            }] {
                let e = g.envelope(Seconds(t));
                prop_assert!((0.0..=1.0).contains(&e));
            }
        }

        #[test]
        fn prop_output_bounded_by_peak(t in 0.0f64..100.0, peak in 0.0f64..10.0) {
            let turbine = WindTurbine::new(Volts(peak), Hertz(8.0), GustProfile::fig1a());
            prop_assert!(turbine.output_voltage(Seconds(t)).0.abs() <= peak + 1e-9);
        }
    }
}
