//! `edc_lint` — lint experiment-spec and trace-catalog JSON from disk.
//!
//! Usage: `edc_lint [--json] FILE.json [FILE.json ...]`
//!
//! Each file is parsed and walked recursively. Arrays whose every element
//! carries `name`/`hash`/`samples` are treated as trace-catalog sections
//! and merged into one shared catalog (across *all* files, so a catalog
//! committed in one artifact resolves traces referenced by another).
//! Objects carrying `source`/`strategy`/`workload`/`decoupling_f` are
//! treated as experiment specs and linted; diagnostics are printed with
//! the file and the spec's JSON path. Exit status is non-zero when any
//! `E`-severity diagnostic (or a malformed file/spec) is found.
//!
//! With `--json` the combined reports are emitted as a single JSON object
//! keyed by file path instead of text lines. With `--bounds` each spec's
//! static score brackets from the shared interval engine are printed next
//! to its diagnostics (in text mode as extra lines; in JSON mode each
//! file's value becomes `{"lint": ..., "bounds": {path: ...}}`). With
//! `--metrics PATH` the process's metrics registry (files linted,
//! diagnostics by severity, the catalog's registration counters) is
//! written to `PATH` as OpenMetrics text on exit.

use std::process::ExitCode;

use edc_core::catalog::TraceCatalog;
use edc_core::experiment::ExperimentSpec;
use edc_core::json::Json;
use edc_lint::{Code, Diagnostic, LintReport, Linter};

const USAGE: &str =
    "usage: edc_lint [--json] [--bounds] [--metrics PATH] FILE.json [FILE.json ...]";

/// Per-file output: the file path, its lint report, and (with `--bounds`)
/// the `(spec path, bound-report JSON)` pairs found in it.
type FileReport = (String, LintReport, Vec<(String, Json)>);

fn main() -> ExitCode {
    let mut json_output = false;
    let mut bounds_output = false;
    let mut metrics_path: Option<String> = None;
    let mut files = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json_output = true,
            "--bounds" => bounds_output = true,
            "--metrics" => match args.next() {
                Some(path) => metrics_path = Some(path),
                None => {
                    eprintln!("--metrics needs a path argument\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            _ => files.push(arg),
        }
    }
    if files.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    }

    // Pass 1: parse every file and merge every catalog section found.
    let mut parsed: Vec<(String, Option<Json>)> = Vec::new();
    let mut catalog = TraceCatalog::new();
    let mut io_errors = false;
    for file in files {
        let doc = match std::fs::read_to_string(&file) {
            Ok(text) => match Json::parse(&text) {
                Ok(doc) => Some(doc),
                Err(e) => {
                    eprintln!("{file}: not valid JSON: {e}");
                    io_errors = true;
                    None
                }
            },
            Err(e) => {
                eprintln!("{file}: {e}");
                io_errors = true;
                None
            }
        };
        if let Some(doc) = &doc {
            collect_catalogs(doc, &mut catalog, &file);
        }
        parsed.push((file, doc));
    }

    // Pass 2: lint every spec object against the merged catalog.
    let mut linter = Linter::with_catalog(catalog);
    let mut reports: Vec<FileReport> = Vec::new();
    for (file, doc) in &parsed {
        let mut report = LintReport::new();
        let mut bounds = Vec::new();
        if let Some(doc) = doc {
            lint_specs(
                doc,
                "$",
                &mut linter,
                &mut report,
                bounds_output.then_some(&mut bounds),
            );
        }
        reports.push((file.clone(), report, bounds));
    }

    let registry = edc_metrics::global();
    registry
        .counter("edc_lint_files", "Files linted.", &[])
        .inc_by(reports.len() as u64);
    registry
        .counter(
            "edc_lint_diagnostics",
            "Diagnostics emitted, by severity.",
            &[("severity", "error")],
        )
        .inc_by(reports.iter().map(|(_, r, _)| r.error_count() as u64).sum());
    registry
        .counter(
            "edc_lint_diagnostics",
            "Diagnostics emitted, by severity.",
            &[("severity", "warning")],
        )
        .inc_by(
            reports
                .iter()
                .map(|(_, r, _)| r.warning_count() as u64)
                .sum(),
        );
    if let Some(path) = &metrics_path {
        if let Err(e) = std::fs::write(path, registry.render_text_full()) {
            eprintln!("could not write metrics to {path}: {e}");
            return ExitCode::FAILURE;
        }
    }

    let any_errors = io_errors || reports.iter().any(|(_, r, _)| r.has_errors());
    if json_output {
        let obj = Json::Obj(
            reports
                .into_iter()
                .map(|(file, r, bounds)| {
                    // The plain shape stays byte-stable unless --bounds
                    // opts into the nested one.
                    let value = if bounds_output {
                        Json::Obj(vec![
                            ("lint".to_string(), r.to_json()),
                            ("bounds".to_string(), Json::Obj(bounds)),
                        ])
                    } else {
                        r.to_json()
                    };
                    (file, value)
                })
                .collect(),
        );
        println!("{obj}");
    } else {
        let mut total = (0usize, 0usize);
        for (file, report, bounds) in &reports {
            for d in report.diagnostics() {
                println!("{file}: {d}");
            }
            for (path, bracket) in bounds {
                println!("{file}: {path}: bounds {bracket}");
            }
            total.0 += report.error_count();
            total.1 += report.warning_count();
        }
        println!(
            "edc_lint: {} error(s), {} warning(s) across {} file(s)",
            total.0,
            total.1,
            reports.len(),
        );
    }
    if any_errors {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// True for an array that looks like [`TraceCatalog::to_json`] output.
fn is_catalog_array(json: &Json) -> bool {
    match json {
        Json::Arr(items) => {
            !items.is_empty()
                && items.iter().all(|i| {
                    i.get("name").is_some() && i.get("hash").is_some() && i.get("samples").is_some()
                })
        }
        _ => false,
    }
}

/// True for an object that looks like [`ExperimentSpec::to_json`] output.
fn is_spec_object(json: &Json) -> bool {
    json.get("source").is_some()
        && json.get("strategy").is_some()
        && json.get("workload").is_some()
        && json.get("decoupling_f").is_some()
}

/// Walks `json` merging every catalog section into `catalog`. A section
/// that fails hash re-verification is reported but does not abort the walk.
fn collect_catalogs(json: &Json, catalog: &mut TraceCatalog, file: &str) {
    if is_catalog_array(json) {
        match TraceCatalog::from_json(json) {
            Ok(found) => {
                for id in found.ids() {
                    if let Some(samples) = found.samples(id) {
                        // Same name+content is idempotent; a name bound to
                        // different content elsewhere is a real conflict.
                        if let Err(e) = catalog.register_ref(id.name(), samples) {
                            eprintln!("{file}: catalog entry '{}': {e}", id.name());
                        }
                    }
                }
            }
            Err(e) => eprintln!("{file}: malformed trace catalog: {e}"),
        }
        return;
    }
    match json {
        Json::Arr(items) => items
            .iter()
            .for_each(|i| collect_catalogs(i, catalog, file)),
        Json::Obj(pairs) => pairs
            .iter()
            .for_each(|(_, v)| collect_catalogs(v, catalog, file)),
        _ => {}
    }
}

/// Walks `json` linting every spec object, merging diagnostics (prefixed
/// with the spec's JSON path) into `report`. When `bounds` is `Some`, each
/// spec's static score brackets are appended to it, keyed by the same path
/// (specs the interval engine cannot bound — invalid ones — are skipped;
/// their `E001` diagnostics already tell the story).
fn lint_specs(
    json: &Json,
    path: &str,
    linter: &mut Linter,
    report: &mut LintReport,
    mut bounds: Option<&mut Vec<(String, Json)>>,
) {
    if is_spec_object(json) {
        match ExperimentSpec::from_json(json, linter.catalog()) {
            Ok(spec) => {
                report.merge_prefixed(path, linter.lint_spec(&spec));
                if let Some(bounds) = bounds {
                    if let Some(bound) = linter.bounder().bound_spec(&spec) {
                        bounds.push((path.to_string(), bound.to_json()));
                    }
                }
            }
            Err(msg) => report.push(Diagnostic::new(
                Code::E001,
                path,
                format!("unparseable experiment spec: {msg}"),
            )),
        }
        return;
    }
    match json {
        Json::Arr(items) => {
            for (i, item) in items.iter().enumerate() {
                lint_specs(
                    item,
                    &format!("{path}[{i}]"),
                    linter,
                    report,
                    bounds.as_deref_mut(),
                );
            }
        }
        Json::Obj(pairs) => {
            for (k, v) in pairs {
                lint_specs(
                    v,
                    &format!("{path}.{k}"),
                    linter,
                    report,
                    bounds.as_deref_mut(),
                );
            }
        }
        _ => {}
    }
}
