//! Static feasibility analysis for experiment specs, fleets and traces.
//!
//! The transient runner answers "what happens when this design runs"; this
//! crate answers the cheaper question "could it possibly work" — without
//! simulating a single tick. Diagnostics carry stable codes (`E0xx` for
//! provably infeasible designs, `W1xx` for hazards that waste simulation
//! time or mislead analysis), a severity, and a JSON-path location into the
//! spec's serialized form.
//!
//! The `E` codes are *sound*: a spec flagged with any `E` diagnostic can
//! never complete its workload, under any strategy the spec names. That
//! guarantee is what lets `edc-explore`'s evaluator prefilter score flagged
//! designs [`f64::INFINITY`] at zero simulation cost while provably
//! preserving Pareto fronts. The `W` codes are heuristic and carry no such
//! guarantee.
//!
//! See [`Code`] for the full table with triggering examples, and
//! [`Linter`] for the analyzer entry points.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod linter;
mod report;

pub use linter::{Linter, CYCLE_FLOOR_CAP, SUPPLY_SCAN_CAP};
pub use report::{Code, Diagnostic, LintReport, Severity};
