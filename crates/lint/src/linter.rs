//! The analyzer: every pass derives its verdict from the spec, the trace
//! catalog and the platform's closed forms — never from a transient run.
//!
//! Soundness is the contract that makes the `E` codes safe to act on (the
//! explore prefilter scores `E`-flagged specs `INFINITY` without
//! simulating): each bound below is provably on the safe side of the
//! runner's arithmetic.
//!
//! - **Supply upper bound** (`E004`): the supply node integrates charge,
//!   so one tick's stored-energy gain is `i·dt·v₀ + (i·dt)²/(2C)`. Both
//!   terms are bounded per sample kind — a Thévenin source by its maximum
//!   power transfer `v_oc²/(4r)`, a constant-power sample by `p` itself
//!   (current is clamped at `p / 0.2 V`, so `i·v ≤ p` uniformly), a
//!   current source by `i·v_compliance` — with the discretisation term
//!   added explicitly.
//! - **Rail upper bound** (`E002`): the voltage after one tick is a
//!   convex combination of `v₀` and the (rectified) open-circuit voltage
//!   when `η·dt/(rC) ≤ 1`, and bounded by `v_oc·η·dt/(rC)` otherwise;
//!   current sources cannot exceed compliance plus one tick of charge;
//!   constant-power samples are unbounded (the bound collapses to the
//!   clamp and `E002` cannot fire). Booting — from `Off` or `Sleep` —
//!   requires the rail to reach the strategy's restore threshold, so a
//!   rail bound below it proves the MCU never executes.
//! - **Cycle lower bound** (`E003`): `Mcu::run` charges each
//!   instruction's base cycles independently of frequency and residence,
//!   so a bare run's cycle count is *the* demand in cycles; the runner
//!   grants at most `⌊f_max·dt⌋ + 1` cycles per tick (carry included)
//!   over at most `⌊deadline/dt⌋ + 1` ticks.

use std::collections::HashMap;

use edc_core::catalog::TraceCatalog;
use edc_core::experiment::{BuildError, ExperimentSpec};
use edc_core::fleet::{FleetError, FleetSpec};
use edc_core::scenarios::{FieldEnvelope, SourceKind, StrategyKind};
use edc_core::system::Topology;
use edc_harvest::{SourceSample, POWER_SOURCE_COMPLIANCE_FLOOR};
use edc_mcu::{Mcu, RunExit};
use edc_power::sizing::try_hibernate_threshold;
use edc_units::{Farads, Seconds, Volts};
use edc_workloads::WorkloadKind;

use crate::report::{Code, Diagnostic, LintReport};

/// The runner's overvoltage clamp — specs never override it.
const V_MAX: Volts = Volts(3.6);

/// Cycle budget for the bare demand run. A workload that exhausts it
/// still yields a sound lower bound (`≥ CYCLE_FLOOR_CAP` cycles).
pub const CYCLE_FLOOR_CAP: u64 = 1_000_000_000;

/// Ceiling on supply-scan length (ticks). Past this the scan would cost
/// more than it saves; the supply passes are skipped (no diagnostic is
/// emitted, which is always sound — lint incompleteness, never
/// unsoundness).
pub const SUPPLY_SCAN_CAP: u64 = 4_000_000;

/// The static analyzer. Holds the trace catalog specs resolve against and
/// a memo of workload cycle counts (the one genuinely expensive input, so
/// a sweep over 100 specs of the same workload counts cycles once).
#[derive(Debug, Default)]
pub struct Linter {
    catalog: TraceCatalog,
    cycle_memo: HashMap<WorkloadKind, u64>,
}

impl Linter {
    /// A linter with an empty catalog (synthetic sources only).
    pub fn new() -> Self {
        Self::default()
    }

    /// A linter resolving trace-backed sources through `catalog`.
    pub fn with_catalog(catalog: TraceCatalog) -> Self {
        Self {
            catalog,
            cycle_memo: HashMap::new(),
        }
    }

    /// The catalog specs resolve against.
    pub fn catalog(&self) -> &TraceCatalog {
        &self.catalog
    }

    /// Runs every spec pass, in fixed order: `E001` (collect-all
    /// validation, which gates the rest), `W101`–`W103`, `E005`, `E003`,
    /// then the supply scan (`E002`/`E004`). Deterministic: same spec +
    /// same catalog → byte-identical report.
    pub fn lint_spec(&mut self, spec: &ExperimentSpec) -> LintReport {
        let mut report = LintReport::new();
        let violations = spec.violations_in(&self.catalog);
        for e in &violations {
            report.push(Diagnostic::new(
                Code::E001,
                build_error_path(e),
                e.to_string(),
            ));
        }
        if !violations.is_empty() {
            // Components may not instantiate; the deeper passes assume a
            // well-formed spec.
            return report;
        }

        // Instantiate exactly what the runner's build step would.
        let workload = spec.workload.make();
        let mut strategy = spec.strategy.make();
        let mut mcu = Mcu::new(workload.program()).with_residence(strategy.residence());
        if let Some(pm) = strategy.power_model() {
            mcu = mcu.with_power_model(pm);
        }
        let v_min = mcu.power_model().v_min;
        let (capacitance, efficiency) = match spec.topology {
            Topology::Direct => (spec.decoupling, 1.0),
            Topology::Buffered {
                storage,
                efficiency,
            } => (Farads(spec.decoupling.0 + storage.0), efficiency),
        };
        let (_v_low, v_high) = strategy.thresholds(&mcu, capacitance, v_min, V_MAX);

        // W101: Eq. (4) floor. Only meaningful for strategies that snapshot.
        if spec.strategy != StrategyKind::Restart {
            if let Ok(None) =
                try_hibernate_threshold(mcu.snapshot_energy(), capacitance, v_min, V_MAX, 0.0)
            {
                report.push(Diagnostic::new(
                    Code::W101,
                    "$.decoupling_f",
                    format!(
                        "{:.3} µF cannot fund a {:.2} µJ snapshot between {:.2} V and {:.2} V \
                         even with zero margin (Eq. 4); every snapshot will tear",
                        capacitance.as_micro(),
                        mcu.snapshot_energy().as_micro(),
                        V_MAX.0,
                        v_min.0,
                    ),
                ));
            }
        }

        // Bare execution cycle count: frequency- and residence-independent.
        let endless = spec.workload == WorkloadKind::Endless;
        let bare_cycles = if endless {
            None
        } else {
            Some(self.cycle_floor(spec.workload))
        };

        // W102/W103: recorded-trace coverage hazards.
        let boot_hz = mcu.clock().frequency().0;
        let bare_duration = bare_cycles.map(|n| n as f64 / boot_hz);
        self.trace_hazards(spec, bare_duration, &mut report);

        if endless {
            report.push(Diagnostic::new(
                Code::E005,
                "$.workload",
                "the 'endless' workload has no completion state; no run of this spec can succeed",
            ));
            // Demand-based passes are meaningless without a finite demand.
            return report;
        }
        let demand_cycles = match bare_cycles {
            Some(n) => n,
            None => return report,
        };

        // E003: deadline below the cycle lower bound.
        let dt = spec.timestep.0;
        let ticks_ub = (spec.deadline.0 / dt).floor() as u64 + 1;
        let ladder = mcu.clock().levels().to_vec();
        let f_max = ladder.iter().map(|f| f.0).fold(0.0f64, f64::max);
        let per_tick_ub = (f_max * dt).floor() as u64 + 1;
        if (ticks_ub as u128) * (per_tick_ub as u128) < demand_cycles as u128 {
            report.push(Diagnostic::new(
                Code::E003,
                "$.deadline_s",
                format!(
                    "deadline {} s grants at most {} ticks × {} cycles at {:.0} MHz = {} cycles, \
                     but the workload needs {} cycles uninterrupted",
                    spec.deadline.0,
                    ticks_ub,
                    per_tick_ub,
                    f_max / 1e6,
                    (ticks_ub as u128) * (per_tick_ub as u128),
                    demand_cycles,
                ),
            ));
        }

        // Demand lower bound: cheapest clock level, actual residence and
        // power model, no boot/restore/checkpoint overhead.
        let pm = mcu.power_model();
        let residence = mcu.residence();
        let demand_lb = ladder
            .iter()
            .map(|&f| pm.execution_energy(demand_cycles, f, residence).0)
            .fold(f64::INFINITY, f64::min);

        // E002/E004: one shared scan over the deadline window, sampling
        // the actually-constructed source and replicating the runner's
        // rectifier/efficiency adaptation.
        if ticks_ub <= SUPPLY_SCAN_CAP {
            self.supply_scan(
                spec,
                ticks_ub,
                efficiency,
                capacitance,
                v_high,
                demand_lb,
                &mut report,
            );
        }
        report
    }

    /// Fleet passes: `E001` over the collect-all fleet violations, `W104`
    /// duplicate placement buckets, then every node's derived spec linted
    /// under `$.nodes[i]` (so a placement whose attenuation statically
    /// brownouts a node surfaces as that node's `E002`).
    pub fn lint_fleet(&mut self, fleet: &FleetSpec) -> LintReport {
        let mut report = LintReport::new();
        let violations = fleet.violations();
        for e in &violations {
            report.push(Diagnostic::new(
                Code::E001,
                fleet_error_path(e),
                e.to_string(),
            ));
        }
        if !violations.is_empty() {
            return report;
        }

        // W104: identical (attenuation, phase) buckets run byte-identical
        // experiments.
        let mut seen: HashMap<(u64, u64), usize> = HashMap::new();
        for i in 0..fleet.nodes {
            let key = (fleet.attenuation(i).to_bits(), fleet.phase(i).0.to_bits());
            if let Some(&first) = seen.get(&key) {
                report.push(Diagnostic::new(
                    Code::W104,
                    format!("$.nodes[{i}]"),
                    format!(
                        "node {i} duplicates node {first}'s placement bucket \
                         (attenuation {}, phase {} s); it adds wall-clock, not information",
                        fleet.attenuation(i),
                        fleet.phase(i).0,
                    ),
                ));
            } else {
                seen.insert(key, i);
            }
        }

        // Per-node lint against a catalog the field registers into.
        let mut catalog = self.catalog.clone();
        let specs = match fleet.node_specs_in(&mut catalog) {
            Ok(specs) => specs,
            // `violations` was empty, so registration cannot fail; if it
            // somehow does, report it rather than panic.
            Err(e) => {
                report.push(Diagnostic::new(
                    Code::E001,
                    fleet_error_path(&e),
                    e.to_string(),
                ));
                return report;
            }
        };
        let mut sub = Linter {
            catalog,
            cycle_memo: std::mem::take(&mut self.cycle_memo),
        };
        // Nodes sharing a bucket produce identical reports; lint each
        // bucket once.
        let mut bucket_reports: HashMap<(u64, u64), LintReport> = HashMap::new();
        for (i, spec) in specs.iter().enumerate() {
            let key = (fleet.attenuation(i).to_bits(), fleet.phase(i).0.to_bits());
            let node_report = bucket_reports
                .entry(key)
                .or_insert_with(|| sub.lint_spec(spec))
                .clone();
            report.merge_prefixed(&format!("$.nodes[{i}]"), node_report);
        }
        self.cycle_memo = sub.cycle_memo;
        report
    }

    /// The workload's bare cycle demand (memoized). Sound lower bound even
    /// when the cap is exhausted.
    fn cycle_floor(&mut self, kind: WorkloadKind) -> u64 {
        if let Some(&n) = self.cycle_memo.get(&kind) {
            return n;
        }
        let workload = kind.make();
        let mut mcu = Mcu::new(workload.program());
        let run = mcu.run(CYCLE_FLOOR_CAP, false);
        let n = match run.exit {
            RunExit::Completed => run.cycles,
            RunExit::BudgetExhausted => CYCLE_FLOOR_CAP,
            // A faulting or marker-stopped bare run still consumed its
            // cycles; use them as a conservative floor.
            _ => run.cycles,
        };
        self.cycle_memo.insert(kind, n);
        n
    }

    /// `W102`/`W103` for recorded traces (standalone or behind a field
    /// view).
    fn trace_hazards(
        &self,
        spec: &ExperimentSpec,
        bare_duration: Option<f64>,
        report: &mut LintReport,
    ) {
        let (id, decimate, looped) = match spec.source {
            SourceKind::Trace {
                id,
                decimate,
                looped,
            }
            | SourceKind::FieldView {
                field:
                    FieldEnvelope::Trace {
                        id,
                        decimate,
                        looped,
                    },
                ..
            } => (id, decimate, looped),
            _ => return,
        };
        let Some(samples) = self.catalog.samples(id) else {
            return; // unresolved traces were already E001
        };
        if samples.len() < 2 {
            return;
        }
        let duration = samples[samples.len() - 1].0;
        let spacing = duration / (samples.len() - 1) as f64;
        let effective = spacing * decimate as f64;
        if let Some(bare) = bare_duration {
            if decimate > 1 && effective > bare {
                report.push(Diagnostic::new(
                    Code::W102,
                    "$.source.decimate",
                    format!(
                        "decimation {decimate} stretches the sample spacing to {effective} s, \
                         longer than the workload's entire bare execution ({bare:.3e} s at boot \
                         clock); the recording's dynamics are aliased away",
                    ),
                ));
            }
        }
        if !looped && duration < spec.deadline.0 {
            let held = samples[samples.len() - 1].1;
            report.push(Diagnostic::new(
                Code::W103,
                "$.source.looped",
                format!(
                    "non-looped trace ends at {duration} s but the deadline is {} s; playback \
                     holds the final sample ({held} W) for the remaining {:.3} s",
                    spec.deadline.0,
                    spec.deadline.0 - duration,
                ),
            ));
        }
    }

    /// The shared `E002`/`E004` scan (see the module docs for the bound
    /// derivations). Breaks early once both verdicts are settled feasible.
    #[allow(clippy::too_many_arguments)]
    fn supply_scan(
        &self,
        spec: &ExperimentSpec,
        ticks_ub: u64,
        efficiency: f64,
        capacitance: Farads,
        v_high: Volts,
        demand_lb: f64,
        report: &mut LintReport,
    ) {
        let dt = spec.timestep.0;
        let c = capacitance.0;
        let mut source = spec.source.make_in(&self.catalog);
        let mut supply_ub = 0.0f64;
        let mut rail_ub = 0.0f64;
        for tick in 0..ticks_ub {
            let t = Seconds(tick as f64 * dt);
            let (e_ub, v_ub) = match source.sample(t) {
                SourceSample::Thevenin { v_oc, r_s } => {
                    let v = spec.rectifier.map_or(v_oc, |r| r.rectify(v_oc)).0.max(0.0);
                    let r = r_s.0;
                    let i_max = efficiency * v / r;
                    (
                        efficiency * v * v / (4.0 * r) * dt + i_max * i_max * dt * dt / (2.0 * c),
                        v * (efficiency * dt / (r * c)).max(1.0),
                    )
                }
                SourceSample::Power(p) => {
                    if p.0 > 0.0 {
                        let i_max = efficiency * p.0 / POWER_SOURCE_COMPLIANCE_FLOOR.0;
                        (
                            efficiency * p.0 * dt + i_max * i_max * dt * dt / (2.0 * c),
                            // A constant-power sample has no open-circuit
                            // ceiling: the rail bound collapses to the clamp.
                            f64::INFINITY,
                        )
                    } else {
                        (0.0, 0.0)
                    }
                }
                SourceSample::Current { i, v_compliance } => {
                    let i = i.0.max(0.0) * efficiency;
                    let vc = v_compliance.0.max(0.0);
                    (i * vc * dt + i * i * dt * dt / (2.0 * c), vc + i * dt / c)
                }
            };
            supply_ub += e_ub;
            rail_ub = rail_ub.max(v_ub.min(V_MAX.0));
            if supply_ub >= demand_lb && rail_ub + 1e-9 >= v_high.0 {
                return; // both passes settled feasible
            }
        }
        if rail_ub + 1e-9 < v_high.0 {
            report.push(Diagnostic::new(
                Code::E002,
                "$.source",
                format!(
                    "the supply can never raise the rail to the boot threshold: \
                     max achievable ≈ {rail_ub:.3} V < V_boot {:.3} V ({}); \
                     the MCU never powers on",
                    v_high.0,
                    spec.strategy.name(),
                ),
            ));
        } else if supply_ub < demand_lb {
            report.push(Diagnostic::new(
                Code::E004,
                "$.source",
                format!(
                    "supply energy upper bound {supply_ub:.3e} J over the {} s deadline window \
                     is below the workload's demand lower bound {demand_lb:.3e} J \
                     (cheapest clock level, zero overhead)",
                    spec.deadline.0,
                ),
            ));
        }
    }
}

/// JSON-path location of a spec-level violation, matching
/// [`ExperimentSpec::to_json`] key names.
fn build_error_path(e: &BuildError) -> String {
    match e {
        BuildError::InvalidSource(_) => "$.source",
        BuildError::InvalidWorkload(_) => "$.workload",
        BuildError::InvalidTimestep(_) => "$.timestep_s",
        BuildError::InvalidDecoupling(_) => "$.decoupling_f",
        BuildError::InvalidStorage(_) => "$.topology.storage_f",
        BuildError::InvalidEfficiency(_) => "$.topology.efficiency",
        BuildError::InvalidLeakage(_) => "$.leakage_ohm",
        BuildError::InvalidTrace => "$.trace",
        BuildError::InvalidTelemetry(_) => "$.telemetry",
        BuildError::InvalidDeadline(_) => "$.deadline_s",
        _ => "$",
    }
    .to_string()
}

/// JSON-path location of a fleet-level violation, matching
/// [`FleetSpec::to_json`] key names.
fn fleet_error_path(e: &FleetError) -> String {
    match e {
        FleetError::NoNodes => "$.nodes".into(),
        FleetError::InvalidStagger(_) => "$.stagger_s".into(),
        FleetError::InvalidDutyPeriod(_) => "$.duty_period_s".into(),
        FleetError::InvalidAttenuation { node, .. } => format!("$.placement[{node}]"),
        FleetError::PlacementCount { .. } => "$.placement".into(),
        FleetError::InvalidField(_) | FleetError::Trace(_) => "$.field".into(),
        FleetError::Design(inner) => {
            let inner = build_error_path(inner);
            let tail = inner.strip_prefix('$').unwrap_or(&inner);
            format!("$.design{tail}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edc_core::fleet::{FieldSpec, Placement};
    use edc_core::scenarios::FieldEnvelope;

    fn spec(source: SourceKind) -> ExperimentSpec {
        ExperimentSpec::new(source, StrategyKind::Hibernus, WorkloadKind::Crc16(64))
            .deadline(Seconds(0.5))
    }

    #[test]
    fn healthy_spec_is_clean() {
        let report = Linter::new().lint_spec(&spec(SourceKind::RectifiedSine { hz: 50.0 }));
        assert!(report.is_clean(), "{}", report.render_text());
    }

    #[test]
    fn e001_collects_every_violation() {
        let bad = spec(SourceKind::RectifiedSine { hz: -1.0 })
            .timestep(Seconds(0.0))
            .decoupling(Farads(f64::NAN));
        let report = Linter::new().lint_spec(&bad);
        let codes: Vec<Code> = report.diagnostics().iter().map(|d| d.code).collect();
        assert_eq!(codes, vec![Code::E001, Code::E001, Code::E001]);
        let paths: Vec<&str> = report
            .diagnostics()
            .iter()
            .map(|d| d.path.as_str())
            .collect();
        assert_eq!(paths, vec!["$.source", "$.timestep_s", "$.decoupling_f"]);
    }

    #[test]
    fn e002_fires_for_sub_boot_dc() {
        // 1.5 V EMF < any boot threshold above V_min = 2.0 V.
        let report = Linter::new().lint_spec(&spec(SourceKind::Dc { volts: 1.5 }));
        assert!(report.diagnostics().iter().any(|d| d.code == Code::E002));
    }

    #[test]
    fn e003_fires_for_impossible_deadline() {
        let tight = spec(SourceKind::RectifiedSine { hz: 50.0 }).deadline(Seconds(10e-6));
        let report = Linter::new().lint_spec(&tight);
        assert!(report.diagnostics().iter().any(|d| d.code == Code::E003));
    }

    #[test]
    fn e005_fires_for_endless() {
        let endless = spec(SourceKind::Dc { volts: 3.3 }).workload(WorkloadKind::Endless);
        let report = Linter::new().lint_spec(&endless);
        assert!(report.diagnostics().iter().any(|d| d.code == Code::E005));
    }

    #[test]
    fn w101_fires_below_eq4_floor() {
        let starved =
            spec(SourceKind::RectifiedSine { hz: 50.0 }).decoupling(Farads::from_micro(0.1));
        let report = Linter::new().lint_spec(&starved);
        assert!(report.diagnostics().iter().any(|d| d.code == Code::W101));
        // A hazard, not a proof of infeasibility.
        assert!(!report.has_errors(), "{}", report.render_text());
    }

    #[test]
    fn e004_and_w103_fire_for_starved_short_trace() {
        let mut catalog = TraceCatalog::new();
        let id = catalog
            .register_uniform("dim", Seconds(1e-3), &[1e-6, 1e-6, 1e-6])
            .expect("valid trace");
        let starved = spec(SourceKind::Trace {
            id,
            decimate: 1,
            looped: false,
        });
        let report = Linter::with_catalog(catalog).lint_spec(&starved);
        assert!(report.diagnostics().iter().any(|d| d.code == Code::E004));
        assert!(report.diagnostics().iter().any(|d| d.code == Code::W103));
    }

    #[test]
    fn w104_and_node_paths_in_fleet_lint() {
        let design = ExperimentSpec::new(
            SourceKind::Dc { volts: 3.3 },
            StrategyKind::Hibernus,
            WorkloadKind::Crc16(64),
        )
        .deadline(Seconds(0.5));
        let fleet = FleetSpec::new(
            FieldSpec::Envelope(FieldEnvelope::RectifiedSine { hz: 50.0 }),
            design,
            3,
        );
        let report = Linter::new().lint_fleet(&fleet);
        let w104: Vec<&Diagnostic> = report
            .diagnostics()
            .iter()
            .filter(|d| d.code == Code::W104)
            .collect();
        assert_eq!(w104.len(), 2);
        assert_eq!(w104[0].path, "$.nodes[1]");
    }

    #[test]
    fn fleet_attenuation_brownout_is_node_e002() {
        let design = ExperimentSpec::new(
            SourceKind::Dc { volts: 3.3 },
            StrategyKind::Restart,
            WorkloadKind::Crc16(64),
        )
        .deadline(Seconds(0.5));
        // The far node sees 3.3 V × 0.05 = 0.165 V — statically dark.
        let fleet = FleetSpec::new(
            FieldSpec::Envelope(FieldEnvelope::Dc { volts: 3.3 }),
            design,
            2,
        )
        .placement(Placement::Explicit(vec![1.0, 0.05]));
        let report = Linter::new().lint_fleet(&fleet);
        let e002: Vec<&Diagnostic> = report
            .diagnostics()
            .iter()
            .filter(|d| d.code == Code::E002)
            .collect();
        assert_eq!(e002.len(), 1, "{}", report.render_text());
        assert_eq!(e002[0].path, "$.nodes[1].source");
    }

    #[test]
    fn fleet_collects_all_violations() {
        let design = ExperimentSpec::new(
            SourceKind::Dc { volts: 3.3 },
            StrategyKind::Hibernus,
            WorkloadKind::Crc16(0),
        );
        let fleet = FleetSpec::new(
            FieldSpec::Envelope(FieldEnvelope::RectifiedSine { hz: -4.0 }),
            design,
            0,
        )
        .stagger(Seconds(-1.0));
        let report = Linter::new().lint_fleet(&fleet);
        assert!(report.error_count() >= 3, "{}", report.render_text());
        assert!(report.diagnostics().iter().all(|d| d.code == Code::E001));
    }
}
