//! The analyzer: every pass derives its verdict from the spec, the trace
//! catalog and the platform's closed forms — never from a transient run.
//!
//! The quantitative arithmetic behind the `E002`–`E005` codes lives in
//! [`edc_bound`] (see its module docs for the bound derivations): the
//! [`Bounder`] propagates interval closed forms through the supply, the
//! storage RC, the rail thresholds and the workload cycle demand, and
//! this linter is a thin client that formats the resulting
//! [`DynamicsFacts`](edc_bound::DynamicsFacts) into diagnostics.
//! Soundness is the contract that makes the `E` codes safe to act on (the
//! explore prefilter scores `E`-flagged specs `INFINITY` without
//! simulating): each bound is provably on the safe side of the runner's
//! arithmetic.

use std::collections::HashMap;

use edc_bound::Bounder;
use edc_core::catalog::TraceCatalog;
use edc_core::experiment::{BuildError, ExperimentSpec};
use edc_core::fleet::{FleetError, FleetSpec};
use edc_core::scenarios::{FieldEnvelope, SourceKind, StrategyKind};
use edc_power::sizing::try_hibernate_threshold;

// Preserved re-export paths: these constants moved to the shared engine.
pub use edc_bound::{CYCLE_FLOOR_CAP, SUPPLY_SCAN_CAP, V_MAX};

use crate::report::{Code, Diagnostic, LintReport};

/// The static analyzer. Wraps the shared interval engine ([`Bounder`]),
/// which holds the trace catalog specs resolve against and a memo of
/// workload cycle counts (the one genuinely expensive input, so a sweep
/// over 100 specs of the same workload counts cycles once).
#[derive(Debug, Default)]
pub struct Linter {
    bounder: Bounder,
}

impl Linter {
    /// A linter with an empty catalog (synthetic sources only).
    pub fn new() -> Self {
        Self::default()
    }

    /// A linter resolving trace-backed sources through `catalog`.
    pub fn with_catalog(catalog: TraceCatalog) -> Self {
        Self {
            bounder: Bounder::with_catalog(catalog),
        }
    }

    /// The catalog specs resolve against.
    pub fn catalog(&self) -> &TraceCatalog {
        self.bounder.catalog()
    }

    /// The shared interval engine the diagnostics are derived from, for
    /// callers that want the quantitative brackets next to the boolean
    /// codes (the `edc_lint --bounds` flag, the `W105` dead-axis upgrade).
    pub fn bounder(&mut self) -> &mut Bounder {
        &mut self.bounder
    }

    /// Runs every spec pass, in fixed order: `E001` (collect-all
    /// validation, which gates the rest), `W101`–`W103`, `E005`, `E003`,
    /// then the supply scan (`E002`/`E004`). Deterministic: same spec +
    /// same catalog → byte-identical report.
    pub fn lint_spec(&mut self, spec: &ExperimentSpec) -> LintReport {
        let mut report = LintReport::new();
        let violations = spec.violations_in(self.bounder.catalog());
        for e in &violations {
            report.push(Diagnostic::new(
                Code::E001,
                build_error_path(e),
                e.to_string(),
            ));
        }
        if !violations.is_empty() {
            // Components may not instantiate; the deeper passes assume a
            // well-formed spec.
            return report;
        }
        let facts = match self.bounder.facts(spec) {
            Some(facts) => facts,
            // Unreachable (violations were empty), but never panic on input.
            None => return report,
        };

        // W101: Eq. (4) floor. Only meaningful for strategies that snapshot.
        if spec.strategy != StrategyKind::Restart {
            if let Ok(None) = try_hibernate_threshold(
                facts.snapshot_energy,
                facts.capacitance,
                facts.v_min,
                V_MAX,
                0.0,
            ) {
                report.push(Diagnostic::new(
                    Code::W101,
                    "$.decoupling_f",
                    format!(
                        "{:.3} µF cannot fund a {:.2} µJ snapshot between {:.2} V and {:.2} V \
                         even with zero margin (Eq. 4); every snapshot will tear",
                        facts.capacitance.as_micro(),
                        facts.snapshot_energy.as_micro(),
                        V_MAX.0,
                        facts.v_min.0,
                    ),
                ));
            }
        }

        // W102/W103: recorded-trace coverage hazards. The bare execution
        // duration is frequency- and residence-independent cycles over the
        // boot clock.
        let bare_duration = facts.demand_cycles.map(|n| n as f64 / facts.boot_hz);
        self.trace_hazards(spec, bare_duration, &mut report);

        if facts.endless {
            report.push(Diagnostic::new(
                Code::E005,
                "$.workload",
                "the 'endless' workload has no completion state; no run of this spec can succeed",
            ));
            // Demand-based passes are meaningless without a finite demand.
            return report;
        }
        let demand_cycles = match facts.demand_cycles {
            Some(n) => n,
            None => return report,
        };

        // E003: deadline below the cycle lower bound.
        if facts.granted_cycles() < demand_cycles as u128 {
            report.push(Diagnostic::new(
                Code::E003,
                "$.deadline_s",
                format!(
                    "deadline {} s grants at most {} ticks × {} cycles at {:.0} MHz = {} cycles, \
                     but the workload needs {} cycles uninterrupted",
                    spec.deadline.0,
                    facts.ticks_ub,
                    facts.per_tick_ub,
                    facts.f_max / 1e6,
                    facts.granted_cycles(),
                    demand_cycles,
                ),
            ));
        }

        // E002/E004: the engine's shared supply scan over the deadline
        // window. The "never" verdicts require a full scan — an early
        // feasibility exit means both passes settled feasible.
        if let Some(supply) = &facts.supply {
            if supply.scanned_full {
                if supply.rail_ub + 1e-9 < facts.v_high.0 {
                    report.push(Diagnostic::new(
                        Code::E002,
                        "$.source",
                        format!(
                            "the supply can never raise the rail to the boot threshold: \
                             max achievable ≈ {:.3} V < V_boot {:.3} V ({}); \
                             the MCU never powers on",
                            supply.rail_ub,
                            facts.v_high.0,
                            spec.strategy.name(),
                        ),
                    ));
                } else if let Some(demand_lb) = facts.demand_lb {
                    if supply.supply_ub < demand_lb {
                        report.push(Diagnostic::new(
                            Code::E004,
                            "$.source",
                            format!(
                                "supply energy upper bound {:.3e} J over the {} s deadline \
                                 window is below the workload's demand lower bound {:.3e} J \
                                 (cheapest clock level, zero overhead)",
                                supply.supply_ub, spec.deadline.0, demand_lb,
                            ),
                        ));
                    }
                }
            }
        }
        report
    }

    /// Fleet passes: `E001` over the collect-all fleet violations, `W104`
    /// duplicate placement buckets, then every node's derived spec linted
    /// under `$.nodes[i]` (so a placement whose attenuation statically
    /// brownouts a node surfaces as that node's `E002`).
    pub fn lint_fleet(&mut self, fleet: &FleetSpec) -> LintReport {
        let mut report = LintReport::new();
        let violations = fleet.violations();
        for e in &violations {
            report.push(Diagnostic::new(
                Code::E001,
                fleet_error_path(e),
                e.to_string(),
            ));
        }
        if !violations.is_empty() {
            return report;
        }

        // W104: identical (attenuation, phase) buckets run byte-identical
        // experiments.
        let mut seen: HashMap<(u64, u64), usize> = HashMap::new();
        for i in 0..fleet.nodes {
            let key = (fleet.attenuation(i).to_bits(), fleet.phase(i).0.to_bits());
            if let Some(&first) = seen.get(&key) {
                report.push(Diagnostic::new(
                    Code::W104,
                    format!("$.nodes[{i}]"),
                    format!(
                        "node {i} duplicates node {first}'s placement bucket \
                         (attenuation {}, phase {} s); it adds wall-clock, not information",
                        fleet.attenuation(i),
                        fleet.phase(i).0,
                    ),
                ));
            } else {
                seen.insert(key, i);
            }
        }

        // Per-node lint against a catalog the field registers into.
        let mut catalog = self.bounder.catalog().clone();
        let specs = match fleet.node_specs_in(&mut catalog) {
            Ok(specs) => specs,
            // `violations` was empty, so registration cannot fail; if it
            // somehow does, report it rather than panic.
            Err(e) => {
                report.push(Diagnostic::new(
                    Code::E001,
                    fleet_error_path(&e),
                    e.to_string(),
                ));
                return report;
            }
        };
        let mut sub = Linter {
            bounder: Bounder::with_catalog(catalog),
        };
        sub.bounder
            .restore_cycle_memo(self.bounder.take_cycle_memo());
        // Nodes sharing a bucket produce identical reports; lint each
        // bucket once.
        let mut bucket_reports: HashMap<(u64, u64), LintReport> = HashMap::new();
        for (i, spec) in specs.iter().enumerate() {
            let key = (fleet.attenuation(i).to_bits(), fleet.phase(i).0.to_bits());
            let node_report = bucket_reports
                .entry(key)
                .or_insert_with(|| sub.lint_spec(spec))
                .clone();
            report.merge_prefixed(&format!("$.nodes[{i}]"), node_report);
        }
        self.bounder
            .restore_cycle_memo(sub.bounder.take_cycle_memo());
        report
    }

    /// `W102`/`W103` for recorded traces (standalone or behind a field
    /// view).
    fn trace_hazards(
        &self,
        spec: &ExperimentSpec,
        bare_duration: Option<f64>,
        report: &mut LintReport,
    ) {
        let (id, decimate, looped) = match spec.source {
            SourceKind::Trace {
                id,
                decimate,
                looped,
            }
            | SourceKind::FieldView {
                field:
                    FieldEnvelope::Trace {
                        id,
                        decimate,
                        looped,
                    },
                ..
            } => (id, decimate, looped),
            _ => return,
        };
        let Some(samples) = self.bounder.catalog().samples(id) else {
            return; // unresolved traces were already E001
        };
        if samples.len() < 2 {
            return;
        }
        let duration = samples[samples.len() - 1].0;
        let spacing = duration / (samples.len() - 1) as f64;
        let effective = spacing * decimate as f64;
        if let Some(bare) = bare_duration {
            if decimate > 1 && effective > bare {
                report.push(Diagnostic::new(
                    Code::W102,
                    "$.source.decimate",
                    format!(
                        "decimation {decimate} stretches the sample spacing to {effective} s, \
                         longer than the workload's entire bare execution ({bare:.3e} s at boot \
                         clock); the recording's dynamics are aliased away",
                    ),
                ));
            }
        }
        if !looped && duration < spec.deadline.0 {
            let held = samples[samples.len() - 1].1;
            report.push(Diagnostic::new(
                Code::W103,
                "$.source.looped",
                format!(
                    "non-looped trace ends at {duration} s but the deadline is {} s; playback \
                     holds the final sample ({held} W) for the remaining {:.3} s",
                    spec.deadline.0,
                    spec.deadline.0 - duration,
                ),
            ));
        }
    }
}

/// JSON-path location of a spec-level violation, matching
/// [`ExperimentSpec::to_json`] key names.
fn build_error_path(e: &BuildError) -> String {
    match e {
        BuildError::InvalidSource(_) => "$.source",
        BuildError::InvalidWorkload(_) => "$.workload",
        BuildError::InvalidTimestep(_) => "$.timestep_s",
        BuildError::InvalidDecoupling(_) => "$.decoupling_f",
        BuildError::InvalidStorage(_) => "$.topology.storage_f",
        BuildError::InvalidEfficiency(_) => "$.topology.efficiency",
        BuildError::InvalidLeakage(_) => "$.leakage_ohm",
        BuildError::InvalidTrace => "$.trace",
        BuildError::InvalidTelemetry(_) => "$.telemetry",
        BuildError::InvalidDeadline(_) => "$.deadline_s",
        _ => "$",
    }
    .to_string()
}

/// JSON-path location of a fleet-level violation, matching
/// [`FleetSpec::to_json`] key names.
fn fleet_error_path(e: &FleetError) -> String {
    match e {
        FleetError::NoNodes => "$.nodes".into(),
        FleetError::InvalidStagger(_) => "$.stagger_s".into(),
        FleetError::InvalidDutyPeriod(_) => "$.duty_period_s".into(),
        FleetError::InvalidAttenuation { node, .. } => format!("$.placement[{node}]"),
        FleetError::PlacementCount { .. } => "$.placement".into(),
        FleetError::InvalidField(_) | FleetError::Trace(_) => "$.field".into(),
        FleetError::Design(inner) => {
            let inner = build_error_path(inner);
            let tail = inner.strip_prefix('$').unwrap_or(&inner);
            format!("$.design{tail}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edc_core::fleet::{FieldSpec, Placement};
    use edc_core::scenarios::FieldEnvelope;
    use edc_units::{Farads, Seconds};
    use edc_workloads::WorkloadKind;

    fn spec(source: SourceKind) -> ExperimentSpec {
        ExperimentSpec::new(source, StrategyKind::Hibernus, WorkloadKind::Crc16(64))
            .deadline(Seconds(0.5))
    }

    #[test]
    fn healthy_spec_is_clean() {
        let report = Linter::new().lint_spec(&spec(SourceKind::RectifiedSine { hz: 50.0 }));
        assert!(report.is_clean(), "{}", report.render_text());
    }

    #[test]
    fn e001_collects_every_violation() {
        let bad = spec(SourceKind::RectifiedSine { hz: -1.0 })
            .timestep(Seconds(0.0))
            .decoupling(Farads(f64::NAN));
        let report = Linter::new().lint_spec(&bad);
        let codes: Vec<Code> = report.diagnostics().iter().map(|d| d.code).collect();
        assert_eq!(codes, vec![Code::E001, Code::E001, Code::E001]);
        let paths: Vec<&str> = report
            .diagnostics()
            .iter()
            .map(|d| d.path.as_str())
            .collect();
        assert_eq!(paths, vec!["$.source", "$.timestep_s", "$.decoupling_f"]);
    }

    #[test]
    fn e002_fires_for_sub_boot_dc() {
        // 1.5 V EMF < any boot threshold above V_min = 2.0 V.
        let report = Linter::new().lint_spec(&spec(SourceKind::Dc { volts: 1.5 }));
        assert!(report.diagnostics().iter().any(|d| d.code == Code::E002));
    }

    #[test]
    fn e003_fires_for_impossible_deadline() {
        let tight = spec(SourceKind::RectifiedSine { hz: 50.0 }).deadline(Seconds(10e-6));
        let report = Linter::new().lint_spec(&tight);
        assert!(report.diagnostics().iter().any(|d| d.code == Code::E003));
    }

    #[test]
    fn e005_fires_for_endless() {
        let endless = spec(SourceKind::Dc { volts: 3.3 }).workload(WorkloadKind::Endless);
        let report = Linter::new().lint_spec(&endless);
        assert!(report.diagnostics().iter().any(|d| d.code == Code::E005));
    }

    #[test]
    fn w101_fires_below_eq4_floor() {
        let starved =
            spec(SourceKind::RectifiedSine { hz: 50.0 }).decoupling(Farads::from_micro(0.1));
        let report = Linter::new().lint_spec(&starved);
        assert!(report.diagnostics().iter().any(|d| d.code == Code::W101));
        // A hazard, not a proof of infeasibility.
        assert!(!report.has_errors(), "{}", report.render_text());
    }

    #[test]
    fn e004_and_w103_fire_for_starved_short_trace() {
        let mut catalog = TraceCatalog::new();
        let id = catalog
            .register_uniform("dim", Seconds(1e-3), &[1e-6, 1e-6, 1e-6])
            .expect("valid trace");
        let starved = spec(SourceKind::Trace {
            id,
            decimate: 1,
            looped: false,
        });
        let report = Linter::with_catalog(catalog).lint_spec(&starved);
        assert!(report.diagnostics().iter().any(|d| d.code == Code::E004));
        assert!(report.diagnostics().iter().any(|d| d.code == Code::W103));
    }

    #[test]
    fn w104_and_node_paths_in_fleet_lint() {
        let design = ExperimentSpec::new(
            SourceKind::Dc { volts: 3.3 },
            StrategyKind::Hibernus,
            WorkloadKind::Crc16(64),
        )
        .deadline(Seconds(0.5));
        let fleet = FleetSpec::new(
            FieldSpec::Envelope(FieldEnvelope::RectifiedSine { hz: 50.0 }),
            design,
            3,
        );
        let report = Linter::new().lint_fleet(&fleet);
        let w104: Vec<&Diagnostic> = report
            .diagnostics()
            .iter()
            .filter(|d| d.code == Code::W104)
            .collect();
        assert_eq!(w104.len(), 2);
        assert_eq!(w104[0].path, "$.nodes[1]");
    }

    #[test]
    fn fleet_attenuation_brownout_is_node_e002() {
        let design = ExperimentSpec::new(
            SourceKind::Dc { volts: 3.3 },
            StrategyKind::Restart,
            WorkloadKind::Crc16(64),
        )
        .deadline(Seconds(0.5));
        // The far node sees 3.3 V × 0.05 = 0.165 V — statically dark.
        let fleet = FleetSpec::new(
            FieldSpec::Envelope(FieldEnvelope::Dc { volts: 3.3 }),
            design,
            2,
        )
        .placement(Placement::Explicit(vec![1.0, 0.05]));
        let report = Linter::new().lint_fleet(&fleet);
        let e002: Vec<&Diagnostic> = report
            .diagnostics()
            .iter()
            .filter(|d| d.code == Code::E002)
            .collect();
        assert_eq!(e002.len(), 1, "{}", report.render_text());
        assert_eq!(e002[0].path, "$.nodes[1].source");
    }

    #[test]
    fn fleet_collects_all_violations() {
        let design = ExperimentSpec::new(
            SourceKind::Dc { volts: 3.3 },
            StrategyKind::Hibernus,
            WorkloadKind::Crc16(0),
        );
        let fleet = FleetSpec::new(
            FieldSpec::Envelope(FieldEnvelope::RectifiedSine { hz: -4.0 }),
            design,
            0,
        )
        .stagger(Seconds(-1.0));
        let report = Linter::new().lint_fleet(&fleet);
        assert!(report.error_count() >= 3, "{}", report.render_text());
        assert!(report.diagnostics().iter().all(|d| d.code == Code::E001));
    }

    #[test]
    fn brackets_are_available_next_to_diagnostics() {
        let mut linter = Linter::new();
        let s = spec(SourceKind::Dc { volts: 1.5 });
        assert!(linter.lint_spec(&s).has_errors());
        let bracket = linter.bounder().bound_spec(&s).expect("valid spec");
        assert!(bracket.proven_dnf && bracket.never_boots);
    }
}
