//! The diagnostics vocabulary: stable codes, severities, and the
//! deterministic [`LintReport`] container with a lossless JSON round-trip.

use edc_core::json::Json;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Severity {
    /// The spec is *provably* unable to complete its workload: simulating
    /// it can only confirm the closed-form verdict.
    Error,
    /// A hazard: the design is suspicious (tearing snapshots, aliased
    /// traces, wasted placements) but may still limp to completion.
    Warning,
}

impl Severity {
    /// Display name (`"error"` / `"warning"`).
    pub fn name(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

/// Stable diagnostic codes. `E0xx` = provably infeasible (the soundness
/// contract: an `E`-flagged spec never produces a completed run — see the
/// `lint` integration test), `W1xx` = hazards.
///
/// The triggering conditions below are *static*: every pass runs from the
/// spec and the trace catalog alone, never the transient runner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Code {
    /// A spec parameter violates its constructor domain — every
    /// [`BuildError`](edc_core::experiment::BuildError) from the
    /// collect-all validation
    /// ([`ExperimentSpec::violations_in`](edc_core::experiment::ExperimentSpec::violations_in))
    /// is reported as one `E001` diagnostic, so a spec with three bad
    /// fields gets three diagnostics instead of the first.
    ///
    /// ```
    /// use edc_core::experiment::ExperimentSpec;
    /// use edc_core::scenarios::{SourceKind, StrategyKind};
    /// use edc_lint::{Code, Linter};
    /// use edc_units::{Farads, Seconds};
    /// use edc_workloads::WorkloadKind;
    ///
    /// let spec = ExperimentSpec::new(
    ///     SourceKind::Dc { volts: 3.3 },
    ///     StrategyKind::Hibernus,
    ///     WorkloadKind::Fourier(100), // not a power of two
    /// )
    /// .timestep(Seconds(0.0))       // non-positive
    /// .decoupling(Farads(-1.0));    // negative
    /// let report = Linter::new().lint_spec(&spec);
    /// assert_eq!(report.diagnostics().iter().filter(|d| d.code == Code::E001).count(), 3);
    /// ```
    E001,
    /// The boot threshold is unreachable: an upper bound on the rail
    /// voltage the source can ever produce (over the whole deadline
    /// window, including single-tick overshoot) stays below the strategy's
    /// restore/boot threshold, so the MCU never powers on.
    ///
    /// ```
    /// use edc_core::experiment::ExperimentSpec;
    /// use edc_core::scenarios::{SourceKind, StrategyKind};
    /// use edc_lint::{Code, Linter};
    /// use edc_workloads::WorkloadKind;
    ///
    /// // A 1.5 V EMF behind 10 Ω can never charge the rail to the
    /// // restart boot threshold (V_min + 0.4 = 2.4 V).
    /// let spec = ExperimentSpec::new(
    ///     SourceKind::Dc { volts: 1.5 },
    ///     StrategyKind::Restart,
    ///     WorkloadKind::Crc16(64),
    /// );
    /// let report = Linter::new().lint_spec(&spec);
    /// assert!(report.diagnostics().iter().any(|d| d.code == Code::E002));
    /// ```
    E002,
    /// The deadline is below the cycle lower bound: even at the top clock
    /// frequency with the supply never failing, the runner cannot grant
    /// enough cycles before the deadline to retire the workload's bare
    /// instruction count.
    ///
    /// ```
    /// use edc_core::experiment::ExperimentSpec;
    /// use edc_core::scenarios::{SourceKind, StrategyKind};
    /// use edc_lint::{Code, Linter};
    /// use edc_units::Seconds;
    /// use edc_workloads::WorkloadKind;
    ///
    /// // One 20 µs tick at 24 MHz grants < 500 cycles — a 256-point
    /// // Fourier transform cannot fit under a 10 µs deadline.
    /// let spec = ExperimentSpec::new(
    ///     SourceKind::RectifiedSine { hz: 50.0 },
    ///     StrategyKind::Hibernus,
    ///     WorkloadKind::Fourier(256),
    /// )
    /// .deadline(Seconds(10e-6));
    /// let report = Linter::new().lint_spec(&spec);
    /// assert!(report.diagnostics().iter().any(|d| d.code == Code::E003));
    /// ```
    E003,
    /// The supply cannot fund the workload: an upper bound on the energy
    /// the source can deliver into the storage capacitor over the deadline
    /// window is below a lower bound on the execution energy demand
    /// (cheapest clock level, no restarts, no checkpoint overhead).
    ///
    /// ```
    /// use edc_core::catalog::TraceCatalog;
    /// use edc_core::experiment::ExperimentSpec;
    /// use edc_core::scenarios::{SourceKind, StrategyKind};
    /// use edc_lint::{Code, Linter};
    /// use edc_units::Seconds;
    /// use edc_workloads::WorkloadKind;
    ///
    /// // A 1 µW recording delivers ~0.5 µJ over half a second — orders of
    /// // magnitude short of a CRC over 1024 words.
    /// let mut catalog = TraceCatalog::new();
    /// let id = catalog.register_uniform("dim", Seconds(1e-3), &[1e-6, 1e-6, 1e-6]).unwrap();
    /// let spec = ExperimentSpec::new(
    ///     SourceKind::Trace { id, decimate: 1, looped: true },
    ///     StrategyKind::Hibernus,
    ///     WorkloadKind::Crc16(1024),
    /// )
    /// .deadline(Seconds(0.5));
    /// let report = Linter::with_catalog(catalog).lint_spec(&spec);
    /// assert!(report.diagnostics().iter().any(|d| d.code == Code::E004));
    /// ```
    E004,
    /// The workload never terminates:
    /// [`WorkloadKind::Endless`](edc_workloads::WorkloadKind::Endless) has
    /// no completion state, so no run of this spec can ever report success.
    ///
    /// ```
    /// use edc_core::experiment::ExperimentSpec;
    /// use edc_core::scenarios::{SourceKind, StrategyKind};
    /// use edc_lint::{Code, Linter};
    /// use edc_workloads::WorkloadKind;
    ///
    /// let spec = ExperimentSpec::new(
    ///     SourceKind::Dc { volts: 3.3 },
    ///     StrategyKind::Hibernus,
    ///     WorkloadKind::Endless,
    /// );
    /// let report = Linter::new().lint_spec(&spec);
    /// assert!(report.diagnostics().iter().any(|d| d.code == Code::E005));
    /// ```
    E005,
    /// Decoupling below the Eq. (4) floor: even with zero safety margin no
    /// hibernate threshold `V_H ≤ V_max` can fund a snapshot, so every
    /// snapshot the strategy attempts tears. A warning, not an error —
    /// strategies park their threshold just under the clamp and limp
    /// along, and restart-style recovery can still complete.
    ///
    /// ```
    /// use edc_core::experiment::ExperimentSpec;
    /// use edc_core::scenarios::{SourceKind, StrategyKind};
    /// use edc_lint::{Code, Linter};
    /// use edc_units::Farads;
    /// use edc_workloads::WorkloadKind;
    ///
    /// // 0.1 µF cannot hold a multi-µJ snapshot budget between the rails.
    /// let spec = ExperimentSpec::new(
    ///     SourceKind::RectifiedSine { hz: 50.0 },
    ///     StrategyKind::Hibernus,
    ///     WorkloadKind::Crc16(64),
    /// )
    /// .decoupling(Farads::from_micro(0.1));
    /// let report = Linter::new().lint_spec(&spec);
    /// assert!(report.diagnostics().iter().any(|d| d.code == Code::W101));
    /// ```
    W101,
    /// Trace decimation aliasing: the decimated sample spacing exceeds the
    /// workload's bare execution time at the boot clock, so an entire
    /// uninterrupted execution sees a single interpolated supply segment —
    /// the dynamics the recording captured are aliased away. (Heuristic:
    /// the bare duration is the workload's period between completions.)
    ///
    /// ```
    /// use edc_core::catalog::TraceCatalog;
    /// use edc_core::experiment::ExperimentSpec;
    /// use edc_core::scenarios::{SourceKind, StrategyKind};
    /// use edc_lint::{Code, Linter};
    /// use edc_units::Seconds;
    /// use edc_workloads::WorkloadKind;
    ///
    /// let mut catalog = TraceCatalog::new();
    /// let samples: Vec<f64> = (0..40).map(|i| 1e-3 * (i % 2) as f64).collect();
    /// let id = catalog.register_uniform("fast", Seconds(1e-3), &samples).unwrap();
    /// // Keeping every 16th sample leaves 16 ms between samples — longer
    /// // than a tiny busy-loop's entire execution.
    /// let spec = ExperimentSpec::new(
    ///     SourceKind::Trace { id, decimate: 16, looped: true },
    ///     StrategyKind::Hibernus,
    ///     WorkloadKind::BusyLoop(10),
    /// );
    /// let report = Linter::with_catalog(catalog).lint_spec(&spec);
    /// assert!(report.diagnostics().iter().any(|d| d.code == Code::W102));
    /// ```
    W102,
    /// A non-looped trace is shorter than the deadline: playback holds the
    /// final sample's power forever after the recording ends, so the tail
    /// of the run is driven by an artefact, not data.
    ///
    /// ```
    /// use edc_core::catalog::TraceCatalog;
    /// use edc_core::experiment::ExperimentSpec;
    /// use edc_core::scenarios::{SourceKind, StrategyKind};
    /// use edc_lint::{Code, Linter};
    /// use edc_units::Seconds;
    /// use edc_workloads::WorkloadKind;
    ///
    /// let mut catalog = TraceCatalog::new();
    /// let id = catalog.register_uniform("short", Seconds(1e-3), &[8e-3, 8e-3, 8e-3]).unwrap();
    /// // 2 ms of recording driving a 1 s deadline.
    /// let spec = ExperimentSpec::new(
    ///     SourceKind::Trace { id, decimate: 1, looped: false },
    ///     StrategyKind::Hibernus,
    ///     WorkloadKind::Crc16(64),
    /// )
    /// .deadline(Seconds(1.0));
    /// let report = Linter::with_catalog(catalog).lint_spec(&spec);
    /// assert!(report.diagnostics().iter().any(|d| d.code == Code::W103));
    /// ```
    W103,
    /// Duplicate fleet placement buckets: two nodes share the exact same
    /// `(attenuation, phase)` pair, so they run byte-identical experiments
    /// — the duplicate buys no extra information, only wall-clock.
    ///
    /// ```
    /// use edc_core::experiment::ExperimentSpec;
    /// use edc_core::fleet::{FieldSpec, FleetSpec};
    /// use edc_core::scenarios::{FieldEnvelope, SourceKind, StrategyKind};
    /// use edc_lint::{Code, Linter};
    /// use edc_workloads::WorkloadKind;
    ///
    /// let design = ExperimentSpec::new(
    ///     SourceKind::Dc { volts: 3.3 },
    ///     StrategyKind::Hibernus,
    ///     WorkloadKind::Crc16(64),
    /// );
    /// // Three colocated nodes with zero stagger: identical buckets.
    /// let fleet = FleetSpec::new(
    ///     FieldSpec::Envelope(FieldEnvelope::RectifiedSine { hz: 50.0 }),
    ///     design,
    ///     3,
    /// );
    /// let report = Linter::new().lint_fleet(&fleet);
    /// assert_eq!(report.diagnostics().iter().filter(|d| d.code == Code::W104).count(), 2);
    /// ```
    W104,
    /// Dead axis in a `SpecSpace`: every value along the axis lints to the
    /// same non-clean outcome, so searching it cannot change the verdict.
    /// Emitted by `edc_explore::lint_space` (the space type lives there);
    /// see that function's documentation for a triggering example.
    W105,
}

impl Code {
    /// Every code, in numeric order.
    pub const ALL: [Code; 10] = [
        Code::E001,
        Code::E002,
        Code::E003,
        Code::E004,
        Code::E005,
        Code::W101,
        Code::W102,
        Code::W103,
        Code::W104,
        Code::W105,
    ];

    /// The stable code string (`"E001"`, …).
    pub fn name(self) -> &'static str {
        match self {
            Code::E001 => "E001",
            Code::E002 => "E002",
            Code::E003 => "E003",
            Code::E004 => "E004",
            Code::E005 => "E005",
            Code::W101 => "W101",
            Code::W102 => "W102",
            Code::W103 => "W103",
            Code::W104 => "W104",
            Code::W105 => "W105",
        }
    }

    /// The code with the given [`Code::name`], for JSON decoding.
    pub fn parse(name: &str) -> Option<Code> {
        Self::ALL.iter().copied().find(|c| c.name() == name)
    }

    /// The severity class the code's prefix encodes.
    pub fn severity(self) -> Severity {
        match self {
            Code::E001 | Code::E002 | Code::E003 | Code::E004 | Code::E005 => Severity::Error,
            Code::W101 | Code::W102 | Code::W103 | Code::W104 | Code::W105 => Severity::Warning,
        }
    }

    /// A one-line summary of the condition (the README codes table).
    pub fn summary(self) -> &'static str {
        match self {
            Code::E001 => "spec parameter violates its constructor domain",
            Code::E002 => "supply can never raise the rail to the boot threshold",
            Code::E003 => "deadline is below the workload's cycle lower bound",
            Code::E004 => "supply energy upper bound is below the demand lower bound",
            Code::E005 => "workload never terminates",
            Code::W101 => "decoupling below the Eq. (4) snapshot floor",
            Code::W102 => "trace decimation aliases the workload's supply dynamics",
            Code::W103 => "non-looped trace shorter than the deadline",
            Code::W104 => "duplicate fleet (attenuation, phase) bucket",
            Code::W105 => "spec-space axis whose every value lints identically",
        }
    }
}

/// One finding: a code, a JSON-path location into the offending spec, and
/// a human-readable message.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// The stable code.
    pub code: Code,
    /// Location as a JSON path into the spec's
    /// [`to_json`](edc_core::experiment::ExperimentSpec::to_json) form,
    /// e.g. `$.decoupling_f` or `$.nodes[2].source`.
    pub path: String,
    /// What is wrong, with the numbers that prove it.
    pub message: String,
}

impl Diagnostic {
    /// Creates a diagnostic.
    pub fn new(code: Code, path: impl Into<String>, message: impl Into<String>) -> Self {
        Self {
            code,
            path: path.into(),
            message: message.into(),
        }
    }

    /// The severity of [`Diagnostic::code`].
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }

    /// The diagnostic relocated under `prefix` (e.g. `$.nodes[2]`):
    /// `$.source` becomes `$.nodes[2].source`.
    pub fn with_path_prefix(mut self, prefix: &str) -> Self {
        let tail = self.path.strip_prefix('$').unwrap_or(&self.path);
        self.path = format!("{prefix}{tail}");
        self
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} [{}] {}: {}",
            self.severity().name(),
            self.code.name(),
            self.path,
            self.message
        )
    }
}

/// An ordered collection of diagnostics with a deterministic JSON form.
/// Pass order is fixed, so two lints of the same spec against the same
/// catalog produce byte-identical reports.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LintReport {
    diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// An empty (clean) report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Appends every diagnostic of `other`, relocated under `prefix`.
    pub fn merge_prefixed(&mut self, prefix: &str, other: LintReport) {
        for d in other.diagnostics {
            self.diagnostics.push(d.with_path_prefix(prefix));
        }
    }

    /// All diagnostics, in emission order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// `true` when no diagnostics were emitted.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// `true` when any `E`-class diagnostic is present — the prefilter's
    /// prune condition and the `edc_lint` binary's failure condition.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity() == Severity::Error)
    }

    /// Number of `E`-class diagnostics.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == Severity::Error)
            .count()
    }

    /// Number of `W`-class diagnostics.
    pub fn warning_count(&self) -> usize {
        self.diagnostics.len() - self.error_count()
    }

    /// The report as a JSON value: counts first, then every diagnostic in
    /// emission order. Deterministic, and lossless under
    /// [`LintReport::from_json`].
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("errors", Json::Uint(self.error_count() as u64)),
            ("warnings", Json::Uint(self.warning_count() as u64)),
            (
                "diagnostics",
                Json::Arr(
                    self.diagnostics
                        .iter()
                        .map(|d| {
                            Json::obj(vec![
                                ("code", Json::Str(d.code.name().into())),
                                ("severity", Json::Str(d.severity().name().into())),
                                ("path", Json::Str(d.path.clone())),
                                ("message", Json::Str(d.message.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Rebuilds a report from [`LintReport::to_json`] output. Severity and
    /// counts are re-derived from the codes, so a tampered severity field
    /// cannot desynchronise them.
    ///
    /// # Errors
    ///
    /// Returns a static description of the first shape mismatch or unknown
    /// code.
    pub fn from_json(json: &Json) -> Result<Self, &'static str> {
        let Some(Json::Arr(items)) = json.get("diagnostics") else {
            return Err("report missing 'diagnostics'");
        };
        let mut report = LintReport::new();
        for item in items {
            let Some(Json::Str(code)) = item.get("code") else {
                return Err("diagnostic missing 'code'");
            };
            let code = Code::parse(code).ok_or("unknown diagnostic code")?;
            let Some(Json::Str(path)) = item.get("path") else {
                return Err("diagnostic missing 'path'");
            };
            let Some(Json::Str(message)) = item.get("message") else {
                return Err("diagnostic missing 'message'");
            };
            report.push(Diagnostic::new(code, path.clone(), message.clone()));
        }
        Ok(report)
    }

    /// A plain-text rendering, one diagnostic per line (the `edc_lint`
    /// binary's output format).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_have_unique_names_and_matching_severity() {
        let mut names: Vec<&str> = Code::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Code::ALL.len());
        for code in Code::ALL {
            assert_eq!(Code::parse(code.name()), Some(code));
            let expect = if code.name().starts_with('E') {
                Severity::Error
            } else {
                Severity::Warning
            };
            assert_eq!(code.severity(), expect, "{}", code.name());
        }
        assert_eq!(Code::parse("E999"), None);
    }

    #[test]
    fn report_counts_and_flags() {
        let mut r = LintReport::new();
        assert!(r.is_clean() && !r.has_errors());
        r.push(Diagnostic::new(Code::W101, "$.decoupling_f", "floor"));
        assert!(!r.is_clean() && !r.has_errors());
        r.push(Diagnostic::new(Code::E004, "$.source", "starved"));
        assert!(r.has_errors());
        assert_eq!((r.error_count(), r.warning_count()), (1, 1));
    }

    #[test]
    fn json_round_trip_is_byte_identical() {
        let mut r = LintReport::new();
        r.push(Diagnostic::new(Code::E002, "$.source", "max 1.5 V < 2.4 V"));
        r.push(Diagnostic::new(Code::W103, "$.source.looped", "2 ms < 1 s"));
        let json = r.to_json();
        let back = LintReport::from_json(&json).expect("round-trip");
        assert_eq!(back, r);
        assert_eq!(back.to_json().to_string(), json.to_string());
    }

    #[test]
    fn path_prefixing_relocates() {
        let d = Diagnostic::new(Code::E002, "$.source", "m").with_path_prefix("$.nodes[3]");
        assert_eq!(d.path, "$.nodes[3].source");
    }
}
