//! Exit-code and output contract of the `edc_lint` binary, including the
//! `--bounds` flag.

// Test-only crate: fixture helpers may panic on harness I/O failures
// (allow-unwrap-in-tests only covers `#[test]` fns, not their helpers).
#![allow(clippy::expect_used)]

use std::path::PathBuf;
use std::process::{Command, Output};

use edc_core::experiment::ExperimentSpec;
use edc_core::scenarios::{SourceKind, StrategyKind};
use edc_units::Seconds;
use edc_workloads::WorkloadKind;

fn edc_lint(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_edc_lint"))
        .args(args)
        .output()
        .expect("edc_lint runs")
}

/// Writes `spec` as JSON into a per-test scratch file and returns its path.
fn fixture(test: &str, spec: &ExperimentSpec) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("edc_lint_bin_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let path = dir.join(format!("{test}.json"));
    std::fs::write(&path, spec.to_json().to_string()).expect("fixture write");
    path
}

fn healthy() -> ExperimentSpec {
    ExperimentSpec::new(
        SourceKind::Dc { volts: 3.3 },
        StrategyKind::Restart,
        WorkloadKind::Crc16(64),
    )
    .deadline(Seconds(0.5))
}

fn dark() -> ExperimentSpec {
    healthy().source(SourceKind::Dc { volts: 1.5 })
}

#[test]
fn clean_file_exits_zero() {
    let file = fixture("clean", &healthy());
    let out = edc_lint(&[file.to_str().expect("utf-8 path")]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8(out.stdout).expect("utf-8 stdout");
    assert!(stdout.contains("0 error(s)"), "{stdout}");
    assert!(!stdout.contains("bounds"), "no brackets without --bounds");
}

#[test]
fn error_diagnostics_exit_nonzero() {
    let file = fixture("dark", &dark());
    let out = edc_lint(&[file.to_str().expect("utf-8 path")]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8(out.stdout).expect("utf-8 stdout");
    assert!(stdout.contains("E002"), "{stdout}");
}

#[test]
fn missing_file_exits_nonzero() {
    let out = edc_lint(&["/nonexistent/edc_lint_fixture.json"]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
}

#[test]
fn no_files_and_help_exit_codes() {
    assert_eq!(edc_lint(&[]).status.code(), Some(1));
    assert_eq!(edc_lint(&["--help"]).status.code(), Some(0));
    assert_eq!(edc_lint(&["--metrics"]).status.code(), Some(1));
}

#[test]
fn bounds_flag_prints_brackets_and_keeps_exit_codes() {
    // Brackets are informational: a dark spec still fails, a clean one
    // still passes, each with its brackets printed next to diagnostics.
    let file = fixture("bounds_dark", &dark());
    let out = edc_lint(&["--bounds", file.to_str().expect("utf-8 path")]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8(out.stdout).expect("utf-8 stdout");
    assert!(stdout.contains("bounds {"), "{stdout}");
    assert!(stdout.contains("\"never_boots\":true"), "{stdout}");

    let file = fixture("bounds_clean", &healthy());
    let out = edc_lint(&["--bounds", file.to_str().expect("utf-8 path")]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8(out.stdout).expect("utf-8 stdout");
    assert!(stdout.contains("\"proven_dnf\":false"), "{stdout}");
}

#[test]
fn bounds_json_output_nests_lint_and_bounds_deterministically() {
    let file = fixture("bounds_json", &healthy());
    let path = file.to_str().expect("utf-8 path");
    let a = edc_lint(&["--json", "--bounds", path]);
    let b = edc_lint(&["--json", "--bounds", path]);
    assert_eq!(a.status.code(), Some(0), "{a:?}");
    assert_eq!(a.stdout, b.stdout, "deterministic output");
    let stdout = String::from_utf8(a.stdout).expect("utf-8 stdout");
    assert!(stdout.contains("\"lint\""), "{stdout}");
    assert!(stdout.contains("\"bounds\""), "{stdout}");
    assert!(stdout.contains("\"completion_s\""), "{stdout}");

    // Without --bounds the JSON shape is the plain per-file report.
    let plain = edc_lint(&["--json", path]);
    let plain_stdout = String::from_utf8(plain.stdout).expect("utf-8 stdout");
    assert!(!plain_stdout.contains("\"bounds\""), "{plain_stdout}");
}
