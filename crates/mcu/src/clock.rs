//! The DFS clock ladder.
//!
//! Dynamic frequency scaling is the paper's primary power-neutral "hook"
//! (Section II.C / Fig. 8): the governor moves the core clock up and down
//! this ladder to modulate consumption against harvested power.

use edc_units::Hertz;

/// A discrete set of selectable core frequencies.
#[derive(Debug, Clone, PartialEq)]
pub struct ClockLadder {
    levels: Vec<Hertz>,
    index: usize,
}

impl ClockLadder {
    /// The MSP430FR-class ladder used throughout the workspace:
    /// 1, 2, 4, 8, 16 and 24 MHz.
    pub fn msp430() -> Self {
        Self::new(vec![
            Hertz::from_mega(1.0),
            Hertz::from_mega(2.0),
            Hertz::from_mega(4.0),
            Hertz::from_mega(8.0),
            Hertz::from_mega(16.0),
            Hertz::from_mega(24.0),
        ])
    }

    /// Creates a ladder from strictly increasing positive frequencies,
    /// starting at the highest level.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is empty or not strictly increasing/positive.
    pub fn new(levels: Vec<Hertz>) -> Self {
        assert!(!levels.is_empty(), "clock ladder needs at least one level");
        assert!(levels[0].is_positive(), "frequencies must be > 0");
        for pair in levels.windows(2) {
            assert!(pair[0] < pair[1], "ladder must be strictly increasing");
        }
        let index = levels.len() - 1;
        Self { levels, index }
    }

    /// Number of levels.
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// `true` when the ladder has no levels (cannot occur after `new`).
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// The current frequency.
    pub fn frequency(&self) -> Hertz {
        self.levels[self.index]
    }

    /// The current level index (0 = slowest).
    pub fn level(&self) -> usize {
        self.index
    }

    /// All levels, slowest first.
    pub fn levels(&self) -> &[Hertz] {
        &self.levels
    }

    /// Selects a level by index.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    pub fn set_level(&mut self, level: usize) {
        assert!(level < self.levels.len(), "clock level out of range");
        self.index = level;
    }

    /// Steps one level up (faster); returns the new frequency.
    pub fn step_up(&mut self) -> Hertz {
        if self.index + 1 < self.levels.len() {
            self.index += 1;
        }
        self.frequency()
    }

    /// Steps one level down (slower); returns the new frequency.
    pub fn step_down(&mut self) -> Hertz {
        self.index = self.index.saturating_sub(1);
        self.frequency()
    }

    /// `true` when at the slowest level.
    pub fn at_bottom(&self) -> bool {
        self.index == 0
    }

    /// `true` when at the fastest level.
    pub fn at_top(&self) -> bool {
        self.index == self.levels.len() - 1
    }
}

impl Default for ClockLadder {
    fn default() -> Self {
        Self::msp430()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msp430_ladder_shape() {
        let l = ClockLadder::msp430();
        assert_eq!(l.len(), 6);
        assert!(l.at_top());
        assert_eq!(l.frequency(), Hertz::from_mega(24.0));
    }

    #[test]
    fn stepping_clamps_at_ends() {
        let mut l = ClockLadder::msp430();
        for _ in 0..10 {
            l.step_down();
        }
        assert!(l.at_bottom());
        assert_eq!(l.frequency(), Hertz::from_mega(1.0));
        l.step_down();
        assert_eq!(l.frequency(), Hertz::from_mega(1.0));
        for _ in 0..10 {
            l.step_up();
        }
        assert!(l.at_top());
    }

    #[test]
    fn set_level_selects_directly() {
        let mut l = ClockLadder::msp430();
        l.set_level(3);
        assert_eq!(l.frequency(), Hertz::from_mega(8.0));
        assert_eq!(l.level(), 3);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_monotone_ladder_rejected() {
        let _ = ClockLadder::new(vec![Hertz(2.0), Hertz(1.0)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_level_rejected() {
        let mut l = ClockLadder::msp430();
        l.set_level(6);
    }
}
