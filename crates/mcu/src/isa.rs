//! The EH16 instruction set and program assembler.
//!
//! EH16 is a deliberately small 16-bit register machine in the spirit of the
//! MSP430 used by the Hibernus line of work: 16 general registers, a word-
//! addressed unified memory (SRAM + FRAM regions), compare-and-branch flags,
//! a hardware-multiplier-style `MulQ15` for DSP workloads, and two coarse
//! peripheral instructions (`Sense`, `Tx`). A `Mark` no-op carries the
//! compile-time checkpoint sites Mementos keys on.
//!
//! Programs are built with [`ProgramBuilder`], which resolves symbolic
//! labels to instruction indices at [`ProgramBuilder::build`] time.

use std::collections::HashMap;
use std::fmt;

/// A register index `R0`–`R15`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Creates a register reference.
    ///
    /// # Panics
    ///
    /// Panics if `index > 15`.
    pub const fn new(index: u8) -> Self {
        assert!(index < 16, "register index must be 0..=15");
        Reg(index)
    }

    /// The register index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Convenience register constants.
pub mod regs {
    use super::Reg;
    /// Register 0.
    pub const R0: Reg = Reg::new(0);
    /// Register 1.
    pub const R1: Reg = Reg::new(1);
    /// Register 2.
    pub const R2: Reg = Reg::new(2);
    /// Register 3.
    pub const R3: Reg = Reg::new(3);
    /// Register 4.
    pub const R4: Reg = Reg::new(4);
    /// Register 5.
    pub const R5: Reg = Reg::new(5);
    /// Register 6.
    pub const R6: Reg = Reg::new(6);
    /// Register 7.
    pub const R7: Reg = Reg::new(7);
    /// Register 8.
    pub const R8: Reg = Reg::new(8);
    /// Register 9.
    pub const R9: Reg = Reg::new(9);
    /// Register 10.
    pub const R10: Reg = Reg::new(10);
    /// Register 11.
    pub const R11: Reg = Reg::new(11);
    /// Register 12.
    pub const R12: Reg = Reg::new(12);
    /// Register 13.
    pub const R13: Reg = Reg::new(13);
    /// Register 14.
    pub const R14: Reg = Reg::new(14);
    /// Register 15.
    pub const R15: Reg = Reg::new(15);
}

/// Second operand of ALU instructions: a register or an immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operand {
    /// Register operand.
    Reg(Reg),
    /// 16-bit immediate.
    Imm(u16),
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<u16> for Operand {
    fn from(v: u16) -> Self {
        Operand::Imm(v)
    }
}

/// Memory addressing modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Addr {
    /// Absolute word address.
    Abs(u16),
    /// Address held in a register.
    Ind(Reg),
    /// Register plus signed word offset.
    IndOff(Reg, i16),
}

/// One EH16 instruction. Branch targets are instruction indices, resolved
/// from labels by the assembler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Insn {
    /// `rd ← src`.
    Mov(Reg, Operand),
    /// `rd ← rd + src` (wrapping); sets flags.
    Add(Reg, Operand),
    /// `rd ← rd − src` (wrapping); sets flags.
    Sub(Reg, Operand),
    /// `rd ← rd & src`; sets flags.
    And(Reg, Operand),
    /// `rd ← rd | src`; sets flags.
    Or(Reg, Operand),
    /// `rd ← rd ^ src`; sets flags.
    Xor(Reg, Operand),
    /// `rd ← low16(rd × src)` (wrapping); sets flags.
    Mul(Reg, Operand),
    /// Q15 fixed-point multiply: `rd ← (rd × src) >> 15` treating both as
    /// signed Q15; sets flags. Models the hardware multiplier.
    MulQ15(Reg, Operand),
    /// Logical shift left by a constant; sets flags.
    Shl(Reg, u8),
    /// Logical shift right by a constant; sets flags.
    Shr(Reg, u8),
    /// Arithmetic shift right by a constant; sets flags.
    Sar(Reg, u8),
    /// Load `rd ← mem[addr]`.
    Ld(Reg, Addr),
    /// Store `mem[addr] ← rs`.
    St(Reg, Addr),
    /// Compare `ra` with `src` (signed); sets flags without writing.
    Cmp(Reg, Operand),
    /// Unconditional jump to instruction index.
    Jmp(u32),
    /// Branch if zero flag set.
    Brz(u32),
    /// Branch if zero flag clear.
    Brnz(u32),
    /// Branch if negative flag set (last compare: `a < b` signed).
    Brn(u32),
    /// Branch if negative flag clear (last compare: `a ≥ b` signed).
    Brge(u32),
    /// Push return address and jump.
    Call(u32),
    /// Pop return address and jump back.
    Ret,
    /// Push a register onto the stack.
    Push(Reg),
    /// Pop a register from the stack.
    Pop(Reg),
    /// Checkpoint-site marker (no-op at run time; Mementos triggers here).
    Mark(u16),
    /// Read the ADC into `rd` (slow, costs ADC energy).
    Sense(Reg),
    /// Transmit `rs` over the radio (very slow, costs radio energy).
    Tx(Reg),
    /// No operation.
    Nop,
    /// Stop: the program has completed.
    Halt,
}

impl Insn {
    /// Base cycle cost of the instruction (memory-region wait states are
    /// added by the machine).
    pub fn base_cycles(&self) -> u64 {
        match self {
            Insn::Mov(_, Operand::Reg(_)) => 1,
            Insn::Mov(_, Operand::Imm(_)) => 2,
            Insn::Add(_, o)
            | Insn::Sub(_, o)
            | Insn::And(_, o)
            | Insn::Or(_, o)
            | Insn::Xor(_, o)
            | Insn::Cmp(_, o) => match o {
                Operand::Reg(_) => 1,
                Operand::Imm(_) => 2,
            },
            Insn::Mul(_, _) | Insn::MulQ15(_, _) => 5,
            Insn::Shl(_, _) | Insn::Shr(_, _) | Insn::Sar(_, _) => 1,
            Insn::Ld(_, _) | Insn::St(_, _) => 3,
            Insn::Jmp(_) | Insn::Brz(_) | Insn::Brnz(_) | Insn::Brn(_) | Insn::Brge(_) => 2,
            Insn::Call(_) => 5,
            Insn::Ret => 5,
            Insn::Push(_) | Insn::Pop(_) => 3,
            Insn::Mark(_) => 1,
            Insn::Sense(_) => 200,
            Insn::Tx(_) => 2000,
            Insn::Nop => 1,
            Insn::Halt => 1,
        }
    }
}

/// An assembled program: instructions plus an initial FRAM data image.
#[derive(Debug, Clone)]
pub struct Program {
    name: String,
    insns: Vec<Insn>,
    /// `(word address, words)` blocks loaded into non-volatile memory before
    /// first boot — constant tables, input vectors.
    data: Vec<(u16, Vec<u16>)>,
}

impl Program {
    /// The program's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The instruction stream.
    pub fn insns(&self) -> &[Insn] {
        &self.insns
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insns.len()
    }

    /// `true` for an empty program.
    pub fn is_empty(&self) -> bool {
        self.insns.is_empty()
    }

    /// The initial non-volatile data image.
    pub fn data(&self) -> &[(u16, Vec<u16>)] {
        &self.data
    }

    /// Instruction at `pc`, if in range.
    pub fn fetch(&self, pc: u32) -> Option<Insn> {
        self.insns.get(pc as usize).copied()
    }

    /// Indices of every `Mark` instruction — the compile-time checkpoint
    /// sites Mementos uses.
    pub fn checkpoint_sites(&self) -> Vec<u32> {
        self.insns
            .iter()
            .enumerate()
            .filter(|(_, i)| matches!(i, Insn::Mark(_)))
            .map(|(idx, _)| idx as u32)
            .collect()
    }
}

/// Errors reported by [`ProgramBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildProgramError {
    /// A jump references a label that was never defined.
    UndefinedLabel(String),
    /// The same label was defined twice.
    DuplicateLabel(String),
    /// The program contains no instructions.
    Empty,
}

impl fmt::Display for BuildProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildProgramError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            BuildProgramError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            BuildProgramError::Empty => write!(f, "program has no instructions"),
        }
    }
}

impl std::error::Error for BuildProgramError {}

/// Instruction placeholder used during assembly: targets are label names.
#[derive(Debug, Clone)]
enum Draft {
    Ready(Insn),
    Jump(JumpKind, String),
}

#[derive(Debug, Clone, Copy)]
enum JumpKind {
    Jmp,
    Brz,
    Brnz,
    Brn,
    Brge,
    Call,
}

/// Builds [`Program`]s with symbolic labels.
///
/// # Examples
///
/// Summing 1..=10:
///
/// ```
/// use edc_mcu::isa::{regs::*, ProgramBuilder};
///
/// let program = ProgramBuilder::new("sum")
///     .mov(R0, 0u16)      // acc
///     .mov(R1, 10u16)     // i
///     .label("loop")
///     .add(R0, R1)
///     .sub(R1, 1u16)
///     .brnz("loop")
///     .halt()
///     .build()
///     .expect("labels resolve");
/// assert_eq!(program.len(), 6);
/// ```
#[derive(Debug, Clone)]
pub struct ProgramBuilder {
    name: String,
    drafts: Vec<Draft>,
    labels: HashMap<String, u32>,
    data: Vec<(u16, Vec<u16>)>,
    error: Option<BuildProgramError>,
}

impl ProgramBuilder {
    /// Starts a new program.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            drafts: Vec::new(),
            labels: HashMap::new(),
            data: Vec::new(),
            error: None,
        }
    }

    /// Defines a label at the current position.
    pub fn label(mut self, name: impl Into<String>) -> Self {
        let name = name.into();
        if self
            .labels
            .insert(name.clone(), self.drafts.len() as u32)
            .is_some()
            && self.error.is_none()
        {
            self.error = Some(BuildProgramError::DuplicateLabel(name));
        }
        self
    }

    /// Attaches an initial non-volatile data block at `addr`.
    pub fn data(mut self, addr: u16, words: Vec<u16>) -> Self {
        self.data.push((addr, words));
        self
    }

    fn push(mut self, i: Insn) -> Self {
        self.drafts.push(Draft::Ready(i));
        self
    }

    fn push_jump(mut self, kind: JumpKind, label: impl Into<String>) -> Self {
        self.drafts.push(Draft::Jump(kind, label.into()));
        self
    }

    /// `rd ← src`.
    pub fn mov(self, rd: Reg, src: impl Into<Operand>) -> Self {
        self.push(Insn::Mov(rd, src.into()))
    }

    /// `rd ← rd + src`.
    pub fn add(self, rd: Reg, src: impl Into<Operand>) -> Self {
        self.push(Insn::Add(rd, src.into()))
    }

    /// `rd ← rd − src`.
    pub fn sub(self, rd: Reg, src: impl Into<Operand>) -> Self {
        self.push(Insn::Sub(rd, src.into()))
    }

    /// `rd ← rd & src`.
    pub fn and(self, rd: Reg, src: impl Into<Operand>) -> Self {
        self.push(Insn::And(rd, src.into()))
    }

    /// `rd ← rd | src`.
    pub fn or(self, rd: Reg, src: impl Into<Operand>) -> Self {
        self.push(Insn::Or(rd, src.into()))
    }

    /// `rd ← rd ^ src`.
    pub fn xor(self, rd: Reg, src: impl Into<Operand>) -> Self {
        self.push(Insn::Xor(rd, src.into()))
    }

    /// `rd ← low16(rd × src)`.
    pub fn mul(self, rd: Reg, src: impl Into<Operand>) -> Self {
        self.push(Insn::Mul(rd, src.into()))
    }

    /// Q15 multiply.
    pub fn mulq15(self, rd: Reg, src: impl Into<Operand>) -> Self {
        self.push(Insn::MulQ15(rd, src.into()))
    }

    /// Logical shift left.
    pub fn shl(self, rd: Reg, n: u8) -> Self {
        self.push(Insn::Shl(rd, n))
    }

    /// Logical shift right.
    pub fn shr(self, rd: Reg, n: u8) -> Self {
        self.push(Insn::Shr(rd, n))
    }

    /// Arithmetic shift right.
    pub fn sar(self, rd: Reg, n: u8) -> Self {
        self.push(Insn::Sar(rd, n))
    }

    /// Load from memory.
    pub fn ld(self, rd: Reg, addr: Addr) -> Self {
        self.push(Insn::Ld(rd, addr))
    }

    /// Store to memory.
    pub fn st(self, rs: Reg, addr: Addr) -> Self {
        self.push(Insn::St(rs, addr))
    }

    /// Signed compare, setting flags.
    pub fn cmp(self, ra: Reg, src: impl Into<Operand>) -> Self {
        self.push(Insn::Cmp(ra, src.into()))
    }

    /// Unconditional jump to a label.
    pub fn jmp(self, label: impl Into<String>) -> Self {
        self.push_jump(JumpKind::Jmp, label)
    }

    /// Branch to `label` if the zero flag is set.
    pub fn brz(self, label: impl Into<String>) -> Self {
        self.push_jump(JumpKind::Brz, label)
    }

    /// Branch to `label` if the zero flag is clear.
    pub fn brnz(self, label: impl Into<String>) -> Self {
        self.push_jump(JumpKind::Brnz, label)
    }

    /// Branch to `label` if negative (last compare `a < b`).
    pub fn brn(self, label: impl Into<String>) -> Self {
        self.push_jump(JumpKind::Brn, label)
    }

    /// Branch to `label` if not negative (last compare `a ≥ b`).
    pub fn brge(self, label: impl Into<String>) -> Self {
        self.push_jump(JumpKind::Brge, label)
    }

    /// Call a labelled subroutine.
    pub fn call(self, label: impl Into<String>) -> Self {
        self.push_jump(JumpKind::Call, label)
    }

    /// Return from a subroutine.
    pub fn ret(self) -> Self {
        self.push(Insn::Ret)
    }

    /// Push a register.
    pub fn push_reg(self, r: Reg) -> Self {
        self.push(Insn::Push(r))
    }

    /// Pop into a register.
    pub fn pop_reg(self, r: Reg) -> Self {
        self.push(Insn::Pop(r))
    }

    /// Emits a checkpoint-site marker.
    pub fn mark(self, id: u16) -> Self {
        self.push(Insn::Mark(id))
    }

    /// Reads the ADC.
    pub fn sense(self, rd: Reg) -> Self {
        self.push(Insn::Sense(rd))
    }

    /// Transmits a word.
    pub fn tx(self, rs: Reg) -> Self {
        self.push(Insn::Tx(rs))
    }

    /// No-op.
    pub fn nop(self) -> Self {
        self.push(Insn::Nop)
    }

    /// Terminates the program.
    pub fn halt(self) -> Self {
        self.push(Insn::Halt)
    }

    /// Resolves labels and produces the program.
    ///
    /// # Errors
    ///
    /// Returns [`BuildProgramError`] when a label is undefined or duplicated,
    /// or the program is empty.
    pub fn build(self) -> Result<Program, BuildProgramError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        if self.drafts.is_empty() {
            return Err(BuildProgramError::Empty);
        }
        let mut insns = Vec::with_capacity(self.drafts.len());
        for draft in self.drafts {
            let insn = match draft {
                Draft::Ready(i) => i,
                Draft::Jump(kind, label) => {
                    let target = *self
                        .labels
                        .get(&label)
                        .ok_or(BuildProgramError::UndefinedLabel(label))?;
                    match kind {
                        JumpKind::Jmp => Insn::Jmp(target),
                        JumpKind::Brz => Insn::Brz(target),
                        JumpKind::Brnz => Insn::Brnz(target),
                        JumpKind::Brn => Insn::Brn(target),
                        JumpKind::Brge => Insn::Brge(target),
                        JumpKind::Call => Insn::Call(target),
                    }
                }
            };
            insns.push(insn);
        }
        Ok(Program {
            name: self.name,
            insns,
            data: self.data,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::regs::*;
    use super::*;

    #[test]
    fn builder_resolves_forward_and_backward_labels() {
        let p = ProgramBuilder::new("t")
            .jmp("end") // forward reference
            .label("loop")
            .add(R0, 1u16)
            .jmp("loop") // backward reference
            .label("end")
            .halt()
            .build()
            .unwrap();
        assert_eq!(p.insns()[0], Insn::Jmp(3));
        assert_eq!(p.insns()[2], Insn::Jmp(1));
    }

    #[test]
    fn undefined_label_is_an_error() {
        let err = ProgramBuilder::new("t").jmp("nowhere").build().unwrap_err();
        assert_eq!(err, BuildProgramError::UndefinedLabel("nowhere".into()));
        assert!(err.to_string().contains("nowhere"));
    }

    #[test]
    fn duplicate_label_is_an_error() {
        let err = ProgramBuilder::new("t")
            .label("a")
            .nop()
            .label("a")
            .halt()
            .build()
            .unwrap_err();
        assert_eq!(err, BuildProgramError::DuplicateLabel("a".into()));
    }

    #[test]
    fn empty_program_is_an_error() {
        assert_eq!(
            ProgramBuilder::new("t").build().unwrap_err(),
            BuildProgramError::Empty
        );
    }

    #[test]
    fn checkpoint_sites_found() {
        let p = ProgramBuilder::new("t")
            .mark(1)
            .nop()
            .mark(2)
            .halt()
            .build()
            .unwrap();
        assert_eq!(p.checkpoint_sites(), vec![0, 2]);
    }

    #[test]
    fn data_blocks_preserved() {
        let p = ProgramBuilder::new("t")
            .data(0x1000, vec![1, 2, 3])
            .halt()
            .build()
            .unwrap();
        assert_eq!(p.data(), &[(0x1000, vec![1, 2, 3])]);
    }

    #[test]
    fn cycle_costs_ordering() {
        // Peripheral ops dwarf ALU ops; immediates cost more than registers.
        assert!(Insn::Tx(R0).base_cycles() > Insn::Sense(R0).base_cycles());
        assert!(Insn::Sense(R0).base_cycles() > Insn::Mul(R0, Operand::Reg(R1)).base_cycles());
        assert!(
            Insn::Add(R0, Operand::Imm(1)).base_cycles()
                > Insn::Add(R0, Operand::Reg(R1)).base_cycles()
        );
    }

    #[test]
    #[should_panic(expected = "register index")]
    fn out_of_range_register_rejected() {
        let _ = Reg::new(16);
    }

    #[test]
    fn reg_display() {
        assert_eq!(format!("{}", R7), "r7");
    }
}
