//! A simulated low-power microcontroller for intermittent-computing research.
//!
//! This crate is the hardware substitute for the MSP430FR5739 boards the
//! paper's Hibernus line of experiments ran on (see DESIGN.md). It provides:
//!
//! - [`isa`] — the EH16 instruction set and a label-resolving assembler;
//! - [`mem`] — a word-addressed SRAM + FRAM memory with access accounting;
//! - [`ClockLadder`] — the DFS frequency ladder (the power-neutral "hook");
//! - [`PowerModel`] — MSP430-datasheet-shaped current/energy figures;
//! - [`Mcu`] — the machine: cycle-counted execution, brownout semantics
//!   (volatile state dies, FRAM survives), and a two-phase snapshot engine
//!   whose torn frames never restore.
//!
//! # Examples
//!
//! Surviving a power loss through a snapshot:
//!
//! ```
//! use edc_mcu::isa::{regs::*, ProgramBuilder};
//! use edc_mcu::{Mcu, RunExit};
//!
//! let program = ProgramBuilder::new("demo")
//!     .mov(R0, 0u16)
//!     .label("loop")
//!     .add(R0, 1u16)
//!     .cmp(R0, 1000u16)
//!     .brn("loop")
//!     .halt()
//!     .build()?;
//! let mut mcu = Mcu::new(program);
//!
//! mcu.run(500, false);                  // make some progress
//! mcu.take_snapshot(None);              // V_H crossed: hibernate
//! mcu.power_loss();                     // supply dies
//! mcu.cold_boot();                      // supply returns
//! mcu.restore_snapshot().expect("sealed snapshot");
//! assert_eq!(mcu.run(u64::MAX, false).exit, RunExit::Completed);
//! assert_eq!(mcu.cpu().regs[0], 1000);
//! # Ok::<(), edc_mcu::isa::BuildProgramError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod isa;
mod machine;
pub mod mem;
mod power;

pub use clock::ClockLadder;
pub use machine::{
    Adc, CpuState, MachineError, Mcu, PeripheralPolicy, Radio, RestoreOutcome, RunExit, RunReport,
    SnapshotOutcome,
};
pub use power::{ExecutionResidence, PowerModel, PowerState};
