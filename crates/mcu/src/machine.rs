//! The simulated MCU: CPU, memory, clock, peripherals, and the snapshot
//! engine that makes transient computing possible.
//!
//! The machine deliberately exposes the failure semantics the paper's
//! Section II.B revolves around: on [`Mcu::power_loss`] all volatile state
//! (SRAM, registers, peripheral state) is destroyed while FRAM survives, and
//! a snapshot interrupted mid-copy is left unsealed and will not restore —
//! Mementos' downside #2.

use std::fmt;

use edc_units::{Hertz, Joules, Seconds, Watts};

use crate::clock::ClockLadder;
use crate::isa::{Addr, Insn, Operand, Program, Reg};
use crate::mem::{Memory, MemoryFault, Region, SNAPSHOT_BASE, SNAPSHOT_FRAME_WORDS, SRAM_WORDS};
use crate::power::{ExecutionResidence, PowerModel, PowerState};

/// Valid-snapshot seal word, written last during a snapshot.
const SEAL_VALID: u16 = 0xA55A;

/// Snapshot frame header length in words (seal, sequence, 16 regs, pc lo/hi,
/// sp, flags, 2 reserved).
const HEADER_WORDS: u16 = 24;

/// CPU architectural state — exactly what a snapshot must capture beyond
/// SRAM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CpuState {
    /// General registers R0–R15.
    pub regs: [u16; 16],
    /// Program counter (instruction index).
    pub pc: u32,
    /// Stack pointer (word address; grows down).
    pub sp: u16,
    /// Zero flag.
    pub z: bool,
    /// Negative flag.
    pub n: bool,
}

impl CpuState {
    fn reset() -> Self {
        Self {
            regs: [0; 16],
            pc: 0,
            sp: SRAM_WORDS,
            z: false,
            n: false,
        }
    }
}

/// Errors the machine can raise while executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachineError {
    /// A load/store touched unmapped memory.
    Memory(MemoryFault),
    /// The PC left the program.
    PcOutOfRange(u32),
    /// Push with a full stack.
    StackOverflow,
    /// Pop/ret with an empty stack.
    StackUnderflow,
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::Memory(m) => write!(f, "memory fault: {m}"),
            MachineError::PcOutOfRange(pc) => write!(f, "pc {pc} outside program"),
            MachineError::StackOverflow => write!(f, "stack overflow"),
            MachineError::StackUnderflow => write!(f, "stack underflow"),
        }
    }
}

impl std::error::Error for MachineError {}

impl From<MemoryFault> for MachineError {
    fn from(m: MemoryFault) -> Self {
        MachineError::Memory(m)
    }
}

/// Why a [`Mcu::run`] call returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunExit {
    /// The program executed `Halt`.
    Completed,
    /// The cycle budget ran out mid-program.
    BudgetExhausted,
    /// A `Mark` checkpoint site was crossed (only with `stop_at_markers`).
    Marker(u16),
    /// Execution faulted.
    Fault(MachineError),
}

/// Result of a [`Mcu::run`] burst.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunReport {
    /// Cycles consumed.
    pub cycles: u64,
    /// Instructions retired.
    pub instructions: u64,
    /// Energy consumed (execution + peripheral events).
    pub energy: Joules,
    /// Why the burst ended.
    pub exit: RunExit,
}

/// Result of a snapshot attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SnapshotOutcome {
    /// `true` when the frame was fully written and sealed.
    pub completed: bool,
    /// Cycles the copy loop consumed (or would have, if truncated).
    pub cycles: u64,
    /// Energy actually spent.
    pub energy: Joules,
}

/// Result of a successful restore.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RestoreOutcome {
    /// Cycles the copy-back consumed.
    pub cycles: u64,
    /// Energy spent.
    pub energy: Joules,
    /// Snapshot sequence number that was restored.
    pub sequence: u16,
}

/// How snapshots treat peripheral state — the open problem the paper's
/// discussion section raises ("work to date has primarily focused on
/// computation, and not the plethora of peripherals that are typically
/// present in embedded systems").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PeripheralPolicy {
    /// Peripherals are re-initialised after every outage (the state of the
    /// art the paper describes): the ADC's conversion sequence restarts.
    #[default]
    Reinit,
    /// Peripheral registers are included in the snapshot frame (the paper's
    /// future-work direction), at a small extra frame cost.
    Checkpointed,
}

/// A deterministic ADC peripheral: successive conversions sample a slow
/// sinusoid, as a sensor watching a periodic physical signal would.
///
/// Under [`PeripheralPolicy::Reinit`] the conversion index is *volatile* —
/// power loss resets it and the sampled waveform restarts.
#[derive(Debug, Clone, Default)]
pub struct Adc {
    index: u32,
}

impl Adc {
    /// Performs one conversion (12-bit result).
    pub fn convert(&mut self) -> u16 {
        let phase = self.index as f64 / 64.0 * std::f64::consts::TAU;
        self.index = self.index.wrapping_add(1);
        (2048.0 + 1023.0 * phase.sin()).round() as u16
    }

    /// Conversions since last reset.
    pub fn conversions(&self) -> u32 {
        self.index
    }

    fn reset(&mut self) {
        self.index = 0;
    }
}

/// A counting radio peripheral.
#[derive(Debug, Clone, Default)]
pub struct Radio {
    words_sent: u64,
    last_word: u16,
}

impl Radio {
    /// Total words transmitted over the machine's lifetime (non-volatile
    /// counter on the observer's side, like a lab sniffer).
    pub fn words_sent(&self) -> u64 {
        self.words_sent
    }

    /// The most recently transmitted word.
    pub fn last_word(&self) -> u16 {
        self.last_word
    }
}

/// The simulated microcontroller.
///
/// # Examples
///
/// ```
/// use edc_mcu::isa::{regs::*, ProgramBuilder};
/// use edc_mcu::{Mcu, RunExit};
///
/// let program = ProgramBuilder::new("count")
///     .mov(R0, 0u16)
///     .mov(R1, 5u16)
///     .label("loop")
///     .add(R0, 1u16)
///     .sub(R1, 1u16)
///     .brnz("loop")
///     .halt()
///     .build()?;
/// let mut mcu = Mcu::new(program);
/// let report = mcu.run(1_000_000, false);
/// assert_eq!(report.exit, RunExit::Completed);
/// assert_eq!(mcu.cpu().regs[0], 5);
/// # Ok::<(), edc_mcu::isa::BuildProgramError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Mcu {
    program: Program,
    mem: Memory,
    cpu: CpuState,
    clock: ClockLadder,
    power: PowerModel,
    residence: ExecutionResidence,
    state: PowerState,
    adc: Adc,
    radio: Radio,
    peripheral_policy: PeripheralPolicy,
    halted: bool,
    total_cycles: u64,
    total_instructions: u64,
    reboots: u64,
}

impl Mcu {
    /// Creates a machine running `program` with default (MSP430-shaped)
    /// power model, SRAM residence, and the standard clock ladder at 8 MHz.
    pub fn new(program: Program) -> Self {
        let mut clock = ClockLadder::msp430();
        clock.set_level(3); // 8 MHz default, as the Hibernus experiments.
        let mut mcu = Self {
            program,
            mem: Memory::new(),
            cpu: CpuState::reset(),
            clock,
            power: PowerModel::msp430fr5739(),
            residence: ExecutionResidence::Sram,
            state: PowerState::Active,
            adc: Adc::default(),
            radio: Radio::default(),
            peripheral_policy: PeripheralPolicy::default(),
            halted: false,
            total_cycles: 0,
            total_instructions: 0,
            reboots: 0,
        };
        mcu.load_program_data();
        mcu
    }

    /// Switches the execution residence (QuickRecall runs FRAM-resident).
    pub fn with_residence(mut self, residence: ExecutionResidence) -> Self {
        self.residence = residence;
        self
    }

    /// Replaces the power model.
    pub fn with_power_model(mut self, power: PowerModel) -> Self {
        self.power = power;
        self
    }

    /// Selects how snapshots treat peripheral state.
    pub fn with_peripheral_policy(mut self, policy: PeripheralPolicy) -> Self {
        self.peripheral_policy = policy;
        self
    }

    /// The active peripheral-snapshot policy.
    pub fn peripheral_policy(&self) -> PeripheralPolicy {
        self.peripheral_policy
    }

    fn load_program_data(&mut self) {
        for (addr, words) in self.program.data().to_vec() {
            for (i, w) in words.iter().enumerate() {
                self.mem
                    .poke(addr + i as u16, *w)
                    .expect("program data must target mapped memory");
            }
        }
    }

    // --- accessors ---------------------------------------------------------

    /// The CPU architectural state.
    pub fn cpu(&self) -> &CpuState {
        &self.cpu
    }

    /// The memory system.
    pub fn memory(&self) -> &Memory {
        &self.mem
    }

    /// Mutable memory access (test setup, workload verification).
    pub fn memory_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// The loaded program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The DFS clock.
    pub fn clock(&self) -> &ClockLadder {
        &self.clock
    }

    /// Mutable clock access (the power-neutral governor's hook).
    pub fn clock_mut(&mut self) -> &mut ClockLadder {
        &mut self.clock
    }

    /// The power model.
    pub fn power_model(&self) -> &PowerModel {
        &self.power
    }

    /// Execution residence.
    pub fn residence(&self) -> ExecutionResidence {
        self.residence
    }

    /// Current power state.
    pub fn state(&self) -> PowerState {
        self.state
    }

    /// `true` once the program has executed `Halt` (and not been rebooted).
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Total cycles executed over the machine's lifetime.
    pub fn total_cycles(&self) -> u64 {
        self.total_cycles
    }

    /// Total instructions retired.
    pub fn total_instructions(&self) -> u64 {
        self.total_instructions
    }

    /// Number of power-loss reboots endured.
    pub fn reboots(&self) -> u64 {
        self.reboots
    }

    /// The ADC peripheral.
    pub fn adc(&self) -> &Adc {
        &self.adc
    }

    /// The radio peripheral.
    pub fn radio(&self) -> &Radio {
        &self.radio
    }

    /// Instantaneous supply current in the current state.
    pub fn supply_current(&self) -> edc_units::Amps {
        self.power
            .current(self.state, self.clock.frequency(), self.residence)
    }

    /// Instantaneous supply power in the current state.
    pub fn supply_power(&self) -> Watts {
        self.power
            .power(self.state, self.clock.frequency(), self.residence)
    }

    // --- power-state transitions --------------------------------------------

    /// Enters sleep (clock gated, SRAM retained).
    pub fn sleep(&mut self) {
        if self.state == PowerState::Active {
            self.state = PowerState::Sleep;
        }
    }

    /// Wakes from sleep.
    pub fn wake(&mut self) {
        if self.state == PowerState::Sleep {
            self.state = PowerState::Active;
        }
    }

    /// Supply collapse: volatile state (SRAM, registers, peripherals) is
    /// destroyed; FRAM — including any sealed snapshot — survives.
    ///
    /// Under [`ExecutionResidence::Fram`] (the QuickRecall configuration)
    /// the low memory region is itself FRAM, so only registers and
    /// peripherals are lost.
    pub fn power_loss(&mut self) {
        self.state = PowerState::Off;
        if self.residence == ExecutionResidence::Sram {
            self.mem.corrupt_volatile();
        }
        self.cpu = CpuState::reset();
        self.adc.reset();
        self.halted = false;
    }

    /// Cold boot after power returns: PC at entry, clean registers. SRAM
    /// still holds post-outage garbage — programs must initialise what they
    /// use, exactly as on real transient hardware.
    pub fn cold_boot(&mut self) {
        self.cpu = CpuState::reset();
        self.state = PowerState::Active;
        self.halted = false;
        self.reboots += 1;
    }

    // --- snapshot engine ----------------------------------------------------

    /// Size of a snapshot frame in words: the full SRAM image plus header
    /// for SRAM residence, or just the register header for unified-FRAM
    /// (QuickRecall) machines, where registers are the only volatile state.
    /// Checkpointing peripherals copies their register bank too.
    pub fn snapshot_words(&self) -> u64 {
        let base = match self.residence {
            ExecutionResidence::Sram => (SRAM_WORDS + HEADER_WORDS) as u64,
            ExecutionResidence::Fram => HEADER_WORDS as u64,
        };
        match self.peripheral_policy {
            PeripheralPolicy::Reinit => base,
            // ADC + radio + timer register banks (stored in the header's
            // reserved words; the cost models the peripheral bus reads).
            PeripheralPolicy::Checkpointed => base + 4,
        }
    }

    /// Energy a full snapshot would cost right now — the `E_S` the Hibernus
    /// calibration (Eq. 4) must budget for.
    pub fn snapshot_energy(&self) -> Joules {
        self.power
            .snapshot_cost(
                self.snapshot_words(),
                self.clock.frequency(),
                self.residence,
            )
            .1
    }

    /// Energy a restore costs.
    pub fn restore_energy(&self) -> Joules {
        self.power
            .restore_cost(
                self.snapshot_words(),
                self.clock.frequency(),
                self.residence,
            )
            .1
    }

    /// FRAM-relative offset of frame `i` (0 or 1) in the double-buffered
    /// snapshot area.
    fn frame_offset(i: u8) -> u16 {
        SNAPSHOT_BASE - crate::mem::FRAM_BASE + u16::from(i) * SNAPSHOT_FRAME_WORDS
    }

    /// `(sealed, sequence)` of frame `i`.
    fn frame_state(&self, i: u8) -> (bool, u16) {
        let head = self.mem.fram_slice(Self::frame_offset(i), 2);
        (head[0] == SEAL_VALID, head[1])
    }

    /// The sealed frame with the highest sequence number, if any.
    fn newest_sealed_frame(&self) -> Option<u8> {
        let (s0, q0) = self.frame_state(0);
        let (s1, q1) = self.frame_state(1);
        match (s0, s1) {
            (true, true) => Some(if q0.wrapping_sub(q1) < 0x8000 { 0 } else { 1 }),
            (true, false) => Some(0),
            (false, true) => Some(1),
            (false, false) => None,
        }
    }

    /// Attempts to snapshot all volatile state into the snapshot area.
    ///
    /// Frames are double-buffered (as Mementos does): the write targets the
    /// frame that is *not* the newest sealed one, so a torn attempt never
    /// destroys the last good snapshot.
    ///
    /// With `energy_budget = Some(e)` and `e` below the full cost, the
    /// target frame is left unsealed, the budget is consumed, and
    /// `completed: false` is returned — the "snapshot started but not
    /// completed before the supply was interrupted" failure.
    pub fn take_snapshot(&mut self, energy_budget: Option<Joules>) -> SnapshotOutcome {
        let words = self.snapshot_words();
        let (cycles, full_cost) =
            self.power
                .snapshot_cost(words, self.clock.frequency(), self.residence);

        let target = match self.newest_sealed_frame() {
            Some(newest) => 1 - newest,
            None => 0,
        };
        let next_seq = self
            .newest_sealed_frame()
            .map(|f| self.frame_state(f).1.wrapping_add(1))
            .unwrap_or(1);

        // Invalidate the target first: a torn frame must never look valid.
        self.mem.fram_slice_mut(Self::frame_offset(target), 1)[0] = 0;

        if let Some(budget) = energy_budget {
            if budget < full_cost {
                let spent = budget.max(Joules::ZERO);
                self.total_cycles += cycles; // the copy loop ran until the lights went out
                return SnapshotOutcome {
                    completed: false,
                    cycles,
                    energy: spent,
                };
            }
        }

        // Header + SRAM image.
        let mut frame = Vec::with_capacity(words as usize);
        frame.push(0); // seal placeholder
        frame.push(next_seq);
        frame.extend_from_slice(&self.cpu.regs);
        frame.push(self.cpu.pc as u16);
        frame.push((self.cpu.pc >> 16) as u16);
        frame.push(self.cpu.sp);
        frame.push((self.cpu.z as u16) | ((self.cpu.n as u16) << 1));
        if self.peripheral_policy == PeripheralPolicy::Checkpointed {
            frame.push(self.adc.index as u16);
            frame.push((self.adc.index >> 16) as u16);
        }
        frame.resize(HEADER_WORDS as usize, 0);
        let saves_sram = self.residence == ExecutionResidence::Sram;
        if saves_sram {
            frame.extend_from_slice(self.mem.sram());
        }

        let dst = self
            .mem
            .fram_slice_mut(Self::frame_offset(target), SNAPSHOT_FRAME_WORDS);
        dst[..frame.len()].copy_from_slice(&frame);
        dst[0] = SEAL_VALID; // seal last: commit point

        self.mem
            .add_counts(if saves_sram { SRAM_WORDS as u64 } else { 0 }, 0, 0, words);
        self.total_cycles += cycles;
        SnapshotOutcome {
            completed: true,
            cycles,
            energy: full_cost,
        }
    }

    /// `true` when a sealed snapshot frame exists.
    pub fn has_valid_snapshot(&self) -> bool {
        self.newest_sealed_frame().is_some()
    }

    /// Erases all snapshots (test setup; also what a `Halt`-aware runner
    /// does so a completed program is not resurrected).
    pub fn invalidate_snapshot(&mut self) {
        for i in 0..2 {
            self.mem.fram_slice_mut(Self::frame_offset(i), 1)[0] = 0;
        }
    }

    /// Restores the newest sealed snapshot, if any: SRAM and CPU state come
    /// back, execution resumes where the snapshot was taken.
    pub fn restore_snapshot(&mut self) -> Option<RestoreOutcome> {
        let newest = self.newest_sealed_frame()?;
        let words = self.snapshot_words();
        let (cycles, energy) =
            self.power
                .restore_cost(words, self.clock.frequency(), self.residence);
        let frame: Vec<u16> = self
            .mem
            .fram_slice(Self::frame_offset(newest), SNAPSHOT_FRAME_WORDS)
            .to_vec();
        let sequence = frame[1];
        let mut regs = [0u16; 16];
        regs.copy_from_slice(&frame[2..18]);
        self.cpu.regs = regs;
        self.cpu.pc = frame[18] as u32 | ((frame[19] as u32) << 16);
        self.cpu.sp = frame[20];
        self.cpu.z = frame[21] & 1 != 0;
        self.cpu.n = frame[21] & 2 != 0;
        if self.peripheral_policy == PeripheralPolicy::Checkpointed {
            self.adc.index = frame[22] as u32 | ((frame[23] as u32) << 16);
        }
        if self.residence == ExecutionResidence::Sram {
            let sram_image =
                frame[HEADER_WORDS as usize..HEADER_WORDS as usize + SRAM_WORDS as usize].to_vec();
            self.mem.load_sram(&sram_image);
            self.mem.add_counts(0, SRAM_WORDS as u64, words, 0);
        } else {
            self.mem.add_counts(0, 0, words, 0);
        }
        self.state = PowerState::Active;
        self.halted = false;
        self.total_cycles += cycles;
        Some(RestoreOutcome {
            cycles,
            energy,
            sequence,
        })
    }

    // --- execution -----------------------------------------------------------

    fn operand_value(&self, o: Operand) -> u16 {
        match o {
            Operand::Reg(r) => self.cpu.regs[r.index()],
            Operand::Imm(v) => v,
        }
    }

    fn effective_address(&self, a: Addr) -> u16 {
        match a {
            Addr::Abs(addr) => addr,
            Addr::Ind(r) => self.cpu.regs[r.index()],
            Addr::IndOff(r, off) => (self.cpu.regs[r.index()] as i32 + off as i32) as u16,
        }
    }

    fn set_flags(&mut self, result: u16) {
        self.cpu.z = result == 0;
        self.cpu.n = result & 0x8000 != 0;
    }

    fn alu(&mut self, rd: Reg, src: Operand, f: impl Fn(u16, u16) -> u16) {
        let a = self.cpu.regs[rd.index()];
        let b = self.operand_value(src);
        let r = f(a, b);
        self.cpu.regs[rd.index()] = r;
        self.set_flags(r);
    }

    fn push_word(&mut self, v: u16) -> Result<(), MachineError> {
        if self.cpu.sp == 0 {
            return Err(MachineError::StackOverflow);
        }
        self.cpu.sp -= 1;
        self.mem.write(self.cpu.sp, v)?;
        Ok(())
    }

    fn pop_word(&mut self) -> Result<u16, MachineError> {
        if self.cpu.sp >= SRAM_WORDS {
            return Err(MachineError::StackUnderflow);
        }
        let v = self.mem.read(self.cpu.sp)?;
        self.cpu.sp += 1;
        Ok(v)
    }

    /// Extra cycles for a memory access depending on the region touched.
    /// Under unified-FRAM residence every access is a FRAM access.
    fn access_penalty(&self, addr: u16) -> u64 {
        if self.clock.frequency() <= self.power.fram_wait_threshold {
            return 0;
        }
        match self.residence {
            ExecutionResidence::Fram => 1,
            ExecutionResidence::Sram => match Memory::region_of(addr) {
                Ok(Region::Fram) => 1,
                _ => 0,
            },
        }
    }

    /// Executes one instruction. Returns `(cycles, peripheral_energy,
    /// marker)` on success.
    fn step(&mut self) -> Result<(u64, Joules, Option<u16>), MachineError> {
        let insn = self
            .program
            .fetch(self.cpu.pc)
            .ok_or(MachineError::PcOutOfRange(self.cpu.pc))?;
        let mut cycles = insn.base_cycles();
        let mut peripheral = Joules::ZERO;
        let mut marker = None;
        let mut next_pc = self.cpu.pc + 1;

        match insn {
            Insn::Mov(rd, src) => {
                let v = self.operand_value(src);
                self.cpu.regs[rd.index()] = v;
                self.set_flags(v);
            }
            Insn::Add(rd, src) => self.alu(rd, src, |a, b| a.wrapping_add(b)),
            Insn::Sub(rd, src) => self.alu(rd, src, |a, b| a.wrapping_sub(b)),
            Insn::And(rd, src) => self.alu(rd, src, |a, b| a & b),
            Insn::Or(rd, src) => self.alu(rd, src, |a, b| a | b),
            Insn::Xor(rd, src) => self.alu(rd, src, |a, b| a ^ b),
            Insn::Mul(rd, src) => self.alu(rd, src, |a, b| a.wrapping_mul(b)),
            Insn::MulQ15(rd, src) => self.alu(rd, src, |a, b| {
                let p = (a as i16 as i32) * (b as i16 as i32);
                ((p >> 15) as i16) as u16
            }),
            Insn::Shl(rd, n) => {
                let r = self.cpu.regs[rd.index()] << n;
                self.cpu.regs[rd.index()] = r;
                self.set_flags(r);
            }
            Insn::Shr(rd, n) => {
                let r = self.cpu.regs[rd.index()] >> n;
                self.cpu.regs[rd.index()] = r;
                self.set_flags(r);
            }
            Insn::Sar(rd, n) => {
                let r = ((self.cpu.regs[rd.index()] as i16) >> n) as u16;
                self.cpu.regs[rd.index()] = r;
                self.set_flags(r);
            }
            Insn::Ld(rd, addr) => {
                let ea = self.effective_address(addr);
                cycles += self.access_penalty(ea);
                let v = self.mem.read(ea)?;
                self.cpu.regs[rd.index()] = v;
                self.set_flags(v);
            }
            Insn::St(rs, addr) => {
                let ea = self.effective_address(addr);
                cycles += self.access_penalty(ea);
                self.mem.write(ea, self.cpu.regs[rs.index()])?;
            }
            Insn::Cmp(ra, src) => {
                let a = self.cpu.regs[ra.index()];
                let b = self.operand_value(src);
                self.cpu.z = a == b;
                self.cpu.n = (a as i16) < (b as i16);
            }
            Insn::Jmp(t) => next_pc = t,
            Insn::Brz(t) => {
                if self.cpu.z {
                    next_pc = t;
                }
            }
            Insn::Brnz(t) => {
                if !self.cpu.z {
                    next_pc = t;
                }
            }
            Insn::Brn(t) => {
                if self.cpu.n {
                    next_pc = t;
                }
            }
            Insn::Brge(t) => {
                if !self.cpu.n {
                    next_pc = t;
                }
            }
            Insn::Call(t) => {
                self.push_word(next_pc as u16)?;
                next_pc = t;
            }
            Insn::Ret => {
                next_pc = self.pop_word()? as u32;
            }
            Insn::Push(r) => {
                let v = self.cpu.regs[r.index()];
                self.push_word(v)?;
            }
            Insn::Pop(r) => {
                let v = self.pop_word()?;
                self.cpu.regs[r.index()] = v;
            }
            Insn::Mark(id) => marker = Some(id),
            Insn::Sense(rd) => {
                let v = self.adc.convert();
                self.cpu.regs[rd.index()] = v;
                self.set_flags(v);
                peripheral += self.power.adc_energy_per_sample;
            }
            Insn::Tx(rs) => {
                self.radio.last_word = self.cpu.regs[rs.index()];
                self.radio.words_sent += 1;
                peripheral += self.power.radio_energy_per_word;
            }
            Insn::Nop => {}
            Insn::Halt => {
                self.halted = true;
                next_pc = self.cpu.pc; // stay put
            }
        }
        self.cpu.pc = next_pc;
        Ok((cycles, peripheral, marker))
    }

    /// Runs up to `cycle_budget` cycles, optionally yielding at checkpoint
    /// markers. Does nothing (and reports `BudgetExhausted`) when asleep,
    /// off, or already halted — except that a halted machine reports
    /// `Completed`.
    pub fn run(&mut self, cycle_budget: u64, stop_at_markers: bool) -> RunReport {
        let f = self.clock.frequency();
        let mut used = 0u64;
        let mut retired = 0u64;
        let mut peripheral = Joules::ZERO;

        if self.halted {
            return RunReport {
                cycles: 0,
                instructions: 0,
                energy: Joules::ZERO,
                exit: RunExit::Completed,
            };
        }
        if self.state != PowerState::Active {
            return RunReport {
                cycles: 0,
                instructions: 0,
                energy: Joules::ZERO,
                exit: RunExit::BudgetExhausted,
            };
        }

        let exit = loop {
            // Peek the next instruction's cost before committing.
            let Some(insn) = self.program.fetch(self.cpu.pc) else {
                break RunExit::Fault(MachineError::PcOutOfRange(self.cpu.pc));
            };
            if used + insn.base_cycles() > cycle_budget {
                break RunExit::BudgetExhausted;
            }
            match self.step() {
                Ok((cycles, p_energy, marker)) => {
                    used += cycles;
                    retired += 1;
                    peripheral += p_energy;
                    if self.halted {
                        break RunExit::Completed;
                    }
                    if let Some(id) = marker {
                        if stop_at_markers {
                            break RunExit::Marker(id);
                        }
                    }
                }
                Err(e) => break RunExit::Fault(e),
            }
        };

        self.total_cycles += used;
        self.total_instructions += retired;
        let energy = self.power.execution_energy(used, f, self.residence) + peripheral;
        RunReport {
            cycles: used,
            instructions: retired,
            energy,
            exit,
        }
    }

    /// Wall-clock time of `cycles` at the current clock.
    pub fn cycles_to_time(&self, cycles: u64) -> Seconds {
        Seconds(cycles as f64 / self.clock.frequency().0)
    }

    /// Cycle budget available in `dt` at the current clock.
    pub fn cycles_in(&self, dt: Seconds) -> u64 {
        (self.clock.frequency().0 * dt.0) as u64
    }

    /// Current core frequency.
    pub fn frequency(&self) -> Hertz {
        self.clock.frequency()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{regs::*, ProgramBuilder};
    use crate::mem::FRAM_BASE;

    fn sum_program(n: u16) -> Program {
        ProgramBuilder::new("sum")
            .mov(R0, 0u16)
            .mov(R1, n)
            .label("loop")
            .add(R0, R1)
            .sub(R1, 1u16)
            .brnz("loop")
            .st(R0, Addr::Abs(FRAM_BASE)) // persist the result
            .halt()
            .build()
            .unwrap()
    }

    #[test]
    fn arithmetic_program_computes_sum() {
        let mut mcu = Mcu::new(sum_program(100));
        let r = mcu.run(u64::MAX, false);
        assert_eq!(r.exit, RunExit::Completed);
        assert_eq!(mcu.cpu().regs[0], 5050);
        assert_eq!(mcu.memory().peek(FRAM_BASE).unwrap(), 5050);
        assert!(r.energy.0 > 0.0);
        assert!(r.cycles > 300);
    }

    #[test]
    fn budget_exhaustion_preserves_progress() {
        let mut mcu = Mcu::new(sum_program(1000));
        let r1 = mcu.run(50, false);
        assert_eq!(r1.exit, RunExit::BudgetExhausted);
        assert!(r1.cycles <= 50);
        let r2 = mcu.run(u64::MAX, false);
        assert_eq!(r2.exit, RunExit::Completed);
        assert_eq!(mcu.cpu().regs[0], 500_500u32 as u16); // wrapping 16-bit
    }

    #[test]
    fn call_ret_and_stack() {
        let p = ProgramBuilder::new("call")
            .mov(R0, 7u16)
            .call("double")
            .st(R0, Addr::Abs(0x0010))
            .halt()
            .label("double")
            .add(R0, R0)
            .ret()
            .build()
            .unwrap();
        let mut mcu = Mcu::new(p);
        let r = mcu.run(u64::MAX, false);
        assert_eq!(r.exit, RunExit::Completed);
        assert_eq!(mcu.memory().peek(0x0010).unwrap(), 14);
        assert_eq!(mcu.cpu().sp, SRAM_WORDS); // balanced
    }

    #[test]
    fn push_pop_round_trip() {
        let p = ProgramBuilder::new("stack")
            .mov(R0, 0xAAAAu16)
            .mov(R1, 0x5555u16)
            .push_reg(R0)
            .push_reg(R1)
            .pop_reg(R2)
            .pop_reg(R3)
            .halt()
            .build()
            .unwrap();
        let mut mcu = Mcu::new(p);
        mcu.run(u64::MAX, false);
        assert_eq!(mcu.cpu().regs[2], 0x5555);
        assert_eq!(mcu.cpu().regs[3], 0xAAAA);
    }

    #[test]
    fn stack_underflow_faults() {
        let p = ProgramBuilder::new("uf")
            .pop_reg(R0)
            .halt()
            .build()
            .unwrap();
        let mut mcu = Mcu::new(p);
        let r = mcu.run(u64::MAX, false);
        assert_eq!(r.exit, RunExit::Fault(MachineError::StackUnderflow));
    }

    #[test]
    fn mulq15_is_fixed_point() {
        // 0.5 × 0.5 = 0.25 in Q15: 0x4000 × 0x4000 → 0x2000.
        let p = ProgramBuilder::new("q15")
            .mov(R0, 0x4000u16)
            .mov(R1, 0x4000u16)
            .mulq15(R0, R1)
            .halt()
            .build()
            .unwrap();
        let mut mcu = Mcu::new(p);
        mcu.run(u64::MAX, false);
        assert_eq!(mcu.cpu().regs[0], 0x2000);
        // −0.5 × 0.5 = −0.25: 0xC000 × 0x4000 → 0xE000.
        let p = ProgramBuilder::new("q15neg")
            .mov(R0, 0xC000u16)
            .mov(R1, 0x4000u16)
            .mulq15(R0, R1)
            .halt()
            .build()
            .unwrap();
        let mut mcu = Mcu::new(p);
        mcu.run(u64::MAX, false);
        assert_eq!(mcu.cpu().regs[0] as i16, -0x2000_i16);
    }

    #[test]
    fn signed_branches() {
        // R0 = −5; if R0 < 3 then R1 = 1 else R1 = 2.
        let p = ProgramBuilder::new("signed")
            .mov(R0, (-5i16) as u16)
            .cmp(R0, 3u16)
            .brn("less")
            .mov(R1, 2u16)
            .halt()
            .label("less")
            .mov(R1, 1u16)
            .halt()
            .build()
            .unwrap();
        let mut mcu = Mcu::new(p);
        mcu.run(u64::MAX, false);
        assert_eq!(mcu.cpu().regs[1], 1);
    }

    #[test]
    fn markers_yield_when_requested() {
        let p = ProgramBuilder::new("marks")
            .mark(10)
            .mov(R0, 1u16)
            .mark(20)
            .halt()
            .build()
            .unwrap();
        let mut mcu = Mcu::new(p);
        let r = mcu.run(u64::MAX, true);
        assert_eq!(r.exit, RunExit::Marker(10));
        let r = mcu.run(u64::MAX, true);
        assert_eq!(r.exit, RunExit::Marker(20));
        let r = mcu.run(u64::MAX, true);
        assert_eq!(r.exit, RunExit::Completed);
        // Without stopping, markers are transparent.
        let mut mcu2 = Mcu::new(ProgramBuilder::new("m2").mark(1).halt().build().unwrap());
        assert_eq!(mcu2.run(u64::MAX, false).exit, RunExit::Completed);
    }

    #[test]
    fn snapshot_restore_resumes_exactly() {
        let mut mcu = Mcu::new(sum_program(1000));
        mcu.run(200, false);
        let regs_before = mcu.cpu().clone();
        let snap = mcu.take_snapshot(None);
        assert!(snap.completed);
        assert!(mcu.has_valid_snapshot());

        // Catastrophe.
        mcu.power_loss();
        assert_ne!(mcu.cpu(), &regs_before);

        mcu.cold_boot();
        let restore = mcu.restore_snapshot().expect("snapshot is valid");
        assert_eq!(restore.sequence, 1);
        assert_eq!(mcu.cpu(), &regs_before);

        // And the program completes with the right answer.
        let r = mcu.run(u64::MAX, false);
        assert_eq!(r.exit, RunExit::Completed);
        assert_eq!(mcu.memory().peek(FRAM_BASE).unwrap(), 500_500u32 as u16);
        assert_eq!(mcu.reboots(), 1);
    }

    #[test]
    fn torn_snapshot_without_history_never_restores() {
        let mut mcu = Mcu::new(sum_program(1000));
        mcu.run(200, false);
        let cost = mcu.snapshot_energy();
        let torn = mcu.take_snapshot(Some(cost * 0.5));
        assert!(!torn.completed);
        assert!(!mcu.has_valid_snapshot(), "torn frame must not seal");
        mcu.power_loss();
        mcu.cold_boot();
        assert!(mcu.restore_snapshot().is_none());
    }

    #[test]
    fn double_buffering_preserves_last_good_frame() {
        let mut mcu = Mcu::new(sum_program(1000));
        mcu.run(200, false);
        let good_state = mcu.cpu().clone();
        assert!(mcu.take_snapshot(None).completed);
        // Make more progress, then tear the next snapshot: the earlier frame
        // must survive (Mementos-style double buffering).
        mcu.run(100, false);
        let cost = mcu.snapshot_energy();
        assert!(!mcu.take_snapshot(Some(cost * 0.3)).completed);
        assert!(mcu.has_valid_snapshot(), "old frame survives the tear");
        mcu.power_loss();
        mcu.cold_boot();
        let restore = mcu.restore_snapshot().expect("old frame restores");
        assert_eq!(restore.sequence, 1);
        assert_eq!(mcu.cpu(), &good_state);
    }

    #[test]
    fn restore_picks_newest_sealed_frame() {
        let mut mcu = Mcu::new(sum_program(1000));
        mcu.run(100, false);
        assert!(mcu.take_snapshot(None).completed); // seq 1 → frame 0
        mcu.run(100, false);
        let newer_state = mcu.cpu().clone();
        assert!(mcu.take_snapshot(None).completed); // seq 2 → frame 1
        mcu.power_loss();
        mcu.cold_boot();
        let restore = mcu.restore_snapshot().unwrap();
        assert_eq!(restore.sequence, 2);
        assert_eq!(mcu.cpu(), &newer_state);
    }

    #[test]
    fn restart_without_snapshot_reruns_from_entry() {
        let mut mcu = Mcu::new(sum_program(10));
        mcu.run(30, false);
        mcu.power_loss();
        mcu.cold_boot();
        assert_eq!(mcu.cpu().pc, 0);
        let r = mcu.run(u64::MAX, false);
        assert_eq!(r.exit, RunExit::Completed);
        assert_eq!(mcu.cpu().regs[0], 55);
    }

    #[test]
    fn power_loss_corrupts_sram_not_fram() {
        let mut mcu = Mcu::new(sum_program(10));
        mcu.memory_mut().poke(0x0020, 0x1234).unwrap();
        mcu.memory_mut().poke(FRAM_BASE + 8, 0x4321).unwrap();
        mcu.power_loss();
        assert_ne!(mcu.memory().peek(0x0020).unwrap(), 0x1234);
        assert_eq!(mcu.memory().peek(FRAM_BASE + 8).unwrap(), 0x4321);
    }

    #[test]
    fn sense_and_tx_cost_peripheral_energy() {
        let p = ProgramBuilder::new("p")
            .sense(R0)
            .tx(R0)
            .halt()
            .build()
            .unwrap();
        let mut mcu = Mcu::new(p);
        let plain_cycles_energy = {
            let m = mcu.power_model();
            m.execution_energy(
                Insn::Sense(R0).base_cycles() + Insn::Tx(R0).base_cycles() + 1,
                mcu.frequency(),
                ExecutionResidence::Sram,
            )
        };
        let r = mcu.run(u64::MAX, false);
        assert_eq!(r.exit, RunExit::Completed);
        assert!(r.energy > plain_cycles_energy);
        assert_eq!(mcu.radio().words_sent(), 1);
        assert_eq!(mcu.adc().conversions(), 1);
    }

    #[test]
    fn peripheral_checkpointing_preserves_adc_sequence() {
        let p = ProgramBuilder::new("p")
            .sense(R0)
            .sense(R0)
            .mark(0)
            .sense(R0)
            .halt()
            .build()
            .unwrap();
        // Reference: uninterrupted third sample.
        let mut ref_mcu = Mcu::new(p.clone());
        ref_mcu.run(u64::MAX, false);
        let third_uninterrupted = ref_mcu.cpu().regs[0];

        // Checkpointed peripherals: the sequence continues across the outage.
        let mut mcu = Mcu::new(p.clone()).with_peripheral_policy(PeripheralPolicy::Checkpointed);
        let r = mcu.run(u64::MAX, true); // stop at the marker
        assert_eq!(r.exit, RunExit::Marker(0));
        mcu.take_snapshot(None);
        mcu.power_loss();
        mcu.cold_boot();
        mcu.restore_snapshot().unwrap();
        mcu.run(u64::MAX, false);
        assert_eq!(mcu.cpu().regs[0], third_uninterrupted);

        // Reinit policy: the sequence restarts, so the value differs.
        let mut mcu = Mcu::new(p).with_peripheral_policy(PeripheralPolicy::Reinit);
        let r = mcu.run(u64::MAX, true);
        assert_eq!(r.exit, RunExit::Marker(0));
        mcu.take_snapshot(None);
        mcu.power_loss();
        mcu.cold_boot();
        mcu.restore_snapshot().unwrap();
        mcu.run(u64::MAX, false);
        assert_ne!(mcu.cpu().regs[0], third_uninterrupted);
    }

    #[test]
    fn peripheral_checkpointing_costs_more() {
        let base = Mcu::new(sum_program(1));
        let cp = Mcu::new(sum_program(1)).with_peripheral_policy(PeripheralPolicy::Checkpointed);
        assert!(cp.snapshot_words() > base.snapshot_words());
        assert!(cp.snapshot_energy() > base.snapshot_energy());
        assert_eq!(cp.peripheral_policy(), PeripheralPolicy::Checkpointed);
    }

    #[test]
    fn adc_resets_on_power_loss() {
        let p = ProgramBuilder::new("p").sense(R0).halt().build().unwrap();
        let mut mcu = Mcu::new(p);
        mcu.run(u64::MAX, false);
        let first = mcu.cpu().regs[0];
        mcu.power_loss();
        mcu.cold_boot();
        mcu.run(u64::MAX, false);
        assert_eq!(mcu.cpu().regs[0], first, "index reset ⇒ same first sample");
    }

    #[test]
    fn sleep_stops_execution() {
        let mut mcu = Mcu::new(sum_program(1000));
        mcu.sleep();
        let r = mcu.run(1000, false);
        assert_eq!(r.cycles, 0);
        assert!(mcu.supply_current() < edc_units::Amps::from_micro(10.0));
        mcu.wake();
        let r = mcu.run(1000, false);
        assert!(r.cycles > 0);
    }

    #[test]
    fn dfs_changes_supply_current_and_budget() {
        let mut mcu = Mcu::new(sum_program(10));
        mcu.clock_mut().set_level(0); // 1 MHz
        let slow = mcu.supply_current();
        let slow_budget = mcu.cycles_in(Seconds(0.001));
        mcu.clock_mut().set_level(5); // 24 MHz
        let fast = mcu.supply_current();
        let fast_budget = mcu.cycles_in(Seconds(0.001));
        assert!(fast.0 > slow.0 * 5.0);
        assert_eq!(slow_budget, 1000);
        assert_eq!(fast_budget, 24_000);
    }

    #[test]
    fn fram_residence_adds_wait_state_cycles() {
        let p = ProgramBuilder::new("ld")
            .ld(R0, Addr::Abs(FRAM_BASE))
            .halt()
            .build()
            .unwrap();
        // At 24 MHz, FRAM loads take an extra cycle.
        let mut fast = Mcu::new(p.clone());
        fast.clock_mut().set_level(5);
        let r_fast = fast.run(u64::MAX, false);
        let mut slow = Mcu::new(p);
        slow.clock_mut().set_level(3); // 8 MHz: no penalty
        let r_slow = slow.run(u64::MAX, false);
        assert_eq!(r_fast.cycles, r_slow.cycles + 1);
    }

    #[test]
    fn pc_out_of_range_faults() {
        let p = ProgramBuilder::new("fall").nop().build().unwrap();
        let mut mcu = Mcu::new(p);
        let r = mcu.run(u64::MAX, false);
        assert!(matches!(
            r.exit,
            RunExit::Fault(MachineError::PcOutOfRange(_))
        ));
    }

    #[test]
    fn halted_machine_reports_completed() {
        let mut mcu = Mcu::new(ProgramBuilder::new("h").halt().build().unwrap());
        assert_eq!(mcu.run(u64::MAX, false).exit, RunExit::Completed);
        let again = mcu.run(u64::MAX, false);
        assert_eq!(again.exit, RunExit::Completed);
        assert_eq!(again.cycles, 0);
    }

    #[test]
    fn fram_resident_machine_is_quickrecall_shaped() {
        // Registers-only snapshots, low region survives power loss.
        let wl = sum_program(1000);
        let mut mcu = Mcu::new(wl).with_residence(ExecutionResidence::Fram);
        assert!(mcu.snapshot_words() < 64, "registers-only frame");
        let sram_cost = Mcu::new(sum_program(1000)).snapshot_energy();
        assert!(
            mcu.snapshot_energy().0 < sram_cost.0 / 10.0,
            "QuickRecall snapshots are far cheaper"
        );
        mcu.run(200, false);
        mcu.memory_mut().poke(0x0020, 0x7777).unwrap();
        let snap = mcu.take_snapshot(None);
        assert!(snap.completed);
        mcu.power_loss();
        // Low region is FRAM here: data survives.
        assert_eq!(mcu.memory().peek(0x0020).unwrap(), 0x7777);
        mcu.cold_boot();
        mcu.restore_snapshot().unwrap();
        let r = mcu.run(u64::MAX, false);
        assert_eq!(r.exit, RunExit::Completed);
        assert_eq!(mcu.memory().peek(FRAM_BASE).unwrap(), 500_500u32 as u16);
    }

    #[test]
    fn fram_residence_draws_more_quiescent_power() {
        let sram = Mcu::new(sum_program(1));
        let fram = Mcu::new(sum_program(1)).with_residence(ExecutionResidence::Fram);
        assert!(fram.supply_current() > sram.supply_current());
    }

    #[test]
    fn snapshot_energy_in_eq4_ballpark() {
        let mcu = Mcu::new(sum_program(1));
        let e = mcu.snapshot_energy();
        // Single-digit µJ at 8 MHz — consistent with the V_H ≈ 2.2–2.3 V the
        // Hibernus papers derive for ~10 µF of capacitance.
        assert!(e.as_micro() > 1.0 && e.as_micro() < 20.0, "E_S = {e}");
    }
}
