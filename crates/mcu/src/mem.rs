//! The EH16 memory system: a volatile SRAM region and a non-volatile FRAM
//! region in one word-addressed space, with per-region access accounting.
//!
//! The SRAM/FRAM split is the axis the paper's Section II.B turns on:
//! Hibernus keeps working state in SRAM and pays to copy it to FRAM at
//! `V_H`; QuickRecall runs from unified FRAM, paying higher quiescent power
//! instead (Eq. 5). The machine reads the access counters to price those
//! choices.

use std::fmt;

use edc_units::Joules;

/// Default SRAM size in 16-bit words (2 KiB, MSP430FR57xx-class).
pub const SRAM_WORDS: u16 = 0x0400;
/// First FRAM word address.
pub const FRAM_BASE: u16 = 0x1000;
/// FRAM size in words (32 KiB).
pub const FRAM_WORDS: u16 = 0x4000;
/// First word of the reserved snapshot area, at the top of FRAM.
pub const SNAPSHOT_BASE: u16 = FRAM_BASE + FRAM_WORDS - SNAPSHOT_AREA_WORDS;
/// Words of one snapshot frame (SRAM + registers + header).
pub const SNAPSHOT_FRAME_WORDS: u16 = SRAM_WORDS + 32;
/// Words reserved for the snapshot area: two frames, double-buffered so a
/// torn write can never destroy the last sealed frame (as in Mementos'
/// double-buffering).
pub const SNAPSHOT_AREA_WORDS: u16 = 2 * SNAPSHOT_FRAME_WORDS;

/// Which physical memory an address belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Region {
    /// Volatile SRAM (`0x0000..SRAM_WORDS`).
    Sram,
    /// Non-volatile FRAM (`FRAM_BASE..FRAM_BASE+FRAM_WORDS`).
    Fram,
}

/// Faults raised by the memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoryFault {
    /// Access to an unmapped word address.
    Unmapped(u16),
}

impl fmt::Display for MemoryFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemoryFault::Unmapped(a) => write!(f, "unmapped address {a:#06x}"),
        }
    }
}

impl std::error::Error for MemoryFault {}

/// Per-region access counters used for energy accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessCounts {
    /// SRAM reads.
    pub sram_reads: u64,
    /// SRAM writes.
    pub sram_writes: u64,
    /// FRAM reads.
    pub fram_reads: u64,
    /// FRAM writes.
    pub fram_writes: u64,
}

impl AccessCounts {
    /// FRAM write energy given a per-word cost.
    pub fn fram_write_energy(&self, per_word: Joules) -> Joules {
        per_word * self.fram_writes as f64
    }
}

/// The unified memory: SRAM plus FRAM with access tracking.
#[derive(Debug, Clone)]
pub struct Memory {
    sram: Vec<u16>,
    fram: Vec<u16>,
    counts: AccessCounts,
}

impl Memory {
    /// Creates memory with SRAM zeroed and FRAM zeroed.
    pub fn new() -> Self {
        Self {
            sram: vec![0; SRAM_WORDS as usize],
            fram: vec![0; FRAM_WORDS as usize],
            counts: AccessCounts::default(),
        }
    }

    /// Region for an address, if mapped.
    pub fn region_of(addr: u16) -> Result<Region, MemoryFault> {
        if addr < SRAM_WORDS {
            Ok(Region::Sram)
        } else if (FRAM_BASE..FRAM_BASE + FRAM_WORDS).contains(&addr) {
            Ok(Region::Fram)
        } else {
            Err(MemoryFault::Unmapped(addr))
        }
    }

    /// Reads a word, counting the access.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryFault::Unmapped`] for addresses outside both regions.
    pub fn read(&mut self, addr: u16) -> Result<u16, MemoryFault> {
        match Self::region_of(addr)? {
            Region::Sram => {
                self.counts.sram_reads += 1;
                Ok(self.sram[addr as usize])
            }
            Region::Fram => {
                self.counts.fram_reads += 1;
                Ok(self.fram[(addr - FRAM_BASE) as usize])
            }
        }
    }

    /// Writes a word, counting the access.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryFault::Unmapped`] for addresses outside both regions.
    pub fn write(&mut self, addr: u16, value: u16) -> Result<(), MemoryFault> {
        match Self::region_of(addr)? {
            Region::Sram => {
                self.counts.sram_writes += 1;
                self.sram[addr as usize] = value;
                Ok(())
            }
            Region::Fram => {
                self.counts.fram_writes += 1;
                self.fram[(addr - FRAM_BASE) as usize] = value;
                Ok(())
            }
        }
    }

    /// Reads without counting (snapshot engine internals, test inspection).
    pub fn peek(&self, addr: u16) -> Result<u16, MemoryFault> {
        match Self::region_of(addr)? {
            Region::Sram => Ok(self.sram[addr as usize]),
            Region::Fram => Ok(self.fram[(addr - FRAM_BASE) as usize]),
        }
    }

    /// Writes without counting (program loading, test setup).
    ///
    /// # Errors
    ///
    /// Returns [`MemoryFault::Unmapped`] for unmapped addresses.
    pub fn poke(&mut self, addr: u16, value: u16) -> Result<(), MemoryFault> {
        match Self::region_of(addr)? {
            Region::Sram => {
                self.sram[addr as usize] = value;
                Ok(())
            }
            Region::Fram => {
                self.fram[(addr - FRAM_BASE) as usize] = value;
                Ok(())
            }
        }
    }

    /// The whole SRAM contents (snapshot engine).
    pub fn sram(&self) -> &[u16] {
        &self.sram
    }

    /// Overwrites the whole SRAM (snapshot restore).
    ///
    /// # Panics
    ///
    /// Panics if `image` is not exactly [`SRAM_WORDS`] long.
    pub fn load_sram(&mut self, image: &[u16]) {
        assert_eq!(image.len(), SRAM_WORDS as usize, "SRAM image size");
        self.sram.copy_from_slice(image);
    }

    /// Direct FRAM slice access for the snapshot frame.
    pub(crate) fn fram_slice_mut(&mut self, offset: u16, len: u16) -> &mut [u16] {
        let start = offset as usize;
        &mut self.fram[start..start + len as usize]
    }

    /// Direct FRAM slice access for the snapshot frame (read side).
    pub(crate) fn fram_slice(&self, offset: u16, len: u16) -> &[u16] {
        let start = offset as usize;
        &self.fram[start..start + len as usize]
    }

    /// Fills SRAM with a corruption pattern — what power loss does to
    /// volatile memory.
    pub fn corrupt_volatile(&mut self) {
        for (i, w) in self.sram.iter_mut().enumerate() {
            // Deterministic garbage: recognisably not program data.
            *w = 0xDEAD ^ (i as u16);
        }
    }

    /// Access counters so far.
    pub fn counts(&self) -> AccessCounts {
        self.counts
    }

    /// Adds snapshot-engine accesses to the counters (the engine moves
    /// blocks outside `read`/`write` for speed, then accounts here).
    pub(crate) fn add_counts(
        &mut self,
        sram_reads: u64,
        sram_writes: u64,
        fram_reads: u64,
        fram_writes: u64,
    ) {
        self.counts.sram_reads += sram_reads;
        self.counts.sram_writes += sram_writes;
        self.counts.fram_reads += fram_reads;
        self.counts.fram_writes += fram_writes;
    }
}

impl Default for Memory {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn regions_map_correctly() {
        assert_eq!(Memory::region_of(0x0000), Ok(Region::Sram));
        assert_eq!(Memory::region_of(SRAM_WORDS - 1), Ok(Region::Sram));
        assert_eq!(
            Memory::region_of(SRAM_WORDS),
            Err(MemoryFault::Unmapped(SRAM_WORDS))
        );
        assert_eq!(Memory::region_of(FRAM_BASE), Ok(Region::Fram));
        assert_eq!(
            Memory::region_of(FRAM_BASE + FRAM_WORDS),
            Err(MemoryFault::Unmapped(FRAM_BASE + FRAM_WORDS))
        );
    }

    #[test]
    fn read_write_round_trip_both_regions() {
        let mut m = Memory::new();
        m.write(0x0010, 0xBEEF).unwrap();
        assert_eq!(m.read(0x0010).unwrap(), 0xBEEF);
        m.write(FRAM_BASE + 5, 0xCAFE).unwrap();
        assert_eq!(m.read(FRAM_BASE + 5).unwrap(), 0xCAFE);
        let c = m.counts();
        assert_eq!(c.sram_reads, 1);
        assert_eq!(c.sram_writes, 1);
        assert_eq!(c.fram_reads, 1);
        assert_eq!(c.fram_writes, 1);
    }

    #[test]
    fn unmapped_access_faults() {
        let mut m = Memory::new();
        assert!(m.read(0x0800).is_err());
        assert!(m.write(0x6000, 0).is_err());
        let msg = m.read(0x0800).unwrap_err().to_string();
        assert!(msg.contains("unmapped"));
    }

    #[test]
    fn corrupt_volatile_preserves_fram() {
        let mut m = Memory::new();
        m.write(0x0000, 0x1234).unwrap();
        m.write(FRAM_BASE, 0x5678).unwrap();
        m.corrupt_volatile();
        assert_ne!(m.peek(0x0000).unwrap(), 0x1234);
        assert_eq!(m.peek(FRAM_BASE).unwrap(), 0x5678);
    }

    #[test]
    fn peek_poke_do_not_count() {
        let mut m = Memory::new();
        m.poke(0x0001, 7).unwrap();
        let _ = m.peek(0x0001).unwrap();
        assert_eq!(m.counts(), AccessCounts::default());
    }

    #[test]
    fn snapshot_area_fits_inside_fram() {
        const { assert!(SNAPSHOT_BASE >= FRAM_BASE) }
        assert_eq!(SNAPSHOT_BASE + SNAPSHOT_AREA_WORDS, FRAM_BASE + FRAM_WORDS);
        assert!(SNAPSHOT_FRAME_WORDS as usize >= SRAM_WORDS as usize + 20);
        assert_eq!(SNAPSHOT_AREA_WORDS, 2 * SNAPSHOT_FRAME_WORDS);
    }

    #[test]
    fn fram_write_energy_scales() {
        let mut m = Memory::new();
        for i in 0..10 {
            m.write(FRAM_BASE + i, i).unwrap();
        }
        let e = m.counts().fram_write_energy(Joules::from_nano(2.0));
        assert!((e.0 - 20e-9).abs() < 1e-18);
    }

    proptest! {
        #[test]
        fn prop_round_trip_any_mapped_address(
            addr in 0u16..SRAM_WORDS,
            fram_off in 0u16..FRAM_WORDS,
            v in proptest::num::u16::ANY,
        ) {
            let mut m = Memory::new();
            m.write(addr, v).unwrap();
            prop_assert_eq!(m.read(addr).unwrap(), v);
            m.write(FRAM_BASE + fram_off, v).unwrap();
            prop_assert_eq!(m.read(FRAM_BASE + fram_off).unwrap(), v);
        }
    }
}
