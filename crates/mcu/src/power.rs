//! The MCU power model.
//!
//! Shapes and magnitudes follow the MSP430FR5739 datasheet as used in the
//! Hibernus/Hibernus++/QuickRecall experiments the paper builds on:
//! active current grows affinely with clock frequency, executing from FRAM
//! costs a wait-state penalty above 8 MHz plus a quiescent adder (the
//! `P_FRAM − P_SRAM` term in the paper's Eq. 5), and sleep/off currents are
//! micro/sub-microamp.

use edc_units::{Amps, Hertz, Joules, Volts, Watts};

/// Where the CPU fetches instructions and keeps its working set — the axis
/// distinguishing Hibernus (SRAM) from QuickRecall (unified FRAM).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionResidence {
    /// Program and data in SRAM; snapshots must copy everything to FRAM.
    #[default]
    Sram,
    /// Unified FRAM: only registers are volatile, but quiescent power is
    /// higher and fast clocks insert wait states.
    Fram,
}

/// Machine operating state for power purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PowerState {
    /// Unpowered (or below `V_min`).
    Off,
    /// Clock stopped, RAM retained (LPM3-class).
    Sleep,
    /// Executing.
    Active,
}

/// The power/energy parameter set of the simulated MCU.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerModel {
    /// Supply voltage assumed for current→power conversion.
    pub v_nominal: Volts,
    /// Rail voltage below which the machine browns out (the paper's `V_min`).
    pub v_min: Volts,
    /// Frequency-independent active current.
    pub i_active_base: Amps,
    /// Active current per MHz of core clock.
    pub i_active_per_mhz: Amps,
    /// Multiplier on active current when executing from FRAM above
    /// `fram_wait_threshold` (wait states force cache stalls).
    pub fram_active_penalty: f64,
    /// Quiescent current adder while FRAM-resident (always, even asleep) —
    /// the `P_FRAM − P_SRAM` of Eq. 5.
    pub i_fram_quiescent: Amps,
    /// Frequency above which FRAM execution inserts wait states.
    pub fram_wait_threshold: Hertz,
    /// Sleep-state current (LPM3-class, RAM retained).
    pub i_sleep: Amps,
    /// Energy per FRAM word written (snapshot traffic).
    pub fram_write_energy_per_word: Joules,
    /// Energy per ADC conversion.
    pub adc_energy_per_sample: Joules,
    /// Energy per radio word transmitted.
    pub radio_energy_per_word: Joules,
    /// Cycles to copy one word during snapshot/restore bursts.
    pub snapshot_cycles_per_word: u64,
}

impl PowerModel {
    /// The MSP430FR5739-shaped default parameter set.
    pub fn msp430fr5739() -> Self {
        Self {
            v_nominal: Volts(3.0),
            v_min: Volts(2.0),
            i_active_base: Amps::from_micro(70.0),
            i_active_per_mhz: Amps::from_micro(210.0),
            fram_active_penalty: 1.25,
            i_fram_quiescent: Amps::from_micro(90.0),
            fram_wait_threshold: Hertz::from_mega(8.0),
            i_sleep: Amps::from_micro(7.0),
            fram_write_energy_per_word: Joules::from_nano(2.0),
            adc_energy_per_sample: Joules::from_nano(350.0),
            radio_energy_per_word: Joules::from_micro(12.0),
            snapshot_cycles_per_word: 4,
        }
    }

    /// Supply current in the given state at frequency `f`.
    pub fn current(&self, state: PowerState, f: Hertz, residence: ExecutionResidence) -> Amps {
        match state {
            PowerState::Off => Amps::ZERO,
            PowerState::Sleep => match residence {
                ExecutionResidence::Sram => self.i_sleep,
                ExecutionResidence::Fram => self.i_sleep + self.i_fram_quiescent,
            },
            PowerState::Active => {
                let mhz = f.0 / 1e6;
                let base = Amps(self.i_active_base.0 + self.i_active_per_mhz.0 * mhz);
                match residence {
                    ExecutionResidence::Sram => base,
                    ExecutionResidence::Fram => {
                        let penalised = if f > self.fram_wait_threshold {
                            base * self.fram_active_penalty
                        } else {
                            base
                        };
                        penalised + self.i_fram_quiescent
                    }
                }
            }
        }
    }

    /// Supply power in the given state at frequency `f` and nominal voltage.
    pub fn power(&self, state: PowerState, f: Hertz, residence: ExecutionResidence) -> Watts {
        self.v_nominal * self.current(state, f, residence)
    }

    /// Energy to execute `cycles` at frequency `f`.
    pub fn execution_energy(&self, cycles: u64, f: Hertz, residence: ExecutionResidence) -> Joules {
        let time = cycles as f64 / f.0;
        self.power(PowerState::Active, f, residence) * edc_units::Seconds(time)
    }

    /// Cost of a snapshot moving `words` to FRAM at frequency `f`: copy-loop
    /// execution energy plus per-word FRAM write energy. Returns
    /// `(cycles, energy)` — the `E_S` of the paper's Eq. (4).
    pub fn snapshot_cost(
        &self,
        words: u64,
        f: Hertz,
        residence: ExecutionResidence,
    ) -> (u64, Joules) {
        let cycles = words * self.snapshot_cycles_per_word;
        let exec = self.execution_energy(cycles, f, residence);
        let writes = self.fram_write_energy_per_word * words as f64;
        (cycles, exec + writes)
    }

    /// Cost of restoring `words` from FRAM (no FRAM writes, same copy loop).
    pub fn restore_cost(
        &self,
        words: u64,
        f: Hertz,
        residence: ExecutionResidence,
    ) -> (u64, Joules) {
        let cycles = words * self.snapshot_cycles_per_word;
        (cycles, self.execution_energy(cycles, f, residence))
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        Self::msp430fr5739()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> PowerModel {
        PowerModel::msp430fr5739()
    }

    #[test]
    fn active_current_scales_with_frequency() {
        let m = model();
        let at1 = m.current(
            PowerState::Active,
            Hertz::from_mega(1.0),
            ExecutionResidence::Sram,
        );
        let at8 = m.current(
            PowerState::Active,
            Hertz::from_mega(8.0),
            ExecutionResidence::Sram,
        );
        assert!((at1.as_micro() - 280.0).abs() < 1e-9);
        assert!((at8.as_micro() - 1750.0).abs() < 1e-9);
    }

    #[test]
    fn fram_residence_costs_more_everywhere() {
        let m = model();
        for f in [1.0, 8.0, 16.0, 24.0] {
            let f = Hertz::from_mega(f);
            for s in [PowerState::Sleep, PowerState::Active] {
                let sram = m.current(s, f, ExecutionResidence::Sram);
                let fram = m.current(s, f, ExecutionResidence::Fram);
                assert!(fram > sram, "FRAM must cost more at {f} in {s:?}");
            }
        }
    }

    #[test]
    fn fram_wait_penalty_only_above_threshold() {
        let m = model();
        let at8 = m.current(
            PowerState::Active,
            Hertz::from_mega(8.0),
            ExecutionResidence::Fram,
        );
        // At 8 MHz (not above threshold): base + quiescent only.
        assert!((at8.as_micro() - (1750.0 + 90.0)).abs() < 1e-9);
        let at16 = m.current(
            PowerState::Active,
            Hertz::from_mega(16.0),
            ExecutionResidence::Fram,
        );
        let base16 = 70.0 + 210.0 * 16.0;
        assert!((at16.as_micro() - (base16 * 1.25 + 90.0)).abs() < 1e-9);
    }

    #[test]
    fn off_draws_nothing_sleep_draws_microamps() {
        let m = model();
        assert_eq!(
            m.current(
                PowerState::Off,
                Hertz::from_mega(8.0),
                ExecutionResidence::Sram
            ),
            Amps::ZERO
        );
        let sleep = m.current(
            PowerState::Sleep,
            Hertz::from_mega(8.0),
            ExecutionResidence::Sram,
        );
        assert!((sleep.as_micro() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn snapshot_cost_matches_eq4_scale() {
        let m = model();
        // Full SRAM + registers ≈ 1056 words at 8 MHz.
        let (cycles, e) = m.snapshot_cost(1056, Hertz::from_mega(8.0), ExecutionResidence::Sram);
        assert_eq!(cycles, 1056 * 4);
        // ~0.5 ms of active power plus ~2 µJ of writes: single-digit µJ.
        assert!(e.as_micro() > 1.0 && e.as_micro() < 20.0, "E_S = {e}");
        // Restore is cheaper (no FRAM writes).
        let (_, r) = m.restore_cost(1056, Hertz::from_mega(8.0), ExecutionResidence::Sram);
        assert!(r < e);
    }

    #[test]
    fn execution_energy_linear_in_cycles() {
        let m = model();
        let e1 = m.execution_energy(1000, Hertz::from_mega(8.0), ExecutionResidence::Sram);
        let e2 = m.execution_energy(2000, Hertz::from_mega(8.0), ExecutionResidence::Sram);
        assert!((e2.0 / e1.0 - 2.0).abs() < 1e-9);
    }
}
