//! Deterministic process metrics with OpenMetrics text exposition.
//!
//! The registry here is the aggregate-observability counterpart to the
//! per-run timelines and profile spans in `edc-obs`: typed
//! [`Counter`]/[`Gauge`]/[`Histogram`] handles with label sets, cheap
//! atomic increments, and mergeable per-thread histogram shards, rendered
//! as OpenMetrics/Prometheus text by [`Registry::render_text`].
//!
//! The determinism contract mirrors the rest of the workspace: exposition
//! is a **pure function of the recorded multiset** — families sort by
//! name, children by label set, histogram shards merge in exact integer
//! arithmetic (fixed-point sums, like `edc-telemetry`'s `FixedSum`) — so
//! serial and parallel runs of the same work render byte-identically.
//! Wall-clock readings are quarantined exactly like `SweepRun.timing`:
//! gauges registered via [`Registry::wall_gauge`] are excluded from
//! [`Registry::render_text`]/[`Registry::render_json`] and only appear in
//! [`Registry::render_text_full`].
//!
//! # Examples
//!
//! ```
//! use edc_metrics::Registry;
//!
//! let registry = Registry::new();
//! let cells = registry.counter("edc_sweep_cells", "Grid cells simulated.", &[]);
//! cells.inc_by(12);
//! let text = registry.render_text();
//! assert!(text.contains("edc_sweep_cells_total 12"));
//! assert!(text.ends_with("# EOF\n"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Fixed-point scale for histogram sums: 2⁶⁰ keeps ~18 decimal digits
/// below the unit while an `i128` total still spans ±10²⁰ units. Matches
/// `edc-telemetry`'s `FixedSum`, for the same reason: integer addition is
/// exactly associative and commutative, so any shard merge order yields
/// the identical total.
const FIXED_SCALE: f64 = (1u128 << 60) as f64;

/// Number of histogram shards. Observations hash their thread onto a
/// shard, so concurrent workers rarely contend on one mutex; exposition
/// merges all shards in index order with integer arithmetic, which makes
/// the rendered text independent of how work was threaded.
const SHARDS: usize = 16;

/// A monotonically increasing counter handle.
///
/// Cloning is cheap (an [`Arc`] bump) and every clone addresses the same
/// underlying cell, so handles can be stashed per-worker.
///
/// # Examples
///
/// ```
/// let registry = edc_metrics::Registry::new();
/// let boots = registry.counter("edc_runner_boots", "Cold boots.", &[("strategy", "hibernus")]);
/// boots.inc();
/// boots.inc_by(2);
/// assert_eq!(boots.get(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Adds one.
    ///
    /// # Examples
    ///
    /// ```
    /// let c = edc_metrics::Registry::new().counter("edc_ticks", "Ticks.", &[]);
    /// c.inc();
    /// assert_eq!(c.get(), 1);
    /// ```
    pub fn inc(&self) {
        self.inc_by(1);
    }

    /// Adds `n`.
    ///
    /// # Examples
    ///
    /// ```
    /// let c = edc_metrics::Registry::new().counter("edc_ticks", "Ticks.", &[]);
    /// c.inc_by(40);
    /// assert_eq!(c.get(), 40);
    /// ```
    pub fn inc_by(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    ///
    /// # Examples
    ///
    /// ```
    /// let c = edc_metrics::Registry::new().counter("edc_ticks", "Ticks.", &[]);
    /// assert_eq!(c.get(), 0);
    /// ```
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A last-write-wins gauge handle holding one `f64`.
///
/// Gauges are for point-in-time readings (configured thread counts,
/// quarantined wall-clock totals); concurrent `set` calls race by design
/// and the last writer wins, so deterministic exposition requires either
/// single-writer use or value-independent writes.
///
/// # Examples
///
/// ```
/// let registry = edc_metrics::Registry::new();
/// let threads = registry.gauge("edc_sweep_threads", "Configured worker threads.", &[]);
/// threads.set(8.0);
/// assert_eq!(threads.get(), 8.0);
/// ```
#[derive(Debug, Clone)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
}

impl Gauge {
    /// Stores `v`, replacing any previous value.
    ///
    /// # Examples
    ///
    /// ```
    /// let g = edc_metrics::Registry::new().gauge("edc_threads", "Threads.", &[]);
    /// g.set(4.0);
    /// g.set(2.0);
    /// assert_eq!(g.get(), 2.0);
    /// ```
    pub fn set(&self, v: f64) {
        self.cell.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds `v` to the stored value (not atomic across racing writers;
    /// meant for single-writer accumulation such as wall-clock totals).
    ///
    /// # Examples
    ///
    /// ```
    /// let g = edc_metrics::Registry::new().gauge("edc_wall", "Wall seconds.", &[]);
    /// g.add(0.25);
    /// g.add(0.5);
    /// assert_eq!(g.get(), 0.75);
    /// ```
    pub fn add(&self, v: f64) {
        self.set(self.get() + v);
    }

    /// The current value.
    ///
    /// # Examples
    ///
    /// ```
    /// let g = edc_metrics::Registry::new().gauge("edc_threads", "Threads.", &[]);
    /// assert_eq!(g.get(), 0.0);
    /// ```
    pub fn get(&self) -> f64 {
        f64::from_bits(self.cell.load(Ordering::Relaxed))
    }
}

/// One histogram shard: per-bucket counts plus an exact fixed-point sum.
#[derive(Debug, Default)]
struct Shard {
    /// Per-bucket (non-cumulative) counts; `bounds.len() + 1` entries,
    /// the last being the implicit `+Inf` bucket. Lazily sized on first
    /// observation so an untouched shard costs nothing.
    counts: Vec<u64>,
    count: u64,
    sum: i128,
}

/// The shared state behind [`Histogram`] handles.
#[derive(Debug)]
struct HistogramCell {
    bounds: Vec<f64>,
    shards: Vec<Mutex<Shard>>,
}

/// An order-invariant merged view of every shard of one histogram.
#[derive(Debug, Clone, PartialEq)]
struct HistogramSnapshot {
    /// Non-cumulative per-bucket counts (`bounds.len() + 1` entries).
    counts: Vec<u64>,
    count: u64,
    sum: i128,
}

/// A sharded histogram handle with explicit bucket upper bounds.
///
/// Observations land in the bucket of the first upper bound `le` with
/// `x ≤ le` (an implicit `+Inf` bucket catches the rest), on a per-thread
/// shard chosen by hashing the current thread. Counts and the fixed-point
/// sum merge with exact integer arithmetic at exposition time, so the
/// rendered text is byte-identical however the observations were
/// interleaved across threads.
///
/// # Examples
///
/// ```
/// let registry = edc_metrics::Registry::new();
/// let sizes = registry.histogram("edc_batch_cells", "Cells per batch.", &[], &[1.0, 8.0, 64.0]);
/// sizes.observe(3.0);
/// sizes.observe(500.0);
/// assert_eq!(sizes.count(), 2);
/// let text = registry.render_text();
/// assert!(text.contains(r#"edc_batch_cells_bucket{le="8"} 1"#));
/// assert!(text.contains(r#"edc_batch_cells_bucket{le="+Inf"} 2"#));
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    cell: Arc<HistogramCell>,
}

impl Histogram {
    /// Records one observation. Non-finite values are ignored (they cannot
    /// be bucketed deterministically and indicate an upstream bug).
    ///
    /// # Examples
    ///
    /// ```
    /// let h = edc_metrics::Registry::new().histogram("edc_cost", "Cost.", &[], &[1.0]);
    /// h.observe(f64::NAN);
    /// h.observe(0.5);
    /// assert_eq!(h.count(), 1);
    /// ```
    pub fn observe(&self, x: f64) {
        if !x.is_finite() {
            return;
        }
        let idx = self.cell.bounds.partition_point(|&b| b < x);
        let mut hasher = DefaultHasher::new();
        std::thread::current().id().hash(&mut hasher);
        let shard = &self.cell.shards[(hasher.finish() as usize) % SHARDS];
        let mut shard = shard.lock().expect("histogram shard poisoned");
        if shard.counts.is_empty() {
            shard.counts = vec![0; self.cell.bounds.len() + 1];
        }
        shard.counts[idx] += 1;
        shard.count += 1;
        shard.sum += (x * FIXED_SCALE) as i128;
    }

    /// Total number of recorded observations across all shards.
    ///
    /// # Examples
    ///
    /// ```
    /// let h = edc_metrics::Registry::new().histogram("edc_cost", "Cost.", &[], &[1.0]);
    /// h.observe(2.0);
    /// assert_eq!(h.count(), 1);
    /// ```
    pub fn count(&self) -> u64 {
        self.snapshot().count
    }

    /// Sum of observations, accumulated in order-invariant fixed-point
    /// arithmetic (quantised at 2⁻⁶⁰).
    ///
    /// # Examples
    ///
    /// ```
    /// let h = edc_metrics::Registry::new().histogram("edc_cost", "Cost.", &[], &[1.0]);
    /// h.observe(0.25);
    /// h.observe(0.5);
    /// assert_eq!(h.sum(), 0.75);
    /// ```
    pub fn sum(&self) -> f64 {
        self.snapshot().sum as f64 / FIXED_SCALE
    }

    /// Merges every shard (index order, integer adds) into one snapshot.
    fn snapshot(&self) -> HistogramSnapshot {
        let mut counts = vec![0u64; self.cell.bounds.len() + 1];
        let mut count = 0u64;
        let mut sum = 0i128;
        for shard in &self.cell.shards {
            let shard = shard.lock().expect("histogram shard poisoned");
            for (a, b) in counts.iter_mut().zip(&shard.counts) {
                *a += b;
            }
            count += shard.count;
            sum += shard.sum;
        }
        HistogramSnapshot { counts, count, sum }
    }
}

/// The metric kinds a family can hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn exposition_name(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

/// One child metric (a concrete label set) of a family.
#[derive(Debug, Clone)]
enum Child {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// One metric family: a name, help text, kind, and children keyed by
/// their sorted label pairs (so exposition order is deterministic).
#[derive(Debug)]
struct Family {
    help: String,
    kind: Kind,
    quarantined: bool,
    children: BTreeMap<Vec<(String, String)>, Child>,
}

/// A cloneable handle to one metrics registry.
///
/// Clones share state, so a registry can be threaded through builders the
/// same way `TraceCatalog` is: every layer records into the same cells.
/// The process-global instance is [`global`]; local instances isolate
/// tests and determinism checks.
///
/// # Examples
///
/// ```
/// use edc_metrics::Registry;
///
/// let registry = Registry::new();
/// registry.counter("edc_runs", "Runs.", &[("kind", "sweep")]).inc();
/// registry.counter("edc_runs", "Runs.", &[("kind", "fleet")]).inc_by(2);
/// let text = registry.render_text();
/// assert!(text.contains(r#"edc_runs_total{kind="fleet"} 2"#));
/// assert!(text.contains(r#"edc_runs_total{kind="sweep"} 1"#));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Arc<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    families: Mutex<BTreeMap<String, Family>>,
}

impl Registry {
    /// An empty registry.
    ///
    /// # Examples
    ///
    /// ```
    /// let registry = edc_metrics::Registry::new();
    /// assert_eq!(registry.render_text(), "# EOF\n");
    /// ```
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or re-fetches) a counter. Registration is idempotent:
    /// the same `name` + label set always returns a handle to the same
    /// cell, and the first registration's help text wins.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    ///
    /// # Examples
    ///
    /// ```
    /// let registry = edc_metrics::Registry::new();
    /// let a = registry.counter("edc_hits", "Cache hits.", &[("phase", "rung0")]);
    /// let b = registry.counter("edc_hits", "Cache hits.", &[("phase", "rung0")]);
    /// a.inc();
    /// assert_eq!(b.get(), 1, "same cell behind both handles");
    /// ```
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        let child = self.child(name, help, labels, Kind::Counter, false, &[]);
        match child {
            Child::Counter(c) => c,
            _ => unreachable!("kind checked in child()"),
        }
    }

    /// Registers (or re-fetches) a gauge. Same idempotence rules as
    /// [`Registry::counter`].
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind, or as a
    /// quarantined (wall-clock) gauge.
    ///
    /// # Examples
    ///
    /// ```
    /// let registry = edc_metrics::Registry::new();
    /// registry.gauge("edc_threads", "Worker threads.", &[]).set(4.0);
    /// assert!(registry.render_text().contains("edc_threads 4"));
    /// ```
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.child(name, help, labels, Kind::Gauge, false, &[]) {
            Child::Gauge(g) => g,
            _ => unreachable!("kind checked in child()"),
        }
    }

    /// Registers (or re-fetches) a **quarantined** wall-clock gauge:
    /// excluded from [`Registry::render_text`] and
    /// [`Registry::render_json`], visible only in
    /// [`Registry::render_text_full`] — the same quarantine
    /// `SweepRun.timing` applies to wall-clock readings in artifacts.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind, or as a
    /// non-quarantined gauge.
    ///
    /// # Examples
    ///
    /// ```
    /// let registry = edc_metrics::Registry::new();
    /// registry.wall_gauge("edc_sweep_wall_seconds", "Wall clock.", &[]).set(1.5);
    /// assert!(!registry.render_text().contains("edc_sweep_wall_seconds"));
    /// assert!(registry.render_text_full().contains("edc_sweep_wall_seconds 1.5"));
    /// ```
    pub fn wall_gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.child(name, help, labels, Kind::Gauge, true, &[]) {
            Child::Gauge(g) => g,
            _ => unreachable!("kind checked in child()"),
        }
    }

    /// Registers (or re-fetches) a histogram with the given finite,
    /// strictly increasing bucket upper bounds (an implicit `+Inf` bucket
    /// is always appended). Same idempotence rules as
    /// [`Registry::counter`].
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind or with
    /// different bounds, or if `bounds` is empty, unsorted, or non-finite.
    ///
    /// # Examples
    ///
    /// ```
    /// let registry = edc_metrics::Registry::new();
    /// let h = registry.histogram("edc_nodes", "Nodes per fleet.", &[], &[1.0, 4.0, 16.0]);
    /// h.observe(3.0);
    /// assert!(registry.render_text().contains(r#"edc_nodes_bucket{le="4"} 1"#));
    /// ```
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Histogram {
        assert!(!bounds.is_empty(), "histogram {name}: empty bounds");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]) && bounds.iter().all(|b| b.is_finite()),
            "histogram {name}: bounds must be finite and strictly increasing"
        );
        match self.child(name, help, labels, Kind::Histogram, false, bounds) {
            Child::Histogram(h) => h,
            _ => unreachable!("kind checked in child()"),
        }
    }

    /// Looks up or creates the child cell for `name` + `labels`.
    fn child(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        kind: Kind,
        quarantined: bool,
        bounds: &[f64],
    ) -> Child {
        let mut sorted: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        sorted.sort();
        let mut families = self
            .inner
            .families
            .lock()
            .expect("metrics registry poisoned");
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind,
            quarantined,
            children: BTreeMap::new(),
        });
        assert!(
            family.kind == kind && family.quarantined == quarantined,
            "metric {name} re-registered as a different kind"
        );
        let child = family.children.entry(sorted).or_insert_with(|| match kind {
            Kind::Counter => Child::Counter(Counter {
                cell: Arc::new(AtomicU64::new(0)),
            }),
            Kind::Gauge => Child::Gauge(Gauge {
                cell: Arc::new(AtomicU64::new(0f64.to_bits())),
            }),
            Kind::Histogram => Child::Histogram(Histogram {
                cell: Arc::new(HistogramCell {
                    bounds: bounds.to_vec(),
                    shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
                }),
            }),
        });
        if let Child::Histogram(h) = child {
            assert!(
                h.cell.bounds == bounds,
                "histogram {name} re-registered with different bounds"
            );
        }
        child.clone()
    }

    /// The deterministic OpenMetrics text exposition: every family except
    /// quarantined wall-clock gauges, families sorted by name, children by
    /// label set, terminated by `# EOF`. Byte-identical across serial,
    /// parallel, and repeated runs of the same work.
    ///
    /// # Examples
    ///
    /// ```
    /// let registry = edc_metrics::Registry::new();
    /// registry.counter("edc_cells", "Cells.", &[]).inc_by(6);
    /// let text = registry.render_text();
    /// assert!(text.starts_with("# HELP edc_cells Cells.\n# TYPE edc_cells counter\n"));
    /// assert!(text.contains("edc_cells_total 6\n"));
    /// ```
    pub fn render_text(&self) -> String {
        self.render(false)
    }

    /// Like [`Registry::render_text`] but **including** quarantined
    /// wall-clock gauges — for `--metrics` dumps and logs, never for
    /// committed artifacts or byte-equality assertions.
    ///
    /// # Examples
    ///
    /// ```
    /// let registry = edc_metrics::Registry::new();
    /// registry.wall_gauge("edc_wall_seconds", "Wall clock.", &[]).set(0.5);
    /// assert!(registry.render_text_full().contains("edc_wall_seconds 0.5"));
    /// ```
    pub fn render_text_full(&self) -> String {
        self.render(true)
    }

    fn render(&self, include_quarantined: bool) -> String {
        let families = self
            .inner
            .families
            .lock()
            .expect("metrics registry poisoned");
        let mut out = String::new();
        for (name, family) in families.iter() {
            if family.quarantined && !include_quarantined {
                continue;
            }
            out.push_str(&format!(
                "# HELP {name} {}\n# TYPE {name} {}\n",
                escape_help(&family.help),
                family.kind.exposition_name()
            ));
            for (labels, child) in &family.children {
                match child {
                    Child::Counter(c) => {
                        out.push_str(&format!(
                            "{name}_total{} {}\n",
                            render_labels(labels, None),
                            c.get()
                        ));
                    }
                    Child::Gauge(g) => {
                        out.push_str(&format!(
                            "{name}{} {}\n",
                            render_labels(labels, None),
                            fmt_float(g.get())
                        ));
                    }
                    Child::Histogram(h) => {
                        let snap = h.snapshot();
                        let mut cumulative = 0u64;
                        for (i, le) in h.cell.bounds.iter().enumerate() {
                            cumulative += snap.counts[i];
                            out.push_str(&format!(
                                "{name}_bucket{} {cumulative}\n",
                                render_labels(labels, Some(&fmt_float(*le)))
                            ));
                        }
                        out.push_str(&format!(
                            "{name}_bucket{} {}\n",
                            render_labels(labels, Some("+Inf")),
                            snap.count
                        ));
                        out.push_str(&format!(
                            "{name}_sum{} {}\n",
                            render_labels(labels, None),
                            fmt_float(snap.sum as f64 / FIXED_SCALE)
                        ));
                        out.push_str(&format!(
                            "{name}_count{} {}\n",
                            render_labels(labels, None),
                            snap.count
                        ));
                    }
                }
            }
        }
        out.push_str("# EOF\n");
        out
    }

    /// The deterministic exposition as a JSON text (one
    /// `{"families": [...]}` document, quarantined families excluded).
    /// The text is valid JSON with deterministic key order, so callers can
    /// parse it with `edc_core::json::Json::parse` and re-emit it
    /// byte-identically.
    ///
    /// # Examples
    ///
    /// ```
    /// let registry = edc_metrics::Registry::new();
    /// registry.counter("edc_runs", "Runs.", &[("kind", "sweep")]).inc();
    /// let json = registry.render_json();
    /// assert!(json.starts_with(r#"{"families":[{"name":"edc_runs","type":"counter""#));
    /// assert!(json.contains(r#""labels":{"kind":"sweep"},"value":1"#));
    /// ```
    pub fn render_json(&self) -> String {
        let families = self
            .inner
            .families
            .lock()
            .expect("metrics registry poisoned");
        let mut out = String::from("{\"families\":[");
        let mut first_family = true;
        for (name, family) in families.iter() {
            if family.quarantined {
                continue;
            }
            if !first_family {
                out.push(',');
            }
            first_family = false;
            out.push_str(&format!(
                "{{\"name\":{},\"type\":\"{}\",\"help\":{},\"samples\":[",
                json_string(name),
                family.kind.exposition_name(),
                json_string(&family.help)
            ));
            let mut first_child = true;
            for (labels, child) in &family.children {
                if !first_child {
                    out.push(',');
                }
                first_child = false;
                out.push_str("{\"labels\":{");
                for (i, (k, v)) in labels.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("{}:{}", json_string(k), json_string(v)));
                }
                out.push('}');
                match child {
                    Child::Counter(c) => out.push_str(&format!(",\"value\":{}}}", c.get())),
                    Child::Gauge(g) => {
                        out.push_str(&format!(",\"value\":{}}}", json_float(g.get())))
                    }
                    Child::Histogram(h) => {
                        let snap = h.snapshot();
                        out.push_str(",\"buckets\":[");
                        let mut cumulative = 0u64;
                        for (i, le) in h.cell.bounds.iter().enumerate() {
                            cumulative += snap.counts[i];
                            out.push_str(&format!(
                                "{{\"le\":{},\"count\":{cumulative}}},",
                                json_float(*le)
                            ));
                        }
                        out.push_str(&format!(
                            "{{\"le\":\"+Inf\",\"count\":{}}}],\"sum\":{},\"count\":{}}}",
                            snap.count,
                            json_float(snap.sum as f64 / FIXED_SCALE),
                            snap.count
                        ));
                    }
                }
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

/// The process-global registry: what the bench bins and the `--metrics`
/// flags expose, and the default sink for every instrumented layer when no
/// local registry is threaded in.
///
/// # Examples
///
/// ```
/// let registry = edc_metrics::global();
/// registry.counter("edc_doc_example", "Doc example counter.", &[]).inc();
/// assert!(registry.render_text().contains("edc_doc_example_total"));
/// ```
pub fn global() -> Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new).clone()
}

/// Renders a label set (plus an optional `le` label appended last, as the
/// OpenMetrics histogram convention puts it) as `{k="v",...}`, or the
/// empty string when there are no labels.
fn render_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

/// Escapes a label value per the exposition format: backslash, quote, and
/// newline.
fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Escapes help text per the exposition format: backslash and newline.
fn escape_help(v: &str) -> String {
    v.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Shortest round-trip decimal for a finite `f64` (Rust's `Display`),
/// with the exposition-format spellings for the non-finite values.
fn fmt_float(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// A finite `f64` as a JSON number; non-finite values become `null`,
/// matching `edc_core::json::Json`'s convention.
fn json_float(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// A JSON string literal with the required escapes.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_render_in_name_and_label_order() {
        let r = Registry::new();
        r.counter("edc_z_last", "Last.", &[]).inc();
        r.counter("edc_a_first", "First.", &[("phase", "rung1")])
            .inc_by(2);
        r.counter("edc_a_first", "First.", &[("phase", "rung0")])
            .inc_by(3);
        r.gauge("edc_m_mid", "Mid.", &[]).set(1.25);
        let text = r.render_text();
        let a = text.find("edc_a_first").unwrap();
        let m = text.find("edc_m_mid").unwrap();
        let z = text.find("edc_z_last").unwrap();
        assert!(a < m && m < z, "families sort by name");
        let r0 = text.find(r#"edc_a_first_total{phase="rung0"} 3"#).unwrap();
        let r1 = text.find(r#"edc_a_first_total{phase="rung1"} 2"#).unwrap();
        assert!(r0 < r1, "children sort by label set");
        assert!(text.ends_with("# EOF\n"));
    }

    #[test]
    fn label_order_at_registration_is_irrelevant() {
        let r = Registry::new();
        let a = r.counter("edc_c", "C.", &[("b", "2"), ("a", "1")]);
        let b = r.counter("edc_c", "C.", &[("a", "1"), ("b", "2")]);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2, "one cell regardless of label order");
        assert!(r.render_text().contains(r#"edc_c_total{a="1",b="2"} 2"#));
    }

    #[test]
    fn histogram_buckets_are_cumulative_with_inf() {
        let r = Registry::new();
        let h = r.histogram("edc_h", "H.", &[], &[1.0, 10.0]);
        for x in [0.5, 0.5, 5.0, 50.0] {
            h.observe(x);
        }
        let text = r.render_text();
        assert!(text.contains(r#"edc_h_bucket{le="1"} 2"#));
        assert!(text.contains(r#"edc_h_bucket{le="10"} 3"#));
        assert!(text.contains(r#"edc_h_bucket{le="+Inf"} 4"#));
        assert!(text.contains("edc_h_sum 56\n"));
        assert!(text.contains("edc_h_count 4\n"));
    }

    #[test]
    fn histogram_le_is_inclusive() {
        let r = Registry::new();
        let h = r.histogram("edc_h", "H.", &[], &[1.0]);
        h.observe(1.0);
        assert!(r.render_text().contains(r#"edc_h_bucket{le="1"} 1"#));
    }

    #[test]
    fn exposition_is_independent_of_thread_interleaving() {
        let serial = Registry::new();
        let sh = serial.histogram("edc_h", "H.", &[], &[0.1, 1.0, 10.0]);
        let sc = serial.counter("edc_c", "C.", &[]);
        for i in 0..400 {
            sh.observe(i as f64 * 0.05);
            sc.inc();
        }
        let parallel = Registry::new();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let r = parallel.clone();
                scope.spawn(move || {
                    let h = r.histogram("edc_h", "H.", &[], &[0.1, 1.0, 10.0]);
                    let c = r.counter("edc_c", "C.", &[]);
                    for i in (t..400).step_by(4) {
                        h.observe(i as f64 * 0.05);
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(serial.render_text(), parallel.render_text());
        assert_eq!(serial.render_json(), parallel.render_json());
    }

    #[test]
    fn wall_gauges_are_quarantined() {
        let r = Registry::new();
        r.counter("edc_c", "C.", &[]).inc();
        r.wall_gauge("edc_wall_seconds", "Wall.", &[]).set(3.25);
        assert!(!r.render_text().contains("edc_wall_seconds"));
        assert!(!r.render_json().contains("edc_wall_seconds"));
        let full = r.render_text_full();
        assert!(full.contains("edc_wall_seconds 3.25"));
        assert!(
            full.contains("edc_c_total 1"),
            "full includes deterministic too"
        );
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_conflicts_panic() {
        let r = Registry::new();
        r.counter("edc_x", "X.", &[]);
        r.gauge("edc_x", "X.", &[]);
    }

    #[test]
    #[should_panic(expected = "different bounds")]
    fn bounds_conflicts_panic() {
        let r = Registry::new();
        r.histogram("edc_x", "X.", &[], &[1.0]);
        r.histogram("edc_x", "X.", &[], &[2.0]);
    }

    #[test]
    fn render_json_is_valid_json_shape() {
        let r = Registry::new();
        r.counter("edc_c", "Counts \"things\".", &[("k", "v")])
            .inc_by(7);
        let h = r.histogram("edc_h", "H.", &[], &[1.0]);
        h.observe(0.5);
        let json = r.render_json();
        assert!(json.starts_with("{\"families\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains(r#""help":"Counts \"things\".""#));
        assert!(json.contains(r#"{"le":1,"count":1},{"le":"+Inf","count":1}"#));
    }

    #[test]
    fn global_is_one_shared_registry() {
        let c = global().counter("edc_metrics_global_test", "Test.", &[]);
        c.inc();
        assert!(global()
            .render_text()
            .contains("edc_metrics_global_test_total"));
    }
}
