//! A big.LITTLE MPSoC platform model — the substitute for the ODROID XU-4
//! behind the paper's Fig. 5 and the power-neutral MPSoC work \[11\].
//!
//! The paper's Fig. 5 plots raytrace FPS against board power for operating
//! points spanning per-cluster DVFS and enabled-core counts, showing that
//! "the power consumption can be modulated by an order of magnitude". This
//! crate reproduces that surface analytically:
//!
//! - per-core dynamic power `k · f · V(f)²` with a frequency-dependent rail
//!   voltage, per cluster (A15-class "big", A7-class "LITTLE");
//! - a board static floor (fan, memory, peripherals);
//! - raytrace throughput proportional to aggregate `cores × f × IPC` with a
//!   mild parallel-efficiency roll-off.
//!
//! [`XuPlatform`] exposes the Pareto frontier of the full table through
//! [`edc_neutral::PowerScalable`], so the power-neutral governor can drive
//! it exactly as \[11\] drives the real board.
//!
//! # Examples
//!
//! ```
//! use edc_mpsoc::XuPlatform;
//! use edc_neutral::{PnGovernor, PowerScalable};
//! use edc_units::{Seconds, Watts};
//!
//! let mut platform = XuPlatform::odroid_xu4();
//! let mut governor = PnGovernor::new();
//! governor.step(&mut platform, Watts(5.0), Seconds(0.1));
//! assert!(platform.power_at(platform.level()) <= Watts(5.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use edc_neutral::PowerScalable;
use edc_units::Watts;

/// One MPSoC configuration: enabled cores and cluster frequencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OperatingPoint {
    /// Enabled big (A15-class) cores, 0–4.
    pub big_cores: u8,
    /// Enabled LITTLE (A7-class) cores, 0–4.
    pub little_cores: u8,
    /// Big-cluster frequency in MHz.
    pub big_mhz: u32,
    /// LITTLE-cluster frequency in MHz.
    pub little_mhz: u32,
}

impl OperatingPoint {
    /// Validates the point against the XU-4 envelope.
    pub fn is_valid(&self) -> bool {
        let cores_ok = self.big_cores <= 4
            && self.little_cores <= 4
            && (self.big_cores + self.little_cores) > 0;
        let big_f_ok = self.big_cores == 0
            || ((600..=2000).contains(&self.big_mhz) && self.big_mhz.is_multiple_of(200));
        let little_f_ok = self.little_cores == 0
            || ((600..=1400).contains(&self.little_mhz) && self.little_mhz.is_multiple_of(200));
        cores_ok && big_f_ok && little_f_ok
    }
}

impl std::fmt::Display for OperatingPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}b@{}MHz+{}L@{}MHz",
            self.big_cores, self.big_mhz, self.little_cores, self.little_mhz
        )
    }
}

/// The analytic power/performance surface of the board.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct XuModel {
    /// Board static floor (fan, DRAM, peripherals).
    pub static_power: Watts,
    /// Big-core dynamic coefficient (W per GHz at nominal V²).
    pub big_k: f64,
    /// LITTLE-core dynamic coefficient.
    pub little_k: f64,
    /// Big-core IPC relative to LITTLE.
    pub big_ipc: f64,
    /// Raytrace FPS at the maximal configuration.
    pub fps_max: f64,
    /// Per-additional-core parallel efficiency.
    pub parallel_efficiency: f64,
}

impl XuModel {
    /// Parameters tuned to the Fig. 5 envelope: ~0.5 W floor, ~17–18 W peak,
    /// 0.25 FPS at full tilt.
    pub fn odroid_xu4() -> Self {
        Self {
            static_power: Watts(0.45),
            big_k: 2.0,
            little_k: 0.3,
            big_ipc: 2.2,
            fps_max: 0.25,
            parallel_efficiency: 0.97,
        }
    }

    /// Rail voltage scaling with frequency (normalised so `V² = 1` at the
    /// cluster's top frequency).
    fn v_squared(f_mhz: u32, f_max_mhz: u32) -> f64 {
        // 0.9 V at the bottom of the ladder, 1.1 V at the top (normalised
        // to 1.1 V = 1.0).
        let frac = f_mhz as f64 / f_max_mhz as f64;
        let v = (0.9 + 0.2 * frac) / 1.1;
        v * v
    }

    /// Board power at an operating point.
    ///
    /// # Panics
    ///
    /// Panics if the point is invalid ([C-VALIDATE]).
    ///
    /// [C-VALIDATE]: https://rust-lang.github.io/api-guidelines/dependability.html
    pub fn power(&self, op: OperatingPoint) -> Watts {
        assert!(op.is_valid(), "invalid operating point {op}");
        let big = op.big_cores as f64
            * self.big_k
            * (op.big_mhz as f64 / 1000.0)
            * Self::v_squared(op.big_mhz, 2000);
        let little = op.little_cores as f64
            * self.little_k
            * (op.little_mhz as f64 / 1000.0)
            * Self::v_squared(op.little_mhz, 1400);
        Watts(self.static_power.0 + big + little)
    }

    /// Raytrace FPS at an operating point.
    ///
    /// # Panics
    ///
    /// Panics if the point is invalid.
    pub fn fps(&self, op: OperatingPoint) -> f64 {
        assert!(op.is_valid(), "invalid operating point {op}");
        let cores = (op.big_cores + op.little_cores) as u32;
        let raw = op.big_cores as f64 * self.big_ipc * (op.big_mhz as f64 / 1000.0)
            + op.little_cores as f64 * (op.little_mhz as f64 / 1000.0);
        let raw_max = 4.0 * self.big_ipc * 2.0 + 4.0 * 1.4;
        let eff = self
            .parallel_efficiency
            .powi(cores.saturating_sub(1) as i32);
        let eff_max = self.parallel_efficiency.powi(7);
        self.fps_max * (raw * eff) / (raw_max * eff_max)
    }
}

impl Default for XuModel {
    fn default() -> Self {
        Self::odroid_xu4()
    }
}

/// Every valid operating point of the board (the Fig. 5 scatter).
pub fn full_opp_table() -> Vec<OperatingPoint> {
    let mut out = Vec::new();
    for big_cores in 0..=4u8 {
        for little_cores in 0..=4u8 {
            if big_cores + little_cores == 0 {
                continue;
            }
            let big_freqs: Vec<u32> = if big_cores == 0 {
                vec![600] // placeholder; cluster gated
            } else {
                (600..=2000).step_by(200).collect()
            };
            let little_freqs: Vec<u32> = if little_cores == 0 {
                vec![600]
            } else {
                (600..=1400).step_by(200).collect()
            };
            for &big_mhz in &big_freqs {
                for &little_mhz in &little_freqs {
                    out.push(OperatingPoint {
                        big_cores,
                        little_cores,
                        big_mhz,
                        little_mhz,
                    });
                }
            }
        }
    }
    out
}

/// Filters a table to its Pareto frontier (no point is both slower and
/// hungrier than another), sorted by increasing power.
pub fn pareto_frontier(model: &XuModel, table: &[OperatingPoint]) -> Vec<OperatingPoint> {
    let mut scored: Vec<(f64, f64, OperatingPoint)> = table
        .iter()
        .map(|&op| (model.power(op).0, model.fps(op), op))
        .collect();
    scored.sort_by(|a, b| a.0.total_cmp(&b.0).then(b.1.total_cmp(&a.1)));
    let mut frontier = Vec::new();
    let mut best_fps = f64::NEG_INFINITY;
    for (_, fps, op) in scored {
        if fps > best_fps {
            best_fps = fps;
            frontier.push(op);
        }
    }
    frontier
}

/// The board exposed as a [`PowerScalable`] ladder over its Pareto frontier.
#[derive(Debug, Clone)]
pub struct XuPlatform {
    model: XuModel,
    frontier: Vec<OperatingPoint>,
    level: usize,
}

impl XuPlatform {
    /// Creates the default XU-4 platform at its lowest level.
    pub fn odroid_xu4() -> Self {
        let model = XuModel::odroid_xu4();
        let frontier = pareto_frontier(&model, &full_opp_table());
        Self {
            model,
            frontier,
            level: 0,
        }
    }

    /// The analytic model.
    pub fn model(&self) -> &XuModel {
        &self.model
    }

    /// The Pareto-frontier operating points, slowest first.
    pub fn frontier(&self) -> &[OperatingPoint] {
        &self.frontier
    }

    /// The operating point at the current level.
    pub fn operating_point(&self) -> OperatingPoint {
        self.frontier[self.level]
    }
}

impl PowerScalable for XuPlatform {
    fn num_levels(&self) -> usize {
        self.frontier.len()
    }

    fn level(&self) -> usize {
        self.level
    }

    fn set_level(&mut self, level: usize) {
        assert!(level < self.frontier.len(), "level out of range");
        self.level = level;
    }

    fn power_at(&self, level: usize) -> Watts {
        self.model.power(self.frontier[level])
    }

    fn performance_at(&self, level: usize) -> f64 {
        self.model.fps(self.frontier[level])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fig5_envelope_shape() {
        let model = XuModel::odroid_xu4();
        let table = full_opp_table();
        let powers: Vec<f64> = table.iter().map(|&op| model.power(op).0).collect();
        let fpss: Vec<f64> = table.iter().map(|&op| model.fps(op)).collect();
        let p_min = powers.iter().cloned().fold(f64::INFINITY, f64::min);
        let p_max = powers.iter().cloned().fold(0.0, f64::max);
        let f_max = fpss.iter().cloned().fold(0.0, f64::max);
        // Fig. 5: ~0.5 W floor, high-teens peak, ≥10× modulation, 0.25 FPS top.
        assert!(p_min < 0.7, "floor {p_min} W");
        assert!((12.0..22.0).contains(&p_max), "peak {p_max} W");
        assert!(p_max / p_min >= 10.0, "modulation {}×", p_max / p_min);
        assert!((0.2..=0.3).contains(&f_max), "fps max {f_max}");
    }

    #[test]
    fn table_size_is_plausible() {
        let table = full_opp_table();
        // 24 cluster-count combos × frequency grids: hundreds of points.
        assert!(table.len() > 300, "table has {} points", table.len());
        assert!(table.iter().all(|op| op.is_valid()));
    }

    #[test]
    fn pareto_frontier_monotone_in_both_axes() {
        let model = XuModel::odroid_xu4();
        let frontier = pareto_frontier(&model, &full_opp_table());
        assert!(
            frontier.len() > 10,
            "frontier has {} points",
            frontier.len()
        );
        for pair in frontier.windows(2) {
            assert!(model.power(pair[0]) <= model.power(pair[1]));
            assert!(model.fps(pair[0]) < model.fps(pair[1]));
        }
    }

    #[test]
    fn platform_implements_power_scalable_contract() {
        let p = XuPlatform::odroid_xu4();
        assert!(p.num_levels() > 10);
        for level in 1..p.num_levels() {
            assert!(p.power_at(level) > p.power_at(level - 1));
            assert!(p.performance_at(level) > p.performance_at(level - 1));
        }
    }

    #[test]
    fn governor_drives_the_board() {
        use edc_neutral::PnGovernor;
        use edc_units::Seconds;
        let mut platform = XuPlatform::odroid_xu4();
        let mut g = PnGovernor::new();
        // Diurnal-ish power ramp 1 → 15 → 1 W.
        for i in 0..2000 {
            let x = i as f64 / 2000.0;
            let p_h = Watts(1.0 + 14.0 * (std::f64::consts::PI * x).sin().max(0.0));
            g.step(&mut platform, p_h, Seconds(0.01));
        }
        let stats = g.stats();
        assert!(stats.level_changes > 5, "governor must actually move");
        assert!(
            g.overdraw_fraction() < 0.10,
            "overdraw {} too high",
            g.overdraw_fraction()
        );
        assert!(stats.performance_integral > 0.0);
    }

    #[test]
    fn big_cluster_dominates_power() {
        let model = XuModel::odroid_xu4();
        let big = OperatingPoint {
            big_cores: 4,
            little_cores: 0,
            big_mhz: 2000,
            little_mhz: 600,
        };
        let little = OperatingPoint {
            big_cores: 0,
            little_cores: 4,
            big_mhz: 600,
            little_mhz: 1400,
        };
        assert!(model.power(big).0 > 4.0 * model.power(little).0);
        assert!(model.fps(big) > model.fps(little));
    }

    #[test]
    #[should_panic(expected = "invalid operating point")]
    fn invalid_point_rejected() {
        let model = XuModel::odroid_xu4();
        let _ = model.power(OperatingPoint {
            big_cores: 5,
            little_cores: 0,
            big_mhz: 2000,
            little_mhz: 600,
        });
    }

    proptest! {
        #[test]
        fn prop_power_and_fps_positive(
            big_cores in 0u8..=4,
            little_cores in 0u8..=4,
            big_step in 0u32..8,
            little_step in 0u32..5,
        ) {
            prop_assume!(big_cores + little_cores > 0);
            let op = OperatingPoint {
                big_cores,
                little_cores,
                big_mhz: 600 + 200 * big_step,
                little_mhz: 600 + 200 * little_step,
            };
            let model = XuModel::odroid_xu4();
            prop_assert!(model.power(op).0 > 0.0);
            prop_assert!(model.fps(op) >= 0.0);
            prop_assert!(model.fps(op) <= model.fps_max + 1e-9);
        }
    }
}
