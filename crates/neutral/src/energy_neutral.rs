//! Energy-neutral operation (Eq. 1) for harvesting WSN nodes, after Kansal
//! et al. \[3\]: predict the diurnal harvest with an EWMA per time slot,
//! then adapt the node's duty cycle so consumption tracks the prediction
//! while the battery buffers the error.
//!
//! The paper's smartphone example is the same mechanism with a human in the
//! loop; the audit type ([`NeutralityAudit`]) checks both Eq. (1) over the
//! period and Eq. (2) at every instant, reporting the failures the paper
//! describes ("if the difference becomes too great and the battery is
//! depleted, expression (2) is violated and the system fails").

use edc_sim::EnergyIntegrator;
use edc_units::{Joules, Seconds, Watts};

/// Per-slot exponentially-weighted moving-average harvest predictor
/// (Kansal's EWMA): one estimator per slot-of-day, so the diurnal shape is
/// learned rather than assumed.
#[derive(Debug, Clone)]
pub struct EwmaPredictor {
    alpha: f64,
    slot_length: Seconds,
    estimates: Vec<Watts>,
    observations: u64,
}

impl EwmaPredictor {
    /// Creates a predictor with `slots_per_day` slots and smoothing factor
    /// `alpha` (weight of the newest observation).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < alpha ≤ 1` and `slots_per_day > 0`.
    pub fn new(slots_per_day: usize, alpha: f64) -> Self {
        assert!(slots_per_day > 0, "need at least one slot");
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha in (0, 1]");
        Self {
            alpha,
            slot_length: Seconds(86_400.0 / slots_per_day as f64),
            estimates: vec![Watts::ZERO; slots_per_day],
            observations: 0,
        }
    }

    /// The slot index for a time of day.
    pub fn slot_of(&self, t: Seconds) -> usize {
        ((t.0.rem_euclid(86_400.0)) / self.slot_length.0) as usize % self.estimates.len()
    }

    /// Slot duration.
    pub fn slot_length(&self) -> Seconds {
        self.slot_length
    }

    /// Records the mean harvested power observed during a slot.
    pub fn observe(&mut self, t: Seconds, mean_power: Watts) {
        let slot = self.slot_of(t);
        let prev = self.estimates[slot];
        self.estimates[slot] = if self.observations < self.estimates.len() as u64 {
            // First day: adopt observations directly.
            mean_power
        } else {
            Watts(self.alpha * mean_power.0 + (1.0 - self.alpha) * prev.0)
        };
        self.observations += 1;
    }

    /// Predicted mean power for the slot containing `t`.
    pub fn predict(&self, t: Seconds) -> Watts {
        self.estimates[self.slot_of(t)]
    }

    /// Predicted energy over the next full day.
    pub fn predicted_daily_energy(&self) -> Joules {
        self.estimates.iter().map(|p| *p * self.slot_length).sum()
    }
}

/// Eq. (1)/(2) bookkeeping over a run.
#[derive(Debug, Clone, Default)]
pub struct NeutralityAudit {
    harvested: EnergyIntegrator,
    consumed: EnergyIntegrator,
    /// Count of instants at which stored energy hit zero (Eq. 2 violations).
    pub depletion_events: u64,
}

impl NeutralityAudit {
    /// Creates an empty audit.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one interval.
    pub fn record(&mut self, harvested: Watts, consumed: Watts, dt: Seconds, depleted: bool) {
        self.harvested.add(harvested, dt);
        self.consumed.add(consumed, dt);
        if depleted {
            self.depletion_events += 1;
        }
    }

    /// Total harvested energy.
    pub fn harvested_energy(&self) -> Joules {
        self.harvested.total()
    }

    /// Total consumed energy.
    pub fn consumed_energy(&self) -> Joules {
        self.consumed.total()
    }

    /// Eq. (1) residual as a fraction of harvested energy (0 = perfectly
    /// neutral).
    pub fn neutrality_error(&self) -> f64 {
        let h = self.harvested.total().0;
        let c = self.consumed.total().0;
        if h.abs() < 1e-30 {
            return if c.abs() < 1e-30 { 0.0 } else { f64::INFINITY };
        }
        (h - c).abs() / h
    }

    /// `true` when Eq. (1) held within `tolerance` and Eq. (2) never failed.
    pub fn is_energy_neutral(&self, tolerance: f64) -> bool {
        self.depletion_events == 0 && self.neutrality_error() <= tolerance
    }
}

/// The duty-cycle controller: each slot, choose the activity fraction the
/// predicted harvest (plus a measured battery-correction term) can fund.
#[derive(Debug, Clone)]
pub struct WsnController {
    predictor: EwmaPredictor,
    /// Node power when active (sensing/transmitting).
    p_active: Watts,
    /// Node power when asleep.
    p_sleep: Watts,
    /// Battery state-of-charge the controller steers toward.
    target_soc: f64,
    /// Proportional gain on the SoC error term.
    soc_gain: f64,
    duty_min: f64,
    duty_max: f64,
}

impl WsnController {
    /// Creates a controller for a node with the given active/sleep powers.
    ///
    /// # Panics
    ///
    /// Panics unless `p_active > p_sleep ≥ 0`.
    pub fn new(predictor: EwmaPredictor, p_active: Watts, p_sleep: Watts) -> Self {
        assert!(p_active > p_sleep, "active power must exceed sleep power");
        assert!(p_sleep.0 >= 0.0, "sleep power must be ≥ 0");
        Self {
            predictor,
            p_active,
            p_sleep,
            target_soc: 0.6,
            soc_gain: 0.5,
            duty_min: 0.01,
            duty_max: 1.0,
        }
    }

    /// Overrides the duty-cycle bounds.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ min < max ≤ 1`.
    pub fn with_duty_bounds(mut self, min: f64, max: f64) -> Self {
        assert!((0.0..1.0).contains(&min) && min < max && max <= 1.0);
        self.duty_min = min;
        self.duty_max = max;
        self
    }

    /// Access to the embedded predictor.
    pub fn predictor(&self) -> &EwmaPredictor {
        &self.predictor
    }

    /// Records a slot observation into the predictor.
    pub fn observe(&mut self, t: Seconds, mean_power: Watts) {
        self.predictor.observe(t, mean_power);
    }

    /// Chooses the duty cycle for the slot containing `t`:
    /// solve `d·P_active + (1−d)·P_sleep = P̂_h + k·(soc − target)·P_active`.
    pub fn duty_for(&self, t: Seconds, soc: f64) -> f64 {
        let p_hat = self.predictor.predict(t);
        let correction = self.soc_gain * (soc - self.target_soc) * self.p_active.0;
        let budget = p_hat.0 + correction;
        let d = (budget - self.p_sleep.0) / (self.p_active.0 - self.p_sleep.0);
        d.clamp(self.duty_min, self.duty_max)
    }
}

/// Per-slot simulation record of a [`WsnNode`] run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WsnSlotReport {
    /// Slot start time.
    pub t: Seconds,
    /// Duty cycle chosen.
    pub duty: f64,
    /// Mean harvested power during the slot.
    pub harvested: Watts,
    /// Mean consumed power during the slot.
    pub consumed: Watts,
    /// Battery state of charge at slot end.
    pub soc: f64,
}

/// An energy-neutral WSN node: battery + controller + harvest profile.
#[derive(Debug, Clone)]
pub struct WsnNode {
    controller: WsnController,
    battery: edc_power::Battery,
    audit: NeutralityAudit,
    reports: Vec<WsnSlotReport>,
    time: Seconds,
}

impl WsnNode {
    /// Creates a node.
    pub fn new(controller: WsnController, battery: edc_power::Battery) -> Self {
        Self {
            controller,
            battery,
            audit: NeutralityAudit::new(),
            reports: Vec::new(),
            time: Seconds(0.0),
        }
    }

    /// The Eq. (1)/(2) audit so far.
    pub fn audit(&self) -> &NeutralityAudit {
        &self.audit
    }

    /// Slot-by-slot reports.
    pub fn reports(&self) -> &[WsnSlotReport] {
        &self.reports
    }

    /// Battery state of charge.
    pub fn soc(&self) -> f64 {
        self.battery.soc()
    }

    /// Simulates `duration`, sampling `harvest(t)` once per slot.
    pub fn run(&mut self, mut harvest: impl FnMut(Seconds) -> Watts, duration: Seconds) {
        let slot = self.controller.predictor.slot_length();
        let end = Seconds(self.time.0 + duration.0);
        while self.time < end {
            let t = self.time;
            let p_h = harvest(t);
            let duty = self.controller.duty_for(t, self.battery.soc());
            let p_c =
                Watts(duty * self.controller.p_active.0 + (1.0 - duty) * self.controller.p_sleep.0);
            // Harvest charges the battery; consumption discharges it.
            self.battery.charge(p_h, slot);
            let wanted = p_c * slot;
            let delivered = self.battery.discharge(p_c, slot);
            let depleted = delivered < wanted * 0.999;
            self.battery.idle(slot);
            self.audit.record(p_h, p_c, slot, depleted);
            self.controller.observe(t, p_h);
            self.reports.push(WsnSlotReport {
                t,
                duty,
                harvested: p_h,
                consumed: p_c,
                soc: self.battery.soc(),
            });
            self.time += slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edc_power::Battery;

    fn diurnal(t: Seconds) -> Watts {
        // 2 mW peak at noon, zero at night.
        let day = t.0.rem_euclid(86_400.0) / 86_400.0;
        let x = (std::f64::consts::TAU * (day - 0.25)).sin();
        Watts((2e-3 * x).max(0.0))
    }

    #[test]
    fn predictor_learns_diurnal_shape() {
        let mut p = EwmaPredictor::new(24, 0.3);
        // Observe three days.
        for day in 0..3 {
            for h in 0..24 {
                let t = Seconds::from_hours(day as f64 * 24.0 + h as f64);
                p.observe(t, diurnal(t));
            }
        }
        let noon = p.predict(Seconds::from_hours(12.0));
        let midnight = p.predict(Seconds::from_hours(0.0));
        assert!(noon.0 > 1e-3, "noon prediction {noon}");
        assert!(midnight.0 < 1e-4, "midnight prediction {midnight}");
        assert!(p.predicted_daily_energy().0 > 0.0);
    }

    #[test]
    fn audit_detects_imbalance_and_depletion() {
        let mut a = NeutralityAudit::new();
        a.record(Watts(1.0), Watts(1.0), Seconds(10.0), false);
        assert!(a.is_energy_neutral(0.01));
        a.record(Watts(0.0), Watts(1.0), Seconds(10.0), true);
        assert!(!a.is_energy_neutral(0.01));
        assert_eq!(a.depletion_events, 1);
        assert!((a.neutrality_error() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn controller_scales_duty_with_prediction() {
        let mut p = EwmaPredictor::new(24, 0.5);
        for h in 0..24 {
            let t = Seconds::from_hours(h as f64);
            p.observe(t, diurnal(t));
        }
        let ctrl = WsnController::new(p, Watts(10e-3), Watts(50e-6));
        let d_noon = ctrl.duty_for(Seconds::from_hours(12.0), 0.6);
        let d_night = ctrl.duty_for(Seconds::from_hours(2.0), 0.6);
        assert!(
            d_noon > 3.0 * d_night,
            "noon duty {d_noon} vs night {d_night}"
        );
    }

    #[test]
    fn low_battery_cuts_duty() {
        let mut p = EwmaPredictor::new(24, 0.5);
        for h in 0..24 {
            let t = Seconds::from_hours(h as f64);
            p.observe(t, Watts(1e-3));
        }
        let ctrl = WsnController::new(p, Watts(10e-3), Watts(50e-6));
        let healthy = ctrl.duty_for(Seconds::from_hours(12.0), 0.9);
        let starving = ctrl.duty_for(Seconds::from_hours(12.0), 0.1);
        assert!(healthy > starving);
    }

    #[test]
    fn node_achieves_energy_neutrality_over_days() {
        let predictor = EwmaPredictor::new(48, 0.3);
        let ctrl =
            WsnController::new(predictor, Watts(10e-3), Watts(50e-6)).with_duty_bounds(0.005, 0.9);
        // Battery sized for ~a day of mean consumption.
        let battery = Battery::new(Joules(60.0)).with_soc(0.6);
        let mut node = WsnNode::new(ctrl, battery);
        node.run(diurnal, Seconds::from_hours(24.0 * 7.0));
        let audit = node.audit();
        assert_eq!(audit.depletion_events, 0, "battery must never die");
        assert!(
            audit.neutrality_error() < 0.25,
            "Eq. 1 error {} too large",
            audit.neutrality_error()
        );
        // Duty cycle must actually adapt (not sit on a bound).
        let duties: Vec<f64> = node.reports().iter().map(|r| r.duty).collect();
        let max = duties.iter().cloned().fold(0.0, f64::max);
        let min = duties.iter().cloned().fold(1.0, f64::min);
        assert!(max > 2.0 * min, "duty never adapted: {min}..{max}");
    }

    #[test]
    fn oversubscribed_node_fails_eq2() {
        // Tiny battery + greedy duty bounds: night kills it.
        let predictor = EwmaPredictor::new(24, 0.3);
        let ctrl =
            WsnController::new(predictor, Watts(50e-3), Watts(50e-6)).with_duty_bounds(0.5, 1.0); // refuses to sleep
        let battery = Battery::new(Joules(2.0)).with_soc(0.5);
        let mut node = WsnNode::new(ctrl, battery);
        node.run(diurnal, Seconds::from_hours(48.0));
        assert!(node.audit().depletion_events > 0, "expected Eq. 2 failure");
    }
}
