//! Energy-neutral and power-neutral control — Sections II.A and II.C of the
//! paper.
//!
//! *Energy-neutral* systems satisfy Eq. (1) over a period `T` (harvested
//! energy = consumed energy) by buffering in storage and adapting their duty
//! cycle — the classic Kansal et al. \[3\] WSN formulation, implemented in
//! [`energy_neutral`].
//!
//! *Power-neutral* systems have no meaningful storage, so `T → 0` and
//! Eq. (1) degenerates to Eq. (3): `P_h(t) = P_c(t)` instant by instant.
//! They track the harvested power by modulating performance (DVFS,
//! hot-plugging) — implemented in [`power_neutral`] over the
//! [`PowerScalable`] abstraction that both the MCU's DFS ladder and the
//! big.LITTLE MPSoC implement.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod energy_neutral;
pub mod power_neutral;

pub use energy_neutral::{EwmaPredictor, NeutralityAudit, WsnController, WsnNode, WsnSlotReport};
pub use power_neutral::{PnGovernor, PowerScalable, TrackingStats};
