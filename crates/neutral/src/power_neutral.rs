//! Power-neutral operation: Eq. (3), `P_h(t) = P_c(t)`.
//!
//! With no storage, consumption must track harvest instant by instant. The
//! "hooks" (the paper's term) are discrete performance levels — DVFS points,
//! core hot-plugging — abstracted here as [`PowerScalable`]. The governor
//! ([`PnGovernor`]) selects the highest level whose consumption fits the
//! harvested power, optionally with hysteresis to avoid level thrash; it is
//! the feed-forward complement to the voltage-feedback governor inside
//! `edc-transient`'s Hibernus-PN.

use edc_units::{Seconds, Watts};

/// A platform whose power/performance can be stepped through discrete
/// levels (level 0 = lowest power).
pub trait PowerScalable {
    /// Number of selectable levels.
    fn num_levels(&self) -> usize;

    /// Currently selected level.
    fn level(&self) -> usize;

    /// Selects a level.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `level ≥ num_levels()`.
    fn set_level(&mut self, level: usize);

    /// Power consumption at a level.
    fn power_at(&self, level: usize) -> Watts;

    /// Performance metric at a level (units are platform-defined: FPS,
    /// MIPS…). Must be non-decreasing in level.
    fn performance_at(&self, level: usize) -> f64;
}

/// Tracking-quality statistics accumulated by [`PnGovernor::step`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TrackingStats {
    /// Time integrated so far.
    pub elapsed: Seconds,
    /// Integral of `max(0, P_c − P_h)` — energy the platform overdrew
    /// (would brown out a storage-less system).
    pub overdraw_energy: f64,
    /// Integral of `max(0, P_h − P_c)` — harvested energy left unused.
    pub waste_energy: f64,
    /// Performance-seconds delivered (integral of the performance metric).
    pub performance_integral: f64,
    /// Number of level changes commanded.
    pub level_changes: u64,
}

impl TrackingStats {
    /// Mean fractional overdraw relative to total harvested energy.
    pub fn overdraw_fraction(&self, harvested_total: f64) -> f64 {
        if harvested_total > 0.0 {
            self.overdraw_energy / harvested_total
        } else {
            0.0
        }
    }
}

/// Feed-forward power-neutral governor: pick the fastest level that fits.
#[derive(Debug, Clone)]
pub struct PnGovernor {
    /// Fraction of the harvested power the governor is allowed to commit
    /// (headroom for model error); 1.0 = commit everything.
    utilisation: f64,
    /// Required relative improvement before switching level (hysteresis).
    hysteresis: f64,
    stats: TrackingStats,
    harvested_total: f64,
}

impl PnGovernor {
    /// Creates a governor committing 90% of harvested power with 5%
    /// switching hysteresis.
    pub fn new() -> Self {
        Self {
            utilisation: 0.9,
            hysteresis: 0.05,
            stats: TrackingStats::default(),
            harvested_total: 0.0,
        }
    }

    /// Overrides the utilisation factor.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < utilisation ≤ 1`.
    pub fn with_utilisation(mut self, u: f64) -> Self {
        assert!(u > 0.0 && u <= 1.0, "utilisation in (0, 1]");
        self.utilisation = u;
        self
    }

    /// Overrides the switching hysteresis.
    ///
    /// # Panics
    ///
    /// Panics if `h` is negative.
    pub fn with_hysteresis(mut self, h: f64) -> Self {
        assert!(h >= 0.0, "hysteresis must be ≥ 0");
        self.hysteresis = h;
        self
    }

    /// Accumulated tracking statistics.
    pub fn stats(&self) -> TrackingStats {
        self.stats
    }

    /// Fraction of harvested energy overdrawn so far.
    pub fn overdraw_fraction(&self) -> f64 {
        self.stats.overdraw_fraction(self.harvested_total)
    }

    /// The highest level whose power fits within `budget` (level 0 when
    /// nothing fits — a platform cannot go below its floor).
    fn fit_level(platform: &impl PowerScalable, budget: f64) -> usize {
        let mut best = 0;
        for level in 0..platform.num_levels() {
            if platform.power_at(level).0 <= budget {
                best = level;
            }
        }
        best
    }

    /// The level the governor would pick for harvested power `p_h`.
    pub fn target_level(&self, platform: &impl PowerScalable, p_h: Watts) -> usize {
        Self::fit_level(platform, p_h.0 * self.utilisation)
    }

    /// One governor step: observe `p_h`, command the platform, integrate
    /// statistics over `dt`.
    ///
    /// Switching is asymmetric: a down-switch is mandatory the instant the
    /// current level overdraws the budget (a storage-less system cannot
    /// afford to wait), while an up-switch additionally requires the target
    /// to fit inside `budget · (1 − hysteresis)` so boundary noise does not
    /// thrash the level.
    pub fn step(&mut self, platform: &mut impl PowerScalable, p_h: Watts, dt: Seconds) {
        let budget = p_h.0 * self.utilisation;
        let current = platform.level();
        let mut new_level = current;
        if platform.power_at(current).0 > budget {
            new_level = Self::fit_level(platform, budget);
        } else {
            let up = Self::fit_level(platform, budget * (1.0 - self.hysteresis));
            if up > current {
                new_level = up;
            }
        }
        if new_level != current {
            platform.set_level(new_level);
            self.stats.level_changes += 1;
        }
        let p_c = platform.power_at(platform.level()).0;
        self.stats.elapsed += dt;
        self.harvested_total += p_h.0 * dt.0;
        self.stats.overdraw_energy += (p_c - p_h.0).max(0.0) * dt.0;
        self.stats.waste_energy += (p_h.0 - p_c).max(0.0) * dt.0;
        self.stats.performance_integral += platform.performance_at(platform.level()) * dt.0;
    }
}

impl Default for PnGovernor {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy platform: levels draw 1, 2, 4, 8 W and deliver matching
    /// performance.
    #[derive(Debug)]
    struct Toy {
        level: usize,
    }

    impl PowerScalable for Toy {
        fn num_levels(&self) -> usize {
            4
        }
        fn level(&self) -> usize {
            self.level
        }
        fn set_level(&mut self, level: usize) {
            assert!(level < 4);
            self.level = level;
        }
        fn power_at(&self, level: usize) -> Watts {
            Watts([1.0, 2.0, 4.0, 8.0][level])
        }
        fn performance_at(&self, level: usize) -> f64 {
            [1.0, 2.0, 4.0, 8.0][level]
        }
    }

    #[test]
    fn governor_picks_highest_affordable_level() {
        let g = PnGovernor::new().with_utilisation(1.0);
        let toy = Toy { level: 0 };
        assert_eq!(g.target_level(&toy, Watts(0.5)), 0); // nothing fits: floor
        assert_eq!(g.target_level(&toy, Watts(2.5)), 1);
        assert_eq!(g.target_level(&toy, Watts(100.0)), 3);
    }

    #[test]
    fn step_tracks_a_ramp() {
        let mut g = PnGovernor::new().with_utilisation(1.0).with_hysteresis(0.0);
        let mut toy = Toy { level: 3 };
        // Ramp harvest from 8 W down to 1 W: governor must descend.
        for i in 0..100 {
            let p = Watts(8.0 - 7.0 * (i as f64 / 99.0));
            g.step(&mut toy, p, Seconds(0.01));
        }
        assert_eq!(toy.level, 0);
        assert!(g.stats().level_changes >= 3);
        // Overdraw must be small relative to harvest.
        assert!(
            g.overdraw_fraction() < 0.05,
            "overdraw {}",
            g.overdraw_fraction()
        );
    }

    #[test]
    fn utilisation_headroom_reduces_overdraw() {
        let run = |util: f64| {
            let mut g = PnGovernor::new()
                .with_utilisation(util)
                .with_hysteresis(0.0);
            let mut toy = Toy { level: 3 };
            for i in 0..1000 {
                // Noisy harvest around 4 W.
                let p = Watts(4.0 + 1.5 * ((i as f64) * 0.7).sin());
                g.step(&mut toy, p, Seconds(0.001));
            }
            g.overdraw_fraction()
        };
        assert!(run(0.7) <= run(1.0) + 1e-12);
    }

    #[test]
    fn hysteresis_limits_thrash() {
        let changes = |hyst: f64| {
            let mut g = PnGovernor::new()
                .with_utilisation(1.0)
                .with_hysteresis(hyst);
            let mut toy = Toy { level: 0 };
            for i in 0..1000 {
                // Harvest oscillating right at the 2 W / 4 W boundary.
                let p = Watts(4.0 + 0.08 * if i % 2 == 0 { 1.0 } else { -1.0 });
                g.step(&mut toy, p, Seconds(0.001));
            }
            g.stats().level_changes
        };
        assert!(changes(0.10) < changes(0.0));
    }

    #[test]
    fn performance_integral_accumulates() {
        let mut g = PnGovernor::new();
        let mut toy = Toy { level: 0 };
        g.step(&mut toy, Watts(10.0), Seconds(1.0));
        assert!(g.stats().performance_integral > 0.0);
        assert!(g.stats().elapsed == Seconds(1.0));
    }
}
