//! `edc-obs`: observability for runs and searches.
//!
//! Two layers, both byte-deterministic where it matters:
//!
//! - [`perfetto`] maps a run's retained
//!   [`TimelineSink`](edc_telemetry::TimelineSink) streams onto
//!   Perfetto/Chrome trace-event JSON — one track per run (or fleet
//!   node), lifecycle phases as duration slices, events as instants, and
//!   stored-energy/supply-power counter tracks. Everything is stamped in
//!   *simulation* time, so the export is a pure function of the run and
//!   byte-identical across repeats.
//! - [`profile`] carries wall-clock profiles of the search stack
//!   (evaluator, searchers, sweeps, fleets) as a [`ProfileReport`]: the
//!   *counters* section (cache hits, prune counts, billed cost) is
//!   deterministic, while wall-clock readings live in a quarantined
//!   *timing* section — the same split `SweepRun.timing` uses — so
//!   committed artifacts stay byte-stable.
//!
//! # Examples
//!
//! ```
//! use edc_obs::PerfettoTrace;
//! use edc_telemetry::{Event, Record, Sink, TimelineSink};
//! use edc_units::{Joules, Seconds};
//!
//! let mut tl = TimelineSink::new();
//! tl.record(Record {
//!     t: Seconds(0.1),
//!     energy: Joules(1e-6),
//!     event: Event::Boot,
//! });
//! let mut trace = PerfettoTrace::new();
//! trace.add_track("run", &tl, Seconds(1.0));
//! let json = trace.to_json().to_string();
//! assert!(json.contains("\"traceEvents\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod perfetto;
pub mod profile;

pub use perfetto::PerfettoTrace;
pub use profile::{ProfileReport, ProfileSpan};
